#include "lint_rules.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace frontier::lint {
namespace {

constexpr std::string_view kAllowMarker = "lint:allow(";
constexpr std::string_view kSuppressionRule = "suppression-rationale";

[[nodiscard]] bool ident_char(char c) noexcept {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// Word-bounded occurrence of `token` in `line`; when `call_like`, the
/// token must be followed (after optional spaces) by '(' — so `time(0)`
/// matches but `time_point` and `wall_time_seconds` never do.
[[nodiscard]] bool contains_token(std::string_view line, std::string_view token,
                                  bool call_like) noexcept {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    std::size_t after = pos + token.size();
    const bool right_ident = after < line.size() && ident_char(line[after]);
    if (left_ok && !right_ident) {
      if (!call_like) return true;
      while (after < line.size() && (line[after] == ' ' || line[after] == '\t'))
        ++after;
      if (after < line.size() && line[after] == '(') return true;
    }
    pos += 1;
  }
  return false;
}

struct ForbiddenToken {
  std::string_view token;
  bool call_like;
  std::string_view hint;  // appended to the diagnostic
};

// --- determinism-no-wall-clock -------------------------------------------
// Wall clocks, OS entropy, and libc RNG are banned in src/: every random
// draw must flow through core Rng (seeded, splittable, replayable) and
// every duration through std::chrono::steady_clock (monotonic). A crawl
// replayed from a checkpoint must take the identical path.
constexpr ForbiddenToken kWallClockTokens[] = {
    {"rand", true, "use core Rng (seeded, replayable)"},
    {"srand", true, "use core Rng (seeded, replayable)"},
    {"rand_r", true, "use core Rng (seeded, replayable)"},
    {"random_device", false, "use core Rng (seeded, replayable)"},
    {"time", true, "use steady_clock for durations; no wall time in src/"},
    {"gettimeofday", true, "use steady_clock; no wall time in src/"},
    {"clock_gettime", true, "use steady_clock; no wall time in src/"},
    {"system_clock", false, "use steady_clock; no wall time in src/"},
    {"high_resolution_clock", false,
     "alias of system_clock on some platforms; use steady_clock"},
    {"localtime", true, "no calendar time in src/"},
    {"gmtime", true, "no calendar time in src/"},
    {"mt19937", false, "use core Rng, not ad-hoc engines"},
    {"default_random_engine", false, "use core Rng, not ad-hoc engines"},
};

// --- no-stdout-in-library -------------------------------------------------
// stdout belongs to the binaries (CLI, benches, examples). Library code
// reports through return values, exceptions, ostream parameters, or the
// obs exporter (whose stderr sink is the explicit `--metrics -` contract).
constexpr ForbiddenToken kStdoutTokens[] = {
    {"std::cout", false, "library code takes an ostream& or stays silent"},
    {"printf", true, "library code takes an ostream& or stays silent"},
    {"fprintf", true, "library code takes an ostream& or stays silent"},
    {"puts", true, "library code takes an ostream& or stays silent"},
    {"fputs", true, "library code takes an ostream& or stays silent"},
    {"putchar", true, "library code takes an ostream& or stays silent"},
};

// --- durable-file-replacement --------------------------------------------
// Files the system reads back (checkpoints, spool, estimates, reports)
// must be replaced through core/durable.hpp's durable_write_file — tmp
// file + fsync + atomic rename + parent-dir fsync — or a crash can leave
// a torn file that deserializes as garbage. A raw ofstream or rename()
// in src/ or tools/ is a finding; create-only streams (no reader depends
// on their atomicity) are waived per line with a rationale.
constexpr ForbiddenToken kDurableTokens[] = {
    {"std::rename", true,
     "replace files via durable_write_file (core/durable.hpp) so the swap "
     "is fsync'd and atomic"},
    {"std::ofstream", false,
     "file replacement goes through durable_write_file (core/durable.hpp); "
     "waive genuinely create-only/append streams with a rationale"},
};

[[nodiscard]] bool starts_with(std::string_view s, std::string_view p) {
  return s.substr(0, p.size()) == p;
}
[[nodiscard]] bool ends_with(std::string_view s, std::string_view p) {
  return s.size() >= p.size() && s.substr(s.size() - p.size()) == p;
}

[[nodiscard]] bool in_src(std::string_view p) { return starts_with(p, "src/"); }
[[nodiscard]] bool in_tools(std::string_view p) {
  return starts_with(p, "tools/");
}
[[nodiscard]] bool is_durable_helper(std::string_view p) {
  return starts_with(p, "src/core/durable.");
}
[[nodiscard]] bool is_designated_printer(std::string_view p) {
  return starts_with(p, "src/experiments/printers.");
}
[[nodiscard]] bool is_header(std::string_view p) {
  return ends_with(p, ".hpp");
}
[[nodiscard]] bool is_bench_binary(std::string_view p) {
  return starts_with(p, "bench/bench_") && ends_with(p, ".cpp");
}

/// Splits into lines, preserving 1-based numbering (no trailing-newline
/// special cases: a final unterminated line still counts).
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t nl = s.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

struct Suppression {
  bool present = false;     // lint:allow(...) seen on the line
  bool has_rationale = false;
  std::string rule;
};

/// Parses `// lint:allow(rule): rationale` out of a *raw* (unscrubbed)
/// line. The rationale is whatever non-space text follows the ')', minus
/// leading punctuation.
[[nodiscard]] Suppression parse_suppression(std::string_view raw_line) {
  Suppression s;
  const std::size_t at = raw_line.find(kAllowMarker);
  if (at == std::string_view::npos) return s;
  const std::size_t open = at + kAllowMarker.size();
  const std::size_t close = raw_line.find(')', open);
  if (close == std::string_view::npos) return s;
  s.present = true;
  s.rule = std::string(raw_line.substr(open, close - open));
  std::string_view rest = raw_line.substr(close + 1);
  std::size_t i = 0;
  while (i < rest.size() &&
         (rest[i] == ':' || rest[i] == '-' || rest[i] == ' ' ||
          rest[i] == '\t'))
    ++i;
  s.has_rationale = i < rest.size();
  return s;
}

void run_token_rule(std::string_view rel_path,
                    const std::vector<std::string_view>& raw_lines,
                    const std::vector<std::string_view>& scrubbed_lines,
                    std::string_view rule_name,
                    const ForbiddenToken* tokens, std::size_t num_tokens,
                    std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < scrubbed_lines.size(); ++i) {
    for (std::size_t t = 0; t < num_tokens; ++t) {
      const ForbiddenToken& ft = tokens[t];
      if (!contains_token(scrubbed_lines[i], ft.token, ft.call_like)) continue;
      const Suppression sup = parse_suppression(raw_lines[i]);
      if (sup.present && sup.rule == rule_name) {
        if (!sup.has_rationale) {
          out.push_back({std::string(rel_path), i + 1,
                         std::string(kSuppressionRule),
                         "lint:allow(" + sup.rule +
                             ") needs a rationale after the ')' — say why "
                             "this use is sound"});
        }
        continue;  // suppressed (rationale problems reported separately)
      }
      out.push_back({std::string(rel_path), i + 1, std::string(rule_name),
                     "forbidden call/name '" + std::string(ft.token) + "': " +
                         std::string(ft.hint)});
    }
  }
}

void add_file(std::vector<std::filesystem::path>& files,
              const std::filesystem::path& root,
              const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  if (ext != ".hpp" && ext != ".cpp") return;
  // Fixture trees violate rules on purpose; skip them — but only when the
  // lint_fixtures component is *below* the scanned root, so the fixture
  // trees themselves can be linted by the tests.
  std::error_code ec;
  for (const auto& part : std::filesystem::relative(p, root, ec)) {
    if (part == "lint_fixtures") return;
  }
  files.push_back(p);
}

}  // namespace

std::string scrub(std::string_view source) {
  std::string out(source);
  enum class State { kCode, kString, kChar, kLine, kBlock };
  State st = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '"') {
          st = State::kString;
        } else if (c == '\'' && (i == 0 || !ident_char(source[i - 1]))) {
          // The ident_char guard keeps digit separators (1'000'000) and
          // literal suffixes out of the char-literal state.
          st = State::kChar;
        } else if (c == '/' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          st = State::kLine;
        } else if (c == '/' && next == '*') {
          out[i] = out[i + 1] = ' ';
          ++i;
          st = State::kBlock;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = st == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < source.size() && source[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote) {
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
      case State::kLine:
        if (c == '\n') {
          st = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<RuleInfo> rules() {
  return {
      {"determinism-no-wall-clock",
       "src/ draws randomness only via core Rng and time only via "
       "steady_clock (no rand/random_device/time()/system_clock)"},
      {"no-stdout-in-library",
       "src/ never writes to stdout (std::cout/printf family) outside "
       "src/experiments/printers.*"},
      {"pragma-once", "every header starts its include guard with "
                      "#pragma once"},
      {"bench-session",
       "every bench/bench_*.cpp routes through bench_common::BenchSession "
       "(--json + result_fingerprint discipline)"},
      {"durable-file-replacement",
       "src/ and tools/ replace files only via durable_write_file "
       "(core/durable.hpp) — raw std::ofstream/std::rename swaps are "
       "findings unless waived as create-only"},
      {"suppression-rationale",
       "every lint:allow(rule) waiver carries a written rationale"},
  };
}

std::vector<Diagnostic> check_file(std::string_view rel_path,
                                   std::string_view content) {
  std::vector<Diagnostic> out;

  // Every rule matches against the scrubbed copy (comments and literal
  // bodies blanked), so a rule is satisfied or violated by *code*, never
  // by prose mentioning a token — a comment saying "#pragma once" must
  // not count as an include guard.
  const std::string scrubbed = scrub(content);

  if (is_header(rel_path) &&
      scrubbed.find("#pragma once") == std::string::npos) {
    out.push_back({std::string(rel_path), 1, "pragma-once",
                   "header lacks #pragma once"});
  }

  if (is_bench_binary(rel_path) &&
      scrubbed.find("BenchSession") == std::string::npos) {
    out.push_back({std::string(rel_path), 1, "bench-session",
                   "bench binary does not use bench_common::BenchSession — "
                   "every bench must support --json and emit a fingerprint"});
  }

  if (in_src(rel_path) || in_tools(rel_path)) {
    const std::vector<std::string_view> raw_lines = split_lines(content);
    const std::vector<std::string_view> scrubbed_lines =
        split_lines(scrubbed);
    if (in_src(rel_path)) {
      run_token_rule(rel_path, raw_lines, scrubbed_lines,
                     "determinism-no-wall-clock", kWallClockTokens,
                     std::size(kWallClockTokens), out);
      if (!is_designated_printer(rel_path)) {
        run_token_rule(rel_path, raw_lines, scrubbed_lines,
                       "no-stdout-in-library", kStdoutTokens,
                       std::size(kStdoutTokens), out);
      }
    }
    // The durable helper itself is the one place the raw idiom lives.
    if (!is_durable_helper(rel_path)) {
      run_token_rule(rel_path, raw_lines, scrubbed_lines,
                     "durable-file-replacement", kDurableTokens,
                     std::size(kDurableTokens), out);
    }
  }

  return out;
}

LintResult lint_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  LintResult result;

  std::vector<fs::path> files;
  for (const char* sub : {"src", "tests", "bench", "tools", "examples"}) {
    const fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec)) add_file(files, root, it->path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in) {
      result.unreadable.push_back(p.generic_string());
      continue;
    }
    const std::string rel =
        fs::relative(p, root).generic_string();
    std::vector<Diagnostic> diags = check_file(rel, buf.str());
    result.diagnostics.insert(result.diagnostics.end(),
                              std::make_move_iterator(diags.begin()),
                              std::make_move_iterator(diags.end()));
    result.files_checked += 1;
  }
  return result;
}

std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

}  // namespace frontier::lint

#!/usr/bin/env bash
# One-command local gate: configure, build everything, run ctest, then
# rebuild the library with -Wall -Wextra -Werror to keep it warning-clean.
#
#   tools/check.sh [build-dir] [--sanitize] [--tsan] [--tidy]
#   (default: build)
#
# --sanitize additionally configures/builds/tests the `sanitize` CMake
# preset (ASan + UBSan, see CMakePresets.json) in build-sanitize/.
# --tsan     additionally builds the `tsan` preset (ThreadSanitizer) in
#            build-tsan/ and runs the concurrency-bearing tests under it
#            (the same subset CI's tsan job runs).
# --tidy     additionally runs tools/lint.sh (clang-tidy over src/; skips
#            with a notice when clang-tidy is not installed).
#
# The default run is unchanged: configure + build + ctest + strict build.
# All three flags compose: `tools/check.sh --tidy --tsan --sanitize` is
# the full local correctness gate.
#
# Mirrors the tier-1 verify in ROADMAP.md; run before every push.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build"
SANITIZE=0
TSAN=0
TIDY=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=1 ;;
    --tsan) TSAN=1 ;;
    --tidy) TIDY=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== configure (${BUILD_DIR})"
cmake -B "$BUILD_DIR" -S .

echo "== build (all targets, -j${JOBS})"
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest"
# --timeout 120 is the default for tests without an explicit TIMEOUT
# property (the CLI cases): a hung walker fails in minutes, not hours.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" --timeout 120

echo "== warning-clean library build (-Wall -Wextra -Werror)"
STRICT_DIR="${BUILD_DIR}-strict"
cmake -B "$STRICT_DIR" -S . \
  -DFRONTIER_WERROR=ON \
  -DFRONTIER_BUILD_TESTS=OFF \
  -DFRONTIER_BUILD_BENCH=OFF \
  -DFRONTIER_BUILD_EXAMPLES=OFF \
  -DFRONTIER_BUILD_TOOLS=OFF \
  >/dev/null
cmake --build "$STRICT_DIR" -j "$JOBS" --target frontier

if [ "$SANITIZE" -eq 1 ]; then
  echo "== sanitize build + tests (ASan + UBSan)"
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "$JOBS"
  ctest --preset sanitize -j "$JOBS" --timeout 120
fi

if [ "$TSAN" -eq 1 ]; then
  echo "== tsan build + concurrency tests (ThreadSanitizer)"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS" --target \
    test_replication_runner test_metrics_registry test_obs_determinism \
    test_graph_storage test_rwj_parallel
  # The concurrency-bearing subset: the replication work queue, the
  # sharded metrics registry, telemetry attach/detach during crawls, the
  # parallel edge-list parser / parallel sort, and the RWJ parallel path.
  # TSan's happens-before checking makes these meaningful; the rest of
  # the suite is single-threaded and already covered by ASan/UBSan.
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" --timeout 300 \
    -R 'test_replication_runner|test_metrics_registry|test_obs_determinism|test_graph_storage|test_rwj_parallel'
fi

if [ "$TIDY" -eq 1 ]; then
  echo "== clang-tidy (tools/lint.sh)"
  tools/lint.sh --build-dir "$BUILD_DIR"
fi

echo "== OK"

#!/usr/bin/env bash
# Crash-recovery harness: kill -9 the serve daemon at deterministic,
# failpoint-chosen moments, restart it, let the scripted client reconnect
# and resume every session from the spool — and then require the final
# spool checkpoints and estimates files to be byte-identical (cmp) to an
# uncrashed offline `frontier_cli stream` run of the same spec.
#
#   tools/crash_smoke.sh [build-dir]   (default: build)
#
# Three kill moments, all covering all five cursor types:
#   * durable.fsync=kill9@3   — dies inside a spool write, before the
#     rename: the victim session has NO durable checkpoint, so the client
#     falls back to a fresh deterministic open (bad-checkpoint path).
#   * durable.dirsync=kill9@3 — dies after the rename, before the parent
#     dir fsync: the spool file IS durable, so the client resumes from it
#     (resume:true path).
#   * serve.pump=kill9@4      — dies between scheduler slices, mid-step:
#     progress since the last spool write is lost and re-walked.
#
# The kill always lands in the srw block (the 3rd durable write / 4th
# pump slice), so the fs session is already closed — recovery must not
# disturb finished sessions — and mrw/mh/rwj run entirely on the
# restarted, failpoint-free daemon.
#
# Only the FIRST daemon incarnation runs with FRONTIER_FAILPOINTS armed;
# the supervisor restarts crashed (nonzero-exit) daemons clean, so each
# scenario crashes exactly once and then finishes. A scenario that never
# crashes fails the harness — the gate must not pass vacuously.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/frontier_cli"
SERVE="$BUILD_DIR/tools/frontier_serve"
[ -x "$CLI" ] && [ -x "$SERVE" ] || {
  echo "crash_smoke: missing $CLI or $SERVE (build first)" >&2
  exit 2
}

WORK="$(mktemp -d)"
SUP_PID=""
CUR_SOCK=""
cleanup() {
  # Best-effort: ask a still-running daemon to exit, then drop the tree.
  if [ -n "$CUR_SOCK" ] && [ -S "$CUR_SOCK" ]; then
    echo '{"op":"shutdown"}' |
      "$SERVE" --connect --socket "$CUR_SOCK" >/dev/null 2>&1 || true
  fi
  [ -n "$SUP_PID" ] && wait "$SUP_PID" 2>/dev/null || true
  if [ -n "${CRASH_SMOKE_KEEP:-}" ]; then
    echo "crash_smoke: work tree kept at $WORK" >&2
  else
    rm -rf "$WORK"
  fi
}
trap cleanup EXIT

fail() {
  echo "crash_smoke: FAIL: $*" >&2
  exit 1
}

# method budget seed dimension("" for the method default)
METHODS=(
  "fs 3000 7 40"
  "srw 2000 11 "
  "mrw 2400 13 16"
  "mh 2000 17 "
  "rwj 2200 19 "
)

echo "== graph"
"$CLI" generate --model ba --n 800 --param 3 --seed 1 \
  --out "$WORK/g.txt" >/dev/null
"$CLI" convert "$WORK/g.txt" "$WORK/g.bin" >/dev/null

echo "== offline reference (uncrashed)"
mkdir -p "$WORK/off"
for entry in "${METHODS[@]}"; do
  read -r m b s dim <<<"$entry"
  d=""
  [ -n "$dim" ] && d="--dimension $dim"
  # shellcheck disable=SC2086
  "$CLI" stream "$WORK/g.bin" --mmap --method "$m" --budget "$b" \
    --seed "$s" $d --checkpoint "$WORK/off/$m.ckpt" \
    --estimates-json "$WORK/off/$m.json" >/dev/null
done

# One block per method: open, pause at 300 events, checkpoint, run to
# completion, checkpoint again (the final state the cmp gate compares),
# estimates, close. The relative step targets make replay convergent: a
# resumed session re-walks from its last durable checkpoint and the
# trailing "step 1000000" always drives it to the budget-determined end.
SCRIPT="$WORK/script.txt"
{
  for entry in "${METHODS[@]}"; do
    read -r m b s dim <<<"$entry"
    d=""
    [ -n "$dim" ] && d=",\"dimension\":$dim"
    printf '{"op":"open","session":"s-%s","method":"%s","budget":%s,"seed":%s%s}\n' \
      "$m" "$m" "$b" "$s" "$d"
    printf '{"op":"step","session":"s-%s","events":300}\n' "$m"
    printf '{"op":"checkpoint","session":"s-%s"}\n' "$m"
    printf '{"op":"step","session":"s-%s","events":1000000}\n' "$m"
    printf '{"op":"checkpoint","session":"s-%s"}\n' "$m"
    printf '{"op":"estimates","session":"s-%s"}\n' "$m"
    printf '{"op":"close","session":"s-%s"}\n' "$m"
  done
  echo '{"op":"stats"}'
  echo '{"op":"shutdown"}'
} > "$SCRIPT"
SCRIPT_LINES="$(wc -l < "$SCRIPT")"

run_scenario() { # name failpoint-spec
  local name="$1" fps="$2"
  local sock="$WORK/$name.sock" spool="$WORK/spool_$name"
  echo "== scenario $name ($fps)"
  CUR_SOCK="$sock"

  # Supervisor: the armed first incarnation, then clean replacements for
  # as long as the daemon keeps dying (SIGKILL exits 137; a clean
  # shutdown exits 0 and ends the loop).
  (
    set +e  # the whole point is daemons that exit nonzero
    FRONTIER_FAILPOINTS="$fps" "$SERVE" "$WORK/g.bin" --mmap \
      --socket "$sock" --spool "$spool" \
      > "$WORK/$name.daemon.log" 2>&1
    rc=$?
    restarts=0
    while [ "$rc" -ne 0 ]; do
      restarts=$((restarts + 1))
      "$SERVE" "$WORK/g.bin" --mmap --socket "$sock" --spool "$spool" \
        >> "$WORK/$name.daemon.log" 2>&1
      rc=$?
    done
    echo "$restarts" > "$WORK/$name.restarts"
  ) &
  SUP_PID=$!

  for _ in $(seq 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || fail "$name: daemon never bound $sock"

  "$SERVE" --connect --socket "$sock" --script "$SCRIPT" \
    --save-estimates "$WORK/est_$name" \
    --retry 8 --retry-backoff-ms 100 \
    > "$WORK/$name.responses" 2> "$WORK/$name.client.log" ||
    fail "$name: client failed (see $WORK/$name.client.log)"
  wait "$SUP_PID"
  SUP_PID=""
  CUR_SOCK=""

  local restarts
  restarts="$(cat "$WORK/$name.restarts")"
  [ "$restarts" -ge 1 ] ||
    fail "$name: daemon never crashed — the scenario is vacuous"
  # Replay chatter goes to stderr; stdout must stay 1:1 with the script.
  local responses
  responses="$(wc -l < "$WORK/$name.responses")"
  [ "$responses" -eq "$SCRIPT_LINES" ] ||
    fail "$name: $responses responses for $SCRIPT_LINES requests"

  for entry in "${METHODS[@]}"; do
    read -r m _ _ _ <<<"$entry"
    cmp "$spool/s-$m.ckpt" "$WORK/off/$m.ckpt" ||
      fail "$name: $m checkpoint diverged from the uncrashed run"
    cmp "$WORK/est_$name/s-$m.json" "$WORK/off/$m.json" ||
      fail "$name: $m estimates diverged from the uncrashed run"
  done
  echo "   $name: crashed $restarts time(s), recovered, all 5 methods" \
       "byte-identical"
}

run_scenario fsync   "durable.fsync=kill9@3"
run_scenario dirsync "durable.dirsync=kill9@3"
run_scenario pump    "serve.pump=kill9@4"

echo "crash_smoke: OK"

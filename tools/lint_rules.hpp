// frontier_lint — project-specific source rules clang-tidy cannot express.
//
// The rule set (see rules() for the live list):
//   determinism-no-wall-clock  src/ must not read wall clocks or OS
//                              entropy: RNG flows through core Rng,
//                              timing through steady_clock only —
//                              anything else breaks replayability and the
//                              bit-identity guarantees the tests pin.
//   no-stdout-in-library       src/ must not write to stdout (std::cout,
//                              printf family) outside the designated
//                              printer module (src/experiments/printers.*).
//                              Library output goes through ostream
//                              parameters or the obs exporter.
//   pragma-once                every .hpp under src/tests/bench/tools/
//                              examples carries #pragma once.
//   bench-session              every bench/bench_*.cpp routes through
//                              bench_common::BenchSession (the --json /
//                              result_fingerprint discipline CI gates on).
//   durable-file-replacement   src/ and tools/ must not hand-roll file
//                              replacement (raw std::ofstream or
//                              std::rename): the durable-write helper
//                              (core/durable.hpp) owns the tmp + fsync +
//                              rename + dir-fsync protocol. Create-only
//                              and append streams are waived per line.
//
// Suppression: a finding is waived per line with
//     // lint:allow(rule-name): why this specific use is sound
// and the rationale is mandatory — an allow without one is itself a
// finding (suppression-rationale), so waivers stay reviewable.
//
// Matching runs on a comment- and string-scrubbed copy of the source, so
// prose and log messages never trip the token rules. The scrubber
// understands //, /* */, string/char literals with escapes, and digit
// separators; raw string literals are not special-cased (none in tree —
// the scrubber treats them as ordinary strings, which can only widen,
// never narrow, what gets scrubbed on the lines between the quotes).
//
// This header is the library surface; tools/frontier_lint.cpp is the
// thin CLI, and tests/test_frontier_lint.cpp exercises both on fixture
// trees under tests/lint_fixtures/ (which lint_tree() skips by name).
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace frontier::lint {

struct Diagnostic {
  std::string file;  ///< repo-relative path, '/'-separated
  std::size_t line;  ///< 1-based; the line the finding anchors to
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  std::size_t files_checked = 0;
  /// Files that could not be read (permission/encoding); nonempty means
  /// the run is unsound and callers should exit 2, not 1.
  std::vector<std::string> unreadable;
};

/// The live rule table, for --list-rules and the docs.
[[nodiscard]] std::vector<RuleInfo> rules();

/// Applies every rule whose path predicate matches `rel_path` to
/// `content`. `rel_path` is '/'-separated and repo-relative
/// (e.g. "src/graph/io.cpp").
[[nodiscard]] std::vector<Diagnostic> check_file(std::string_view rel_path,
                                                std::string_view content);

/// Walks src/, tests/, bench/, tools/ and examples/ under `root` (missing
/// subtrees are skipped), checking every .hpp/.cpp except fixture trees
/// (any path containing a "lint_fixtures" component). Deterministic
/// file order.
[[nodiscard]] LintResult lint_tree(const std::filesystem::path& root);

/// "file:line: [rule] message" — the grep/editor-clickable form.
[[nodiscard]] std::string format(const Diagnostic& d);

/// Comment/string scrubber used by the token rules; exposed for tests.
/// Returns a same-length string with comment bodies and literal contents
/// blanked to spaces (newlines preserved, so line numbers survive).
[[nodiscard]] std::string scrub(std::string_view source);

}  // namespace frontier::lint

#!/usr/bin/env bash
# clang-tidy runner over the library (and optionally tests/bench/tools).
#
#   tools/lint.sh [--build-dir DIR] [--all] [--report FILE] [--strict]
#
#   --build-dir DIR  build tree with compile_commands.json (default: build;
#                    configured automatically if missing)
#   --all            also lint tests/, bench/, examples/ and tools/
#                    (default: src/ only — the zero-findings contract)
#   --report FILE    tee the full clang-tidy output to FILE (CI uploads it
#                    as an artifact)
#   --strict         fail (exit 3) when clang-tidy is not installed instead
#                    of skipping; CI sets this so the gate cannot silently
#                    degrade, while local boxes without clang-tidy still
#                    get a passing default `tools/check.sh`
#
# Exit codes: 0 clean (or tool missing without --strict), 1 findings,
# 2 usage/setup error, 3 tool missing under --strict.
#
# The check configuration lives in .clang-tidy at the repo root; per-line
# suppressions are NOLINT(check) with a trailing rationale comment (see
# docs/STATIC_ANALYSIS.md). Project-specific rules that clang-tidy cannot
# express (determinism, stdout policy, header/bench discipline) live in
# tools/frontier_lint, which runs as a ctest case — the two are
# complementary, not redundant.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
SCOPE="src"
REPORT=""
STRICT=0
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="${2:?--build-dir needs a value}"; shift 2 ;;
    --all) SCOPE="all"; shift ;;
    --report) REPORT="${2:?--report needs a value}"; shift 2 ;;
    --strict) STRICT=1; shift ;;
    *) echo "lint.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

TIDY=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then TIDY="$candidate"; break; fi
done
if [ -z "$TIDY" ]; then
  if [ "$STRICT" -eq 1 ]; then
    echo "lint.sh: clang-tidy not found and --strict was given" >&2
    exit 3
  fi
  echo "lint.sh: clang-tidy not installed — skipping (install clang-tidy," \
       "or rely on the CI lint job, which runs with --strict)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "== configure (${BUILD_DIR}) for compile_commands.json"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: ${BUILD_DIR}/compile_commands.json still missing" >&2
  exit 2
fi

if [ "$SCOPE" = "all" ]; then
  mapfile -t FILES < <(find src tests bench examples tools -name '*.cpp' \
    -not -path 'tests/lint_fixtures/*' | sort)
else
  mapfile -t FILES < <(find src -name '*.cpp' | sort)
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
echo "== ${TIDY} over ${#FILES[@]} files (scope: ${SCOPE}, -j${JOBS})"

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
STATUS=0
# xargs fans the files out; clang-tidy exits nonzero per file on findings
# (WarningsAsErrors: '*' in .clang-tidy), which xargs folds into its own
# nonzero exit.
printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet \
    >"$OUT" 2>&1 || STATUS=1

if [ -n "$REPORT" ]; then
  cp "$OUT" "$REPORT"
  echo "== full clang-tidy output: $REPORT"
fi

# Surface findings (suppress the noise clang-tidy prints about skipped
# system headers when --quiet is not enough on older versions).
grep -E 'warning:|error:' "$OUT" || true

if [ "$STATUS" -ne 0 ]; then
  echo "== lint FAILED: clang-tidy findings above (config: .clang-tidy)"
  exit 1
fi
echo "== lint OK: zero clang-tidy findings"

// frontier_lint — in-tree invariant linter; rules live in lint_rules.cpp.
//
//   frontier_lint <repo-root>      lint the tree, print findings, exit 0/1
//   frontier_lint --list-rules     print the rule table
//
// Registered as the `frontier_lint_repo` ctest case, so tier-1 runs the
// lint on every build. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <filesystem>
#include <iostream>
#include <string_view>

#include "lint_rules.hpp"

int main(int argc, char** argv) {
  using namespace frontier::lint;

  if (argc == 2 && std::string_view(argv[1]) == "--list-rules") {
    for (const RuleInfo& r : rules()) {
      std::cout << r.name << "\n    " << r.summary << "\n";
    }
    return 0;
  }
  if (argc != 2) {
    std::cerr << "usage: frontier_lint <repo-root> | --list-rules\n";
    return 2;
  }

  const std::filesystem::path root = argv[1];
  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec)) {
    std::cerr << "frontier_lint: not a directory: " << root.string() << "\n";
    return 2;
  }

  const LintResult result = lint_tree(root);
  for (const std::string& path : result.unreadable) {
    std::cerr << "frontier_lint: cannot read " << path << "\n";
  }
  for (const Diagnostic& d : result.diagnostics) {
    std::cout << format(d) << "\n";
  }
  if (!result.unreadable.empty()) return 2;
  if (!result.diagnostics.empty()) {
    std::cerr << "frontier_lint: " << result.diagnostics.size()
              << " finding(s) over " << result.files_checked << " file(s)\n";
    return 1;
  }
  std::cout << "frontier_lint: OK (" << result.files_checked
            << " files checked)\n";
  return 0;
}

// frontier_serve — sampling as a service: a long-running daemon that
// multiplexes concurrent crawl sessions over one shared (typically
// mmap'd) graph.
//
//   frontier_serve <graph> (--socket PATH | --port N) [options]
//       Serve the wire protocol (serve/protocol.hpp, newline-delimited
//       JSON) on a Unix socket or loopback TCP. Each session is one
//       streaming crawl built from the same CrawlSpec path as
//       `frontier_cli stream` — a served session is bit-identical to an
//       offline run of the same (method, budget, dimension, seed,
//       motifs) tuple. Admission control (--max-sessions,
//       --max-per-tenant, --max-budget), fair scheduling
//       (--slice-events), idle eviction to spool checkpoints
//       (--idle-timeout), and graceful drain on SIGTERM/SIGINT or
//       {"op":"shutdown"} — every open session is checkpointed to
//       --spool before exit and resumes with {"op":"open",...,
//       "resume":true}.
//
//   frontier_serve --connect (--socket PATH | --port N) [--script FILE]
//                  [--save-estimates DIR] [--expect-ok] [--retry N]
//       Scripted client, one request line per response line: sends each
//       non-comment line of FILE (default stdin) and prints the
//       response. --expect-ok exits nonzero on the first {"ok":false}
//       response; --save-estimates writes every estimates response as
//       DIR/<session>.json in exactly the format `frontier_cli stream
//       --estimates-json` writes, so CI can cmp served and offline
//       estimates byte for byte. --retry N survives daemon crashes:
//       the client reconnects with exponential backoff
//       (--retry-backoff-ms) and idempotently re-opens its sessions
//       with resume:true before replaying the interrupted request —
//       the crash harness drives exactly this path.
//
// The full protocol specification lives in docs/SERVER.md.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/frontier.hpp"
#include "stats/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FRONTIER_SERVE_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define FRONTIER_SERVE_HAS_SOCKETS 0
#endif

namespace {

using namespace frontier;

using cli::CommandSpec;
using cli::OptionType;
using cli::ParsedArgs;

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

CommandSpec daemon_spec() {
  return {
      .program = "frontier_serve",
      .summary = "serve concurrent sampling sessions over a socket",
      .positionals = {{.name = "graph"}},
      .options = {
          {.name = "socket",
           .type = OptionType::kPath,
           .value_name = "PATH",
           .help = "listen on a Unix socket at PATH"},
          {.name = "port",
           .type = OptionType::kU64,
           .value_name = "N",
           .help = "listen on 127.0.0.1:N instead of a Unix socket",
           .min_u64 = 1},
          {.name = "spool",
           .type = OptionType::kPath,
           .value_name = "DIR",
           .help = "checkpoint spool directory (default serve-spool)"},
          {.name = "mmap",
           .type = OptionType::kFlag,
           .help = "require a zero-copy mmap load (.bin v2 snapshot)"},
          {.name = "max-sessions",
           .type = OptionType::kU64,
           .value_name = "N",
           .help = "server-wide open-session cap (default 64)",
           .min_u64 = 1},
          {.name = "max-per-tenant",
           .type = OptionType::kU64,
           .value_name = "N",
           .help = "per-tenant open-session cap (default 16)",
           .min_u64 = 1},
          {.name = "max-budget",
           .type = OptionType::kDouble,
           .value_name = "B",
           .help = "per-session budget cap (default 1e9)",
           .min_double = 0.0,
           .has_min_double = true,
           .exclusive_min = true},
          {.name = "max-step-events",
           .type = OptionType::kU64,
           .value_name = "N",
           .help = "largest single step request (default 1048576)",
           .min_u64 = 1},
          {.name = "slice-events",
           .type = OptionType::kU64,
           .value_name = "N",
           .help = "scheduler slice per session (default 16384)",
           .min_u64 = 1},
          {.name = "idle-timeout",
           .type = OptionType::kDouble,
           .value_name = "SEC",
           .help = "evict idle sessions to the spool (default 0 = never)",
           .min_double = 0.0,
           .has_min_double = true},
          {.name = "max-line-bytes",
           .type = OptionType::kU64,
           .value_name = "N",
           .help = "request line length cap (default 65536)",
           .min_u64 = 64},
          {.name = "metrics",
           .type = OptionType::kPath,
           .value_name = "FILE",
           .help = "write a schema-v1 telemetry snapshot at shutdown"},
      }};
}

CommandSpec client_spec() {
  return {
      .program = "frontier_serve",
      .summary = "scripted client for a running frontier_serve daemon",
      .options = {
          {.name = "connect",
           .type = OptionType::kFlag,
           .help = "client mode: send a request script, print responses"},
          {.name = "socket",
           .type = OptionType::kPath,
           .value_name = "PATH",
           .help = "connect to a Unix socket at PATH"},
          {.name = "port",
           .type = OptionType::kU64,
           .value_name = "N",
           .help = "connect to 127.0.0.1:N instead of a Unix socket",
           .min_u64 = 1},
          {.name = "script",
           .type = OptionType::kPath,
           .value_name = "FILE",
           .help = "request lines, one per line (default stdin; # comments)"},
          {.name = "save-estimates",
           .type = OptionType::kPath,
           .value_name = "DIR",
           .help = "write estimates responses as DIR/<session>.json"},
          {.name = "expect-ok",
           .type = OptionType::kFlag,
           .help = "exit nonzero on the first {\"ok\":false} response"},
          {.name = "retry",
           .type = OptionType::kU64,
           .value_name = "N",
           .help = "reconnect up to N times after a dropped connection, "
                   "resuming open sessions from the spool (default 0)"},
          {.name = "retry-backoff-ms",
           .type = OptionType::kU64,
           .value_name = "MS",
           .help = "initial reconnect backoff, doubled per consecutive "
                   "attempt (default 200)",
           .min_u64 = 1},
      }};
}

/// Both modes: exactly one of --socket / --port, checked up front so the
/// failure is a usage error, not a late socket error.
void require_one_endpoint(const CommandSpec& spec, const ParsedArgs& args) {
  if (args.has("socket") == args.has("port")) {
    throw cli::UsageError("exactly one of --socket and --port is required\n" +
                          spec.usage());
  }
  if (args.has("port") && args.get_u64("port", 0) > 65535) {
    throw cli::UsageError("--port must be at most 65535\n" + spec.usage());
  }
}

int run_daemon(const CommandSpec& spec, const ParsedArgs& args) {
  require_one_endpoint(spec, args);
  const std::string metrics_path = args.get_path("metrics");
  // Enable the library seams (graph-load telemetry) before the graph loads.
  if (!metrics_path.empty()) set_metrics_enabled(true);
  std::unique_ptr<MetricsExporter> exporter;
  if (!metrics_path.empty()) {
    exporter = std::make_unique<MetricsExporter>(MetricsRegistry::global(),
                                                 metrics_path, 0.0);
  }

  Graph g = cli::load_graph(args.positional()[0], args.get_flag("mmap"));
  std::cerr << "frontier_serve: " << g.summary()
            << (g.is_memory_mapped() ? " (mmap)" : "") << "\n";

  serve::ServeLimits limits;
  limits.max_sessions = args.get_u64("max-sessions", limits.max_sessions);
  limits.max_sessions_per_tenant =
      args.get_u64("max-per-tenant", limits.max_sessions_per_tenant);
  limits.max_budget = args.get_double("max-budget", limits.max_budget);
  limits.max_step_events =
      args.get_u64("max-step-events", limits.max_step_events);
  limits.slice_events = args.get_u64("slice-events", limits.slice_events);
  limits.idle_timeout_seconds =
      args.get_double("idle-timeout", limits.idle_timeout_seconds);
  limits.max_line_bytes =
      args.get_u64("max-line-bytes", limits.max_line_bytes);

  serve::ServeCore core(std::move(g), limits,
                        args.get_path("spool", "serve-spool"),
                        serve::ServeCore::Clock::now(),
                        &MetricsRegistry::global());
  serve::SocketServer server(
      core,
      serve::SocketConfig{
          .unix_socket = args.get_path("socket"),
          .tcp_port = static_cast<int>(args.get_u64("port", 0))},
      &std::cerr);

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);
#ifdef SIGPIPE
  // A client that disconnects mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  (void)server.run(&g_stop);
  if (exporter) exporter->export_now();
  return 0;
}

#if FRONTIER_SERVE_HAS_SOCKETS

int connect_to(const CommandSpec& spec, const ParsedArgs& args) {
  require_one_endpoint(spec, args);
  int fd = -1;
  if (args.has("socket")) {
    const std::string path = args.get_path("socket");
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw IoError("connect: unix path too long: " + path);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      throw IoError("connect: " + path + ": " + std::strerror(errno));
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(args.get_u64("port", 0)));
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      throw IoError("connect: 127.0.0.1:" +
                    std::to_string(args.get_u64("port", 0)) + ": " +
                    std::strerror(errno));
    }
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("connect: write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string recv_line(int fd, std::string& buffer) {
  while (true) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("connect: read: ") + std::strerror(errno));
    }
    if (n == 0) throw IoError("connect: server closed the connection");
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Extracts the estimates-file payload from an estimates response. The
/// response is `{"ok":true,"op":"estimates","session":S,"events":...}`;
/// the file format `frontier_cli stream --estimates-json` writes is
/// `{"events":...}` — the same renderer (estimates_fields) produced both
/// textures, so slicing the envelope off reproduces the offline file
/// byte for byte.
std::string estimates_file_body(const std::string& response) {
  const std::size_t start = response.find("\"events\":");
  if (start == std::string::npos || response.empty() ||
      response.back() != '}') {
    throw IoError("connect: malformed estimates response: " + response);
  }
  return "{" + response.substr(start, response.size() - start - 1) + "}\n";
}

/// Best-effort (op, session) of a request line; empty fields when the
/// line is not valid JSON (the server will answer with bad-request).
struct RequestInfo {
  std::string op;
  std::string session;
};

RequestInfo classify_request(const std::string& line) {
  RequestInfo info;
  try {
    const json::Value doc = json::parse(line, "request");
    for (const auto& [key, value] : doc.members) {
      if (value.kind != json::Value::Kind::kString) continue;
      if (key == "op") info.op = value.text;
      if (key == "session") info.session = value.text;
    }
  } catch (const json::ParseError&) {
    // Not ours to validate; leave empty.
  }
  return info;
}

/// Rewrites an `open` request to `"resume":true` for replay after a
/// reconnect (the parser rejects duplicate keys, so the existing member
/// is replaced in place when present).
std::string with_resume(const std::string& open_line) {
  const std::size_t pos = open_line.find("\"resume\":");
  if (pos != std::string::npos) {
    std::size_t end = pos + std::string("\"resume\":").size();
    while (end < open_line.size() && open_line[end] != ',' &&
           open_line[end] != '}') {
      ++end;
    }
    return open_line.substr(0, pos) + "\"resume\":true" +
           open_line.substr(end);
  }
  const std::size_t brace = open_line.rfind('}');
  if (brace == std::string::npos) return open_line;
  return open_line.substr(0, brace) + ",\"resume\":true" +
         open_line.substr(brace);
}

/// The reconnecting client: connection drops are retried with
/// exponential backoff, and every session this script opened (and has
/// not closed) is re-established first — `resume:true` against the
/// daemon's spool, falling back to a fresh open when the daemon died
/// before its first spool write. Because a resumed engine restores the
/// exact checkpointed state and completion is budget-determined, the
/// replayed crawl converges to the same final bytes as an uncrashed
/// run (the crash harness cmp's exactly this).
class ClientConnection {
 public:
  ClientConnection(const CommandSpec& spec, const ParsedArgs& args)
      : spec_(spec),
        args_(args),
        retries_(args.get_u64("retry", 0)),
        backoff_ms_(args.get_u64("retry-backoff-ms", 200)) {
    fd_ = connect_to(spec_, args_);
  }
  ~ClientConnection() {
    if (fd_ >= 0) (void)::close(fd_);
  }
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// Sends one script line and returns the response, reconnecting and
  /// replaying session opens when the connection drops mid-request.
  std::string request(const std::string& line) {
    const RequestInfo info = classify_request(line);
    std::uint64_t attempts = 0;
    while (true) {
      try {
        const std::string response = roundtrip(line);
        track(info, response);
        return response;
      } catch (const IoError& e) {
        if (attempts >= retries_) throw;
        ++attempts;
        std::cerr << "connect: connection lost (" << e.what()
                  << "); retry " << attempts << "/" << retries_ << "\n";
        try {
          reconnect(attempts);
        } catch (const IoError& re) {
          // The daemon is not back yet (connection refused while it
          // restarts): the attempt is spent, the next loop iteration
          // fails fast on the dead fd and backs off longer.
          std::cerr << "connect: reconnect failed (" << re.what() << ")\n";
        }
      }
    }
  }

 private:
  std::string roundtrip(const std::string& line) {
    send_all(fd_, line + "\n");
    return recv_line(fd_, buffer_);
  }

  /// Remembers which sessions are open and the line that opened them,
  /// so reconnects know what to re-establish.
  void track(const RequestInfo& info, const std::string& response) {
    if (response.rfind("{\"ok\":true", 0) != 0) return;
    if (info.op == "open" && !info.session.empty()) {
      open_lines_[info.session] = last_open_line_;
    } else if (info.op == "close" && !info.session.empty()) {
      open_lines_.erase(info.session);
    }
  }

  void reconnect(std::uint64_t attempt) {
    if (fd_ >= 0) (void)::close(fd_);
    fd_ = -1;
    buffer_.clear();
    const std::uint64_t shift = std::min<std::uint64_t>(attempt - 1, 16);
    const auto delay = std::chrono::milliseconds(backoff_ms_ << shift);
    std::this_thread::sleep_for(delay);
    fd_ = connect_to(spec_, args_);  // throws IoError; request() counts it
    replay_opens();
  }

  /// Re-establishes every open session on the fresh connection. Replay
  /// responses go to stderr so stdout stays one response per script
  /// line.
  void replay_opens() {
    for (const auto& [session, open_line] : open_lines_) {
      std::string response = roundtrip(with_resume(open_line));
      if (response.rfind("{\"ok\":false,\"error\":\"bad-checkpoint\"", 0) ==
          0) {
        // The daemon died before this session's first spool write:
        // nothing to resume, so start it fresh — deterministic from the
        // seed, so the final bytes still match an uncrashed run.
        response = roundtrip(open_line);
      }
      std::cerr << "connect: re-established \"" << session
                << "\": " << response << "\n";
    }
  }

  const CommandSpec& spec_;
  const ParsedArgs& args_;
  std::uint64_t retries_;
  std::uint64_t backoff_ms_;
  int fd_ = -1;
  std::string buffer_;
  std::map<std::string, std::string> open_lines_;

 public:
  /// request() needs the raw line that performed an open; the caller
  /// sets it just before calling (kept out of the signature so the
  /// retry loop replays the same bytes).
  std::string last_open_line_;
};

int run_client(const CommandSpec& spec, const ParsedArgs& args) {
  const std::string script_path = args.get_path("script");
  std::ifstream script_file;
  if (!script_path.empty()) {
    script_file.open(script_path);
    if (!script_file) {
      throw IoError("connect: cannot open script " + script_path);
    }
  }
  std::istream& script = script_path.empty() ? std::cin : script_file;

  const std::string estimates_dir = args.get_path("save-estimates");
  if (!estimates_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(estimates_dir, ec);
    if (ec) {
      throw IoError("connect: cannot create " + estimates_dir + ": " +
                    ec.message());
    }
  }
  const bool expect_ok = args.get_flag("expect-ok");

#ifdef SIGPIPE
  // A daemon killed mid-request must surface as a retryable IoError from
  // write(2) (EPIPE), not as SIGPIPE terminating the client.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  ClientConnection conn(spec, args);
  std::string line;
  int status = 0;
  while (std::getline(script, line)) {
    if (line.empty() || line[0] == '#') continue;
    conn.last_open_line_ = line;
    const std::string response = conn.request(line);
    std::cout << response << "\n";
    if (expect_ok && response.rfind("{\"ok\":false", 0) == 0) {
      std::cerr << "connect: request failed: " << line << "\n";
      status = 1;
      break;
    }
    if (!estimates_dir.empty() &&
        response.rfind("{\"ok\":true,\"op\":\"estimates\"", 0) == 0) {
      // The session id names the output file; parse-don't-scan for it.
      const json::Value doc = json::parse(response, "serve response");
      const std::string session =
          json::get_string(doc, "session", "serve response");
      const std::string path = estimates_dir + "/" + session + ".json";
      durable_write_file(path, estimates_file_body(response));
    }
  }
  return status;
}

#else  // !FRONTIER_SERVE_HAS_SOCKETS

int run_client(const CommandSpec&, const ParsedArgs&) {
  throw IoError("connect: no socket support on this platform");
}

#endif  // FRONTIER_SERVE_HAS_SOCKETS

}  // namespace

int main(int argc, char** argv) {
  bool client = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--connect") client = true;
  }
  try {
    const CommandSpec spec = client ? client_spec() : daemon_spec();
    const ParsedArgs args = spec.parse(argc, argv, 1);
    return client ? run_client(spec, args) : run_daemon(spec, args);
  } catch (const IoError& e) {
    std::cerr << "io error: " << e.what() << "\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "bad argument: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

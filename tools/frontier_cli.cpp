// frontier_cli — command-line front end to libfrontier.
//
//   frontier_cli summarize <edges.txt>
//       Exact characteristics: Table-1 columns, components, clustering,
//       assortativity.
//   frontier_cli sample <edges.txt> [--method fs|srw|mrw|mh] [--budget N]
//                [--dimension M] [--seed S]
//       Crawl the graph with the chosen sampler and print estimated
//       characteristics next to the exact values.
//   frontier_cli generate --model ba|er|ws|gab [--n N] [--param P]
//                [--seed S] --out <edges.txt>
//       Write a synthetic graph as an edge list.
//   frontier_cli convert <in> <out>
//       Convert between text (.txt) and binary (.bin) formats by extension.
//   frontier_cli spectral <edges.txt>
//       Spectral gap / relaxation time of the RW kernel (graphs up to a few
//       thousand vertices).
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/frontier.hpp"

namespace {

using namespace frontier;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "1";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

Graph load(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    return read_binary_file(path);
  }
  return read_edge_list_file(path);
}

void save(const Graph& g, const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    write_binary_file(g, path);
  } else {
    write_edge_list_file(g, path);
  }
}

int cmd_summarize(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli summarize <edges.txt>\n";
    return 2;
  }
  const Graph g = load(args.positional[0]);
  const GraphSummary s = summarize(g, args.positional[0]);
  const ComponentInfo comps = connected_components(g);

  TextTable table({"characteristic", "value"});
  table.add_row({"vertices", std::to_string(s.num_vertices)});
  table.add_row({"directed edges", std::to_string(s.num_directed_edges)});
  table.add_row({"avg symmetric degree", format_number(s.average_degree)});
  table.add_row({"max/avg degree (wmax)", format_number(s.wmax)});
  table.add_row({"components", std::to_string(comps.num_components())});
  table.add_row({"LCC size", std::to_string(s.lcc_size)});
  table.add_row({"bipartite", is_bipartite(g) ? "yes" : "no"});
  table.add_row({"assortativity", format_number(exact_assortativity(g))});
  table.add_row(
      {"global clustering", format_number(exact_global_clustering(g))});
  table.print(std::cout);
  return 0;
}

int cmd_sample(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli sample <edges.txt> [--method fs] "
                 "[--budget N] [--dimension M] [--seed S]\n";
    return 2;
  }
  const Graph g = load(args.positional[0]);
  const std::string method = args.get("method", "fs");
  const double budget =
      args.get_num("budget", static_cast<double>(g.num_vertices()) / 100.0);
  auto m = static_cast<std::size_t>(args.get_num("dimension", 100));
  if (static_cast<double>(m) * 2.0 > budget) {
    m = std::max<std::size_t>(1, static_cast<std::size_t>(budget / 2.0));
    std::cerr << "note: dimension clamped to " << m
              << " so walkers keep at least half the budget for steps\n";
  }
  Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 1)));

  SampleRecord rec;
  if (method == "fs") {
    const FrontierSampler fs(
        g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
    rec = fs.run(rng);
  } else if (method == "srw") {
    const SingleRandomWalk srw(
        g, {.steps = static_cast<std::uint64_t>(budget) - 1});
    rec = srw.run(rng);
  } else if (method == "mrw") {
    const MultipleRandomWalks mrw(
        g, {.num_walkers = m,
            .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});
    rec = mrw.run(rng);
  } else if (method == "mh") {
    const MetropolisHastingsWalk mh(
        g, {.steps = static_cast<std::uint64_t>(budget) - 1});
    rec = mh.run(rng);
  } else {
    std::cerr << "unknown method: " << method << "\n";
    return 2;
  }

  std::cout << "method=" << method << " budget=" << budget
            << " sampled_edges=" << rec.edges.size() << "\n\n";
  TextTable table({"characteristic", "estimate", "exact"});
  if (method == "mh") {
    table.add_row({"avg degree",
                   format_number(estimate_average_degree_uniform(
                       g, rec.vertices)),
                   format_number(g.average_degree())});
  } else {
    table.add_row({"avg degree",
                   format_number(estimate_average_degree(g, rec.edges)),
                   format_number(g.average_degree())});
    table.add_row({"assortativity",
                   format_number(estimate_assortativity(g, rec.edges)),
                   format_number(exact_assortativity(g))});
    table.add_row({"global clustering",
                   format_number(estimate_global_clustering(g, rec.edges)),
                   format_number(exact_global_clustering(g))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string model = args.get("model", "ba");
  const auto n = static_cast<std::size_t>(args.get_num("n", 10000));
  const double param = args.get_num("param", 3);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::cerr << "generate: --out <path> is required\n";
    return 2;
  }
  Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 1)));
  Graph g;
  if (model == "ba") {
    g = barabasi_albert(n, static_cast<std::size_t>(param), rng);
  } else if (model == "er") {
    g = erdos_renyi_gnp(n, param / static_cast<double>(n), rng);
  } else if (model == "ws") {
    g = watts_strogatz(n, static_cast<std::size_t>(param), 0.1, rng);
  } else if (model == "gab") {
    g = make_gab(n / 2, static_cast<std::uint64_t>(args.get_num("seed", 1)))
            .graph;
  } else {
    std::cerr << "unknown model: " << model << "\n";
    return 2;
  }
  save(g, out);
  std::cout << "wrote " << g.summary() << " to " << out << "\n";
  return 0;
}

int cmd_convert(const Args& args) {
  if (args.positional.size() != 2) {
    std::cerr << "usage: frontier_cli convert <in> <out>\n";
    return 2;
  }
  const Graph g = load(args.positional[0]);
  save(g, args.positional[1]);
  std::cout << "converted " << g.summary() << "\n";
  return 0;
}

int cmd_spectral(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli spectral <edges.txt>\n";
    return 2;
  }
  Graph g = load(args.positional[0]);
  if (!is_connected(g)) {
    std::cout << "graph is disconnected; analyzing the LCC\n";
    g = largest_connected_component(g).graph;
  }
  if (g.num_vertices() > 20000) {
    std::cerr << "spectral: graph too large (> 20000 vertices in LCC)\n";
    return 2;
  }
  const SpectralInfo s = spectral_gap(g);
  TextTable table({"quantity", "value"});
  table.add_row({"lambda2", format_number(s.lambda2)});
  table.add_row({"spectral gap", format_number(s.spectral_gap)});
  table.add_row({"relaxation time", format_number(s.relaxation_time)});
  table.add_row(
      {"mixing time bound (eps=1/4)",
       format_number(mixing_time_bound(g, s))});
  table.print(std::cout);
  return 0;
}

void usage() {
  std::cerr << "frontier_cli <summarize|sample|generate|convert|spectral> "
               "[args]\n(see the header comment of tools/frontier_cli.cpp "
               "or README.md)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "summarize") return cmd_summarize(args);
    if (cmd == "sample") return cmd_sample(args);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "spectral") return cmd_spectral(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage();
  return 2;
}

// frontier_cli — command-line front end to libfrontier.
//
//   frontier_cli summarize <edges.txt>
//       Exact characteristics: Table-1 columns, components, clustering,
//       assortativity.
//   frontier_cli sample <edges.txt> [--method fs|srw|mrw|mh] [--budget N]
//                [--dimension M] [--seed S]
//       Crawl the graph with the chosen sampler and print estimated
//       characteristics next to the exact values.
//   frontier_cli generate --model ba|er|ws|gab [--n N] [--param P]
//                [--seed S] --out <edges.txt>
//       Write a synthetic graph as an edge list.
//   frontier_cli convert <in> <out>
//       Convert between text (.txt) and binary (.bin) formats by extension.
//       Binary output is the format-v2 snapshot (raw CSR arrays), which
//       later loads go on to memory-map zero-copy.
//   frontier_cli spectral <edges.txt>
//       Spectral gap / relaxation time of the RW kernel (graphs up to a few
//       thousand vertices).
//   frontier_cli bench-report <report.json>...
//       Validate machine-readable bench reports (stats/bench_report.hpp,
//       schema v1) and print a one-line summary per file. Any schema
//       violation exits nonzero naming the offending file and key — CI's
//       perf-smoke job gates on this.
//   frontier_cli stream <edges.txt> [--method fs|srw|mrw|mh|rwj]
//                [--budget N] [--dimension M] [--seed S] [--motifs]
//                [--checkpoint out.ckpt] [--resume in.ckpt]
//                [--checkpoint-every N] [--metrics out.jsonl]
//                [--metrics-every SEC] [--progress]
//       Crawl with the streaming engine (O(1)-in-budget memory): online
//       estimator sinks instead of a materialized sample, with optional
//       periodic checkpoints and pause/resume. --motifs adds the full
//       3-/4-vertex motif census sink (and its exact baseline columns).
//       --metrics streams schema-v1 telemetry snapshots (obs/snapshot.hpp)
//       to a JSONL file ("-" = stderr) every --metrics-every seconds
//       (default 1); --progress traces live events/s, frontier size,
//       revisit rate and estimate drift to stderr. Telemetry observes from
//       outside the sampling loop: estimates, RNG stream and checkpoint
//       bytes are bit-identical with and without it (CI compares the
//       checkpoints byte for byte).
//   frontier_cli metrics-summary <metrics.jsonl>...
//       Validate metrics JSONL files (every line must round-trip the
//       schema; truncated or garbage lines are rejected with their line
//       number) and print per-file aggregates from the last snapshot.
//
//   Every subcommand that loads a graph accepts --mmap: the input must be
//   a v2 .bin snapshot, which is served zero-copy from the page cache
//   (O(1) load time); loading fails instead of silently rebuilding.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/frontier.hpp"

namespace {

using namespace frontier;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const double value = std::stod(it->second, &consumed);
      if (consumed != it->second.size()) {
        throw std::invalid_argument("trailing characters");
      }
      return value;
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key + " expects a number, got '" +
                                  it->second + "'");
    }
  }
  /// Non-negative integer option; rejects values a u64 cast would mangle.
  [[nodiscard]] std::uint64_t get_count(const std::string& key,
                                        std::uint64_t fallback) const {
    if (options.find(key) == options.end()) return fallback;
    const double value = get_num(key, 0.0);
    if (value < 0.0 || value > 9.0e18 || value != std::floor(value)) {
      throw std::invalid_argument("--" + key +
                                  " expects a non-negative integer");
    }
    return static_cast<std::uint64_t>(value);
  }
};

/// Flags that never take a value, so "--mmap graph.bin" keeps the path as
/// a positional argument.
bool is_boolean_flag(const std::string& key) {
  return key == "mmap" || key == "motifs" || key == "progress";
}

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (!is_boolean_flag(key) && i + 1 < argc &&
          std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "1";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

Graph load(const Args& args, const std::string& path) {
  const bool want_mmap = args.options.count("mmap") != 0;
  const bool is_bin =
      path.size() > 4 && path.substr(path.size() - 4) == ".bin";
  if (want_mmap && !is_bin) {
    throw std::invalid_argument(
        "--mmap requires a .bin snapshot (create one with: frontier_cli "
        "convert " +
        path + " graph.bin)");
  }
  Graph g = is_bin ? read_binary_file(path) : read_edge_list_file(path);
  if (want_mmap && !g.is_memory_mapped()) {
#if FRONTIER_HAS_MMAP
    throw std::invalid_argument(
        "--mmap: " + path +
        " is a legacy v1 snapshot; re-write it as v2 with convert");
#else
    throw std::invalid_argument(
        "--mmap: memory-mapped loading is unavailable on this platform");
#endif
  }
  return g;
}

void save(const Graph& g, const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    write_binary_file(g, path);
  } else {
    write_edge_list_file(g, path);
  }
}

int cmd_summarize(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli summarize <edges.txt>\n";
    return 2;
  }
  const Graph g = load(args, args.positional[0]);
  const GraphSummary s = summarize(g, args.positional[0]);
  const ComponentInfo comps = connected_components(g);

  TextTable table({"characteristic", "value"});
  table.add_row({"vertices", std::to_string(s.num_vertices)});
  table.add_row({"directed edges", std::to_string(s.num_directed_edges)});
  table.add_row({"avg symmetric degree", format_number(s.average_degree)});
  table.add_row({"max/avg degree (wmax)", format_number(s.wmax)});
  table.add_row({"components", std::to_string(comps.num_components())});
  table.add_row({"LCC size", std::to_string(s.lcc_size)});
  table.add_row({"bipartite", is_bipartite(g) ? "yes" : "no"});
  table.add_row({"assortativity", format_number(exact_assortativity(g))});
  table.add_row(
      {"global clustering", format_number(exact_global_clustering(g))});
  table.print(std::cout);
  return 0;
}

// Shared crawl setup of the sample/stream subcommands: input graph,
// budget (default |V|/100), walker count (clamped so walkers keep at
// least half the budget for steps), and the seeded RNG. `walk_steps` is
// the single-walker step count B - 1, clamped at 0 for sub-unit budgets.
struct CrawlSetup {
  Graph graph;
  std::string method;
  double budget = 0.0;
  std::size_t dimension = 0;
  std::uint64_t walk_steps = 0;
  Rng rng;
};

CrawlSetup crawl_setup(const Args& args) {
  CrawlSetup s{.graph = load(args, args.positional[0]),
               .method = args.get("method", "fs"),
               .rng = Rng(args.get_count("seed", 1))};
  s.budget = args.get_num(
      "budget", static_cast<double>(s.graph.num_vertices()) / 100.0);
  if (s.budget > 9.0e18) {
    throw std::invalid_argument("--budget too large");
  }
  s.dimension = static_cast<std::size_t>(args.get_count("dimension", 100));
  if (static_cast<double>(s.dimension) * 2.0 > s.budget) {
    s.dimension =
        std::max<std::size_t>(1, static_cast<std::size_t>(s.budget / 2.0));
    std::cerr << "note: dimension clamped to " << s.dimension
              << " so walkers keep at least half the budget for steps\n";
  }
  s.walk_steps =
      s.budget >= 1.0 ? static_cast<std::uint64_t>(s.budget) - 1 : 0;
  return s;
}

int cmd_sample(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli sample <edges.txt> [--method fs] "
                 "[--budget N] [--dimension M] [--seed S]\n";
    return 2;
  }
  CrawlSetup s = crawl_setup(args);
  const Graph& g = s.graph;
  const std::string& method = s.method;
  const double budget = s.budget;
  const std::size_t m = s.dimension;
  Rng& rng = s.rng;

  SampleRecord rec;
  if (method == "fs") {
    const FrontierSampler fs(
        g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
    rec = fs.run(rng);
  } else if (method == "srw") {
    const SingleRandomWalk srw(g, {.steps = s.walk_steps});
    rec = srw.run(rng);
  } else if (method == "mrw") {
    const MultipleRandomWalks mrw(
        g, {.num_walkers = m,
            .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});
    rec = mrw.run(rng);
  } else if (method == "mh") {
    const MetropolisHastingsWalk mh(g, {.steps = s.walk_steps});
    rec = mh.run(rng);
  } else {
    std::cerr << "unknown method: " << method << "\n";
    return 2;
  }

  std::cout << "method=" << method << " budget=" << budget
            << " sampled_edges=" << rec.edges.size() << "\n\n";
  TextTable table({"characteristic", "estimate", "exact"});
  if (method == "mh") {
    table.add_row({"avg degree",
                   format_number(estimate_average_degree_uniform(
                       g, rec.vertices)),
                   format_number(g.average_degree())});
  } else {
    table.add_row({"avg degree",
                   format_number(estimate_average_degree(g, rec.edges)),
                   format_number(g.average_degree())});
    table.add_row({"assortativity",
                   format_number(estimate_assortativity(g, rec.edges)),
                   format_number(exact_assortativity(g))});
    table.add_row({"global clustering",
                   format_number(estimate_global_clustering(g, rec.edges)),
                   format_number(exact_global_clustering(g))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_stream(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli stream <edges.txt> [--method fs] "
                 "[--budget N] [--dimension M] [--seed S] [--motifs] "
                 "[--checkpoint out.ckpt] [--resume in.ckpt] "
                 "[--checkpoint-every N] [--metrics out.jsonl] "
                 "[--metrics-every SEC] [--progress]\n";
    return 2;
  }
  const std::string metrics_path = args.get("metrics", "");
  const double metrics_every = args.get_num("metrics-every", 1.0);
  const bool want_progress = args.options.count("progress") != 0;
  // Enable the library seams (graph-load telemetry) before the graph loads.
  if (!metrics_path.empty()) set_metrics_enabled(true);
  CrawlSetup s = crawl_setup(args);
  const Graph& g = s.graph;
  const std::string& method = s.method;
  const double budget = s.budget;
  const std::size_t m = s.dimension;

  std::unique_ptr<SamplerCursor> cursor;
  if (method == "fs") {
    cursor = std::make_unique<FrontierCursor>(
        g,
        FrontierSampler::Config{.dimension = m,
                                .steps = frontier_steps(budget, m, 1.0)},
        s.rng);
  } else if (method == "srw") {
    cursor = std::make_unique<SingleRwCursor>(
        g, SingleRandomWalk::Config{.steps = s.walk_steps}, s.rng);
  } else if (method == "mrw") {
    cursor = std::make_unique<MultipleRwCursor>(
        g,
        MultipleRandomWalks::Config{
            .num_walkers = m,
            .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)},
        s.rng);
  } else if (method == "mh") {
    cursor = std::make_unique<MetropolisCursor>(
        g, MetropolisHastingsWalk::Config{.steps = s.walk_steps}, s.rng);
  } else if (method == "rwj") {
    cursor = std::make_unique<RwjCursor>(
        g, RandomWalkWithJumps::Config{.budget = budget}, s.rng);
  } else {
    std::cerr << "unknown method: " << method << "\n";
    return 2;
  }

  SinkSet sinks;
  auto degree_sink =
      std::make_unique<DegreeDistributionSink>(g, DegreeKind::kSymmetric);
  auto assort_sink = std::make_unique<AssortativitySink>(g);
  auto moments_sink = std::make_unique<GraphMomentsSink>(g);
  auto uniform_sink = std::make_unique<UniformDegreeSink>(g);
  auto triangle_sink = std::make_unique<TriangleSink>(g);
  auto clustering_sink = std::make_unique<ClusteringSink>(g);
  const AssortativitySink* assort = assort_sink.get();
  const GraphMomentsSink* moments = moments_sink.get();
  const UniformDegreeSink* uniform = uniform_sink.get();
  const TriangleSink* triangles = triangle_sink.get();
  const ClusteringSink* clustering = clustering_sink.get();
  sinks.push_back(std::move(degree_sink));
  sinks.push_back(std::move(assort_sink));
  sinks.push_back(std::move(moments_sink));
  sinks.push_back(std::move(uniform_sink));
  sinks.push_back(std::move(triangle_sink));
  sinks.push_back(std::move(clustering_sink));
  // The full motif census walks two-hop neighborhoods per event, so it
  // is opt-in; note a checkpoint written with --motifs only resumes with
  // --motifs (the sink roster is part of the checkpoint identity).
  const bool want_motifs = args.options.count("motifs") != 0;
  const MotifSink* motifs = nullptr;
  if (want_motifs) {
    auto motif_sink = std::make_unique<MotifSink>(g);
    motifs = motif_sink.get();
    sinks.push_back(std::move(motif_sink));
  }
  StreamEngine engine(std::move(cursor), std::move(sinks));

  // Telemetry rides outside the sampling loop (see obs/crawl_metrics.hpp):
  // attaching it never touches the RNG stream or the sink accumulators.
  std::unique_ptr<CrawlInstrumentation> instr;
  std::unique_ptr<MetricsExporter> exporter;
  if (!metrics_path.empty() || want_progress) {
    instr = std::make_unique<CrawlInstrumentation>(
        MetricsRegistry::global(), engine.cursor(), engine.sinks());
    engine.set_instrumentation(instr.get());
  }
  if (!metrics_path.empty()) {
    exporter = std::make_unique<MetricsExporter>(MetricsRegistry::global(),
                                                 metrics_path, metrics_every);
  }

  const std::string resume = args.get("resume", "");
  if (!resume.empty()) {
    engine.load_checkpoint_file(resume);
    std::cout << "resumed from " << resume << " at event " << engine.events()
              << "\n";
  }

  const std::string checkpoint = args.get("checkpoint", "");
  const std::uint64_t checkpoint_every = args.get_count("checkpoint-every", 0);
  constexpr std::uint64_t kChunk = 1 << 16;
  std::uint64_t next_checkpoint =
      checkpoint_every == 0
          ? 0
          : (engine.events() / checkpoint_every + 1) * checkpoint_every;

  const std::uint64_t resumed_events = engine.events();
  const auto t0 = std::chrono::steady_clock::now();
  auto last_progress = t0;
  const double exact_deg = g.average_degree();
  while (!engine.finished()) {
    std::uint64_t chunk = kChunk;
    if (next_checkpoint != 0 && !checkpoint.empty()) {
      chunk = std::min(chunk, next_checkpoint - engine.events());
    }
    engine.pump(chunk);
    if (next_checkpoint != 0 && !checkpoint.empty() &&
        engine.events() >= next_checkpoint) {
      engine.save_checkpoint_file(checkpoint);
      next_checkpoint += checkpoint_every;
    }
    if (exporter) exporter->maybe_export();
    if (want_progress) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_progress).count() >= 1.0) {
        last_progress = now;
        const double run_seconds =
            std::chrono::duration<double>(now - t0).count();
        const double rate =
            static_cast<double>(engine.events() - resumed_events) /
            std::max(run_seconds, 1e-9);
        const double est_deg = method == "mh" ? uniform->value()
                                              : moments->average_degree();
        const double drift =
            exact_deg > 0.0 ? (est_deg - exact_deg) / exact_deg : 0.0;
        std::cerr << "progress: events=" << engine.events() << " ("
                  << format_number(rate) << " events/s) walkers="
                  << engine.cursor().active_walkers() << " revisit_rate="
                  << format_number(instr->revisit_rate())
                  << " avg_deg_drift=" << format_number(100.0 * drift)
                  << "%\n";
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  if (!checkpoint.empty()) {
    engine.save_checkpoint_file(checkpoint);
    std::cout << "checkpoint written to " << checkpoint << "\n";
  }
  if (exporter) {
    exporter->export_now();
    if (metrics_path != "-") {
      std::cout << "metrics written to " << metrics_path << " ("
                << exporter->lines_written() << " snapshots)\n";
    }
  }

  std::cout << "method=" << method << " budget=" << budget
            << " events=" << engine.events()
            << " cost=" << engine.cursor().cost() << " ("
            << format_number(
                   static_cast<double>(engine.events() - resumed_events) /
                   std::max(elapsed.count(), 1e-9))
            << " events/s this run)\n\n";
  TextTable table({"characteristic", "estimate", "exact"});
  if (method == "mh") {
    table.add_row({"avg degree", format_number(uniform->value()),
                   format_number(g.average_degree())});
  } else {
    table.add_row({"avg degree", format_number(moments->average_degree()),
                   format_number(g.average_degree())});
    table.add_row(
        {"volume",
         format_number(
             moments->volume(static_cast<double>(g.num_vertices()))),
         format_number(static_cast<double>(g.volume()))});
    table.add_row({"assortativity", format_number(assort->value()),
                   format_number(exact_assortativity(g))});
    const double vol = static_cast<double>(g.volume());
    table.add_row(
        {"triangles", format_number(triangles->triangle_count(vol)),
         format_number(static_cast<double>(exact_triangle_count(g)))});
    table.add_row({"transitivity", format_number(triangles->transitivity()),
                   format_number(exact_transitivity(g))});
    table.add_row({"clustering", format_number(clustering->global_clustering()),
                   format_number(exact_global_clustering(g))});
    if (motifs != nullptr) {
      const MotifEstimate est = motifs->estimate(vol);
      const MotifCounts want = exact_motif_counts(g);
      const auto row = [&](const char* label, double e, std::uint64_t w) {
        table.add_row({label, format_number(e),
                       format_number(static_cast<double>(w))});
      };
      row("wedge", est.wedge, want.wedge);
      row("path4", est.path4, want.path4);
      row("claw", est.claw, want.claw);
      row("cycle4", est.cycle4, want.cycle4);
      row("paw", est.paw, want.paw);
      row("diamond", est.diamond, want.diamond);
      row("clique4", est.clique4, want.clique4);
    }
  }
  table.print(std::cout);
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string model = args.get("model", "ba");
  const auto n = static_cast<std::size_t>(args.get_num("n", 10000));
  const double param = args.get_num("param", 3);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::cerr << "generate: --out <path> is required\n";
    return 2;
  }
  Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 1)));
  Graph g;
  if (model == "ba") {
    g = barabasi_albert(n, static_cast<std::size_t>(param), rng);
  } else if (model == "er") {
    g = erdos_renyi_gnp(n, param / static_cast<double>(n), rng);
  } else if (model == "ws") {
    g = watts_strogatz(n, static_cast<std::size_t>(param), 0.1, rng);
  } else if (model == "gab") {
    g = make_gab(n / 2, static_cast<std::uint64_t>(args.get_num("seed", 1)))
            .graph;
  } else {
    std::cerr << "unknown model: " << model << "\n";
    return 2;
  }
  save(g, out);
  std::cout << "wrote " << g.summary() << " to " << out << "\n";
  return 0;
}

int cmd_convert(const Args& args) {
  if (args.positional.size() != 2) {
    std::cerr << "usage: frontier_cli convert <in> <out>\n";
    return 2;
  }
  const Graph g = load(args, args.positional[0]);
  save(g, args.positional[1]);
  std::cout << "converted " << g.summary() << "\n";
  return 0;
}

int cmd_spectral(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli spectral <edges.txt>\n";
    return 2;
  }
  Graph g = load(args, args.positional[0]);
  if (!is_connected(g)) {
    std::cout << "graph is disconnected; analyzing the LCC\n";
    g = largest_connected_component(g).graph;
  }
  if (g.num_vertices() > 20000) {
    std::cerr << "spectral: graph too large (> 20000 vertices in LCC)\n";
    return 2;
  }
  const SpectralInfo s = spectral_gap(g);
  TextTable table({"quantity", "value"});
  table.add_row({"lambda2", format_number(s.lambda2)});
  table.add_row({"spectral gap", format_number(s.spectral_gap)});
  table.add_row({"relaxation time", format_number(s.relaxation_time)});
  table.add_row(
      {"mixing time bound (eps=1/4)",
       format_number(mixing_time_bound(g, s))});
  table.print(std::cout);
  return 0;
}

int cmd_bench_report(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli bench-report <report.json>...\n";
    return 2;
  }
  TextTable table({"file", "bench", "version", "wall s", "metrics",
                   "fingerprint"});
  for (const std::string& path : args.positional) {
    BenchReport report;
    try {
      report = BenchReport::read_file(path);
    } catch (const BenchReportError& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return 1;
    }
    char fp[32];
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(
                      report.config_fingerprint()));
    table.add_row({path, report.name, report.library_version,
                   format_number(report.wall_time_seconds),
                   std::to_string(report.metrics.size()), fp});
  }
  table.print(std::cout);
  std::cout << args.positional.size() << " valid bench report"
            << (args.positional.size() == 1 ? "" : "s") << "\n";
  return 0;
}

int cmd_metrics_summary(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: frontier_cli metrics-summary <metrics.jsonl>...\n";
    return 2;
  }
  for (const std::string& path : args.positional) {
    std::vector<MetricsSnapshot> snapshots;
    try {
      snapshots = read_metrics_jsonl(path);
    } catch (const MetricsError& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    std::cout << path << ": " << snapshots.size() << " snapshot"
              << (snapshots.size() == 1 ? "" : "s");
    if (snapshots.empty()) {
      std::cout << "\n";
      continue;
    }
    // Counters and histograms are cumulative, so the last snapshot is the
    // whole run; earlier lines only add the time axis.
    const MetricsSnapshot& last = snapshots.back();
    std::cout << " over " << format_number(last.elapsed_seconds)
              << " s, peak_rss="
              << format_number(static_cast<double>(last.peak_rss_bytes) /
                               (1024.0 * 1024.0))
              << " MiB, page_faults=" << last.minor_page_faults << "/"
              << last.major_page_faults << " (minor/major)\n";
    TextTable table({"metric", "kind", "value", "count", "min", "max"});
    for (const auto& [name, value] : last.counters) {
      table.add_row({name, "counter", std::to_string(value), "", "", ""});
    }
    for (const auto& [name, value] : last.gauges) {
      table.add_row({name, "gauge", format_number(value), "", "", ""});
    }
    for (const auto& [name, h] : last.histograms) {
      const double mean =
          h.count == 0 ? 0.0
                       : static_cast<double>(h.sum) /
                             static_cast<double>(h.count);
      table.add_row({name, "histogram", format_number(mean),
                     std::to_string(h.count),
                     h.count == 0 ? "" : std::to_string(h.min),
                     h.count == 0 ? "" : std::to_string(h.max)});
    }
    table.print(std::cout);
  }
  return 0;
}

void usage() {
  std::cerr << "frontier_cli "
               "<summarize|sample|stream|generate|convert|spectral|"
               "bench-report|metrics-summary> "
               "[args]\n(see the header comment of tools/frontier_cli.cpp "
               "or README.md)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    if (cmd == "summarize") return cmd_summarize(args);
    if (cmd == "sample") return cmd_sample(args);
    if (cmd == "stream") return cmd_stream(args);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "spectral") return cmd_spectral(args);
    if (cmd == "bench-report") return cmd_bench_report(args);
    if (cmd == "metrics-summary") return cmd_metrics_summary(args);
  } catch (const IoError& e) {
    // Missing/corrupt input files and broken checkpoints: report and exit
    // nonzero instead of aborting with an uncaught exception.
    std::cerr << "io error: " << e.what() << "\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "bad argument: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage();
  return 2;
}

// frontier_cli — command-line front end to libfrontier.
//
//   frontier_cli summarize <edges.txt>
//       Exact characteristics: Table-1 columns, components, clustering,
//       assortativity.
//   frontier_cli sample <edges.txt> [--method fs|srw|mrw|mh] [--budget N]
//                [--dimension M] [--seed S]
//       Crawl the graph with the chosen sampler and print estimated
//       characteristics next to the exact values.
//   frontier_cli generate --model ba|er|ws|gab [--n N] [--param P]
//                [--seed S] --out <edges.txt>
//       Write a synthetic graph as an edge list.
//   frontier_cli convert <in> <out>
//       Convert between text (.txt) and binary (.bin) formats by extension.
//       Binary output is the format-v2 snapshot (raw CSR arrays), which
//       later loads go on to memory-map zero-copy.
//   frontier_cli spectral <edges.txt>
//       Spectral gap / relaxation time of the RW kernel (graphs up to a few
//       thousand vertices).
//   frontier_cli bench-report <report.json>...
//       Validate machine-readable bench reports (stats/bench_report.hpp,
//       schema v1) and print a one-line summary per file. Any schema
//       violation exits nonzero naming the offending file and key — CI's
//       perf-smoke job gates on this.
//   frontier_cli stream <edges.txt> [--method fs|srw|mrw|mh|rwj]
//                [--budget N] [--dimension M] [--seed S] [--motifs]
//                [--checkpoint out.ckpt] [--resume in.ckpt]
//                [--checkpoint-every N] [--stop-after N]
//                [--estimates-json out.json]
//                [--metrics out.jsonl] [--metrics-every SEC] [--progress]
//       Crawl with the streaming engine (O(1)-in-budget memory): online
//       estimator sinks instead of a materialized sample, with optional
//       periodic checkpoints and pause/resume. The crawl itself is built
//       from a CrawlSpec (stream/spec.hpp) — the same construction path
//       the frontier_serve daemon uses, so a served session with the same
//       (method, budget, dimension, seed, motifs) tuple is bit-identical
//       to an offline run. --stop-after N pauses after the crawl's first
//       N events (writing --checkpoint if given); --estimates-json writes
//       the machine-readable estimates the serve `estimates` op returns.
//       --motifs adds the full 3-/4-vertex motif census sink (and its
//       exact baseline columns). --metrics streams schema-v1 telemetry
//       snapshots (obs/snapshot.hpp) to a JSONL file ("-" = stderr) every
//       --metrics-every seconds (default 1; 0 = every poll); --progress
//       traces live events/s, frontier size, revisit rate and estimate
//       drift to stderr. Telemetry observes from outside the sampling
//       loop: estimates, RNG stream and checkpoint bytes are bit-identical
//       with and without it (CI compares the checkpoints byte for byte).
//   frontier_cli metrics-summary <metrics.jsonl>...
//       Validate metrics JSONL files (every line must round-trip the
//       schema; truncated or garbage lines are rejected with their line
//       number) and print per-file aggregates from the last snapshot.
//
//   Every subcommand that loads a graph accepts --mmap: the input must be
//   a v2 .bin snapshot, which is served zero-copy from the page cache
//   (O(1) load time); loading fails instead of silently rebuilding.
//
//   Option parsing is declarative (cli/options.hpp): each subcommand owns
//   a CommandSpec, unknown flags and malformed or out-of-range values are
//   rejected with the flag's name and the generated usage block.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/frontier.hpp"

namespace {

using namespace frontier;

using cli::CommandSpec;
using cli::OptionSpec;
using cli::OptionType;
using cli::ParsedArgs;

// Shared option rows, spliced into each subcommand's table.
OptionSpec opt_mmap() {
  return {.name = "mmap",
          .type = OptionType::kFlag,
          .help = "require a zero-copy mmap load (.bin v2 snapshot)"};
}
OptionSpec opt_method(const char* values) {
  return {.name = "method",
          .type = OptionType::kString,
          .value_name = "M",
          .help = std::string("sampler: ") + values + " (default fs)"};
}
OptionSpec opt_budget() {
  return {.name = "budget",
          .type = OptionType::kDouble,
          .value_name = "B",
          .help = "total budgeted queries (default |V|/100)",
          .min_double = 0.0,
          .has_min_double = true,
          .exclusive_min = true};
}
OptionSpec opt_dimension() {
  return {.name = "dimension",
          .type = OptionType::kU64,
          .value_name = "M",
          .help = "walkers for fs/mrw (default 100)",
          .min_u64 = 1};
}
OptionSpec opt_seed() {
  return {.name = "seed",
          .type = OptionType::kU64,
          .value_name = "S",
          .help = "RNG seed (default 1)"};
}

/// Builds the crawl description shared by sample/stream: budget defaults
/// to |V|/100, the dimension clamp keeps the old CLI behavior (and its
/// stderr note). The returned spec is normalized() — ready for
/// make_cursor/make_engine.
CrawlSpec crawl_spec(const ParsedArgs& args, const Graph& g) {
  CrawlSpec spec;
  spec.method = args.get_string("method", "fs");
  spec.budget = args.get_double(
      "budget", static_cast<double>(g.num_vertices()) / 100.0);
  spec.dimension = static_cast<std::size_t>(args.get_u64("dimension", 100));
  spec.seed = args.get_u64("seed", 1);
  bool clamped = false;
  CrawlSpec out = spec.normalized(&clamped);
  if (clamped) {
    std::cerr << "note: dimension clamped to " << out.dimension
              << " so walkers keep at least half the budget for steps\n";
  }
  return out;
}

int cmd_summarize(const ParsedArgs& args) {
  const std::string& path = args.positional()[0];
  const Graph g = cli::load_graph(path, args.get_flag("mmap"));
  const GraphSummary s = summarize(g, path);
  const ComponentInfo comps = connected_components(g);

  TextTable table({"characteristic", "value"});
  table.add_row({"vertices", std::to_string(s.num_vertices)});
  table.add_row({"directed edges", std::to_string(s.num_directed_edges)});
  table.add_row({"avg symmetric degree", format_number(s.average_degree)});
  table.add_row({"max/avg degree (wmax)", format_number(s.wmax)});
  table.add_row({"components", std::to_string(comps.num_components())});
  table.add_row({"LCC size", std::to_string(s.lcc_size)});
  table.add_row({"bipartite", is_bipartite(g) ? "yes" : "no"});
  table.add_row({"assortativity", format_number(exact_assortativity(g))});
  table.add_row(
      {"global clustering", format_number(exact_global_clustering(g))});
  table.print(std::cout);
  return 0;
}

int cmd_sample(const ParsedArgs& args) {
  const Graph g =
      cli::load_graph(args.positional()[0], args.get_flag("mmap"));
  const CrawlSpec spec = crawl_spec(args, g);
  const double budget = spec.budget;
  const std::size_t m = spec.dimension;
  Rng rng(spec.seed);

  SampleRecord rec;
  if (spec.method == "fs") {
    const FrontierSampler fs(
        g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
    rec = fs.run(rng);
  } else if (spec.method == "srw") {
    const SingleRandomWalk srw(g, {.steps = spec.walk_steps()});
    rec = srw.run(rng);
  } else if (spec.method == "mrw") {
    const MultipleRandomWalks mrw(
        g, {.num_walkers = m,
            .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});
    rec = mrw.run(rng);
  } else if (spec.method == "mh") {
    const MetropolisHastingsWalk mh(g, {.steps = spec.walk_steps()});
    rec = mh.run(rng);
  } else {
    // "rwj" passes CrawlSpec::validate() but has no offline SampleRecord
    // runner — it exists only as a streaming cursor.
    std::cerr << "unknown method: " << spec.method << "\n";
    return 2;
  }

  std::cout << "method=" << spec.method << " budget=" << budget
            << " sampled_edges=" << rec.edges.size() << "\n\n";
  TextTable table({"characteristic", "estimate", "exact"});
  if (spec.method == "mh") {
    table.add_row({"avg degree",
                   format_number(estimate_average_degree_uniform(
                       g, rec.vertices)),
                   format_number(g.average_degree())});
  } else {
    table.add_row({"avg degree",
                   format_number(estimate_average_degree(g, rec.edges)),
                   format_number(g.average_degree())});
    table.add_row({"assortativity",
                   format_number(estimate_assortativity(g, rec.edges)),
                   format_number(exact_assortativity(g))});
    table.add_row({"global clustering",
                   format_number(estimate_global_clustering(g, rec.edges)),
                   format_number(exact_global_clustering(g))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_stream(const ParsedArgs& args) {
  const std::string metrics_path = args.get_path("metrics");
  const double metrics_every = args.get_double("metrics-every", 1.0);
  const bool want_progress = args.get_flag("progress");
  // Enable the library seams (graph-load telemetry) before the graph loads.
  if (!metrics_path.empty()) set_metrics_enabled(true);
  const Graph g =
      cli::load_graph(args.positional()[0], args.get_flag("mmap"));
  CrawlSpec spec = crawl_spec(args, g);
  spec.motifs = args.get_flag("motifs");

  const std::unique_ptr<StreamEngine> engine_ptr = spec.make_engine(g);
  StreamEngine& engine = *engine_ptr;
  // Typed views into the fixed sink roster (see CrawlSpec::make_sinks).
  const auto& sinks = engine.sinks();
  const auto* assort = static_cast<const AssortativitySink*>(sinks[1].get());
  const auto* moments = static_cast<const GraphMomentsSink*>(sinks[2].get());
  const auto* uniform = static_cast<const UniformDegreeSink*>(sinks[3].get());
  const auto* triangles = static_cast<const TriangleSink*>(sinks[4].get());
  const auto* clustering = static_cast<const ClusteringSink*>(sinks[5].get());
  const auto* motifs =
      spec.motifs ? static_cast<const MotifSink*>(sinks[6].get()) : nullptr;

  // Telemetry rides outside the sampling loop (see obs/crawl_metrics.hpp):
  // attaching it never touches the RNG stream or the sink accumulators.
  std::unique_ptr<CrawlInstrumentation> instr;
  std::unique_ptr<MetricsExporter> exporter;
  if (!metrics_path.empty() || want_progress) {
    instr = std::make_unique<CrawlInstrumentation>(
        MetricsRegistry::global(), engine.cursor(), engine.sinks());
    engine.set_instrumentation(instr.get());
  }
  if (!metrics_path.empty()) {
    exporter = std::make_unique<MetricsExporter>(MetricsRegistry::global(),
                                                 metrics_path, metrics_every);
  }

  const std::string resume = args.get_path("resume");
  if (!resume.empty()) {
    engine.load_checkpoint_file(resume);
    std::cout << "resumed from " << resume << " at event " << engine.events()
              << "\n";
  }

  const std::string checkpoint = args.get_path("checkpoint");
  const std::uint64_t checkpoint_every = args.get_u64("checkpoint-every", 0);
  const std::uint64_t stop_after = args.get_u64("stop-after", 0);
  constexpr std::uint64_t kChunk = 1 << 16;
  std::uint64_t next_checkpoint =
      checkpoint_every == 0
          ? 0
          : (engine.events() / checkpoint_every + 1) * checkpoint_every;

  const std::uint64_t resumed_events = engine.events();
  const auto t0 = std::chrono::steady_clock::now();
  auto last_progress = t0;
  const double exact_deg = g.average_degree();
  while (!engine.finished() &&
         (stop_after == 0 || engine.events() < stop_after)) {
    std::uint64_t chunk = kChunk;
    if (next_checkpoint != 0 && !checkpoint.empty()) {
      chunk = std::min(chunk, next_checkpoint - engine.events());
    }
    if (stop_after != 0) {
      chunk = std::min(chunk, stop_after - engine.events());
    }
    engine.pump(chunk);
    if (next_checkpoint != 0 && !checkpoint.empty() &&
        engine.events() >= next_checkpoint) {
      engine.save_checkpoint_file(checkpoint);
      next_checkpoint += checkpoint_every;
    }
    if (exporter) exporter->maybe_export();
    if (want_progress) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_progress).count() >= 1.0) {
        last_progress = now;
        const double run_seconds =
            std::chrono::duration<double>(now - t0).count();
        const double rate =
            static_cast<double>(engine.events() - resumed_events) /
            std::max(run_seconds, 1e-9);
        const double est_deg = spec.method == "mh"
                                   ? uniform->value()
                                   : moments->average_degree();
        const double drift =
            exact_deg > 0.0 ? (est_deg - exact_deg) / exact_deg : 0.0;
        std::cerr << "progress: events=" << engine.events() << " ("
                  << format_number(rate) << " events/s) walkers="
                  << engine.cursor().active_walkers() << " revisit_rate="
                  << format_number(instr->revisit_rate())
                  << " avg_deg_drift=" << format_number(100.0 * drift)
                  << "%\n";
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  if (stop_after != 0 && !engine.finished()) {
    std::cout << "stopped after " << engine.events() << " events\n";
  }
  if (!checkpoint.empty()) {
    engine.save_checkpoint_file(checkpoint);
    std::cout << "checkpoint written to " << checkpoint << "\n";
  }
  if (exporter) {
    exporter->export_now();
    if (metrics_path != "-") {
      std::cout << "metrics written to " << metrics_path << " ("
                << exporter->lines_written() << " snapshots)\n";
    }
  }
  // The same renderer the serve `estimates` op uses — byte-identical for
  // bit-identical engine states, which is what CI's serve-smoke cmp's.
  const std::string estimates_json = args.get_path("estimates-json");
  if (!estimates_json.empty()) {
    // Durable replace: the crash harness cmp's this file against served
    // runs, so it must never be observable half-written.
    durable_write_file(estimates_json,
                       "{" + estimates_fields(spec, engine) + "}\n");
    std::cout << "estimates written to " << estimates_json << "\n";
  }

  std::cout << "method=" << spec.method << " budget=" << spec.budget
            << " events=" << engine.events()
            << " cost=" << engine.cursor().cost() << " ("
            << format_number(
                   static_cast<double>(engine.events() - resumed_events) /
                   std::max(elapsed.count(), 1e-9))
            << " events/s this run)\n\n";
  TextTable table({"characteristic", "estimate", "exact"});
  if (spec.method == "mh") {
    table.add_row({"avg degree", format_number(uniform->value()),
                   format_number(g.average_degree())});
  } else {
    table.add_row({"avg degree", format_number(moments->average_degree()),
                   format_number(g.average_degree())});
    table.add_row(
        {"volume",
         format_number(
             moments->volume(static_cast<double>(g.num_vertices()))),
         format_number(static_cast<double>(g.volume()))});
    table.add_row({"assortativity", format_number(assort->value()),
                   format_number(exact_assortativity(g))});
    const double vol = static_cast<double>(g.volume());
    table.add_row(
        {"triangles", format_number(triangles->triangle_count(vol)),
         format_number(static_cast<double>(exact_triangle_count(g)))});
    table.add_row({"transitivity", format_number(triangles->transitivity()),
                   format_number(exact_transitivity(g))});
    table.add_row({"clustering", format_number(clustering->global_clustering()),
                   format_number(exact_global_clustering(g))});
    if (motifs != nullptr) {
      const MotifEstimate est = motifs->estimate(vol);
      const MotifCounts want = exact_motif_counts(g);
      const auto row = [&](const char* label, double e, std::uint64_t w) {
        table.add_row({label, format_number(e),
                       format_number(static_cast<double>(w))});
      };
      row("wedge", est.wedge, want.wedge);
      row("path4", est.path4, want.path4);
      row("claw", est.claw, want.claw);
      row("cycle4", est.cycle4, want.cycle4);
      row("paw", est.paw, want.paw);
      row("diamond", est.diamond, want.diamond);
      row("clique4", est.clique4, want.clique4);
    }
  }
  table.print(std::cout);
  return 0;
}

int cmd_generate(const ParsedArgs& args) {
  const std::string model = args.get_string("model", "ba");
  const auto n = static_cast<std::size_t>(args.get_u64("n", 10000));
  const double param = args.get_double("param", 3);
  const std::string out = args.get_path("out");
  if (out.empty()) {
    std::cerr << "generate: --out <path> is required\n";
    return 2;
  }
  const std::uint64_t seed = args.get_u64("seed", 1);
  Rng rng(seed);
  Graph g;
  if (model == "ba") {
    g = barabasi_albert(n, static_cast<std::size_t>(param), rng);
  } else if (model == "er") {
    g = erdos_renyi_gnp(n, param / static_cast<double>(n), rng);
  } else if (model == "ws") {
    g = watts_strogatz(n, static_cast<std::size_t>(param), 0.1, rng);
  } else if (model == "gab") {
    g = make_gab(n / 2, seed).graph;
  } else {
    std::cerr << "unknown model: " << model << "\n";
    return 2;
  }
  cli::save_graph(g, out);
  std::cout << "wrote " << g.summary() << " to " << out << "\n";
  return 0;
}

int cmd_convert(const ParsedArgs& args) {
  const Graph g =
      cli::load_graph(args.positional()[0], args.get_flag("mmap"));
  cli::save_graph(g, args.positional()[1]);
  std::cout << "converted " << g.summary() << "\n";
  return 0;
}

int cmd_spectral(const ParsedArgs& args) {
  Graph g = cli::load_graph(args.positional()[0], args.get_flag("mmap"));
  if (!is_connected(g)) {
    std::cout << "graph is disconnected; analyzing the LCC\n";
    g = largest_connected_component(g).graph;
  }
  if (g.num_vertices() > 20000) {
    std::cerr << "spectral: graph too large (> 20000 vertices in LCC)\n";
    return 2;
  }
  const SpectralInfo s = spectral_gap(g);
  TextTable table({"quantity", "value"});
  table.add_row({"lambda2", format_number(s.lambda2)});
  table.add_row({"spectral gap", format_number(s.spectral_gap)});
  table.add_row({"relaxation time", format_number(s.relaxation_time)});
  table.add_row(
      {"mixing time bound (eps=1/4)",
       format_number(mixing_time_bound(g, s))});
  table.print(std::cout);
  return 0;
}

int cmd_bench_report(const ParsedArgs& args) {
  TextTable table({"file", "bench", "version", "wall s", "metrics",
                   "fingerprint"});
  for (const std::string& path : args.positional()) {
    BenchReport report;
    try {
      report = BenchReport::read_file(path);
    } catch (const BenchReportError& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return 1;
    }
    char fp[32];
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(
                      report.config_fingerprint()));
    table.add_row({path, report.name, report.library_version,
                   format_number(report.wall_time_seconds),
                   std::to_string(report.metrics.size()), fp});
  }
  table.print(std::cout);
  std::cout << args.positional().size() << " valid bench report"
            << (args.positional().size() == 1 ? "" : "s") << "\n";
  return 0;
}

int cmd_metrics_summary(const ParsedArgs& args) {
  for (const std::string& path : args.positional()) {
    std::vector<MetricsSnapshot> snapshots;
    try {
      snapshots = read_metrics_jsonl(path);
    } catch (const MetricsError& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    std::cout << path << ": " << snapshots.size() << " snapshot"
              << (snapshots.size() == 1 ? "" : "s");
    if (snapshots.empty()) {
      std::cout << "\n";
      continue;
    }
    // Counters and histograms are cumulative, so the last snapshot is the
    // whole run; earlier lines only add the time axis.
    const MetricsSnapshot& last = snapshots.back();
    std::cout << " over " << format_number(last.elapsed_seconds)
              << " s, peak_rss="
              << format_number(static_cast<double>(last.peak_rss_bytes) /
                               (1024.0 * 1024.0))
              << " MiB, page_faults=" << last.minor_page_faults << "/"
              << last.major_page_faults << " (minor/major)\n";
    TextTable table({"metric", "kind", "value", "count", "min", "max"});
    for (const auto& [name, value] : last.counters) {
      table.add_row({name, "counter", std::to_string(value), "", "", ""});
    }
    for (const auto& [name, value] : last.gauges) {
      table.add_row({name, "gauge", format_number(value), "", "", ""});
    }
    for (const auto& [name, h] : last.histograms) {
      const double mean =
          h.count == 0 ? 0.0
                       : static_cast<double>(h.sum) /
                             static_cast<double>(h.count);
      table.add_row({name, "histogram", format_number(mean),
                     std::to_string(h.count),
                     h.count == 0 ? "" : std::to_string(h.min),
                     h.count == 0 ? "" : std::to_string(h.max)});
    }
    table.print(std::cout);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Subcommand registry: the declared spec is both the parser and the docs.

struct Subcommand {
  CommandSpec spec;
  int (*run)(const ParsedArgs&) = nullptr;
};

std::vector<Subcommand> subcommands() {
  std::vector<Subcommand> cmds;
  cmds.push_back(
      {{.program = "frontier_cli",
        .command = "summarize",
        .summary = "exact graph characteristics",
        .positionals = {{.name = "edges.txt"}},
        .options = {opt_mmap()}},
       &cmd_summarize});
  cmds.push_back(
      {{.program = "frontier_cli",
        .command = "sample",
        .summary = "crawl and print estimate-vs-exact characteristics",
        .positionals = {{.name = "edges.txt"}},
        .options = {opt_method("fs|srw|mrw|mh"), opt_budget(),
                    opt_dimension(), opt_seed(), opt_mmap()}},
       &cmd_sample});
  cmds.push_back(
      {{.program = "frontier_cli",
        .command = "stream",
        .summary = "streaming crawl with online sinks, checkpoint/resume",
        .positionals = {{.name = "edges.txt"}},
        .options =
            {opt_method("fs|srw|mrw|mh|rwj"), opt_budget(), opt_dimension(),
             opt_seed(),
             {.name = "motifs",
              .type = OptionType::kFlag,
              .help = "add the 3-/4-vertex motif census sink"},
             {.name = "checkpoint",
              .type = OptionType::kPath,
              .value_name = "FILE",
              .help = "write a checkpoint at the end (and periodically)"},
             {.name = "resume",
              .type = OptionType::kPath,
              .value_name = "FILE",
              .help = "resume from a checkpoint before crawling"},
             {.name = "checkpoint-every",
              .type = OptionType::kU64,
              .value_name = "N",
              .help = "checkpoint every N events (requires --checkpoint)",
              .min_u64 = 1},
             {.name = "stop-after",
              .type = OptionType::kU64,
              .value_name = "N",
              .help = "pause once the crawl reaches N total events",
              .min_u64 = 1},
             {.name = "estimates-json",
              .type = OptionType::kPath,
              .value_name = "FILE",
              .help = "write machine-readable estimates (serve schema)"},
             {.name = "metrics",
              .type = OptionType::kPath,
              .value_name = "FILE",
              .help = "stream telemetry snapshots to a JSONL file, - = stderr"},
             {.name = "metrics-every",
              .type = OptionType::kDouble,
              .value_name = "SEC",
              .help = "seconds between snapshots (default 1, 0 = every poll)",
              .min_double = 0.0,
              .has_min_double = true},
             {.name = "progress",
              .type = OptionType::kFlag,
              .help = "trace live crawl progress to stderr"},
             opt_mmap()}},
       &cmd_stream});
  cmds.push_back(
      {{.program = "frontier_cli",
        .command = "generate",
        .summary = "write a synthetic graph",
        .options = {{.name = "model",
                     .type = OptionType::kString,
                     .value_name = "M",
                     .help = "ba|er|ws|gab (default ba)"},
                    {.name = "n",
                     .type = OptionType::kU64,
                     .value_name = "N",
                     .help = "vertices (default 10000)",
                     .min_u64 = 1},
                    {.name = "param",
                     .type = OptionType::kDouble,
                     .value_name = "P",
                     .help = "model parameter (default 3)"},
                    opt_seed(),
                    {.name = "out",
                     .type = OptionType::kPath,
                     .value_name = "FILE",
                     .help = "output path (required)"}}},
       &cmd_generate});
  cmds.push_back({{.program = "frontier_cli",
                   .command = "convert",
                   .summary = "convert between .txt and .bin by extension",
                   .positionals = {{.name = "in"}, {.name = "out"}},
                   .options = {opt_mmap()}},
                  &cmd_convert});
  cmds.push_back({{.program = "frontier_cli",
                   .command = "spectral",
                   .summary = "spectral gap of the RW kernel",
                   .positionals = {{.name = "edges.txt"}},
                   .options = {opt_mmap()}},
                  &cmd_spectral});
  cmds.push_back({{.program = "frontier_cli",
                   .command = "bench-report",
                   .summary = "validate bench reports (schema v1)",
                   .positionals = {{.name = "report.json"}},
                   .variadic_positionals = true},
                  &cmd_bench_report});
  cmds.push_back({{.program = "frontier_cli",
                   .command = "metrics-summary",
                   .summary = "validate and summarize metrics JSONL files",
                   .positionals = {{.name = "metrics.jsonl"}},
                   .variadic_positionals = true},
                  &cmd_metrics_summary});
  return cmds;
}

void usage() {
  std::cerr << "frontier_cli "
               "<summarize|sample|stream|generate|convert|spectral|"
               "bench-report|metrics-summary> "
               "[args]\n(see the header comment of tools/frontier_cli.cpp "
               "or README.md)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    for (const Subcommand& sub : subcommands()) {
      if (sub.spec.command == cmd) {
        return sub.run(sub.spec.parse(argc, argv, 2));
      }
    }
  } catch (const IoError& e) {
    // Missing/corrupt input files and broken checkpoints: report and exit
    // nonzero instead of aborting with an uncaught exception.
    std::cerr << "io error: " << e.what() << "\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "bad argument: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage();
  return 2;
}

// Quickstart: sample a graph with Frontier Sampling and estimate its
// degree distribution from 1% of the vertices.
//
//   $ ./quickstart
//
// Walkthrough:
//   1. build a graph (here: a 100k-vertex Barabási–Albert network),
//   2. configure a FrontierSampler (m walkers, budget B),
//   3. run it and feed the sampled edges to an estimator,
//   4. compare against the exact answer (normally unavailable!).
#include <iostream>

#include "core/frontier.hpp"

int main() {
  using namespace frontier;

  // 1. A synthetic social-like network. In a real deployment you would
  //    crawl a live system or load an edge list (see edge_list_analysis).
  Rng rng(2010);
  const Graph g = barabasi_albert(100000, 4, rng);
  std::cout << "graph: " << g.summary() << "\n\n";

  // 2. Frontier Sampling: m = 500 dependent walkers, total budget 1% of
  //    the vertices, one budget unit per walker start (Algorithm 1).
  const double budget = static_cast<double>(g.num_vertices()) / 100.0;
  const std::size_t m = 500;
  FrontierSampler::Config config;
  config.dimension = m;
  config.steps = frontier_steps(budget, m, /*jump_cost=*/1.0);
  const FrontierSampler sampler(g, config);

  // 3. One run; estimate the degree CCDF from the sampled edges.
  const SampleRecord record = sampler.run(rng);
  std::cout << "sampled " << record.edges.size() << " edges with budget "
            << budget << "\n\n";
  const auto est_ccdf =
      estimate_degree_ccdf(g, record.edges, DegreeKind::kSymmetric);

  // 4. Side-by-side with the exact CCDF.
  const auto exact_ccdf =
      ccdf_from_pdf(degree_distribution(g, DegreeKind::kSymmetric));
  TextTable table({"degree", "estimated CCDF", "exact CCDF"});
  for (std::uint32_t d : log_spaced_degrees(
           static_cast<std::uint32_t>(exact_ccdf.size() - 1))) {
    if (exact_ccdf[d] <= 0.0) continue;
    table.add_row({std::to_string(d),
                   d < est_ccdf.size() ? format_number(est_ccdf[d]) : "0",
                   format_number(exact_ccdf[d])});
  }
  table.print(std::cout);

  std::cout << "\nEstimates from 1% of the graph track the exact CCDF "
               "across the full degree range.\n";
  return 0;
}

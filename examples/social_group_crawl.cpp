// Scenario: estimating special-interest-group popularity in an online
// social network (the Section 6.5 workload). A crawler with a limited
// query budget wants the fraction of users in each of the most popular
// groups. Compares Frontier Sampling against a single random walk and
// random vertex sampling under the same budget.
#include <iostream>

#include "core/frontier.hpp"

int main() {
  using namespace frontier;
  ExperimentConfig cfg;  // defaults; not reading the environment here
  cfg.scale_multiplier = 0.5;

  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;
  std::cout << "social network: " << g.summary() << '\n'
            << "groups: " << ds.num_groups << "\n\n";

  const std::size_t top = 10;
  const double budget = static_cast<double>(g.num_vertices()) / 10.0;
  const std::size_t m = 100;
  Rng rng(7);

  // Ground truth (a real crawler would not have this).
  std::vector<double> truth(top, 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t grp : ds.groups(v)) {
      if (grp < top) truth[grp] += 1.0;
    }
  }
  for (double& t : truth) t /= static_cast<double>(g.num_vertices());

  const auto groups_of = [&ds](VertexId v) { return ds.groups(v); };

  // Frontier Sampling crawl.
  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const auto fs_est =
      estimate_group_densities(g, fs.run(rng).edges, groups_of, top);

  // Single random walk crawl.
  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const auto srw_est =
      estimate_group_densities(g, srw.run(rng).edges, groups_of, top);

  // Random user-id probing (10% hit ratio: sparse id space).
  const RandomVertexSampler rv(
      g, {.budget = budget, .cost = {.jump_cost = 1.0, .hit_ratio = 0.1}});
  const auto rv_est = estimate_group_densities_uniform(
      rv.run(rng).vertices, groups_of, top);

  TextTable table({"group", "true density", "FS", "SingleRW",
                   "RandomVertex(10% hit)"});
  for (std::size_t grp = 0; grp < top; ++grp) {
    table.add_row({"#" + std::to_string(grp + 1), format_number(truth[grp]),
                   format_number(fs_est[grp]), format_number(srw_est[grp]),
                   format_number(rv_est[grp])});
  }
  table.print(std::cout);
  std::cout << "\nOne crawl each; FS is typically closest because its "
               "walkers cover the whole graph instead of one neighborhood "
               "and its budget is not wasted on invalid user-ids.\n";
  return 0;
}

// Scenario: measuring file replication in a peer-to-peer network whose
// connection graph has disconnected islands (Section 4.5's failure mode).
// A single random walk can never leave the island it starts in, so its
// estimate reflects only that island; Frontier Sampling spreads m walkers
// over all islands and weighs their contributions correctly.
#include <iostream>

#include "core/frontier.hpp"

int main() {
  using namespace frontier;
  Rng rng(99);

  // A P2P overlay with one big swarm and many small, disconnected swarms.
  std::vector<Graph> swarms;
  swarms.push_back(barabasi_albert(20000, 4, rng));  // the main swarm
  for (int i = 0; i < 40; ++i) {
    swarms.push_back(barabasi_albert(50 + uniform_index(rng, 200), 2, rng));
  }
  const Graph g = disjoint_union(swarms);
  const ComponentInfo comps = connected_components(g);
  std::cout << "overlay: " << g.summary() << '\n'
            << "components: " << comps.num_components() << " (LCC holds "
            << format_percent(
                   static_cast<double>(comps.size[comps.largest()]) /
                   static_cast<double>(g.num_vertices()))
            << " of peers)\n\n";

  // "File copies": peers in small swarms are twice as likely to hold the
  // file — exactly the kind of label whose density a trapped walker
  // misjudges.
  std::vector<bool> has_file(g.num_vertices());
  const std::uint32_t lcc_id = comps.largest();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double p = comps.component_of[v] == lcc_id ? 0.2 : 0.4;
    has_file[v] = bernoulli(rng, p);
  }
  const auto pred = [&has_file](VertexId v) { return has_file[v]; };
  const double truth = exact_label_density(g, pred);

  const double budget = static_cast<double>(g.num_vertices()) / 20.0;
  const std::size_t m = 200;

  TextTable table({"method", "estimate", "true", "relative error"});
  const auto report = [&](const std::string& name, double est) {
    table.add_row({name, format_number(est), format_number(truth),
                   format_percent(std::abs(est - truth) / truth)});
  };

  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  report("FrontierSampling(m=200)",
         estimate_vertex_label_density(g, fs.run(rng).edges, pred));

  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  report("SingleRW",
         estimate_vertex_label_density(g, srw.run(rng).edges, pred));

  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});
  report("MultipleRW(m=200)",
         estimate_vertex_label_density(g, mrw.run(rng).edges, pred));

  table.print(std::cout);
  std::cout << "\nSingleRW reports the density of whatever swarm it landed "
               "in; FS aggregates all swarms with the correct weights.\n";
  return 0;
}

// Scenario: a fleet of independent crawler processes with no coordination
// (Section 5.3, Theorem 5.5). Each crawler holds its vertex for an
// Exp(deg(v)) amount of time before stepping; merging their edge streams by
// timestamp reproduces the centralized Frontier Sampling law exactly —
// zero messages exchanged between crawlers.
#include <iostream>

#include "core/frontier.hpp"

int main() {
  using namespace frontier;
  Rng rng(5);
  const Graph g = barabasi_albert(30000, 3, rng);
  std::cout << "graph: " << g.summary() << "\n\n";

  const std::size_t m = 64;       // independent crawler processes
  const std::uint64_t steps = g.num_vertices() / 4;

  // Distributed FS: exponential clocks, no coordination.
  const DistributedFrontierSampler dfs(
      g, {.dimension = m, .stop = {.max_steps = steps}});
  Rng rng_d(10);
  const SampleRecord distributed = dfs.run(rng_d);

  // Centralized FS with the same dimension, for comparison.
  const FrontierSampler fs(g, {.dimension = m, .steps = steps});
  Rng rng_c(20);
  const SampleRecord centralized = fs.run(rng_c);

  const auto pred = [&g](VertexId v) { return g.degree(v) <= 4; };
  const double truth = exact_label_density(g, pred);

  TextTable table({"method", "fraction deg<=4 (est)", "true"});
  table.add_row({"DistributedFS(" + std::to_string(m) + " crawlers)",
                 format_number(estimate_vertex_label_density(
                     g, distributed.edges, pred)),
                 format_number(truth)});
  table.add_row({"CentralizedFS",
                 format_number(estimate_vertex_label_density(
                     g, centralized.edges, pred)),
                 format_number(truth)});
  table.print(std::cout);

  std::cout << "\nBoth crawls sample edges uniformly in steady state — the "
               "distributed fleet needs no coordination because the "
               "exponential holding times realize the degree-proportional "
               "walker selection implicitly (uniformization).\n";
  return 0;
}

// Scenario: characterize a graph stored as an edge-list file using a
// sampling budget of 2% — the workflow a downstream user follows with
// their own dataset:
//
//   $ ./edge_list_analysis [path/to/edges.txt]
//
// Without an argument the example writes out (and then analyzes) a
// synthetic citation network, so it is runnable out of the box.
#include <cstdio>
#include <iostream>

#include "core/frontier.hpp"

int main(int argc, char** argv) {
  using namespace frontier;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/frontier_example_citations.txt";
    Rng rng(13);
    const Graph synthetic = directed_preferential(40000, 3, 0.15, rng);
    write_edge_list_file(synthetic, path);
    std::cout << "(no input given: wrote a synthetic citation network to "
              << path << ")\n\n";
  }

  const Graph g = read_edge_list_file(path);
  std::cout << "loaded: " << g.summary() << '\n';
  const ComponentInfo comps = connected_components(g);
  std::cout << "components: " << comps.num_components() << "\n\n";

  const double budget = static_cast<double>(g.num_vertices()) / 50.0;
  const std::size_t m = std::max<std::size_t>(10, g.num_vertices() / 2000);
  Rng rng(1);
  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const SampleRecord rec = fs.run(rng);

  TextTable table({"characteristic", "estimate (2% budget)", "exact"});
  table.add_row(
      {"assortativity", format_number(estimate_assortativity(g, rec.edges)),
       format_number(exact_assortativity(g))});
  table.add_row({"global clustering",
                 format_number(estimate_global_clustering(g, rec.edges)),
                 format_number(exact_global_clustering(g))});
  const auto est_in = estimate_degree_distribution(g, rec.edges,
                                                   DegreeKind::kIn);
  const auto true_in = degree_distribution(g, DegreeKind::kIn);
  table.add_row({"P[in-degree = 0]",
                 format_number(est_in.empty() ? 0.0 : est_in[0]),
                 format_number(true_in.empty() ? 0.0 : true_in[0])});
  table.print(std::cout);

  std::cout << "\n(The 'exact' column is computable here because the whole "
               "graph is local; on a live network only the estimates "
               "exist.)\n";
  return 0;
}

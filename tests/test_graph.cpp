#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"

namespace frontier {
namespace {

Graph tiny_directed() {
  // 0 -> 1, 1 -> 2, 2 -> 0, 0 -> 2 (so (0,2) and (2,0) both exist).
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(0, 2);
  return b.build();
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_directed_edges(), 0u);
  EXPECT_EQ(g.volume(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, CountsDirectedAndSymmetricEdges) {
  const Graph g = tiny_directed();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 4u);
  // Symmetrized: undirected triangle -> 3 unordered pairs -> 6 ordered.
  EXPECT_EQ(g.num_symmetric_edges(), 6u);
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  EXPECT_EQ(g.volume(), 6u);
}

TEST(Graph, DegreesMatchConstruction) {
  const Graph g = tiny_directed();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.in_degree(2), 2u);
}

TEST(Graph, NeighborsAreSorted) {
  const Graph g = tiny_directed();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(Graph, DirectionFlags) {
  const Graph g = tiny_directed();
  // (0,1): forward only.  (0,2): both directions exist.
  const auto nbrs0 = g.neighbors(0);
  const auto dirs0 = g.directions(0);
  ASSERT_EQ(nbrs0.size(), 2u);
  EXPECT_EQ(nbrs0[0], 1u);
  EXPECT_EQ(dirs0[0], EdgeDir::kForward);
  EXPECT_EQ(nbrs0[1], 2u);
  EXPECT_EQ(dirs0[1], EdgeDir::kBoth);
}

TEST(Graph, HasEdgeSymmetric) {
  const Graph g = tiny_directed();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // symmetric counterpart
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(Graph, HasDirectedEdgeRespectsOrientation) {
  const Graph g = tiny_directed();
  EXPECT_TRUE(g.has_directed_edge(0, 1));
  EXPECT_FALSE(g.has_directed_edge(1, 0));
  EXPECT_TRUE(g.has_directed_edge(0, 2));
  EXPECT_TRUE(g.has_directed_edge(2, 0));
}

TEST(Graph, EdgeAtEnumeratesAllSlots) {
  const Graph g = tiny_directed();
  std::size_t count = 0;
  for (EdgeIndex j = 0; j < g.volume(); ++j) {
    const Edge e = g.edge_at(j);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    ++count;
  }
  EXPECT_EQ(count, g.volume());
}

TEST(Graph, EdgeAtCoversEachVertexDegTimes) {
  const Graph g = tiny_directed();
  std::vector<int> source_count(g.num_vertices(), 0);
  for (EdgeIndex j = 0; j < g.volume(); ++j) {
    ++source_count[g.edge_at(j).u];
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(source_count[v], static_cast<int>(g.degree(v)));
  }
}

TEST(Graph, MaxDegreeAndSummary) {
  const Graph g = tiny_directed();
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_NE(g.summary().find("|V|=3"), std::string::npos);
}

TEST(GraphBuilder, RejectsOutOfRangeVertex) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(b.add_edge(5, 0), std::out_of_range);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_directed_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_directed_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilder, UndirectedEdgeAddsBothDirections) {
  GraphBuilder b(2);
  b.add_undirected_edge(0, 1);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_directed_edge(0, 1));
  EXPECT_TRUE(g.has_directed_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(0), 1u);
}

TEST(GraphBuilder, IsolatedVerticesAllowed) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(GraphBuilder, BuilderIsReusable) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_directed_edges(), g2.num_directed_edges());
  EXPECT_EQ(g1.volume(), g2.volume());
}

TEST(GraphBuilder, SymmetricDegreeCountsUnorderedAdjacencies) {
  // Both (0,1) and (1,0): one unordered adjacency, degree 1 each.
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_directed_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

}  // namespace
}  // namespace frontier

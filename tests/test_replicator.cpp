#include "experiments/replicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "experiments/config.hpp"
#include "stats/accumulators.hpp"

namespace frontier {
namespace {

TEST(ResolveThreads, DefaultsToHardware) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
}

TEST(ParallelReplicate, RunsEveryIndexExactlyOnce) {
  std::mutex mu;
  std::set<std::size_t> seen;
  parallel_replicate(
      100, 1,
      [&](std::size_t r, Rng&) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(r).second) << "run " << r << " repeated";
      },
      4);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ParallelAccumulate, ResultIndependentOfThreadCount) {
  const auto run_with = [](std::size_t threads) {
    return parallel_accumulate<RunningStat>(
        200, 42, [] { return RunningStat{}; },
        [](std::size_t, Rng& rng, RunningStat& acc) {
          acc.add(uniform01(rng));
        },
        [](RunningStat& dst, const RunningStat& src) { dst.merge(src); },
        threads);
  };
  const RunningStat t1 = run_with(1);
  const RunningStat t8 = run_with(8);
  EXPECT_EQ(t1.count(), t8.count());
  EXPECT_NEAR(t1.mean(), t8.mean(), 1e-12);
  EXPECT_NEAR(t1.variance(), t8.variance(), 1e-12);
}

TEST(ParallelAccumulate, PerRunStreamsAreDeterministic) {
  std::vector<double> first(50, 0.0);
  std::vector<double> second(50, 0.0);
  const auto collect = [](std::vector<double>& out) {
    std::mutex mu;
    parallel_replicate(
        50, 7,
        [&](std::size_t r, Rng& rng) {
          const double value = uniform01(rng);
          std::lock_guard<std::mutex> lock(mu);
          out[r] = value;
        },
        6);
  };
  collect(first);
  collect(second);
  EXPECT_EQ(first, second);
}

TEST(ExperimentConfig, EnvDefaults) {
  // No env vars set in the test environment for these names.
  EXPECT_DOUBLE_EQ(env_double("FS_SURELY_UNSET_VAR", 2.5), 2.5);
  EXPECT_EQ(env_u64("FS_SURELY_UNSET_VAR", 77), 77u);
}

/// Sets an environment variable for the duration of one scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(ExperimentConfig, MalformedEnvValuesThrow) {
  {
    ScopedEnv env("FS_RUNS", "banana");
    EXPECT_THROW((void)ExperimentConfig::from_env(), std::invalid_argument);
    EXPECT_THROW((void)env_double("FS_RUNS", 1.0), std::invalid_argument);
  }
  {
    // Trailing garbage must not be silently truncated.
    ScopedEnv env("FS_SCALE", "1.5x");
    EXPECT_THROW((void)ExperimentConfig::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv env("FS_RUNS", "inf");
    EXPECT_THROW((void)ExperimentConfig::from_env(), std::invalid_argument);
  }
  {
    // strtod would read "0x2" as a C99 hex float (2.0); reject instead.
    ScopedEnv env("FS_SCALE", "0x2");
    EXPECT_THROW((void)ExperimentConfig::from_env(), std::invalid_argument);
  }
  {
    // Negative multipliers are rejected, not clamped.
    ScopedEnv env("FS_RUNS", "-1");
    EXPECT_THROW((void)ExperimentConfig::from_env(), std::invalid_argument);
  }
  {
    // strtoull would wrap a negative value into a huge thread count.
    ScopedEnv env("FS_THREADS", "-3");
    EXPECT_THROW((void)ExperimentConfig::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv env("FS_SEED", "0x12");
    EXPECT_THROW((void)ExperimentConfig::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv env("FS_SEED", "99999999999999999999999999");  // > 2^64
    EXPECT_THROW((void)ExperimentConfig::from_env(), std::invalid_argument);
  }
}

TEST(ExperimentConfig, WellFormedEnvValuesParse) {
  ScopedEnv runs("FS_RUNS", "0.25");
  ScopedEnv scale("FS_SCALE", " 2.5 ");  // surrounding whitespace is fine
  ScopedEnv threads("FS_THREADS", "6");
  ScopedEnv seed("FS_SEED", "18446744073709551615");  // 2^64 - 1
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  EXPECT_DOUBLE_EQ(cfg.runs_multiplier, 0.25);
  EXPECT_DOUBLE_EQ(cfg.scale_multiplier, 2.5);
  EXPECT_EQ(cfg.threads, 6u);
  EXPECT_EQ(cfg.seed, 18446744073709551615ULL);
}

TEST(ExperimentConfig, RunsAndScaledClamp) {
  ExperimentConfig cfg;
  cfg.runs_multiplier = 0.0001;
  EXPECT_EQ(cfg.runs(10000), 10u);  // floor at multiplier 0.001
  cfg.runs_multiplier = 2.0;
  EXPECT_EQ(cfg.runs(100), 200u);
  cfg.scale_multiplier = 0.001;
  EXPECT_EQ(cfg.scaled(10000), 64u);  // clamped at 64
}

}  // namespace
}  // namespace frontier

// frontier_serve contract tests, transport-free: ServeCore is driven
// line by line with injected steady_clock time points, so session
// lifecycle (open → step → checkpoint → evict → resume → close),
// admission control, the malformed-request suite and the
// served-vs-offline bit-identity guarantee are all exercised without
// sockets or sleeps.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/failpoint.hpp"
#include "graph/generators.hpp"
#include "serve/protocol.hpp"
#include "stream/spec.hpp"

namespace frontier::serve {
namespace {

using Clock = ServeCore::Clock;

Graph test_graph() {
  Rng rng(77);
  return barabasi_albert(200, 3, rng);
}

Clock::time_point at(int seconds) {
  return Clock::time_point{} + std::chrono::seconds(seconds);
}

ServeLimits small_limits() {
  ServeLimits limits;
  limits.max_sessions = 4;
  limits.max_sessions_per_tenant = 2;
  limits.max_budget = 1.0e6;
  limits.slice_events = 64;  // force multi-slice scheduling in tests
  return limits;
}

std::string spool_dir(const std::string& name) {
  return ::testing::TempDir() + "serve_spool_" + name;
}

/// Sends one line and, if it defers a step job, pumps until that job's
/// response arrives. Other sessions' jobs may complete first; every
/// completion is appended to *all (when given).
std::string roundtrip(ServeCore& core, const std::string& line,
                      Clock::time_point now = at(0)) {
  const ServeCore::Outcome out = core.handle_line(1, line, now);
  if (!out.deferred) return out.response;
  while (core.has_runnable()) {
    if (auto done = core.pump_slice(now)) return done->response;
  }
  ADD_FAILURE() << "deferred step never completed: " << line;
  return {};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string open_line(const std::string& session, const std::string& method,
                      double budget, std::uint64_t seed,
                      const std::string& extra = "") {
  return "{\"op\":\"open\",\"session\":\"" + session + "\",\"method\":\"" +
         method + "\",\"budget\":" + std::to_string(budget) +
         ",\"seed\":" + std::to_string(seed) + extra + "}";
}

// ---------------------------------------------------------------------------
// parse_request

TEST(ServeProtocol, ParsesEveryOp) {
  const Request open = parse_request(
      R"({"op":"open","session":"s1","method":"fs","budget":500,"seed":3,"dimension":10,"motifs":true,"tenant":"t1","resume":false})");
  EXPECT_EQ(open.op, Op::kOpen);
  EXPECT_EQ(open.session, "s1");
  EXPECT_EQ(open.tenant, "t1");
  EXPECT_EQ(open.spec.method, "fs");
  EXPECT_DOUBLE_EQ(open.spec.budget, 500.0);
  EXPECT_EQ(open.spec.seed, 3u);
  EXPECT_EQ(open.spec.dimension, 10u);
  EXPECT_TRUE(open.spec.motifs);
  EXPECT_FALSE(open.resume);

  const Request step =
      parse_request(R"({"op":"step","session":"s1","events":250})");
  EXPECT_EQ(step.op, Op::kStep);
  EXPECT_EQ(step.events, 250u);

  EXPECT_EQ(parse_request(R"({"op":"estimates","session":"s1"})").op,
            Op::kEstimates);
  EXPECT_EQ(parse_request(R"({"op":"checkpoint","session":"s1"})").op,
            Op::kCheckpoint);
  EXPECT_EQ(parse_request(R"({"op":"close","session":"s1"})").op, Op::kClose);
  EXPECT_EQ(parse_request(R"({"op":"stats"})").op, Op::kStats);
  EXPECT_EQ(parse_request(R"({"op":"shutdown"})").op, Op::kShutdown);
}

TEST(ServeProtocol, DefaultsTenantAndValidatesIdentifiers) {
  EXPECT_EQ(parse_request(open_line("a.b-c_9", "srw", 10, 1)).tenant,
            "default");
  EXPECT_TRUE(valid_identifier("x"));
  EXPECT_FALSE(valid_identifier(""));
  EXPECT_FALSE(valid_identifier(".hidden"));
  EXPECT_FALSE(valid_identifier("a/b"));
  EXPECT_FALSE(valid_identifier(std::string(65, 'a')));
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  const std::vector<std::string> bad = {
      "",                                          // empty
      "not json",                                  // garbage
      "[1,2,3]",                                   // not an object
      R"({"op":"fly"})",                           // unknown op
      R"({"op":"open"})",                          // missing keys
      R"({"op":"step","session":"s"})",            // missing events
      R"({"op":"step","session":"s","events":0})", // zero events
      R"({"op":"step","session":"s","events":-4})",    // negative
      R"({"op":"step","session":"s","events":2.5})",   // fractional
      R"({"op":"stats","extra":1})",               // unknown key
      R"({"op":"close","session":"../etc"})",      // path-like id
      R"({"op":"open","session":"s","method":"zz","budget":5,"seed":1})",
      R"({"op":"open","session":"s","method":"fs","budget":0,"seed":1})",
      R"({"op":"open","session":"s","method":"fs","budget":5,"seed":1,"motifs":"yes"})",
      R"({"op":"step","session":"s","events":1)",  // truncated
  };
  for (const std::string& line : bad) {
    try {
      (void)parse_request(line);
      ADD_FAILURE() << "accepted: " << line;
    } catch (const WireError& e) {
      EXPECT_EQ(e.code(), "bad-request") << line;
    }
  }
}

// ---------------------------------------------------------------------------
// ServeCore dispatch

TEST(ServeCore, MalformedLinesBecomeErrorResponsesNeverThrows) {
  ServeCore core(test_graph(), small_limits(), spool_dir("malformed"), at(0));
  const std::string resp = roundtrip(core, "garbage");
  EXPECT_EQ(resp.rfind("{\"ok\":false,\"error\":\"bad-request\"", 0), 0u)
      << resp;
  const std::string long_line(1 << 17, 'x');
  EXPECT_NE(roundtrip(core, long_line).find("line-too-long"),
            std::string::npos);
  EXPECT_NE(
      roundtrip(core, R"({"op":"estimates","session":"ghost"})")
          .find("unknown-session"),
      std::string::npos);
}

TEST(ServeCore, LifecycleOpenStepEstimatesCheckpointClose) {
  ServeCore core(test_graph(), small_limits(), spool_dir("lifecycle"), at(0));
  const std::string opened =
      roundtrip(core, open_line("s1", "fs", 800, 7, ",\"dimension\":20"));
  EXPECT_EQ(opened.rfind("{\"ok\":true,\"op\":\"open\"", 0), 0u) << opened;
  EXPECT_NE(opened.find("\"resumed\":false"), std::string::npos);
  EXPECT_NE(opened.find("\"events\":0"), std::string::npos);

  // 250 events across 64-event slices: exact count, multiple slices.
  const std::string stepped =
      roundtrip(core, R"({"op":"step","session":"s1","events":250})");
  EXPECT_NE(stepped.find("\"stepped\":250"), std::string::npos) << stepped;
  EXPECT_NE(stepped.find("\"events\":250"), std::string::npos);
  EXPECT_NE(stepped.find("\"done\":false"), std::string::npos);

  const std::string estimates =
      roundtrip(core, R"({"op":"estimates","session":"s1"})");
  EXPECT_NE(estimates.find("\"estimates\":{"), std::string::npos);

  const std::string ckpt =
      roundtrip(core, R"({"op":"checkpoint","session":"s1"})");
  EXPECT_NE(ckpt.find("\"path\":"), std::string::npos);
  EXPECT_FALSE(
      read_file(core.registry().spool_path("s1")).empty());

  EXPECT_NE(roundtrip(core, R"({"op":"close","session":"s1"})")
                .find("\"events\":250"),
            std::string::npos);
  EXPECT_NE(roundtrip(core, R"({"op":"close","session":"s1"})")
                .find("unknown-session"),
            std::string::npos);
}

TEST(ServeCore, BusySessionsRejectOtherOpsUntilStepCompletes) {
  ServeCore core(test_graph(), small_limits(), spool_dir("busy"), at(0));
  (void)roundtrip(core, open_line("s1", "srw", 500, 1));
  const ServeCore::Outcome step = core.handle_line(
      1, R"({"op":"step","session":"s1","events":200})", at(0));
  ASSERT_TRUE(step.deferred);
  const ServeCore::Outcome rejected =
      core.handle_line(1, R"({"op":"estimates","session":"s1"})", at(0));
  EXPECT_NE(rejected.response.find("session-busy"), std::string::npos);
  while (core.has_runnable()) (void)core.pump_slice(at(0));
  EXPECT_EQ(roundtrip(core, R"({"op":"estimates","session":"s1"})")
                .rfind("{\"ok\":true", 0),
            0u);
}

TEST(ServeCore, AdmissionControl) {
  ServeCore core(test_graph(), small_limits(), spool_dir("admission"), at(0));
  EXPECT_EQ(roundtrip(core, open_line("a1", "srw", 100, 1)).rfind(
                "{\"ok\":true", 0),
            0u);
  EXPECT_NE(roundtrip(core, open_line("a1", "srw", 100, 1))
                .find("duplicate-session"),
            std::string::npos);
  (void)roundtrip(core, open_line("a2", "srw", 100, 1));
  // Tenant "default" is at its cap of 2; other tenants still admitted.
  EXPECT_NE(roundtrip(core, open_line("a3", "srw", 100, 1))
                .find("over-quota"),
            std::string::npos);
  EXPECT_EQ(roundtrip(core,
                      open_line("b1", "srw", 100, 1, ",\"tenant\":\"t2\""))
                .rfind("{\"ok\":true", 0),
            0u);
  (void)roundtrip(core, open_line("b2", "srw", 100, 1, ",\"tenant\":\"t3\""));
  // Server-wide cap of 4 sessions.
  EXPECT_NE(roundtrip(core, open_line("c1", "srw", 100, 1,
                                      ",\"tenant\":\"t4\""))
                .find("over-quota"),
            std::string::npos);
  // Budget above the per-session cap.
  (void)roundtrip(core, R"({"op":"close","session":"a1"})");
  EXPECT_NE(roundtrip(core, open_line("a9", "srw", 1.0e7, 1))
                .find("over-quota"),
            std::string::npos);
  // Oversized single step.
  const std::string big_step = R"({"op":"step","session":"a2","events":)" +
                               std::to_string((1ull << 20) + 1) + "}";
  EXPECT_NE(roundtrip(core, big_step).find("over-quota"), std::string::npos);
}

TEST(ServeCore, IdleEvictionCheckpointsAndResumeRestores) {
  ServeLimits limits = small_limits();
  limits.idle_timeout_seconds = 10.0;
  const std::string spool = spool_dir("evict");
  ServeCore core(test_graph(), limits, spool, at(0));
  (void)roundtrip(core, open_line("s1", "mrw", 600, 5, ",\"dimension\":8"));
  (void)roundtrip(core, R"({"op":"step","session":"s1","events":200})",
                  at(1));

  EXPECT_EQ(core.evict_idle(at(5)), 0u);   // not idle long enough
  EXPECT_EQ(core.evict_idle(at(30)), 1u);  // evicted to the spool
  EXPECT_NE(roundtrip(core, R"({"op":"estimates","session":"s1"})", at(30))
                .find("unknown-session"),
            std::string::npos);

  const std::string resumed = roundtrip(
      core,
      open_line("s1", "mrw", 600, 5, ",\"dimension\":8,\"resume\":true"),
      at(31));
  EXPECT_NE(resumed.find("\"resumed\":true"), std::string::npos) << resumed;
  EXPECT_NE(resumed.find("\"events\":200"), std::string::npos);

  // Resuming a session that never spooled is a bad-checkpoint error.
  EXPECT_NE(roundtrip(core, open_line("ghost", "srw", 100, 1,
                                      ",\"resume\":true"),
                      at(31))
                .find("bad-checkpoint"),
            std::string::npos);
}

TEST(ServeCore, ShutdownDrainsEverySessionAndRefusesNewWork) {
  ServeCore core(test_graph(), small_limits(), spool_dir("drain"), at(0));
  (void)roundtrip(core, open_line("d1", "srw", 300, 1));
  (void)roundtrip(core, open_line("d2", "fs", 300, 2, ",\"dimension\":5"));
  const ServeCore::Outcome bye =
      core.handle_line(1, R"({"op":"shutdown"})", at(2));
  EXPECT_TRUE(bye.shutdown);
  EXPECT_NE(bye.response.find("\"drained\":2"), std::string::npos);
  EXPECT_FALSE(read_file(core.registry().spool_path("d1")).empty());
  EXPECT_FALSE(read_file(core.registry().spool_path("d2")).empty());
  EXPECT_NE(roundtrip(core, R"({"op":"stats"})", at(2)).find("shutting-down"),
            std::string::npos);
}

TEST(ServeCore, StatsReportsSessionsAndCounters) {
  ServeCore core(test_graph(), small_limits(), spool_dir("stats"), at(0));
  (void)roundtrip(core, open_line("s1", "rwj", 400, 3));
  const std::string stats = roundtrip(core, R"({"op":"stats"})", at(9));
  EXPECT_NE(stats.find("\"protocol\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"active_sessions\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"uptime_seconds\":9"), std::string::npos);
  EXPECT_NE(stats.find("\"session\":\"s1\""), std::string::npos);
  EXPECT_NE(stats.find("\"method\":\"rwj\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault injection: a failing spool degrades one session, not the daemon.

TEST(ServeCore, SpoolFaultDegradesOneSessionWhileOthersServe) {
  // Failpoint state is process-global; make sure it cannot leak into the
  // bit-identity tests below even if an expectation fails.
  struct FpGuard {
    FpGuard() { failpoint::clear(); }
    ~FpGuard() { failpoint::clear(); }
  } guard;

  ServeCore core(test_graph(), small_limits(), spool_dir("fault"), at(0));
  (void)roundtrip(core, open_line("sick", "srw", 300, 1));
  (void)roundtrip(core, open_line("well", "srw", 300, 2));

  // First spool attempt fails: a structured io-error naming the session.
  failpoint::configure("serve.spool=io-error@1");
  const std::string hurt =
      roundtrip(core, R"({"op":"checkpoint","session":"sick"})", at(1));
  EXPECT_NE(hurt.find("\"ok\":false"), std::string::npos) << hurt;
  EXPECT_NE(hurt.find("io-error"), std::string::npos) << hurt;
  EXPECT_NE(hurt.find("sick"), std::string::npos) << hurt;

  // The session is quarantined: an immediate retry is refused during the
  // backoff window without another disk attempt.
  const std::string backoff =
      roundtrip(core, R"({"op":"checkpoint","session":"sick"})", at(1));
  EXPECT_NE(backoff.find("\"ok\":false"), std::string::npos) << backoff;
  EXPECT_NE(backoff.find("quarantined"), std::string::npos) << backoff;

  // The daemon keeps serving: the other session checkpoints fine (the
  // Nth-hit trigger fired already), and the sick one can still step.
  const std::string fine =
      roundtrip(core, R"({"op":"checkpoint","session":"well"})", at(1));
  EXPECT_NE(fine.find("\"ok\":true"), std::string::npos) << fine;
  const std::string stepped = roundtrip(
      core, R"({"op":"step","session":"sick","events":50})", at(1));
  EXPECT_NE(stepped.find("\"ok\":true"), std::string::npos) << stepped;

  // Past the backoff window the sick session heals and spools for real.
  const std::string healed =
      roundtrip(core, R"({"op":"checkpoint","session":"sick"})", at(5));
  EXPECT_NE(healed.find("\"ok\":true"), std::string::npos) << healed;
  EXPECT_FALSE(read_file(core.registry().spool_path("sick")).empty());

  // Both refused attempts are accounted on the stats line.
  const std::string stats = roundtrip(core, R"({"op":"stats"})", at(5));
  EXPECT_NE(stats.find("\"spool_errors\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"spool_drops\":0"), std::string::npos) << stats;
}

// ---------------------------------------------------------------------------
// Bit-identity: a served session must match an offline CrawlSpec run —
// same estimates text, same mid-crawl checkpoint bytes — for all five
// cursor types.

TEST(ServeCore, ServedCrawlsAreBitIdenticalToOfflineForAllMethods) {
  const Graph g = test_graph();
  for (const std::string& method : CrawlSpec::methods()) {
    SCOPED_TRACE(method);

    // Offline half: pump exactly 250 events, checkpoint, finish.
    CrawlSpec spec;
    spec.method = method;
    spec.budget = 700.0;
    spec.dimension = 16;
    spec.seed = 9;
    spec = spec.normalized();
    const auto offline = spec.make_engine(g);
    (void)offline->pump(250);
    const std::string offline_ckpt =
        ::testing::TempDir() + "offline_" + method + ".ckpt";
    offline->save_checkpoint_file(offline_ckpt);
    (void)offline->run_to_completion();
    const std::string offline_estimates = estimates_fields(spec, *offline);

    // Served half: same spec through the wire protocol.
    ServeCore core(g, small_limits(), spool_dir("ident_" + method), at(0));
    (void)roundtrip(core,
                    open_line("s", method, 700, 9, ",\"dimension\":16"));
    (void)roundtrip(core, R"({"op":"step","session":"s","events":250})");
    (void)roundtrip(core, R"({"op":"checkpoint","session":"s"})");
    EXPECT_EQ(read_file(core.registry().spool_path("s")),
              read_file(offline_ckpt))
        << "mid-crawl checkpoint bytes diverged";

    const std::string finish =
        roundtrip(core, R"({"op":"step","session":"s","events":1000000})");
    EXPECT_NE(finish.find("\"done\":true"), std::string::npos) << finish;
    const std::string served =
        roundtrip(core, R"({"op":"estimates","session":"s"})");
    EXPECT_NE(served.find(offline_estimates), std::string::npos)
        << "served estimates diverged from offline:\n"
        << served << "\nvs\n"
        << offline_estimates;
  }
}

}  // namespace
}  // namespace frontier::serve

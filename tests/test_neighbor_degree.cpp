#include "estimators/neighbor_degree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sampling/frontier_sampler.hpp"

namespace frontier {
namespace {

std::vector<Edge> full_edge_pass(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.volume());
  for (EdgeIndex j = 0; j < g.volume(); ++j) edges.push_back(g.edge_at(j));
  return edges;
}

TEST(AverageNeighborDegree, ExactStar) {
  const Graph g = star_graph(5);
  const auto knn = average_neighbor_degree(g);
  // Leaves (deg 1) connect to the center (deg 4); center connects to
  // leaves (deg 1).
  ASSERT_GE(knn.size(), 5u);
  EXPECT_DOUBLE_EQ(knn[1], 4.0);
  EXPECT_DOUBLE_EQ(knn[4], 1.0);
}

TEST(AverageNeighborDegree, RegularGraphIsFlat) {
  const Graph g = cycle_graph(8);
  const auto knn = average_neighbor_degree(g);
  EXPECT_DOUBLE_EQ(knn[2], 2.0);
}

TEST(AverageNeighborDegree, EstimatorExactOnFullPass) {
  Rng rng(1);
  const Graph g = barabasi_albert(300, 2, rng);
  const auto truth = average_neighbor_degree(g);
  const auto est = estimate_average_neighbor_degree(g, full_edge_pass(g));
  ASSERT_EQ(est.size(), truth.size());
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(est[k], truth[k], 1e-9) << "degree " << k;
  }
}

TEST(AverageNeighborDegree, EstimatorConvergesUnderFs) {
  Rng rng(2);
  const Graph g = barabasi_albert(200, 2, rng);
  const auto truth = average_neighbor_degree(g);
  const FrontierSampler fs(g, {.dimension = 20, .steps = 400000});
  const auto est = estimate_average_neighbor_degree(g, fs.run(rng).edges);
  // Check well-populated degrees only.
  const auto theta = degree_distribution(g, DegreeKind::kSymmetric);
  for (std::size_t k = 0; k < truth.size() && k < est.size(); ++k) {
    if (theta[k] < 0.02) continue;
    EXPECT_NEAR(est[k], truth[k], 0.1 * truth[k]) << "degree " << k;
  }
}

TEST(AverageNeighborDegree, EmptyInput) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(estimate_average_neighbor_degree(g, {}).empty());
}

}  // namespace
}  // namespace frontier

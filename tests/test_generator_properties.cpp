// Parameterized property sweeps over the random-graph generators: the
// structural invariants every generator must satisfy for any parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace frontier {
namespace {

void expect_graph_invariants(const Graph& g) {
  // Degree sums and CSR bookkeeping are mutually consistent.
  std::uint64_t deg_sum = 0;
  std::uint64_t out_sum = 0;
  std::uint64_t in_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    deg_sum += g.degree(v);
    out_sum += g.out_degree(v);
    in_sum += g.in_degree(v);
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (VertexId w : nbrs) {
      EXPECT_NE(w, v) << "self loop";
      EXPECT_TRUE(g.has_edge(w, v)) << "asymmetric adjacency";
    }
  }
  EXPECT_EQ(deg_sum, g.volume());
  EXPECT_EQ(out_sum, g.num_directed_edges());
  EXPECT_EQ(in_sum, g.num_directed_edges());
  // Degree distribution is a distribution.
  const auto theta = degree_distribution(g, DegreeKind::kSymmetric);
  EXPECT_NEAR(std::accumulate(theta.begin(), theta.end(), 0.0), 1.0, 1e-9);
}

class BaSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(BaSweep, InvariantsAndConnectivity) {
  const auto [n, links] = GetParam();
  Rng rng(n * 31 + links);
  const Graph g = barabasi_albert(n, links, rng);
  expect_graph_invariants(g);
  EXPECT_TRUE(is_connected(g));
  EXPECT_NEAR(g.average_degree(), 2.0 * static_cast<double>(links),
              0.2 * static_cast<double>(links) + 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Params, BaSweep,
    ::testing::Values(std::make_tuple(50, 1), std::make_tuple(50, 3),
                      std::make_tuple(500, 1), std::make_tuple(500, 4),
                      std::make_tuple(3000, 2)));

class DirectedPrefSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(DirectedPrefSweep, InvariantsHold) {
  const auto [n, recip] = GetParam();
  Rng rng(n * 17 + static_cast<std::uint64_t>(recip * 100));
  const Graph g = directed_preferential(n, 3, recip, rng);
  expect_graph_invariants(g);
  // Reciprocity raises the directed edge count (up to 2x).
  EXPECT_GE(g.num_directed_edges(), g.num_undirected_edges());
  EXPECT_LE(g.num_directed_edges(), 2 * g.num_undirected_edges());
}

INSTANTIATE_TEST_SUITE_P(Params, DirectedPrefSweep,
                         ::testing::Values(std::make_tuple(200, 0.0),
                                           std::make_tuple(200, 0.5),
                                           std::make_tuple(200, 1.0),
                                           std::make_tuple(2000, 0.3)));

class GnpSweep : public ::testing::TestWithParam<double> {};

TEST_P(GnpSweep, InvariantsAndDensity) {
  const double p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p * 1e6) + 1);
  const std::size_t n = 600;
  const Graph g = erdos_renyi_gnp(n, p, rng);
  expect_graph_invariants(g);
  const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_undirected_edges()), expected,
              5.0 * std::sqrt(expected + 1.0) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Params, GnpSweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.2));

class CommunitySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CommunitySweep, ConnectedWithInvariants) {
  const auto [communities, bridges] = GetParam();
  Rng rng(communities * 7 + bridges);
  const Graph g =
      community_preferential(4000, 4, 0.5, communities, bridges, rng);
  expect_graph_invariants(g);
  EXPECT_EQ(g.num_vertices(), 4000u);
  EXPECT_TRUE(is_connected(g)) << "chain bridges must connect all blocks";
}

INSTANTIATE_TEST_SUITE_P(Params, CommunitySweep,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(5, 1),
                                           std::make_tuple(12, 2),
                                           std::make_tuple(30, 3)));

class ConfigModelSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConfigModelSweep, InvariantsHold) {
  const double alpha = GetParam();
  Rng rng(static_cast<std::uint64_t>(alpha * 10));
  const auto degrees = power_law_degrees(2000, alpha, 1, 100, rng);
  const Graph g = configuration_model(degrees, rng);
  expect_graph_invariants(g);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ConfigModelSweep,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0));

}  // namespace
}  // namespace frontier

// Checkpoint/resume: pausing a streaming crawl mid-run and resuming it in
// a freshly constructed engine must land in a bitwise-identical final
// state (same remaining event stream, same sink sums, same RNG position)
// as the uninterrupted run.
#include "stream/checkpoint.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "stream/engine.hpp"
#include "stream/motif_sinks.hpp"
#include "stream/sampler_cursors.hpp"
#include "stream/sinks.hpp"

namespace frontier {
namespace {

Graph test_graph() {
  Rng rng(77);
  return barabasi_albert(150, 3, rng);
}

SinkSet make_sinks(const Graph& g) {
  SinkSet sinks;
  sinks.push_back(
      std::make_unique<DegreeDistributionSink>(g, DegreeKind::kSymmetric));
  sinks.push_back(std::make_unique<AssortativitySink>(g));
  sinks.push_back(std::make_unique<GraphMomentsSink>(g));
  sinks.push_back(std::make_unique<UniformDegreeSink>(g));
  sinks.push_back(std::make_unique<TriangleSink>(g));
  sinks.push_back(std::make_unique<ClusteringSink>(g));
  sinks.push_back(std::make_unique<MotifSink>(g));
  return sinks;
}

struct FinalState {
  std::vector<double> distribution;
  double assortativity = 0.0;
  double average_degree = 0.0;
  double uniform_degree = 0.0;
  double transitivity = 0.0;
  double clustering = 0.0;
  MotifEstimate motifs{};
  double cost = 0.0;
  std::uint64_t events = 0;
  std::array<std::uint64_t, 4> rng_state{};
};

FinalState capture(const StreamEngine& engine) {
  FinalState s;
  const auto sinks = engine.sinks();
  s.distribution =
      dynamic_cast<const DegreeDistributionSink&>(*sinks[0]).distribution();
  s.assortativity = dynamic_cast<const AssortativitySink&>(*sinks[1]).value();
  s.average_degree =
      dynamic_cast<const GraphMomentsSink&>(*sinks[2]).average_degree();
  s.uniform_degree = dynamic_cast<const UniformDegreeSink&>(*sinks[3]).value();
  s.transitivity = dynamic_cast<const TriangleSink&>(*sinks[4]).transitivity();
  s.clustering =
      dynamic_cast<const ClusteringSink&>(*sinks[5]).global_clustering();
  s.motifs = dynamic_cast<const MotifSink&>(*sinks[6]).estimate(1000.0);
  s.cost = engine.cursor().cost();
  s.events = engine.events();
  s.rng_state = engine.cursor().rng().state();
  return s;
}

void expect_identical(const FinalState& a, const FinalState& b) {
  EXPECT_EQ(a.distribution, b.distribution);
  EXPECT_EQ(a.assortativity, b.assortativity);
  EXPECT_EQ(a.average_degree, b.average_degree);
  EXPECT_EQ(a.uniform_degree, b.uniform_degree);
  EXPECT_EQ(a.transitivity, b.transitivity);
  EXPECT_EQ(a.clustering, b.clustering);
  EXPECT_EQ(a.motifs.triangle, b.motifs.triangle);
  EXPECT_EQ(a.motifs.wedge, b.motifs.wedge);
  EXPECT_EQ(a.motifs.cycle4, b.motifs.cycle4);
  EXPECT_EQ(a.motifs.clique4, b.motifs.clique4);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.rng_state, b.rng_state);
}

// Runs the pause/resume round trip for one cursor type: `make_cursor` must
// return a fresh cursor for the given seed.
template <typename MakeCursor>
void check_roundtrip(const Graph& g, MakeCursor make_cursor,
                     std::uint64_t pause_after) {
  // Reference: uninterrupted run.
  StreamEngine reference(make_cursor(1), make_sinks(g));
  reference.run_to_completion();
  const FinalState expected = capture(reference);

  // Interrupted: pump part way, checkpoint, keep running to completion.
  StreamEngine first(make_cursor(1), make_sinks(g));
  ASSERT_EQ(first.pump(pause_after), pause_after);
  std::stringstream ckpt;
  first.save_checkpoint(ckpt);
  first.run_to_completion();
  expect_identical(expected, capture(first));

  // Resumed: a fresh engine (different seed, so the restore must overwrite
  // every bit of dynamic state) loads the checkpoint and finishes.
  StreamEngine resumed(make_cursor(999), make_sinks(g));
  resumed.load_checkpoint(ckpt);
  EXPECT_EQ(resumed.events(), pause_after);
  resumed.run_to_completion();
  expect_identical(expected, capture(resumed));
}

TEST(StreamCheckpoint, FrontierRoundtrip) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{.dimension = 6, .steps = 5000};
  check_roundtrip(
      g,
      [&](std::uint64_t seed) {
        return std::make_unique<FrontierCursor>(g, cfg, Rng(seed));
      },
      1234);
}

TEST(StreamCheckpoint, FrontierLinearScanRoundtrip) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{
      .dimension = 4, .steps = 3000,
      .selection = FrontierSampler::Selection::kLinearScan};
  check_roundtrip(
      g,
      [&](std::uint64_t seed) {
        return std::make_unique<FrontierCursor>(g, cfg, Rng(seed));
      },
      777);
}

TEST(StreamCheckpoint, SingleRwRoundtrip) {
  const Graph g = test_graph();
  const SingleRandomWalk::Config cfg{
      .steps = 4000, .burn_in = 300, .laziness = 0.2};
  check_roundtrip(
      g,
      [&](std::uint64_t seed) {
        return std::make_unique<SingleRwCursor>(g, cfg, Rng(seed));
      },
      150);  // pause inside the burn-in phase
}

TEST(StreamCheckpoint, MultipleRwRoundtrip) {
  const Graph g = test_graph();
  const MultipleRandomWalks::Config cfg{.num_walkers = 5,
                                        .steps_per_walker = 800};
  check_roundtrip(
      g,
      [&](std::uint64_t seed) {
        return std::make_unique<MultipleRwCursor>(g, cfg, Rng(seed));
      },
      2100);  // pause mid-walker
}

TEST(StreamCheckpoint, RandomWalkWithJumpsRoundtrip) {
  const Graph g = test_graph();
  const RandomWalkWithJumps::Config cfg{
      .budget = 4000.0,
      .jump_probability = 0.1,
      .cost = {.jump_cost = 1.5, .hit_ratio = 0.8}};
  check_roundtrip(
      g,
      [&](std::uint64_t seed) {
        return std::make_unique<RwjCursor>(g, cfg, Rng(seed));
      },
      900);
}

TEST(StreamCheckpoint, MetropolisRoundtrip) {
  const Graph g = test_graph();
  const MetropolisHastingsWalk::Config cfg{.steps = 4000};
  check_roundtrip(
      g,
      [&](std::uint64_t seed) {
        return std::make_unique<MetropolisCursor>(g, cfg, Rng(seed));
      },
      1);  // pause right after the pending start-vertex emission
}

TEST(StreamCheckpoint, FileRoundtrip) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{.dimension = 3, .steps = 1000};
  StreamEngine first(std::make_unique<FrontierCursor>(g, cfg, Rng(3)),
                     make_sinks(g));
  first.pump(400);
  const std::string path = ::testing::TempDir() + "stream_ckpt.bin";
  first.save_checkpoint_file(path);
  first.run_to_completion();

  StreamEngine resumed(std::make_unique<FrontierCursor>(g, cfg, Rng(4)),
                       make_sinks(g));
  resumed.load_checkpoint_file(path);
  resumed.run_to_completion();
  expect_identical(capture(first), capture(resumed));
  std::remove(path.c_str());
}

TEST(StreamCheckpoint, RejectsWrongCursorKind) {
  const Graph g = test_graph();
  StreamEngine fs(std::make_unique<FrontierCursor>(
                      g, FrontierSampler::Config{.dimension = 2, .steps = 100},
                      Rng(5)),
                  make_sinks(g));
  fs.pump(10);
  std::stringstream ckpt;
  fs.save_checkpoint(ckpt);

  StreamEngine mh(std::make_unique<MetropolisCursor>(
                      g, MetropolisHastingsWalk::Config{.steps = 100}, Rng(5)),
                  make_sinks(g));
  EXPECT_THROW(mh.load_checkpoint(ckpt), IoError);
}

TEST(StreamCheckpoint, RejectsDifferentGraph) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{.dimension = 4, .steps = 100};
  StreamEngine a(std::make_unique<FrontierCursor>(g, cfg, Rng(6)),
                 make_sinks(g));
  a.pump(10);
  std::stringstream ckpt;
  a.save_checkpoint(ckpt);

  Rng other_rng(123);
  const Graph other = barabasi_albert(80, 2, other_rng);
  StreamEngine b(std::make_unique<FrontierCursor>(other, cfg, Rng(6)),
                 make_sinks(other));
  EXPECT_THROW(b.load_checkpoint(ckpt), IoError);
}

TEST(StreamCheckpoint, RejectsConfigMismatch) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{.dimension = 4, .steps = 100};
  StreamEngine a(std::make_unique<FrontierCursor>(g, cfg, Rng(6)),
                 make_sinks(g));
  a.pump(10);
  std::stringstream ckpt;
  a.save_checkpoint(ckpt);

  const FrontierSampler::Config other{.dimension = 8, .steps = 100};
  StreamEngine b(std::make_unique<FrontierCursor>(g, other, Rng(6)),
                 make_sinks(g));
  EXPECT_THROW(b.load_checkpoint(ckpt), IoError);
}

TEST(StreamCheckpoint, RejectsSinkMismatch) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{.dimension = 2, .steps = 100};
  StreamEngine a(std::make_unique<FrontierCursor>(g, cfg, Rng(7)),
                 make_sinks(g));
  a.pump(10);
  std::stringstream ckpt;
  a.save_checkpoint(ckpt);

  SinkSet fewer;
  fewer.push_back(std::make_unique<GraphMomentsSink>(g));
  StreamEngine b(std::make_unique<FrontierCursor>(g, cfg, Rng(7)),
                 std::move(fewer));
  EXPECT_THROW(b.load_checkpoint(ckpt), IoError);
}

TEST(StreamCheckpoint, RejectsTruncatedStream) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{.dimension = 2, .steps = 100};
  StreamEngine a(std::make_unique<FrontierCursor>(g, cfg, Rng(8)),
                 make_sinks(g));
  a.pump(10);
  std::stringstream ckpt;
  a.save_checkpoint(ckpt);
  const std::string full = ckpt.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));

  StreamEngine b(std::make_unique<FrontierCursor>(g, cfg, Rng(8)),
                 make_sinks(g));
  EXPECT_THROW(b.load_checkpoint(truncated), IoError);
}

}  // namespace
}  // namespace frontier

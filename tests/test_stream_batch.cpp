// Batched stepping equivalence: for every cursor, next_batch() must be a
// pure speedup — the emitted event sequence, the degree column, the final
// RNG state, the cost, and every sink's serialized state are bit-identical
// for any batch size K (including K=1), and a checkpoint taken mid-block
// resumes into the same final state as an uninterrupted serial run.
#include "stream/block.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/metropolis.hpp"
#include "sampling/multiple_rw.hpp"
#include "sampling/random_walk_with_jumps.hpp"
#include "sampling/single_rw.hpp"
#include "stream/cursor.hpp"
#include "stream/engine.hpp"
#include "stream/motif_sinks.hpp"
#include "stream/sampler_cursors.hpp"
#include "stream/sinks.hpp"

namespace frontier {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 7, 64, 4096};

Graph test_graph() {
  Rng rng(42);
  return barabasi_albert(300, 3, rng);
}

/// One observed step, flattened for comparison.
struct EventRec {
  bool has_edge = false;
  bool has_vertex = false;
  Edge edge{};
  VertexId vertex = kInvalidVertex;

  friend bool operator==(const EventRec&, const EventRec&) = default;
};

std::vector<EventRec> collect_serial(SamplerCursor& cursor) {
  std::vector<EventRec> out;
  StreamEvent ev;
  while (cursor.next(ev)) {
    // Copy only the flagged fields: StreamEvent::clear() resets the
    // flags but leaves the payload stale, and only flagged payload is
    // part of the contract.
    EventRec rec;
    rec.has_edge = ev.has_edge;
    rec.has_vertex = ev.has_vertex;
    if (ev.has_edge) rec.edge = ev.edge;
    if (ev.has_vertex) rec.vertex = ev.vertex;
    out.push_back(rec);
  }
  return out;
}

/// Drains via next_batch with block capacity K, also asserting the degree
/// column invariant on every edge row.
std::vector<EventRec> collect_batched(SamplerCursor& cursor, std::size_t k) {
  std::vector<EventRec> out;
  StreamEventBlock block(k);
  while (cursor.next_batch(block) > 0) {
    EXPECT_LE(block.size(), k);
    for (std::size_t i = 0; i < block.size(); ++i) {
      EventRec rec;
      rec.has_edge = (block.flags()[i] & StreamEventBlock::kHasEdge) != 0;
      rec.has_vertex = (block.flags()[i] & StreamEventBlock::kHasVertex) != 0;
      if (rec.has_edge) {
        rec.edge = Edge{block.u()[i], block.v()[i]};
        EXPECT_EQ(block.deg_v()[i], cursor.graph().degree(block.v()[i]))
            << "degree column row " << i;
      }
      if (rec.has_vertex) rec.vertex = block.vertex()[i];
      out.push_back(rec);
    }
  }
  // An exhausted cursor keeps returning empty batches.
  EXPECT_EQ(cursor.next_batch(block), 0u);
  EXPECT_TRUE(cursor.done());
  return out;
}

/// Asserts serial next() and next_batch(K) agree for every K, in events,
/// starts, cost and final RNG position.
template <typename MakeCursor>
void check_batch_equivalence(MakeCursor make_cursor) {
  auto serial = make_cursor();
  const std::vector<EventRec> expected = collect_serial(*serial);
  ASSERT_FALSE(expected.empty());
  for (const std::size_t k : kBatchSizes) {
    auto batched = make_cursor();
    const std::vector<EventRec> got = collect_batched(*batched, k);
    ASSERT_EQ(got.size(), expected.size()) << "K=" << k;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "K=" << k << " event " << i;
    }
    EXPECT_EQ(batched->starts(), serial->starts()) << "K=" << k;
    EXPECT_EQ(batched->cost(), serial->cost()) << "K=" << k;  // bitwise
    EXPECT_TRUE(batched->rng() == serial->rng()) << "K=" << k;
  }
}

TEST(StreamBatch, FrontierWeightedTreeAllBatchSizes) {
  const Graph g = test_graph();
  check_batch_equivalence([&] {
    return std::make_unique<FrontierCursor>(
        g, FrontierSampler::Config{.dimension = 8, .steps = 3000}, Rng(7));
  });
}

TEST(StreamBatch, FrontierLinearScanAllBatchSizes) {
  const Graph g = test_graph();
  check_batch_equivalence([&] {
    return std::make_unique<FrontierCursor>(
        g,
        FrontierSampler::Config{
            .dimension = 6, .steps = 3000,
            .selection = FrontierSampler::Selection::kLinearScan},
        Rng(8));
  });
}

TEST(StreamBatch, SingleRwWithBurnInAndLazinessAllBatchSizes) {
  const Graph g = test_graph();
  check_batch_equivalence([&] {
    return std::make_unique<SingleRwCursor>(
        g,
        SingleRandomWalk::Config{
            .steps = 2500, .burn_in = 137, .laziness = 0.3},
        Rng(9));
  });
}

TEST(StreamBatch, SingleRwPlainAllBatchSizes) {
  const Graph g = test_graph();
  check_batch_equivalence([&] {
    return std::make_unique<SingleRwCursor>(
        g, SingleRandomWalk::Config{.steps = 2500}, Rng(10));
  });
}

TEST(StreamBatch, MultipleRwAllBatchSizes) {
  const Graph g = test_graph();
  check_batch_equivalence([&] {
    return std::make_unique<MultipleRwCursor>(
        g,
        MultipleRandomWalks::Config{.num_walkers = 9,
                                    .steps_per_walker = 123},
        Rng(11));
  });
}

TEST(StreamBatch, RwjAllBatchSizes) {
  const Graph g = test_graph();
  check_batch_equivalence([&] {
    return std::make_unique<RwjCursor>(
        g,
        RandomWalkWithJumps::Config{
            .budget = 2000.0,
            .jump_probability = 0.2,
            .cost = {.jump_cost = 2.0, .hit_ratio = 0.5}},
        Rng(12));
  });
}

TEST(StreamBatch, MetropolisAllBatchSizes) {
  const Graph g = test_graph();
  check_batch_equivalence([&] {
    return std::make_unique<MetropolisCursor>(
        g, MetropolisHastingsWalk::Config{.steps = 3000}, Rng(13));
  });
}

// ------------------------------------------------------------------ sinks

/// Serializes every sink; the byte string is the complete numeric state.
std::string sink_state(const SinkSet& sinks) {
  std::ostringstream os;
  for (const auto& sink : sinks) sink->save_state(os);
  return os.str();
}

SinkSet make_sinks(const Graph& g) {
  SinkSet sinks;
  sinks.push_back(
      std::make_unique<DegreeDistributionSink>(g, DegreeKind::kSymmetric));
  sinks.push_back(std::make_unique<DegreeDistributionSink>(g, DegreeKind::kIn));
  sinks.push_back(std::make_unique<VertexDensitySink>(
      g, [](VertexId v) { return v % 3 == 0; }));
  sinks.push_back(std::make_unique<EdgeDensitySink>(
      [](const Edge&) { return true; },
      [](const Edge& e) { return e.u < e.v; }));
  sinks.push_back(std::make_unique<AssortativitySink>(g));
  sinks.push_back(std::make_unique<GraphMomentsSink>(g));
  sinks.push_back(std::make_unique<UniformDegreeSink>(g));
  sinks.push_back(std::make_unique<TriangleSink>(g));
  sinks.push_back(std::make_unique<ClusteringSink>(g));
  sinks.push_back(std::make_unique<MotifSink>(g));
  return sinks;
}

/// ingest_block must accumulate bit-identically to per-event consume()
/// for every sink type, on blocks containing edge, vertex, mixed and
/// empty rows (the MH + RWJ cursors produce all four).
TEST(StreamBatch, SinkBlockIngestMatchesConsume) {
  const Graph g = test_graph();
  const auto drive = [&](bool use_blocks, auto make_cursor) {
    SinkSet sinks = make_sinks(g);
    auto cursor_owner = make_cursor();
    SamplerCursor& cursor = *cursor_owner;
    if (use_blocks) {
      StreamEventBlock block(64);
      while (cursor.next_batch(block) > 0) {
        for (const auto& sink : sinks) sink->ingest_block(block);
      }
    } else {
      StreamEvent ev;
      while (cursor.next(ev)) {
        for (const auto& sink : sinks) sink->consume(ev);
      }
    }
    return sink_state(sinks);
  };
  const auto mh = [&] {
    return std::make_unique<MetropolisCursor>(
        g, MetropolisHastingsWalk::Config{.steps = 4000}, Rng(21));
  };
  const auto rwj = [&] {
    return std::make_unique<RwjCursor>(
        g,
        RandomWalkWithJumps::Config{.budget = 3000.0,
                                    .jump_probability = 0.15},
        Rng(22));
  };
  const auto fs = [&] {
    return std::make_unique<FrontierCursor>(
        g, FrontierSampler::Config{.dimension = 16, .steps = 4000}, Rng(23));
  };
  EXPECT_EQ(drive(true, mh), drive(false, mh));
  EXPECT_EQ(drive(true, rwj), drive(false, rwj));
  EXPECT_EQ(drive(true, fs), drive(false, fs));
}

// ------------------------------------------------- checkpoint mid-block

/// Pausing at an event count that is not a multiple of the engine's block
/// capacity (i.e. the last refill was truncated mid-block) must resume
/// into the same final state as an uninterrupted K=1 engine.
template <typename MakeCursor>
void check_midblock_roundtrip(const Graph& g, MakeCursor make_cursor,
                              std::uint64_t pause_after) {
  // Reference: serial engine (block capacity 1 — the pre-batching path).
  StreamEngine reference(make_cursor(), make_sinks(g), 1);
  reference.run_to_completion();

  // Batched engine, paused mid-block and checkpointed.
  StreamEngine first(make_cursor(), make_sinks(g), 64);
  ASSERT_EQ(first.pump(pause_after), pause_after);
  std::stringstream snapshot;
  first.save_checkpoint(snapshot);

  // Fresh engine, restored, driven to completion.
  StreamEngine resumed(make_cursor(), make_sinks(g), 64);
  resumed.load_checkpoint(snapshot);
  EXPECT_EQ(resumed.events(), pause_after);
  resumed.run_to_completion();

  EXPECT_EQ(resumed.events(), reference.events());
  EXPECT_EQ(resumed.cursor().cost(), reference.cursor().cost());
  EXPECT_TRUE(resumed.cursor().rng() == reference.cursor().rng());
  std::ostringstream a;
  std::ostringstream b;
  for (const auto& sink : resumed.sinks()) sink->save_state(a);
  for (const auto& sink : reference.sinks()) sink->save_state(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(StreamBatch, CheckpointMidBlockAllCursors) {
  const Graph g = test_graph();
  check_midblock_roundtrip(
      g,
      [&] {
        return std::make_unique<FrontierCursor>(
            g, FrontierSampler::Config{.dimension = 8, .steps = 2000},
            Rng(31));
      },
      777);  // 777 = 12 full 64-blocks + 9: pause lands mid-block
  check_midblock_roundtrip(
      g,
      [&] {
        return std::make_unique<SingleRwCursor>(
            g,
            SingleRandomWalk::Config{
                .steps = 2000, .burn_in = 100, .laziness = 0.2},
            Rng(32));
      },
      333);
  check_midblock_roundtrip(
      g,
      [&] {
        return std::make_unique<MultipleRwCursor>(
            g,
            MultipleRandomWalks::Config{.num_walkers = 7,
                                        .steps_per_walker = 200},
            Rng(33));
      },
      555);
  check_midblock_roundtrip(
      g,
      [&] {
        return std::make_unique<RwjCursor>(
            g,
            RandomWalkWithJumps::Config{.budget = 1500.0,
                                        .jump_probability = 0.25},
            Rng(34));
      },
      421);
  check_midblock_roundtrip(
      g,
      [&] {
        return std::make_unique<MetropolisCursor>(
            g, MetropolisHastingsWalk::Config{.steps = 2000}, Rng(35));
      },
      999);
}

// --------------------------------------------------------------- drains

/// drain_cursor_into through arenas of every block capacity produces the
/// same SampleRecord, and reuses the arena's storage across runs.
TEST(StreamBatch, DrainArenaReuseAndCapacityIndependence) {
  const Graph g = test_graph();
  const FrontierSampler fs(g, {.dimension = 8, .steps = 1000});
  Rng reference_rng(41);
  const SampleRecord expected = fs.run(reference_rng);
  for (const std::size_t k : kBatchSizes) {
    SampleArena arena{SampleRecord{}, StreamEventBlock(k)};
    Rng rng(41);
    const SampleRecord& rec = fs.run_into(arena, rng);
    EXPECT_EQ(rec.edges, expected.edges) << "K=" << k;
    EXPECT_EQ(rec.starts, expected.starts) << "K=" << k;
    EXPECT_EQ(rec.cost, expected.cost) << "K=" << k;
    EXPECT_TRUE(rng == reference_rng) << "K=" << k;

    // Second run through the same arena: same result, no capacity growth.
    const Edge* data_before = rec.edges.data();
    const std::size_t cap_before = rec.edges.capacity();
    Rng rng2(41);
    const SampleRecord& rec2 = fs.run_into(arena, rng2);
    EXPECT_EQ(rec2.edges, expected.edges);
    EXPECT_EQ(rec2.edges.capacity(), cap_before);
    EXPECT_EQ(rec2.edges.data(), data_before);
  }
}

TEST(StreamBatch, BlockCapacityValidation) {
  EXPECT_THROW(StreamEventBlock(0), std::invalid_argument);
  StreamEventBlock block(4);
  EXPECT_EQ(block.capacity(), 4u);
  EXPECT_TRUE(block.empty());
  block.push_edge(1, 2, 3);
  EXPECT_EQ(block.size(), 1u);
  EXPECT_EQ(block.room(), 3u);
  block.clear();
  EXPECT_TRUE(block.empty());
}

}  // namespace
}  // namespace frontier

#include "random/weighted_tree.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace frontier {
namespace {

TEST(WeightedTree, EmptyTotalIsZero) {
  WeightedTree tree(0);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
}

TEST(WeightedTree, BuildFromWeights) {
  std::vector<double> w{1.0, 2.0, 3.0};
  WeightedTree tree{std::span<const double>(w)};
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_DOUBLE_EQ(tree.total(), 6.0);
  EXPECT_DOUBLE_EQ(tree.get(0), 1.0);
  EXPECT_DOUBLE_EQ(tree.get(1), 2.0);
  EXPECT_DOUBLE_EQ(tree.get(2), 3.0);
}

TEST(WeightedTree, RejectsNegativeWeight) {
  std::vector<double> w{1.0, -1.0};
  EXPECT_THROW(WeightedTree{std::span<const double>(w)},
               std::invalid_argument);
  WeightedTree tree(2);
  EXPECT_THROW(tree.set(0, -2.0), std::invalid_argument);
}

TEST(WeightedTree, SetUpdatesTotal) {
  WeightedTree tree(4);
  tree.set(0, 1.0);
  tree.set(3, 5.0);
  EXPECT_DOUBLE_EQ(tree.total(), 6.0);
  tree.set(0, 2.0);
  EXPECT_DOUBLE_EQ(tree.total(), 7.0);
  tree.set(3, 0.0);
  EXPECT_DOUBLE_EQ(tree.total(), 2.0);
}

TEST(WeightedTree, OutOfRangeAccessThrows) {
  WeightedTree tree(2);
  EXPECT_THROW(tree.set(2, 1.0), std::out_of_range);
  EXPECT_THROW((void)tree.get(5), std::out_of_range);
}

TEST(WeightedTree, SampleOnZeroTotalThrows) {
  WeightedTree tree(3);
  Rng rng(1);
  EXPECT_THROW((void)tree.sample(rng), std::logic_error);
}

TEST(WeightedTree, FindPrefixPicksCorrectSlot) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0};  // prefix sums 1, 3, 6, 10
  WeightedTree tree{std::span<const double>(w)};
  EXPECT_EQ(tree.find_prefix(0.0), 0u);
  EXPECT_EQ(tree.find_prefix(0.999), 0u);
  EXPECT_EQ(tree.find_prefix(1.0), 1u);
  EXPECT_EQ(tree.find_prefix(2.999), 1u);
  EXPECT_EQ(tree.find_prefix(3.0), 2u);
  EXPECT_EQ(tree.find_prefix(5.999), 2u);
  EXPECT_EQ(tree.find_prefix(6.0), 3u);
  EXPECT_EQ(tree.find_prefix(9.999), 3u);
}

TEST(WeightedTree, ZeroWeightSlotNeverSampled) {
  std::vector<double> w{2.0, 0.0, 1.0};
  WeightedTree tree{std::span<const double>(w)};
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(tree.sample(rng), 1u);
}

TEST(WeightedTree, EmpiricalFrequenciesMatchWeights) {
  std::vector<double> w{5.0, 1.0, 4.0};
  WeightedTree tree{std::span<const double>(w)};
  Rng rng(11);
  std::vector<int> counts(3, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[tree.sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i] / 10.0, 0.005);
  }
}

TEST(WeightedTree, DynamicUpdatesShiftDistribution) {
  WeightedTree tree(2);
  tree.set(0, 1.0);
  tree.set(1, 1.0);
  Rng rng(13);
  tree.set(0, 9.0);  // now 90/10
  int zero_hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (tree.sample(rng) == 0) ++zero_hits;
  }
  EXPECT_NEAR(static_cast<double>(zero_hits) / n, 0.9, 0.01);
}

TEST(WeightedTree, ManyIncrementalUpdatesStayConsistent) {
  const std::size_t k = 64;
  WeightedTree tree(k);
  std::vector<double> shadow(k, 0.0);
  Rng rng(17);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t i = uniform_index(rng, k);
    const double w = uniform01(rng) * 10.0;
    tree.set(i, w);
    shadow[i] = w;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(tree.get(i), shadow[i]);
    total += shadow[i];
  }
  EXPECT_NEAR(tree.total(), total, 1e-9);
}

class WeightedTreeSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WeightedTreeSizeSweep, LinearWeightsSampleProportionally) {
  const std::size_t k = GetParam();
  std::vector<double> w(k);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    w[i] = static_cast<double>(i + 1);
    total += w[i];
  }
  WeightedTree tree{std::span<const double>(w)};
  Rng rng(200 + k);
  std::vector<int> counts(k, 0);
  const int n = 30000 * static_cast<int>(k);
  for (int i = 0; i < n; ++i) ++counts[tree.sample(rng)];
  for (std::size_t i = 0; i < k; ++i) {
    const double expect = w[i] / total;
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expect,
                0.12 * expect + 2e-4)
        << "slot " << i << " of " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WeightedTreeSizeSweep,
                         ::testing::Values(1, 2, 3, 8, 33));

}  // namespace
}  // namespace frontier

#include "random/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace frontier {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, IsDeterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SplitStreamsDiffer) {
  const Rng base(99);
  Rng s0 = base.split_stream(0);
  Rng s1 = base.split_stream(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0() == s1()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, SplitStreamIsReproducible) {
  const Rng base(99);
  Rng a = base.split_stream(17);
  Rng b = base.split_stream(17);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Uniform01, InHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += uniform01(rng);
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(UniformIndex, RespectsBound) {
  Rng rng(11);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(uniform_index(rng, n), n);
    }
  }
}

TEST(UniformIndex, ZeroAndOneAlwaysZero) {
  Rng rng(13);
  EXPECT_EQ(uniform_index(rng, 0), 0u);
  EXPECT_EQ(uniform_index(rng, 1), 0u);
}

TEST(UniformIndex, IsApproximatelyUniform) {
  Rng rng(17);
  const std::uint64_t buckets = 10;
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[uniform_index(rng, buckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(UniformRange, InclusiveBounds) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(uniform_range(rng, 5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 8u);
}

TEST(Bernoulli, DegenerateProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
    EXPECT_FALSE(bernoulli(rng, -0.5));
    EXPECT_TRUE(bernoulli(rng, 1.5));
  }
}

TEST(Bernoulli, MatchesProbability) {
  Rng rng(29);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (bernoulli(rng, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Exponential, MeanIsInverseRate) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += exponential(rng, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Exponential, AlwaysNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(exponential(rng, 0.5), 0.0);
  }
}

TEST(GeometricFailures, CertainSuccessYieldsZero) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric_failures(rng, 1.0), 0u);
}

TEST(GeometricFailures, MeanMatchesTheory) {
  Rng rng(43);
  const double p = 0.2;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(geometric_failures(rng, p));
  }
  // E[failures] = (1-p)/p = 4.
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.1);
}

class UniformIndexSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexSweep, ChiSquareWithinBound) {
  const std::uint64_t k = GetParam();
  Rng rng(1000 + k);
  const std::uint64_t draws = 50000;
  std::vector<std::uint64_t> counts(k, 0);
  for (std::uint64_t i = 0; i < draws; ++i) ++counts[uniform_index(rng, k)];
  const double expected = static_cast<double>(draws) / static_cast<double>(k);
  double chi2 = 0.0;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // Very loose bound: chi2 for k-1 dof has mean k-1, sd sqrt(2(k-1));
  // allow 6 sigma.
  const double dof = static_cast<double>(k - 1);
  EXPECT_LT(chi2, dof + 6.0 * std::sqrt(2.0 * dof) + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIndexSweep,
                         ::testing::Values(2, 3, 7, 16, 100, 1000));

}  // namespace
}  // namespace frontier

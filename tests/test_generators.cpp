#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

#include <cmath>

#include <numeric>
#include <stdexcept>

#include "graph/components.hpp"
#include "graph/metrics.hpp"

namespace frontier {
namespace {

TEST(BarabasiAlbert, ProducesConnectedGraph) {
  Rng rng(1);
  const Graph g = barabasi_albert(500, 2, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_TRUE(is_connected(g));
}

TEST(BarabasiAlbert, AverageDegreeNearTwiceLinks) {
  Rng rng(2);
  const Graph g = barabasi_albert(5000, 3, rng);
  EXPECT_NEAR(g.average_degree(), 6.0, 0.5);
}

TEST(BarabasiAlbert, MinimumDegreeIsLinks) {
  Rng rng(3);
  const std::size_t links = 2;
  const Graph g = barabasi_albert(300, links, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), links);
  }
}

TEST(BarabasiAlbert, HasHeavyTail) {
  Rng rng(4);
  const Graph g = barabasi_albert(5000, 2, rng);
  // Preferential attachment: the hub should be far above the mean.
  EXPECT_GT(g.max_degree(), 10 * g.average_degree());
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  Rng rng(5);
  EXPECT_THROW((void)barabasi_albert(5, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)barabasi_albert(2, 2, rng), std::invalid_argument);
}

TEST(DirectedPreferential, InDegreeTailHeavierThanOut) {
  Rng rng(6);
  const Graph g = directed_preferential(3000, 3, 0.3, rng);
  std::uint32_t max_in = 0;
  std::uint32_t max_out = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_in = std::max(max_in, g.in_degree(v));
    max_out = std::max(max_out, g.out_degree(v));
  }
  EXPECT_GT(max_in, max_out);
}

TEST(DirectedPreferential, FullReciprocityMakesSymmetricDegrees) {
  Rng rng(7);
  const Graph g = directed_preferential(500, 2, 1.0, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.in_degree(v), g.out_degree(v));
  }
}

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  Rng rng(8);
  const std::size_t n = 2000;
  const double p = 0.005;
  const Graph g = erdos_renyi_gnp(n, p, rng);
  const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_undirected_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(ErdosRenyiGnp, ZeroProbabilityGivesNoEdges) {
  Rng rng(9);
  const Graph g = erdos_renyi_gnp(100, 0.0, rng);
  EXPECT_EQ(g.num_undirected_edges(), 0u);
}

TEST(ErdosRenyiGnp, ProbabilityOneGivesCompleteGraph) {
  Rng rng(10);
  const Graph g = erdos_renyi_gnp(30, 1.0, rng);
  EXPECT_EQ(g.num_undirected_edges(), 30u * 29u / 2u);
}

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  Rng rng(11);
  const Graph g = erdos_renyi_gnm(100, 250, rng);
  EXPECT_EQ(g.num_undirected_edges(), 250u);
}

TEST(ErdosRenyiGnm, FullAndEmptyBoundaries) {
  Rng rng(12);
  EXPECT_EQ(erdos_renyi_gnm(10, 45, rng).num_undirected_edges(), 45u);
  EXPECT_EQ(erdos_renyi_gnm(10, 0, rng).num_undirected_edges(), 0u);
  EXPECT_THROW((void)erdos_renyi_gnm(10, 46, rng), std::invalid_argument);
}

TEST(ConfigurationModel, RespectsDegreeSumApproximately) {
  Rng rng(13);
  std::vector<std::uint32_t> degrees(1000, 3);
  degrees[0] = 4;
  degrees[1] = 5;  // make the sum even: 3*998 + 9 = 3003 odd -> adjust
  degrees[2] = 4;
  const std::uint64_t sum =
      std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
  ASSERT_EQ(sum % 2, 0u);
  const Graph g = configuration_model(degrees, rng);
  // Erased self-loops/multi-edges lose only a small fraction of stubs.
  EXPECT_GT(g.volume(), static_cast<std::uint64_t>(0.97 * sum));
  EXPECT_LE(g.volume(), sum);
}

TEST(ConfigurationModel, OddDegreeSumRejected) {
  Rng rng(14);
  std::vector<std::uint32_t> degrees{3, 2, 2};
  EXPECT_THROW((void)configuration_model(degrees, rng),
               std::invalid_argument);
}

TEST(PowerLawDegrees, BoundsAndEvenSum) {
  Rng rng(15);
  const auto degrees = power_law_degrees(5000, 2.3, 1, 100, rng);
  std::uint64_t sum = 0;
  for (auto d : degrees) {
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 101u);  // +1 possible from the even-sum fix-up
    sum += d;
  }
  EXPECT_EQ(sum % 2, 0u);
}

TEST(PowerLawDegrees, LowDegreesDominate) {
  Rng rng(16);
  const auto degrees = power_law_degrees(10000, 2.5, 1, 1000, rng);
  std::size_t ones = 0;
  for (auto d : degrees) {
    if (d == 1) ++ones;
  }
  EXPECT_GT(ones, degrees.size() / 2);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  Rng rng(17);
  const Graph g = watts_strogatz(50, 2, 0.0, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 4u);
  }
  EXPECT_TRUE(is_connected(g));
}

TEST(WattsStrogatz, RewiringPreservesEdgeBudget) {
  Rng rng(18);
  const Graph g = watts_strogatz(200, 3, 0.5, rng);
  // Rewiring can merge duplicates; count stays close to n*k.
  EXPECT_LE(g.num_undirected_edges(), 200u * 3u);
  EXPECT_GT(g.num_undirected_edges(), 190u * 3u);
}

TEST(DeterministicGraphs, PathCycleStarCompleteGrid) {
  const Graph path = path_graph(5);
  EXPECT_EQ(path.num_undirected_edges(), 4u);
  EXPECT_EQ(path.degree(0), 1u);
  EXPECT_EQ(path.degree(2), 2u);

  const Graph cycle = cycle_graph(6);
  EXPECT_EQ(cycle.num_undirected_edges(), 6u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(cycle.degree(v), 2u);

  const Graph star = star_graph(7);
  EXPECT_EQ(star.degree(0), 6u);
  for (VertexId v = 1; v < 7; ++v) EXPECT_EQ(star.degree(v), 1u);

  const Graph k5 = complete_graph(5);
  EXPECT_EQ(k5.num_undirected_edges(), 10u);

  const Graph k23 = complete_bipartite(2, 3);
  EXPECT_EQ(k23.num_undirected_edges(), 6u);
  EXPECT_EQ(k23.degree(0), 3u);
  EXPECT_EQ(k23.degree(2), 2u);

  const Graph grid = grid_graph(3, 4);
  EXPECT_EQ(grid.num_vertices(), 12u);
  EXPECT_EQ(grid.num_undirected_edges(), 3u * 3u + 2u * 4u);
}

TEST(DisjointUnion, PreservesComponentsAndDirections) {
  GraphBuilder b(2);
  b.add_edge(0, 1);  // directed only
  const Graph directed_pair = b.build();
  const std::vector<Graph> parts{path_graph(3), directed_pair};
  const Graph u = disjoint_union(parts);
  EXPECT_EQ(u.num_vertices(), 5u);
  EXPECT_EQ(u.num_directed_edges(), 2u * 2u + 1u);
  EXPECT_TRUE(u.has_directed_edge(3, 4));
  EXPECT_FALSE(u.has_directed_edge(4, 3));
  EXPECT_EQ(connected_components(u).num_components(), 2u);
}

TEST(JoinBySingleEdge, ConnectsAtMinimumDegreeVertices) {
  // Star: center 0 has max degree; leaves have degree 1 (vertex 1 is the
  // smallest-id leaf). Path of 2: both ends degree 1 (vertex 0 picked).
  const Graph a = star_graph(5);
  const Graph b = path_graph(2);
  const Graph joined = join_by_single_edge(a, b);
  EXPECT_EQ(joined.num_vertices(), 7u);
  EXPECT_TRUE(is_connected(joined));
  EXPECT_TRUE(joined.has_edge(1, 5));  // leaf 1 <-> shifted vertex 0
  EXPECT_EQ(joined.num_undirected_edges(),
            a.num_undirected_edges() + b.num_undirected_edges() + 1);
}

TEST(JoinBySingleEdge, GabShapeMatchesPaper) {
  // Two BA graphs, average degrees ~2 and ~10, single connecting edge
  // (Section 6.1's G_AB).
  Rng rng(19);
  const Graph ga = barabasi_albert(2000, 1, rng);
  const Graph gb = barabasi_albert(2000, 5, rng);
  const Graph gab = join_by_single_edge(ga, gb);
  EXPECT_TRUE(is_connected(gab));
  EXPECT_NEAR(ga.average_degree(), 2.0, 0.3);
  EXPECT_NEAR(gb.average_degree(), 10.0, 0.5);
  EXPECT_EQ(gab.num_undirected_edges(),
            ga.num_undirected_edges() + gb.num_undirected_edges() + 1);
}

class GeneratorDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorDeterminism, SameSeedSameGraph) {
  Rng rng1(GetParam());
  Rng rng2(GetParam());
  const Graph a = barabasi_albert(400, 2, rng1);
  const Graph b = barabasi_albert(400, 2, rng2);
  ASSERT_EQ(a.volume(), b.volume());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminism,
                         ::testing::Values(1, 42, 20100907));

}  // namespace
}  // namespace frontier

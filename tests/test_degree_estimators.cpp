#include "estimators/degree_distribution.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

std::vector<Edge> full_edge_pass(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.volume());
  for (EdgeIndex j = 0; j < g.volume(); ++j) edges.push_back(g.edge_at(j));
  return edges;
}

TEST(DegreeDistributionEstimator, ExactOnFullPass) {
  Rng rng(1);
  const Graph g = directed_preferential(400, 2, 0.5, rng);
  for (auto kind :
       {DegreeKind::kSymmetric, DegreeKind::kIn, DegreeKind::kOut}) {
    const auto truth = degree_distribution(g, kind);
    const auto est = estimate_degree_distribution(g, full_edge_pass(g), kind);
    ASSERT_EQ(est.size(), truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      // Vertices with in/out degree 0 are invisible to edge sampling only
      // if their symmetric degree is 0 too — here every vertex has an edge,
      // so the full pass reproduces the exact distribution.
      EXPECT_NEAR(est[i], truth[i], 1e-9) << "degree " << i;
    }
  }
}

TEST(DegreeDistributionEstimator, SumsToOne) {
  Rng rng(2);
  const Graph g = barabasi_albert(300, 2, rng);
  const SingleRandomWalk walker(g, {.steps = 5000});
  const auto est = estimate_degree_distribution(
      g, walker.run(rng).edges, DegreeKind::kSymmetric);
  EXPECT_NEAR(std::accumulate(est.begin(), est.end(), 0.0), 1.0, 1e-9);
}

TEST(DegreeDistributionEstimator, EmptyInputIsEmpty) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(
      estimate_degree_distribution(g, {}, DegreeKind::kSymmetric).empty());
}

TEST(DegreeDistributionEstimator, ConvergesOnLongWalk) {
  Rng rng(3);
  const Graph g = barabasi_albert(150, 2, rng);
  const auto truth = degree_distribution(g, DegreeKind::kSymmetric);
  const SingleRandomWalk walker(g, {.steps = 500000});
  const auto est = estimate_degree_distribution(
      g, walker.run(rng).edges, DegreeKind::kSymmetric);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0.005) continue;  // skip rare degrees (noise dominated)
    EXPECT_NEAR(est[i], truth[i], 0.15 * truth[i] + 0.002) << "degree " << i;
  }
}

TEST(DegreeDistributionEstimator, FrontierSamplerConvergesToo) {
  Rng rng(4);
  const Graph g = barabasi_albert(150, 2, rng);
  const auto truth = degree_distribution(g, DegreeKind::kSymmetric);
  const FrontierSampler fs(g, {.dimension = 20, .steps = 500000});
  const auto est = estimate_degree_distribution(g, fs.run(rng).edges,
                                                DegreeKind::kSymmetric);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0.005) continue;
    EXPECT_NEAR(est[i], truth[i], 0.15 * truth[i] + 0.002) << "degree " << i;
  }
}

TEST(DegreeDistributionUniform, ExactWhenEveryVertexSampledOnce) {
  Rng rng(5);
  const Graph g = barabasi_albert(200, 2, rng);
  std::vector<VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  const auto truth = degree_distribution(g, DegreeKind::kSymmetric);
  const auto est =
      estimate_degree_distribution_uniform(g, all, DegreeKind::kSymmetric);
  ASSERT_EQ(est.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(est[i], truth[i], 1e-12);
  }
}

TEST(DegreeCcdfEstimator, MatchesPdfThenCcdf) {
  Rng rng(6);
  const Graph g = barabasi_albert(100, 2, rng);
  const SingleRandomWalk walker(g, {.steps = 2000});
  Rng ra(50);
  Rng rb(50);
  const auto edges_a = walker.run(ra).edges;
  const auto edges_b = walker.run(rb).edges;
  const auto via_helper = estimate_degree_ccdf(g, edges_a, DegreeKind::kIn);
  const auto manual = ccdf_from_pdf(
      estimate_degree_distribution(g, edges_b, DegreeKind::kIn));
  ASSERT_EQ(via_helper.size(), manual.size());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    EXPECT_NEAR(via_helper[i], manual[i], 1e-12);
  }
}

}  // namespace
}  // namespace frontier

// Fixture: a bench binary that honors the BenchSession discipline.
// (Not compiled — fixture trees are scanned by frontier_lint tests only,
// so the session type needs no real definition here.)
struct BenchSession {};

int main(int argc, char** argv) {
  BenchSession session;  // stands in for bench_common::BenchSession
  (void)session;
  (void)argc;
  (void)argv;
  return 0;
}

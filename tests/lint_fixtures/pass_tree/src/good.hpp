// Fixture: a clean library header — #pragma once present, deterministic
// time source, no stdout. Must produce zero findings.
#pragma once

#include <chrono>

namespace fixture {

using Clock = std::chrono::steady_clock;

// Prose mentioning std::rand and printf in a comment must NOT trip the
// token rules (the scrubber blanks comments before matching).
inline long elapsed_ns(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

}  // namespace fixture

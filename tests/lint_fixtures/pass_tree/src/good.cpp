// Fixture: a clean library source file. A forbidden token appears once,
// but with a lint:allow waiver carrying a rationale — so zero findings.
#include <chrono>
#include <cstdint>

namespace fixture {

// Error strings mentioning "rand() is banned" or time(0) must not match:
// string literal contents are scrubbed before token matching.
const char* policy_message() {
  return "rand() is banned; so is time(0) and std::cout in library code";
}

std::uint64_t entropy_for_docs() {
  // Hypothetical sanctioned use, waived with a written rationale:
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  // lint:allow(determinism-no-wall-clock): constant mixes like random_device docs reference, no entropy drawn
  const std::uint64_t big = 1'000'000'007ull;  // digit separators survive
  return seed ^ big;
}

}  // namespace fixture

// Fixture: determinism violations — each line below must be reported by
// determinism-no-wall-clock with its exact line number.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned bad_seed() {
  std::random_device rd;                              // line 11
  return rd() + static_cast<unsigned>(time(nullptr)); // line 12
}

int bad_draw() { return std::rand(); }  // line 15

long bad_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // 18
}

}  // namespace fixture

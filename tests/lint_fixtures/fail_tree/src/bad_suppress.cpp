// Fixture: a waiver without a rationale — suppression-rationale must flag
// it (and the underlying finding stays suppressed, so exactly one
// diagnostic comes from line 8).
#include <random>

namespace fixture {

unsigned lazy() { return std::random_device{}(); }  // lint:allow(determinism-no-wall-clock)

}  // namespace fixture

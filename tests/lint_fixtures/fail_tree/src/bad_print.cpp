// Fixture: stdout violations in library code — no-stdout-in-library must
// flag both lines below.
#include <cstdio>
#include <iostream>

namespace fixture {

void bad_report(int n) {
  std::cout << "n = " << n << "\n";  // line 9
  printf("n = %d\n", n);             // line 10
}

}  // namespace fixture

// Fixture: header without #pragma once — pragma-once must flag line 1.
#ifndef FIXTURE_BAD_HEADER_HPP
#define FIXTURE_BAD_HEADER_HPP

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture

#endif

// Fixture: hand-rolled file replacement — both lines below must be
// reported by durable-file-replacement with their exact line numbers.
#include <cstdio>
#include <fstream>
#include <string>

namespace fixture {

void racy_swap(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::ofstream f(tmp);                       // line 11
  f << body;
  f.close();
  (void)std::rename(tmp.c_str(), path.c_str());  // line 14
}

}  // namespace fixture

// Fixture: a bench binary that skips the session discipline — no --json,
// no fingerprint. bench-session must flag it.
#include <iostream>

int main() {
  std::cout << "elapsed: 1.0s\n";
  return 0;
}

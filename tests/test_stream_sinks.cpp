// Online sinks vs batch estimators: fed the same edge/vertex sequence,
// every sink must produce bit-identical output to its batch counterpart.
#include "stream/sinks.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "estimators/degree_distribution.hpp"
#include "estimators/density.hpp"
#include "estimators/graph_moments.hpp"
#include "graph/generators.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/metropolis.hpp"
#include "sampling/single_rw.hpp"
#include "stream/engine.hpp"
#include "stream/sampler_cursors.hpp"

namespace frontier {
namespace {

Graph test_graph() {
  Rng rng(99);
  return barabasi_albert(300, 3, rng);
}

// Streams the batch record's events straight into a sink, so sink output
// can be compared against the batch estimator over the identical sequence.
void feed_edges(EstimatorSink& sink, const SampleRecord& rec) {
  StreamEvent ev;
  for (const Edge& e : rec.edges) {
    ev.clear();
    ev.edge = e;
    ev.has_edge = true;
    sink.consume(ev);
  }
}

void feed_vertices(EstimatorSink& sink, const SampleRecord& rec) {
  StreamEvent ev;
  for (VertexId v : rec.vertices) {
    ev.clear();
    ev.vertex = v;
    ev.has_vertex = true;
    sink.consume(ev);
  }
}

SampleRecord fs_record(const Graph& g, std::uint64_t seed,
                       std::uint64_t steps) {
  const FrontierSampler fs(g, {.dimension = 10, .steps = steps});
  Rng rng(seed);
  return fs.run(rng);
}

TEST(StreamSinks, DegreeDistributionMatchesBatch) {
  const Graph g = test_graph();
  const SampleRecord rec = fs_record(g, 5, 20000);
  DegreeDistributionSink sink(g, DegreeKind::kSymmetric);
  feed_edges(sink, rec);
  const auto batch = estimate_degree_distribution(g, rec.edges,
                                                  DegreeKind::kSymmetric);
  const auto streamed = sink.distribution();
  ASSERT_EQ(batch.size(), streamed.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i], streamed[i]) << "bucket " << i;  // bitwise
  }
  const auto batch_ccdf = estimate_degree_ccdf(g, rec.edges,
                                               DegreeKind::kSymmetric);
  EXPECT_EQ(batch_ccdf, sink.ccdf());
  EXPECT_EQ(sink.edges_consumed(), rec.edges.size());
}

TEST(StreamSinks, DegreeDistributionInDegreeKind) {
  const Graph g = test_graph();
  const SampleRecord rec = fs_record(g, 6, 10000);
  DegreeDistributionSink sink(g, DegreeKind::kIn);
  feed_edges(sink, rec);
  EXPECT_EQ(estimate_degree_distribution(g, rec.edges, DegreeKind::kIn),
            sink.distribution());
}

TEST(StreamSinks, VertexDensityMatchesBatch) {
  const Graph g = test_graph();
  const SampleRecord rec = fs_record(g, 7, 15000);
  const auto pred = [&g](VertexId v) { return g.degree(v) > 5; };
  VertexDensitySink sink(g, pred);
  feed_edges(sink, rec);
  EXPECT_EQ(estimate_vertex_label_density(g, rec.edges, pred), sink.value());
}

TEST(StreamSinks, EdgeDensityMatchesBatch) {
  const Graph g = test_graph();
  const SampleRecord rec = fs_record(g, 8, 15000);
  const auto labeled = [](const Edge& e) { return e.u % 2 == 0; };
  const auto has_label = [](const Edge& e) { return e.v % 3 == 0; };
  EdgeDensitySink sink(labeled, has_label);
  feed_edges(sink, rec);
  EXPECT_EQ(estimate_edge_label_density(rec.edges, labeled, has_label),
            sink.value());
}

TEST(StreamSinks, AssortativityMatchesBatch) {
  const Graph g = test_graph();
  const SampleRecord rec = fs_record(g, 9, 15000);
  AssortativitySink sink(g);
  feed_edges(sink, rec);
  EXPECT_EQ(estimate_assortativity(g, rec.edges), sink.value());
}

TEST(StreamSinks, GraphMomentsMatchBatch) {
  const Graph g = test_graph();
  const SampleRecord rec = fs_record(g, 10, 15000);
  GraphMomentsSink sink(g, 3);
  feed_edges(sink, rec);
  EXPECT_EQ(estimate_average_degree(g, rec.edges), sink.average_degree());
  EXPECT_EQ(estimate_degree_moment(g, rec.edges, 1), sink.degree_moment(1));
  EXPECT_EQ(estimate_degree_moment(g, rec.edges, 2), sink.degree_moment(2));
  EXPECT_EQ(estimate_degree_moment(g, rec.edges, 3), sink.degree_moment(3));
  EXPECT_EQ(estimate_volume(g, rec.edges, 300.0), sink.volume(300.0));
  EXPECT_THROW((void)sink.degree_moment(4), std::out_of_range);
  EXPECT_EQ(sink.observed_degrees().count(), rec.edges.size());
}

TEST(StreamSinks, UniformDegreeMatchesBatchOnMhVisits) {
  const Graph g = test_graph();
  const MetropolisHastingsWalk mh(g, {.steps = 10000});
  Rng rng(11);
  const SampleRecord rec = mh.run(rng);
  UniformDegreeSink sink(g);
  feed_vertices(sink, rec);
  EXPECT_EQ(estimate_average_degree_uniform(g, rec.vertices), sink.value());
  EXPECT_EQ(sink.vertices_consumed(), rec.vertices.size());
}

TEST(StreamSinks, EmptyStreamsGiveZeroEstimates) {
  const Graph g = test_graph();
  DegreeDistributionSink dd(g, DegreeKind::kSymmetric);
  EXPECT_TRUE(dd.distribution().empty());
  VertexDensitySink vd(g, [](VertexId) { return true; });
  EXPECT_EQ(vd.value(), 0.0);
  GraphMomentsSink gm(g);
  EXPECT_EQ(gm.average_degree(), 0.0);
  UniformDegreeSink ud(g);
  EXPECT_EQ(ud.value(), 0.0);
}

TEST(StreamSinks, EdgeSinksIgnoreVertexOnlyEvents) {
  const Graph g = test_graph();
  GraphMomentsSink sink(g);
  StreamEvent ev;
  ev.vertex = 0;
  ev.has_vertex = true;
  sink.consume(ev);
  EXPECT_EQ(sink.edges_consumed(), 0u);
}

TEST(StreamSinks, EngineFeedsAllSinksAndCountsEvents) {
  // End-to-end: a streaming engine over an FS cursor reproduces the batch
  // estimates of the same seed without materializing the record.
  const Graph g = test_graph();
  const FrontierSampler fs(g, {.dimension = 10, .steps = 20000});
  Rng batch_rng(5);
  const SampleRecord rec = fs.run(batch_rng);

  SinkSet sinks;
  sinks.push_back(
      std::make_unique<DegreeDistributionSink>(g, DegreeKind::kSymmetric));
  sinks.push_back(std::make_unique<GraphMomentsSink>(g));
  StreamEngine engine(
      std::make_unique<FrontierCursor>(g, fs.config(), Rng(5)),
      std::move(sinks));
  const std::uint64_t events = engine.run_to_completion();
  EXPECT_EQ(events, 20000u);
  EXPECT_EQ(engine.events(), 20000u);
  EXPECT_TRUE(engine.finished());

  const auto& dd =
      dynamic_cast<const DegreeDistributionSink&>(*engine.sinks()[0]);
  const auto& gm = dynamic_cast<const GraphMomentsSink&>(*engine.sinks()[1]);
  EXPECT_EQ(estimate_degree_distribution(g, rec.edges, DegreeKind::kSymmetric),
            dd.distribution());
  EXPECT_EQ(estimate_average_degree(g, rec.edges), gm.average_degree());
  EXPECT_EQ(engine.cursor().cost(), rec.cost);
}

}  // namespace
}  // namespace frontier

// BenchReport: JSON round-trip fidelity (including 64-bit seeds, escaped
// strings, and non-finite metric values) and strict schema validation —
// every deviation a CI artifact could exhibit must be rejected with a
// message naming the offending key.
#include "stats/bench_report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>

namespace frontier {
namespace {

BenchReport sample_report() {
  ExperimentConfig cfg;
  cfg.runs_multiplier = 0.25;
  cfg.scale_multiplier = 1.5;
  cfg.threads = 8;
  cfg.seed = 0xfeedfacecafef00dULL;  // needs all 64 bits to round-trip
  BenchReport report = BenchReport::make("bench_unit_test", cfg);
  report.wall_time_seconds = 12.3456789;
  report.add_metric("geo_mean_error/FS(m=10)", 0.123456789012345, "");
  report.add_metric("throughput", 4.2e6, "edges/s");
  report.add_metric("tiny", 1e-300);
  report.add_metric("quote\"back\\slash\tnewline\n", 1.0);
  report.add_metric("micro µs", 2.0, "µs");
  return report;
}

TEST(BenchReport, JsonRoundTrip) {
  const BenchReport original = sample_report();
  const BenchReport parsed = BenchReport::parse_json(original.to_json());
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.library_version, original.library_version);
  EXPECT_EQ(parsed.config.runs_multiplier, original.config.runs_multiplier);
  EXPECT_EQ(parsed.config.scale_multiplier,
            original.config.scale_multiplier);
  EXPECT_EQ(parsed.config.threads, original.config.threads);
  EXPECT_EQ(parsed.config.seed, original.config.seed);
  EXPECT_EQ(parsed.wall_time_seconds, original.wall_time_seconds);
  EXPECT_EQ(parsed.metrics, original.metrics);
  // A second round trip is textually stable.
  EXPECT_EQ(parsed.to_json(), original.to_json());
}

TEST(BenchReport, NonFiniteMetricsSerializeAsNull) {
  BenchReport report = sample_report();
  report.add_metric("nan_metric", std::nan(""));
  report.add_metric("inf_metric", std::numeric_limits<double>::infinity());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"name\": \"nan_metric\", \"value\": null"),
            std::string::npos);
  const BenchReport parsed = BenchReport::parse_json(json);
  EXPECT_TRUE(std::isnan(parsed.metrics[parsed.metrics.size() - 2].value));
  EXPECT_TRUE(std::isnan(parsed.metrics.back().value));
}

TEST(BenchReport, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "frontier_report_test.json")
          .string();
  const BenchReport original = sample_report();
  original.write_file(path);
  const BenchReport parsed = BenchReport::read_file(path);
  EXPECT_EQ(parsed.to_json(), original.to_json());
  std::filesystem::remove(path);
}

TEST(BenchReport, ReadMissingFileThrows) {
  EXPECT_THROW(BenchReport::read_file("/no/such/dir/report.json"),
               BenchReportError);
}

TEST(BenchReport, FingerprintIgnoresThreadsOnly) {
  const BenchReport base = sample_report();
  BenchReport other = base;
  other.config.threads = 1;  // execution detail, same experiment
  EXPECT_EQ(base.config_fingerprint(), other.config_fingerprint());

  other = base;
  other.config.seed ^= 1;
  EXPECT_NE(base.config_fingerprint(), other.config_fingerprint());
  other = base;
  other.name += "x";
  EXPECT_NE(base.config_fingerprint(), other.config_fingerprint());
  other = base;
  other.config.runs_multiplier *= 2.0;
  EXPECT_NE(base.config_fingerprint(), other.config_fingerprint());
}

/// Expects parse_json to throw a BenchReportError mentioning `needle`.
void expect_schema_error(const std::string& json, const std::string& needle) {
  try {
    (void)BenchReport::parse_json(json);
    FAIL() << "expected BenchReportError containing \"" << needle << "\"";
  } catch (const BenchReportError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(BenchReport, SchemaViolationsRejected) {
  const std::string good = sample_report().to_json();

  expect_schema_error("not json at all", "invalid JSON");
  expect_schema_error(good + "trailing", "invalid JSON");
  expect_schema_error("[1, 2, 3]", "must be an object");
  expect_schema_error("{}", "missing key");

  // Tampering with any config field breaks the embedded fingerprint.
  std::string tampered = good;
  const auto seed_pos = tampered.find("\"seed\": ");
  ASSERT_NE(seed_pos, std::string::npos);
  // Mutate the second digit (the first could push the value past 2^64).
  char& digit = tampered[seed_pos + 9];
  digit = digit == '0' ? '1' : '0';
  expect_schema_error(tampered, "config_fingerprint does not match");

  // Changing threads alone must NOT break it (speedup comparisons).
  std::string threads_changed = good;
  const auto tpos = threads_changed.find("\"threads\": 8");
  ASSERT_NE(tpos, std::string::npos);
  threads_changed.replace(tpos, 12, "\"threads\": 1");
  EXPECT_NO_THROW((void)BenchReport::parse_json(threads_changed));

  // Unknown and wrongly typed keys.
  std::string unknown = good;
  unknown.replace(unknown.find("\"name\""), 6, "\"nome\"");
  expect_schema_error(unknown, "unknown key");
  std::string wrong_type = good;
  wrong_type.replace(wrong_type.find("12.3456789"), 10, "\"fast\"    ");
  expect_schema_error(wrong_type, "wall_time_seconds");

  std::string bad_version = good;
  bad_version.replace(bad_version.find("\"schema_version\": 1"), 19,
                      "\"schema_version\": 2");
  expect_schema_error(bad_version, "unsupported schema_version");
}

TEST(BenchReport, EmptyMetricsAllowed) {
  ExperimentConfig cfg;
  const BenchReport report = BenchReport::make("empty", cfg);
  const BenchReport parsed = BenchReport::parse_json(report.to_json());
  EXPECT_TRUE(parsed.metrics.empty());
}

}  // namespace
}  // namespace frontier

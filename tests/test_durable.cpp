// durable_write_file — crash-safe replace-by-rename with fsync
// discipline — plus the failpoint-injected fault matrix for every stage
// of its write path (open, write, fsync, rename, parent-dir sync).
#include "core/durable.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/failpoint.hpp"
#include "core/io_error.hpp"

namespace frontier {
namespace {

namespace fp = failpoint;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class DurableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear();
    path_ = ::testing::TempDir() + "durable_test.bin";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    fp::clear();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(DurableTest, WritesBytesExactlyIncludingNulAndNewlines) {
  const std::string body("a\0b\nc\r\n", 7);
  durable_write_file(path_, body);
  EXPECT_EQ(read_file(path_), body);
  // The staging file does not survive a successful write.
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(DurableTest, ReplacesAnExistingFile) {
  durable_write_file(path_, "old contents, longer than the replacement");
  durable_write_file(path_, "new");
  EXPECT_EQ(read_file(path_), "new");
}

TEST_F(DurableTest, EmptyBodyYieldsEmptyFile) {
  durable_write_file(path_, "");
  EXPECT_EQ(read_file(path_), "");
}

TEST_F(DurableTest, UnwritableDirectoryIsACleanIoError) {
  EXPECT_THROW(durable_write_file("/no/such/dir/f.bin", "x"), IoError);
}

TEST_F(DurableTest, FaultsBeforeTheRenameLeaveTheOldFileUntouched) {
  durable_write_file(path_, "survivor");
  for (const char* spec :
       {"durable.open=io-error", "durable.fsync=enospc",
        "durable.rename=io-error"}) {
    fp::configure(spec);
    EXPECT_THROW(durable_write_file(path_, "clobber"), IoError) << spec;
    fp::clear();
    EXPECT_EQ(read_file(path_), "survivor") << spec;
  }
  // And the path is not poisoned: the next write goes through.
  durable_write_file(path_, "clobber");
  EXPECT_EQ(read_file(path_), "clobber");
}

TEST_F(DurableTest, DirsyncFaultThrowsAfterTheSwapLands) {
  durable_write_file(path_, "old");
  fp::configure("durable.dirsync=io-error");
  EXPECT_THROW(durable_write_file(path_, "new"), IoError);
  fp::clear();
  // The rename already happened; the error only reports that durability
  // (the parent-directory fsync) was not confirmed.
  EXPECT_EQ(read_file(path_), "new");
}

TEST_F(DurableTest, EintrAndShortWriteInjectionsStillWriteEveryByte) {
  std::string body;
  for (int i = 0; i < 1000; ++i) {
    body += static_cast<char>('a' + i % 26);
  }
  // One faked EINTR return: the write loop retries and completes.
  fp::configure("durable.write=eintr@1");
  durable_write_file(path_, body);
  EXPECT_EQ(read_file(path_), body);
  // One torn write (a single byte lands): the loop resumes at the torn
  // offset and the final file is still byte-complete.
  fp::configure("durable.write=short-write@1");
  durable_write_file(path_, body);
  EXPECT_EQ(read_file(path_), body);
  EXPECT_GE(fp::hits("durable.write"), 2u) << "torn write never looped back";
}

}  // namespace
}  // namespace frontier

#include "sampling/distributed_fs.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "sampling/frontier_sampler.hpp"

namespace frontier {
namespace {

TEST(DistributedFs, RejectsBadConfig) {
  Rng rng(1);
  const Graph g = cycle_graph(4);
  EXPECT_THROW(DistributedFrontierSampler(
                   g, {.dimension = 0, .stop = {.max_steps = 10}}),
               std::invalid_argument);
  EXPECT_THROW(DistributedFrontierSampler(g, {.dimension = 2, .stop = {}}),
               std::invalid_argument);
}

TEST(DistributedFs, StopsAtMaxSteps) {
  Rng rng(2);
  const Graph g = barabasi_albert(50, 2, rng);
  const DistributedFrontierSampler dfs(
      g, {.dimension = 5, .stop = {.max_steps = 123}});
  const SampleRecord rec = dfs.run(rng);
  EXPECT_EQ(rec.edges.size(), 123u);
  EXPECT_EQ(rec.starts.size(), 5u);
}

TEST(DistributedFs, TimeHorizonScalesEventCount) {
  // Expected jump rate is the frontier degree sum; doubling the horizon
  // should roughly double the sampled edges.
  Rng rng(3);
  const Graph g = barabasi_albert(200, 2, rng);
  const DistributedFrontierSampler short_run(
      g, {.dimension = 10, .stop = {.time_horizon = 50.0}});
  const DistributedFrontierSampler long_run(
      g, {.dimension = 10, .stop = {.time_horizon = 100.0}});
  double short_total = 0.0;
  double long_total = 0.0;
  for (int r = 0; r < 30; ++r) {
    Rng ra(100 + r);
    Rng rb(100 + r);
    short_total += static_cast<double>(short_run.run(ra).edges.size());
    long_total += static_cast<double>(long_run.run(rb).edges.size());
  }
  EXPECT_NEAR(long_total / short_total, 2.0, 0.2);
}

TEST(DistributedFs, EdgesAreValid) {
  Rng rng(4);
  const Graph g = barabasi_albert(80, 2, rng);
  const DistributedFrontierSampler dfs(
      g, {.dimension = 4, .stop = {.max_steps = 500}});
  const SampleRecord rec = dfs.run(rng);
  for (const Edge& e : rec.edges) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(DistributedFs, MatchesCentralizedFsEdgeLaw) {
  // Theorem 5.5: the jump sequence of m independent exponential-clock
  // walkers is a centralized FS process. Compare long-run per-vertex visit
  // frequencies of both methods on the same graph.
  Rng rng(5);
  const Graph g = barabasi_albert(40, 2, rng);
  const std::uint64_t steps = 300000;

  Rng rng_fs(10);
  const FrontierSampler fs(g, {.dimension = 6, .steps = steps});
  std::vector<double> freq_fs(g.num_vertices(), 0.0);
  for (const Edge& e : fs.run(rng_fs).edges) freq_fs[e.v] += 1.0;

  Rng rng_dfs(20);
  const DistributedFrontierSampler dfs(
      g, {.dimension = 6, .stop = {.max_steps = steps}});
  std::vector<double> freq_dfs(g.num_vertices(), 0.0);
  for (const Edge& e : dfs.run(rng_dfs).edges) freq_dfs[e.v] += 1.0;

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double a = freq_fs[v] / static_cast<double>(steps);
    const double b = freq_dfs[v] / static_cast<double>(steps);
    EXPECT_NEAR(a, b, 0.2 * a + 0.002) << "vertex " << v;
  }
}

TEST(DistributedFs, UniformEdgeSamplingInLongRun) {
  Rng rng(6);
  const Graph g = complete_graph(7);  // vol 42
  const DistributedFrontierSampler dfs(
      g, {.dimension = 3, .stop = {.max_steps = 200000}});
  const SampleRecord rec = dfs.run(rng);
  std::map<std::pair<VertexId, VertexId>, double> freq;
  for (const Edge& e : rec.edges) freq[{e.u, e.v}] += 1.0;
  const double expect = 1.0 / 42.0;
  EXPECT_EQ(freq.size(), 42u);
  for (const auto& [edge, count] : freq) {
    EXPECT_NEAR(count / static_cast<double>(rec.edges.size()), expect,
                0.15 * expect);
  }
}

}  // namespace
}  // namespace frontier

// Checkpoint corruption corpus: a valid v2 checkpoint is mutated every
// way a real crash or disk fault can mutate it — truncated at every
// length, and bit-flipped at every byte — and every mutant must be
// rejected with a structured IoError. Never a crash, and never a silent
// resume from corrupt state: the trailer (length + CRC-64 + magic) is
// validated before a single byte of cursor or sink state is restored.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/io_error.hpp"
#include "graph/generators.hpp"
#include "stream/engine.hpp"
#include "stream/sampler_cursors.hpp"
#include "stream/sinks.hpp"

namespace frontier {
namespace {

Graph test_graph() {
  Rng rng(77);
  return barabasi_albert(80, 3, rng);
}

SinkSet make_sinks(const Graph& g) {
  SinkSet sinks;
  sinks.push_back(
      std::make_unique<DegreeDistributionSink>(g, DegreeKind::kSymmetric));
  sinks.push_back(std::make_unique<GraphMomentsSink>(g));
  return sinks;
}

StreamEngine make_engine(const Graph& g, std::uint64_t seed) {
  const FrontierSampler::Config cfg{.dimension = 3, .steps = 1000};
  return StreamEngine(std::make_unique<FrontierCursor>(g, cfg, Rng(seed)),
                      make_sinks(g));
}

// A pristine mid-crawl checkpoint blob, the corpus seed.
std::string pristine_blob(const Graph& g) {
  StreamEngine engine = make_engine(g, 3);
  EXPECT_EQ(engine.pump(400), 400u);
  std::ostringstream os(std::ios::binary);
  engine.save_checkpoint(os);
  return os.str();
}

// Loading `blob` into a fresh engine must throw IoError and leave the
// engine untouched (still at zero events, still able to run).
void expect_rejected(const Graph& g, const std::string& blob,
                     const std::string& label) {
  StreamEngine victim = make_engine(g, 999);
  std::istringstream is(blob, std::ios::binary);
  try {
    victim.load_checkpoint(is);
    ADD_FAILURE() << label << ": corrupt checkpoint loaded silently";
  } catch (const IoError&) {
    // Expected: structured rejection.
  } catch (const std::exception& e) {
    ADD_FAILURE() << label << ": wrong exception type: " << e.what();
  }
  EXPECT_EQ(victim.events(), 0u) << label << ": failed load mutated state";
}

TEST(CheckpointCorruption, PristineBlobLoadsAndEveryTruncationIsRejected) {
  const Graph g = test_graph();
  const std::string blob = pristine_blob(g);
  ASSERT_GT(blob.size(), 24u);  // bigger than the trailer alone

  // Control: the unmutated blob restores the paused crawl.
  StreamEngine resumed = make_engine(g, 999);
  std::istringstream is(blob, std::ios::binary);
  resumed.load_checkpoint(is);
  EXPECT_EQ(resumed.events(), 400u);

  // A torn write can stop at any byte; every prefix must be rejected.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    expect_rejected(g, blob.substr(0, len),
                    "truncated to " + std::to_string(len));
  }
}

TEST(CheckpointCorruption, EveryByteFlipIsRejected) {
  const Graph g = test_graph();
  const std::string blob = pristine_blob(g);
  // One flipped bit per byte position covers the magic, version, cursor
  // state, sink blobs, and all three trailer fields (length, CRC, magic).
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string mutant = blob;
    mutant[i] = static_cast<char>(
        static_cast<unsigned char>(mutant[i]) ^ (1u << (i % 8)));
    expect_rejected(g, mutant, "bit flip at byte " + std::to_string(i));
  }
}

TEST(CheckpointCorruption, GarbageAndAppendedTailAreRejected) {
  const Graph g = test_graph();
  const std::string blob = pristine_blob(g);
  expect_rejected(g, std::string(blob.size(), '\x5a'), "uniform garbage");
  expect_rejected(g, blob + std::string(16, '\0'), "appended tail");
  // A file that is nothing but a valid-looking trailer magic has no body.
  expect_rejected(g, std::string("FRONTTR1FRONTTR1FRONTTR1"),
                  "trailer with no body");
}

TEST(CheckpointCorruption, TornFileOnDiskIsRejectedByLoadFile) {
  const Graph g = test_graph();
  const std::string blob = pristine_blob(g);
  const std::string path = ::testing::TempDir() + "torn_ckpt.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(),
              static_cast<std::streamsize>(blob.size() - 10));
  }
  StreamEngine victim = make_engine(g, 999);
  EXPECT_THROW(victim.load_checkpoint_file(path), IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace frontier

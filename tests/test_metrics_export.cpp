// JSONL snapshot schema: writer/parser round trip, exporter cadence and
// failure modes (unwritable path => IoError; truncated or garbage lines
// rejected with their 1-based line number).
#include "obs/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/failpoint.hpp"
#include "graph/io.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"

namespace frontier {
namespace {

/// Self-deleting temp path under the build tree.
class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  void write(const std::string& contents) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << contents;
  }

 private:
  std::string path_;
};

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.seq = 3;
  snap.elapsed_seconds = 1.25;
  snap.peak_rss_bytes = 123456789;
  snap.minor_page_faults = 42;
  snap.major_page_faults = 1;
  snap.counters = {{"stream.events_total", 1000},
                   {"stream.blocks_total", ~std::uint64_t{0}}};
  snap.gauges = {{"stream.active_walkers", 100.0},
                 {"negative", -0.5},
                 {"tiny", 1e-300}};
  HistogramSnapshot empty;
  HistogramSnapshot filled;
  filled.count = 7;
  filled.sum = 521;
  filled.min = 0;
  filled.max = 256;
  filled.buckets = {{0, 1}, {1, 1}, {2, 2}, {3, 1}, {8, 1}, {9, 1}};
  snap.histograms = {{"empty_hist", empty}, {"filled_hist", filled}};
  return snap;
}

TEST(MetricsJsonl, RoundTripsExactly) {
  const MetricsSnapshot snap = sample_snapshot();
  const std::string line = to_jsonl(snap);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "must be a single line";
  EXPECT_EQ(parse_metrics_snapshot(line), snap);
}

TEST(MetricsJsonl, NonFiniteGaugeBecomesNull) {
  MetricsSnapshot snap = sample_snapshot();
  snap.gauges = {{"inf", std::numeric_limits<double>::infinity()}};
  const std::string line = to_jsonl(snap);
  EXPECT_NE(line.find("\"inf\":null"), std::string::npos);
  const MetricsSnapshot back = parse_metrics_snapshot(line);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_TRUE(std::isnan(back.gauges[0].second));
}

TEST(MetricsJsonl, RejectsSchemaViolations) {
  const std::string good = to_jsonl(sample_snapshot());
  // Each mutation must fail with a MetricsError naming the schema context.
  EXPECT_THROW((void)parse_metrics_snapshot("not json"), MetricsError);
  EXPECT_THROW((void)parse_metrics_snapshot("{}"), MetricsError);
  EXPECT_THROW((void)parse_metrics_snapshot(good.substr(0, good.size() / 2)),
               MetricsError);
  std::string wrong_version = good;
  wrong_version.replace(wrong_version.find(":1,"), 3, ":9,");
  EXPECT_THROW((void)parse_metrics_snapshot(wrong_version), MetricsError);
  std::string extra_key = good;
  extra_key.insert(1, "\"unknown\":1,");
  EXPECT_THROW((void)parse_metrics_snapshot(extra_key), MetricsError);
  try {
    (void)parse_metrics_snapshot("{}");
    FAIL() << "expected MetricsError";
  } catch (const MetricsError& e) {
    EXPECT_NE(std::string(e.what()).find("metrics snapshot"),
              std::string::npos);
  }
}

TEST(MetricsJsonl, RejectsHistogramInconsistencies) {
  // min/max must be null iff count == 0, buckets strictly ascending with
  // positive counts and indexes <= 64.
  const auto mutate = [](const std::string& from, const std::string& to) {
    MetricsSnapshot snap = sample_snapshot();
    std::string line = to_jsonl(snap);
    const auto pos = line.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    line.replace(pos, from.size(), to);
    EXPECT_THROW((void)parse_metrics_snapshot(line), MetricsError) << to;
  };
  mutate("\"count\":0,\"sum\":0,\"min\":null",
         "\"count\":0,\"sum\":0,\"min\":3");
  mutate("\"count\":7,\"sum\":521,\"min\":0",
         "\"count\":7,\"sum\":521,\"min\":null");
  mutate("[[0,1],[1,1]", "[[1,1],[0,1]");   // not ascending
  mutate("[[0,1],[1,1]", "[[0,0],[1,1]");   // zero count
  mutate("[[0,1],[1,1]", "[[65,1],[1,1]");  // index out of range
}

TEST(MetricsJsonl, FileErrorsNameTheLine) {
  TempFile file("metrics_export_lines.jsonl");
  const std::string good = to_jsonl(sample_snapshot());

  file.write(good + "garbage\n");
  try {
    (void)read_metrics_jsonl(file.path());
    FAIL() << "expected MetricsError";
  } catch (const MetricsError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }

  // A blank line is a truncated/corrupt write, not padding.
  file.write(good + "\n" + good);
  EXPECT_THROW((void)read_metrics_jsonl(file.path()), MetricsError);

  // A half-written final line (crash mid-append) must not validate.
  file.write(good + good.substr(0, good.size() / 3));
  try {
    (void)read_metrics_jsonl(file.path());
    FAIL() << "expected MetricsError";
  } catch (const MetricsError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }

  file.write("");
  EXPECT_TRUE(read_metrics_jsonl(file.path()).empty());

  EXPECT_THROW((void)read_metrics_jsonl("no_such_dir/none.jsonl"),
               MetricsError);
}

TEST(MetricsExporter, WritesStampedSequentialLines) {
  MetricsRegistry reg;
  Counter c = reg.counter("c");
  TempFile file("metrics_export_seq.jsonl");
  MetricsExporter exporter(reg, file.path(), /*interval_seconds=*/0.0);
  c.add(1);
  exporter.export_now();
  c.add(1);
  exporter.export_now();
  EXPECT_TRUE(exporter.maybe_export());  // interval 0: always due
  EXPECT_EQ(exporter.lines_written(), 3u);

  const auto snapshots = read_metrics_jsonl(file.path());
  ASSERT_EQ(snapshots.size(), 3u);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].seq, i);
  }
  EXPECT_LE(snapshots[0].elapsed_seconds, snapshots[2].elapsed_seconds);
  EXPECT_EQ(snapshots[0].counters[0].second, 1u);
  EXPECT_EQ(snapshots[2].counters[0].second, 2u);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(snapshots[0].peak_rss_bytes, 0u);
#endif
}

TEST(MetricsExporter, LongIntervalExportsOnlyTheFirstCall) {
  MetricsRegistry reg;
  TempFile file("metrics_export_interval.jsonl");
  MetricsExporter exporter(reg, file.path(), /*interval_seconds=*/3600.0);
  EXPECT_TRUE(exporter.maybe_export());   // first call always exports
  EXPECT_FALSE(exporter.maybe_export());  // next one is not due for an hour
  EXPECT_EQ(exporter.lines_written(), 1u);
}

TEST(MetricsExporter, UnwritablePathIsCleanIoError) {
  MetricsRegistry reg;
  EXPECT_THROW(
      MetricsExporter(reg, "no_such_dir/sub/metrics.jsonl", 1.0),
      IoError);
}

TEST(MetricsExporter, MidRunWriteFailureDegradesInsteadOfThrowing) {
  failpoint::clear();
  MetricsRegistry reg;
  TempFile file("metrics_export_degrade.jsonl");
  MetricsExporter exporter(reg, file.path(), /*interval_seconds=*/0.0);
  EXPECT_TRUE(exporter.maybe_export());  // healthy first line
  ASSERT_FALSE(exporter.degraded());

  failpoint::configure("obs.export=io-error@1");
  EXPECT_NO_THROW(exporter.export_now());  // absorbed, never rethrown
  failpoint::clear();
  EXPECT_TRUE(exporter.degraded());
  EXPECT_EQ(exporter.lines_written(), 1u);  // the failed line is not counted

  // The failure is visible where a *working* consumer can still see it.
  bool counted = false;
  for (const auto& [name, value] : reg.snapshot().counters) {
    if (name == "obs.export_errors") {
      counted = true;
      EXPECT_EQ(value, 1u);
    }
  }
  EXPECT_TRUE(counted) << "obs.export_errors counter missing";

  // Degraded is terminal: later exports are no-ops, not retries.
  EXPECT_FALSE(exporter.maybe_export());
  exporter.export_now();
  EXPECT_EQ(exporter.lines_written(), 1u);
}

}  // namespace
}  // namespace frontier

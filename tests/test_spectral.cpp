#include "analysis/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

TEST(SpectralGap, RejectsDisconnectedAndEmpty) {
  EXPECT_THROW((void)spectral_gap(Graph{}), std::invalid_argument);
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(2, 3);
  EXPECT_THROW((void)spectral_gap(b.build()), std::invalid_argument);
}

TEST(SpectralGap, CompleteGraphKnownValue) {
  // RW on K_n has eigenvalues 1 and -1/(n-1): lambda2 = -1/(n-1).
  const Graph g = complete_graph(6);
  const SpectralInfo s = spectral_gap(g);
  EXPECT_NEAR(s.lambda2, -1.0 / 5.0, 1e-6);
  EXPECT_NEAR(s.spectral_gap, 1.2, 1e-6);
}

TEST(SpectralGap, CycleKnownValue) {
  // RW on C_n: lambda2 = cos(2*pi/n).
  const std::size_t n = 12;
  const Graph g = cycle_graph(n);
  const SpectralInfo s = spectral_gap(g);
  EXPECT_NEAR(s.lambda2, std::cos(2.0 * M_PI / static_cast<double>(n)),
              1e-6);
}

TEST(SpectralGap, CompleteBipartiteSecondEigenvalue) {
  // K_{a,b}: eigenvalues 1, 0 (multiplicity), -1. Second-largest real
  // eigenvalue is 0 -> gap 1.
  const Graph g = complete_bipartite(3, 4);
  const SpectralInfo s = spectral_gap(g);
  EXPECT_NEAR(s.lambda2, 0.0, 1e-6);
}

TEST(SpectralGap, LooselyConnectedGraphHasTinyGap) {
  // Two cliques joined by one edge: a textbook bottleneck.
  const Graph tight = complete_graph(16);
  const Graph loose =
      join_by_single_edge(complete_graph(16), complete_graph(16));
  const SpectralInfo st = spectral_gap(tight);
  const SpectralInfo sl = spectral_gap(loose);
  EXPECT_LT(sl.spectral_gap, 0.1 * st.spectral_gap);
  EXPECT_GT(sl.relaxation_time, 10.0 * st.relaxation_time);
}

TEST(SpectralGap, GabStyleGraphIsSlowMixing) {
  Rng rng(1);
  const Graph ga = barabasi_albert(200, 1, rng);
  const Graph gb = barabasi_albert(200, 5, rng);
  const Graph gab = join_by_single_edge(ga, gb);
  const SpectralInfo s = spectral_gap(gab);
  EXPECT_GT(s.relaxation_time, 100.0);
}

TEST(MixingTimeBound, ScalesWithRelaxationTime) {
  const Graph g = cycle_graph(16);
  const SpectralInfo s = spectral_gap(g);
  const double t1 = mixing_time_bound(g, s, 0.25);
  const double t2 = mixing_time_bound(g, s, 0.01);
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t2, t1);  // tighter epsilon needs more steps
  EXPECT_THROW((void)mixing_time_bound(g, s, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace frontier

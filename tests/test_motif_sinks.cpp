// Streaming motif sinks vs exact enumeration: fed every ordered edge
// slot of the symmetric graph once (a "full enumeration", scale factor
// vol/B = 1), the integer-accumulator sinks must reproduce the exact
// analysis/motifs.hpp counts *exactly*, and ingest_block must be
// bit-identical to per-event consume for every block capacity.
#include "stream/motif_sinks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/motifs.hpp"
#include "estimators/clustering.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "random/rng.hpp"
#include "stream/block.hpp"
#include "stream/cursor.hpp"

namespace frontier {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 7, 64, 4096};

// The ~20 randomized graphs of the property test: BA, ER and
// small-world, cycling parameters with the seed.
std::vector<Graph> property_graphs() {
  std::vector<Graph> graphs;
  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    Rng rng(seed);
    graphs.push_back(barabasi_albert(100 + 10 * seed, 2 + seed % 3, rng));
  }
  for (std::uint64_t seed = 8; seed <= 14; ++seed) {
    Rng rng(seed);
    graphs.push_back(
        erdos_renyi_gnp(90 + 8 * seed, 0.04 + 0.01 * (seed % 4), rng));
  }
  for (std::uint64_t seed = 15; seed <= 20; ++seed) {
    Rng rng(seed);
    graphs.push_back(
        watts_strogatz(80 + 12 * seed, 2 + seed % 2, 0.1 + 0.03 * (seed % 3),
                       rng));
  }
  return graphs;
}

// All vol(G) ordered edge slots (u, v), v ∈ N(u), as a batch edge list.
std::vector<Edge> all_slots(const Graph& g) {
  std::vector<Edge> slots;
  slots.reserve(g.volume());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) slots.push_back(Edge{u, v});
  }
  return slots;
}

void feed_all_slots(const Graph& g, EstimatorSink& sink) {
  StreamEvent ev;
  ev.has_edge = true;
  for (const Edge& e : all_slots(g)) {
    ev.edge = e;
    sink.consume(ev);
  }
}

TEST(MotifSinks, TriangleSinkFullEnumerationIsExact) {
  for (const Graph& g : property_graphs()) {
    TriangleSink sink(g);
    feed_all_slots(g, sink);
    const double vol = static_cast<double>(g.volume());
    EXPECT_EQ(sink.edges_consumed(), g.volume());
    EXPECT_DOUBLE_EQ(sink.triangle_count(vol),
                     static_cast<double>(exact_triangle_count(g)));
    EXPECT_DOUBLE_EQ(sink.transitivity(), exact_transitivity(g));
  }
}

TEST(MotifSinks, ClusteringSinkFullEnumerationIsExact) {
  for (const Graph& g : property_graphs()) {
    ClusteringSink sink(g);
    feed_all_slots(g, sink);
    // Bitwise-identical to the batch estimator over the same edge order.
    const std::vector<Edge> slots = all_slots(g);
    EXPECT_EQ(sink.global_clustering(), estimate_global_clustering(g, slots));
    // And numerically the exact mean local clustering coefficient.
    EXPECT_NEAR(sink.global_clustering(), exact_global_clustering(g), 1e-9);
    // The per-degree curve divides the same exact integers as the
    // analysis/ baseline, so it is bit-identical to it.
    const std::vector<double> got = sink.local_clustering();
    const std::vector<double> want = exact_local_clustering_by_degree(g);
    const std::size_t len = std::max(got.size(), want.size());
    for (std::size_t k = 0; k < len; ++k) {
      const double a = k < got.size() ? got[k] : 0.0;
      const double b = k < want.size() ? want[k] : 0.0;
      EXPECT_EQ(a, b) << "degree class " << k;
    }
  }
}

TEST(MotifSinks, MotifSinkFullEnumerationIsExact) {
  for (const Graph& g : property_graphs()) {
    MotifSink sink(g);
    feed_all_slots(g, sink);
    const MotifCounts want = exact_motif_counts(g);
    const MotifEstimate got =
        sink.estimate(static_cast<double>(g.volume()));
    EXPECT_DOUBLE_EQ(got.wedge, static_cast<double>(want.wedge));
    EXPECT_DOUBLE_EQ(got.triangle, static_cast<double>(want.triangle));
    EXPECT_DOUBLE_EQ(got.path4, static_cast<double>(want.path4));
    EXPECT_DOUBLE_EQ(got.claw, static_cast<double>(want.claw));
    EXPECT_DOUBLE_EQ(got.cycle4, static_cast<double>(want.cycle4));
    EXPECT_DOUBLE_EQ(got.paw, static_cast<double>(want.paw));
    EXPECT_DOUBLE_EQ(got.diamond, static_cast<double>(want.diamond));
    EXPECT_DOUBLE_EQ(got.clique4, static_cast<double>(want.clique4));
  }
}

std::string state_of(const EstimatorSink& sink) {
  std::ostringstream os;
  sink.save_state(os);
  return os.str();
}

// ingest_block must fold bit-identically to consume() for every block
// capacity, including blocks that mix edge, vertex and empty rows (the
// non-edge rows must be ignored by all three sinks).
TEST(MotifSinks, BlockIngestBitIdenticalToConsume) {
  Rng rng(4242);
  const Graph g = barabasi_albert(200, 3, rng);
  const std::vector<Edge> slots = all_slots(g);

  const auto consume_state = [&](auto make_sink) {
    auto sink = make_sink();
    StreamEvent ev;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      ev = StreamEvent{};
      if (i % 13 == 5) {  // interleave a vertex-only observation
        ev.has_vertex = true;
        ev.vertex = slots[i].u;
      } else if (i % 17 == 11) {
        // empty step: no flags set
      } else {
        ev.has_edge = true;
        ev.edge = slots[i];
      }
      sink->consume(ev);
    }
    return state_of(*sink);
  };

  const auto block_state = [&](auto make_sink, std::size_t k) {
    auto sink = make_sink();
    StreamEventBlock block(k);
    const auto flush = [&] {
      sink->ingest_block(block);
      block.clear();
    };
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (block.room() == 0) flush();
      if (i % 13 == 5) {
        block.push_vertex(slots[i].u);
      } else if (i % 17 == 11) {
        block.push_empty();
      } else {
        block.push_edge(slots[i].u, slots[i].v, g.degree(slots[i].v));
      }
    }
    flush();
    return state_of(*sink);
  };

  const auto check = [&](auto make_sink, const char* label) {
    const std::string expected = consume_state(make_sink);
    for (const std::size_t k : kBatchSizes) {
      EXPECT_EQ(block_state(make_sink, k), expected)
          << label << " K=" << k;
    }
  };
  check([&] { return std::make_unique<TriangleSink>(g); }, "triangles");
  check([&] { return std::make_unique<ClusteringSink>(g); }, "clustering");
  check([&] { return std::make_unique<MotifSink>(g); }, "motif_census");
}

TEST(MotifSinks, StateRoundtripRestoresAccumulators) {
  Rng rng(7);
  const Graph g = erdos_renyi_gnp(120, 0.06, rng);
  MotifSink sink(g);
  TriangleSink tri(g);
  ClusteringSink clus(g);
  feed_all_slots(g, sink);
  feed_all_slots(g, tri);
  feed_all_slots(g, clus);

  std::stringstream s1, s2, s3;
  sink.save_state(s1);
  tri.save_state(s2);
  clus.save_state(s3);

  MotifSink sink2(g);
  TriangleSink tri2(g);
  ClusteringSink clus2(g);
  sink2.load_state(s1);
  tri2.load_state(s2);
  clus2.load_state(s3);
  EXPECT_EQ(state_of(sink2), state_of(sink));
  EXPECT_EQ(state_of(tri2), state_of(tri));
  EXPECT_EQ(state_of(clus2), state_of(clus));
  const double vol = static_cast<double>(g.volume());
  EXPECT_EQ(sink2.estimate(vol).triangle, sink.estimate(vol).triangle);
  EXPECT_EQ(tri2.transitivity(), tri.transitivity());
  EXPECT_EQ(clus2.global_clustering(), clus.global_clustering());
}

TEST(MotifSinks, EmptySinksReportZero) {
  const Graph g = complete_graph(4);
  TriangleSink tri(g);
  ClusteringSink clus(g);
  MotifSink sink(g);
  EXPECT_EQ(tri.triangle_count(12.0), 0.0);
  EXPECT_EQ(tri.transitivity(), 0.0);
  EXPECT_EQ(clus.global_clustering(), 0.0);
  EXPECT_TRUE(clus.local_clustering().empty());
  const MotifEstimate est = sink.estimate(12.0);
  EXPECT_EQ(est.triangle, 0.0);
  EXPECT_EQ(est.clique4, 0.0);
}

}  // namespace
}  // namespace frontier

#include "analysis/conductance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "analysis/spectral.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

TEST(CutConductance, ValidatesSubset) {
  const Graph g = cycle_graph(6);
  const std::vector<VertexId> empty;
  EXPECT_THROW((void)cut_conductance(g, empty), std::invalid_argument);
  const std::vector<VertexId> all{0, 1, 2, 3, 4, 5};
  EXPECT_THROW((void)cut_conductance(g, all), std::invalid_argument);
  const std::vector<VertexId> dup{1, 1};
  EXPECT_THROW((void)cut_conductance(g, dup), std::invalid_argument);
}

TEST(CutConductance, CycleArcKnownValue) {
  // An arc of k consecutive cycle vertices has cut 2, volume 2k.
  const Graph g = cycle_graph(10);
  const std::vector<VertexId> arc{0, 1, 2};
  EXPECT_DOUBLE_EQ(cut_conductance(g, arc), 2.0 / 6.0);
}

TEST(CutConductance, SingleBridgeCutIsTiny) {
  const Graph g =
      join_by_single_edge(complete_graph(12), complete_graph(12));
  std::vector<VertexId> half(12);
  std::iota(half.begin(), half.end(), VertexId{0});
  // Exactly one adjacency entry leaves S (the bridge), vol(S) = 12*11+1.
  const double phi = cut_conductance(g, half);
  EXPECT_GT(phi, 0.0);
  EXPECT_LT(phi, 0.01);
}

TEST(CheegerBounds, SandwichHolds) {
  const Graph g = join_by_single_edge(complete_graph(10), complete_graph(10));
  const SpectralInfo s = spectral_gap(g);
  const auto [lo, hi] = cheeger_bounds(s.spectral_gap);
  std::vector<VertexId> half(10);
  std::iota(half.begin(), half.end(), VertexId{0});
  const double phi = cut_conductance(g, half);
  EXPECT_GE(phi, lo - 1e-9);
  EXPECT_LE(phi, hi + 1e-9);
  EXPECT_THROW((void)cheeger_bounds(-0.1), std::invalid_argument);
}

TEST(SpectralSweepCut, RecoversPlantedBipartition) {
  // SBM with two dense blocks and weak coupling: the sweep cut must find
  // (approximately) the planted split.
  Rng rng(1);
  const std::vector<std::size_t> sizes{60, 60};
  const std::vector<std::vector<double>> probs{{0.3, 0.01}, {0.01, 0.3}};
  const Graph g = stochastic_block_model(sizes, probs, rng);
  if (!is_connected(g)) GTEST_SKIP();
  const SweepCut cut = spectral_sweep_cut(g);
  // Nearly all of one block on one side.
  std::size_t in_first = 0;
  for (VertexId v : cut.side) {
    if (v < 60) ++in_first;
  }
  const double purity =
      std::max(in_first, cut.side.size() - in_first) /
      static_cast<double>(cut.side.size());
  EXPECT_GT(purity, 0.9);
  EXPECT_LT(cut.conductance, 0.1);
}

TEST(SpectralSweepCut, FindsTheBridgeOnGab) {
  const Graph g = join_by_single_edge(complete_graph(14), complete_graph(14));
  const SweepCut cut = spectral_sweep_cut(g);
  EXPECT_EQ(cut.side.size(), 14u);
  EXPECT_LT(cut.conductance, 0.01);
  // The side must be one clique exactly.
  const bool first_clique = cut.side.front() < 14;
  for (VertexId v : cut.side) EXPECT_EQ(v < 14, first_clique);
}

TEST(SpectralSweepCut, ConductanceMatchesDirectComputation) {
  Rng rng(2);
  const Graph g = barabasi_albert(150, 2, rng);
  const SweepCut cut = spectral_sweep_cut(g);
  EXPECT_NEAR(cut.conductance, cut_conductance(g, cut.side), 1e-9);
}

TEST(Sbm, GeneratesExpectedDensities) {
  Rng rng(3);
  const std::vector<std::size_t> sizes{400, 400};
  const std::vector<std::vector<double>> probs{{0.05, 0.005}, {0.005, 0.08}};
  const Graph g = stochastic_block_model(sizes, probs, rng);
  double within_a = 0.0, within_b = 0.0, across = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (w < v) continue;
      if (v < 400 && w < 400) within_a += 1.0;
      else if (v >= 400 && w >= 400) within_b += 1.0;
      else across += 1.0;
    }
  }
  EXPECT_NEAR(within_a, 0.05 * 400 * 399 / 2, 4 * std::sqrt(within_a) + 20);
  EXPECT_NEAR(within_b, 0.08 * 400 * 399 / 2, 4 * std::sqrt(within_b) + 20);
  EXPECT_NEAR(across, 0.005 * 400 * 400, 4 * std::sqrt(across) + 20);
}

TEST(Sbm, ValidatesInput) {
  Rng rng(4);
  const std::vector<std::size_t> sizes{10, 10};
  const std::vector<std::vector<double>> bad_shape{{0.5}};
  EXPECT_THROW((void)stochastic_block_model(sizes, bad_shape, rng),
               std::invalid_argument);
  const std::vector<std::vector<double>> bad_p{{0.5, 1.5}, {1.5, 0.5}};
  EXPECT_THROW((void)stochastic_block_model(sizes, bad_p, rng),
               std::invalid_argument);
}

TEST(Sbm, FullDensityIsCompleteBlock) {
  Rng rng(5);
  const std::vector<std::size_t> sizes{8};
  const std::vector<std::vector<double>> probs{{1.0}};
  const Graph g = stochastic_block_model(sizes, probs, rng);
  EXPECT_EQ(g.num_undirected_edges(), 28u);
}

}  // namespace
}  // namespace frontier

// GraphStorage backends: owned-vs-mmap equivalence, v1 -> v2 migration,
// storage sharing across Graph copies, and the parallel ingestion helpers.
#include "graph/storage.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace frontier {
namespace {

/// Full structural equality: counts, degrees, adjacency, and direction
/// flags — stronger than the degree-only check in test_io.
void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges());
  ASSERT_EQ(a.num_symmetric_edges(), b.num_symmetric_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.out_degree(v), b.out_degree(v)) << "vertex " << v;
    ASSERT_EQ(a.in_degree(v), b.in_degree(v)) << "vertex " << v;
    const auto an = a.neighbors(v);
    const auto bn = b.neighbors(v);
    ASSERT_TRUE(std::equal(an.begin(), an.end(), bn.begin(), bn.end()))
        << "neighbors of " << v;
    const auto ad = a.directions(v);
    const auto bd = b.directions(v);
    ASSERT_TRUE(std::equal(ad.begin(), ad.end(), bd.begin(), bd.end()))
        << "directions of " << v;
  }
}

Graph make_test_graph(std::uint64_t seed) {
  Rng rng(seed);
  return directed_preferential(400, 3, 0.4, rng);
}

TEST(GraphStorage, OwnedVsMmapEquivalence) {
  const Graph owned = make_test_graph(11);
  EXPECT_FALSE(owned.is_memory_mapped());

  const std::string path = ::testing::TempDir() + "storage_v2.bin";
  write_binary_file(owned, path);
  const Graph mapped = read_binary_file(path);
#if FRONTIER_HAS_MMAP
  EXPECT_TRUE(mapped.is_memory_mapped());
#endif
  expect_identical(owned, mapped);

  // Derived queries must agree too.
  EXPECT_EQ(owned.max_degree(), mapped.max_degree());
  EXPECT_DOUBLE_EQ(owned.average_degree(), mapped.average_degree());
  for (EdgeIndex j = 0; j < std::min<EdgeIndex>(owned.volume(), 64); ++j) {
    EXPECT_EQ(owned.edge_at(j), mapped.edge_at(j)) << "slot " << j;
  }
  std::filesystem::remove(path);
}

TEST(GraphStorage, StreamReadOfV2IsOwnedAndEquivalent) {
  const Graph g = make_test_graph(12);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, ss);
  const Graph loaded = read_binary(ss);
  EXPECT_FALSE(loaded.is_memory_mapped());
  expect_identical(g, loaded);
}

TEST(GraphStorage, V1ToV2Migration) {
  const Graph g = make_test_graph(13);
  const std::string v1_path = ::testing::TempDir() + "migrate_v1.bin";
  const std::string v2_path = ::testing::TempDir() + "migrate_v2.bin";

  // Legacy v1 snapshot loads through the rebuild path (never mapped).
  {
    std::ofstream f(v1_path, std::ios::binary);
    write_binary_v1(g, f);
  }
  const Graph from_v1 = read_binary_file(v1_path);
  EXPECT_FALSE(from_v1.is_memory_mapped());
  expect_identical(g, from_v1);

  // Migrating: rewrite as v2, reload zero-copy.
  write_binary_file(from_v1, v2_path);
  const Graph from_v2 = read_binary_file(v2_path);
#if FRONTIER_HAS_MMAP
  EXPECT_TRUE(from_v2.is_memory_mapped());
#endif
  expect_identical(g, from_v2);

  std::filesystem::remove(v1_path);
  std::filesystem::remove(v2_path);
}

TEST(GraphStorage, CopiesShareStorageAndOutliveTheOriginal) {
  const std::string path = ::testing::TempDir() + "storage_share.bin";
  const Graph original = make_test_graph(14);
  write_binary_file(original, path);

  Graph copy;
  {
    const Graph mapped = read_binary_file(path);
    copy = mapped;  // shares the mapping
  }
  // The mapping must stay alive through the copy after `mapped` died.
  expect_identical(original, copy);
  std::filesystem::remove(path);
}

TEST(ParallelIngestion, ThreadCountDoesNotChangeTheParsedGraph) {
  const Graph g = make_test_graph(15);
  std::stringstream ss;
  write_edge_list(g, ss);
  const std::string text = ss.str();

  Graph first;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{7}}) {
    std::stringstream in(text);
    const Graph parsed = read_edge_list(in, threads);
    expect_identical(g, parsed);
    if (threads == 1) {
      first = parsed;
    } else {
      expect_identical(first, parsed);
    }
  }
}

TEST(ParallelIngestion, ParallelSortMatchesStdSort) {
  std::mt19937_64 prng(99);
  std::vector<std::uint64_t> values(300000);
  for (auto& v : values) v = prng();
  std::vector<std::uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  parallel_sort(values.begin(), values.end(), std::less<>{}, 4);
  EXPECT_EQ(values, expected);
}

TEST(ParallelIngestion, LargeBuilderSortRoundTrips) {
  // Enough edges (> 64k entries) to engage the parallel block sort inside
  // GraphBuilder::build(); the result must still round-trip exactly.
  Rng rng(16);
  const Graph g = barabasi_albert(40000, 2, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph reparsed = read_edge_list(ss, 4);
  expect_identical(g, reparsed);

  // CSR invariants: offsets monotone, per-vertex neighbor lists sorted.
  const auto offsets = g.offsets();
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    ASSERT_LE(offsets[i], offsets[i + 1]);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    ASSERT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end())) << "vertex " << v;
  }
}

}  // namespace
}  // namespace frontier

#include "analysis/transient.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/components.hpp"
#include "experiments/datasets.hpp"

namespace frontier {
namespace {

TEST(SrwDeficit, ValidatesSteps) {
  const Graph g = cycle_graph(5);
  EXPECT_THROW((void)srw_edge_deficit_exact(g, 0), std::invalid_argument);
}

TEST(SrwDeficit, CompleteGraphMixesInstantly) {
  // On K_n the uniform start is already stationary: the first sampled edge
  // is uniform, so the deficit is ~0 at every horizon.
  const Graph g = complete_graph(8);
  EXPECT_NEAR(srw_edge_deficit_exact(g, 1), 0.0, 1e-9);
  EXPECT_NEAR(srw_edge_deficit_exact(g, 10), 0.0, 1e-9);
}

TEST(SrwDeficit, DecreasesWithHorizon) {
  Rng rng(1);
  const Graph g = barabasi_albert(300, 2, rng);
  const double d5 = srw_edge_deficit_exact(g, 5);
  const double d50 = srw_edge_deficit_exact(g, 50);
  const double d500 = srw_edge_deficit_exact(g, 500);
  EXPECT_GT(d5, d50);
  EXPECT_GT(d50, d500);
  EXPECT_LT(d500, 0.2);
}

TEST(MrwDeficit, EqualsSrwAtPerWalkerHorizon) {
  Rng rng(2);
  const Graph g = barabasi_albert(200, 2, rng);
  // Budget 100, K = 10 -> floor(100/10 - 1) = 9 steps per walker.
  EXPECT_DOUBLE_EQ(mrw_edge_deficit_exact(g, 10, 100.0),
                   srw_edge_deficit_exact(g, 9));
  EXPECT_THROW((void)mrw_edge_deficit_exact(g, 200, 100.0),
               std::invalid_argument);
}

TEST(FsDeficit, ValidatesInput) {
  Rng rng(3);
  const Graph g = cycle_graph(5);
  EXPECT_THROW((void)fs_edge_deficit_mc(g, 0, 5, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)fs_edge_deficit_mc(g, 2, 5, 0, rng),
               std::invalid_argument);
}

TEST(FsVertexEdgeRates, ApproachOneAtStationarity) {
  // After a long horizon every vertex's edge rate (scaled) approaches 1.
  Rng rng(4);
  const Graph g = barabasi_albert(60, 2, rng);
  const auto rates = fs_vertex_edge_rates_mc(g, 10, 400, 40000, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(rates[v], 1.0, 0.1) << "vertex " << v;
  }
}

TEST(FsDeficit, SmallerThanIndependentWalkersAtShortHorizon) {
  // The Appendix B claim: FS converges to the uniform edge-sampling law
  // faster than single/multiple independent walkers. Use a short budget on
  // a slow-mixing graph so the independent walkers are still visibly
  // transient (on fast mixers all three deficits are ~0 and the comparison
  // drowns in Monte-Carlo noise).
  ExperimentConfig cfg;
  cfg.scale_multiplier = 0.1;
  cfg.seed = 5;
  const Dataset ds = synthetic_internet_rlt(cfg);
  const Graph g = largest_connected_component(ds.graph).graph;
  const double budget = 20.0;
  const std::size_t k = 10;
  Rng mc(6);
  const double fs =
      fs_edge_deficit_mc(g, k, static_cast<std::uint64_t>(budget) - k,
                         800000, mc);
  const double srw = srw_edge_deficit_exact(
      g, static_cast<std::uint64_t>(budget) - 1);
  const double mrw = mrw_edge_deficit_exact(g, k, budget);
  EXPECT_GT(srw, 0.3) << "premise: SingleRW must still be transient";
  EXPECT_LT(fs, 0.5 * srw);
  EXPECT_LT(fs, 0.5 * mrw);
}

}  // namespace
}  // namespace frontier

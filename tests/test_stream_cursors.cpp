// Streaming/batch equivalence: for every refactored sampler, driving the
// cursor and the batch run() from the same seed must produce identical
// edge sequences, vertex sequences, starts, costs, and final RNG states.
#include "stream/sampler_cursors.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/metropolis.hpp"
#include "sampling/multiple_rw.hpp"
#include "sampling/random_walk_with_jumps.hpp"
#include "sampling/single_rw.hpp"
#include "stream/cursor.hpp"

namespace frontier {
namespace {

// Manually drains a cursor event by event (without drain_cursor) so the
// test exercises the public next() contract directly.
SampleRecord collect(SamplerCursor& cursor) {
  SampleRecord rec;
  StreamEvent ev;
  while (cursor.next(ev)) {
    if (ev.has_edge) rec.edges.push_back(ev.edge);
    if (ev.has_vertex) rec.vertices.push_back(ev.vertex);
  }
  EXPECT_TRUE(cursor.done());
  // A finished cursor keeps returning false without disturbing anything.
  EXPECT_FALSE(cursor.next(ev));
  rec.starts = cursor.starts();
  rec.cost = cursor.cost();
  return rec;
}

void expect_identical(const SampleRecord& a, const SampleRecord& b) {
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    ASSERT_EQ(a.edges[i], b.edges[i]) << "edge " << i;
  }
  ASSERT_EQ(a.vertices, b.vertices);
  ASSERT_EQ(a.starts, b.starts);
  EXPECT_EQ(a.cost, b.cost);  // bitwise, not just approximately
}

Graph test_graph(std::uint64_t seed = 42) {
  Rng rng(seed);
  return barabasi_albert(200, 3, rng);
}

TEST(StreamCursors, FrontierMatchesBatchWeightedTree) {
  const Graph g = test_graph();
  const FrontierSampler fs(g, {.dimension = 8, .steps = 5000});
  Rng batch_rng(7);
  Rng stream_rng(7);
  const SampleRecord batch = fs.run(batch_rng);
  FrontierCursor cursor(g, fs.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_EQ(batch.edges.size(), 5000u);
  EXPECT_TRUE(batch_rng == cursor.rng());
}

TEST(StreamCursors, FrontierMatchesBatchLinearScan) {
  const Graph g = test_graph();
  const FrontierSampler fs(
      g, {.dimension = 6, .steps = 3000,
          .selection = FrontierSampler::Selection::kLinearScan});
  Rng batch_rng(8);
  Rng stream_rng(8);
  const SampleRecord batch = fs.run(batch_rng);
  FrontierCursor cursor(g, fs.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_TRUE(batch_rng == cursor.rng());
}

TEST(StreamCursors, FrontierRunFromMatchesExplicitFrontier) {
  const Graph g = test_graph();
  const FrontierSampler fs(g, {.dimension = 4, .steps = 1000});
  const std::vector<VertexId> starts{1, 5, 9, 13};
  Rng batch_rng(9);
  Rng stream_rng(9);
  const SampleRecord batch = fs.run_from(starts, batch_rng);
  FrontierCursor cursor(g, fs.config(), starts, stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_EQ(streamed.starts, starts);
}

TEST(StreamCursors, FrontierCursorValidates) {
  const Graph g = test_graph();
  Rng rng(1);
  EXPECT_THROW(FrontierCursor(g, {.dimension = 0}, rng),
               std::invalid_argument);
  EXPECT_THROW(
      FrontierCursor(g, {.dimension = 3}, std::vector<VertexId>{0, 1}, rng),
      std::invalid_argument);
}

TEST(StreamCursors, SingleRwMatchesBatch) {
  const Graph g = test_graph();
  const SingleRandomWalk srw(g, {.steps = 4000});
  Rng batch_rng(10);
  Rng stream_rng(10);
  const SampleRecord batch = srw.run(batch_rng);
  SingleRwCursor cursor(g, srw.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_TRUE(batch_rng == cursor.rng());
}

TEST(StreamCursors, SingleRwMatchesBatchWithBurnInAndLaziness) {
  const Graph g = test_graph();
  const SingleRandomWalk srw(
      g, {.steps = 2000, .burn_in = 500, .laziness = 0.3});
  Rng batch_rng(11);
  Rng stream_rng(11);
  const SampleRecord batch = srw.run(batch_rng);
  SingleRwCursor cursor(g, srw.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  // Lazy stays consume budget without recording an edge.
  EXPECT_LT(streamed.edges.size(), 2000u);
  EXPECT_DOUBLE_EQ(streamed.cost, 2501.0);
  EXPECT_TRUE(batch_rng == cursor.rng());
}

TEST(StreamCursors, SingleRwMatchesBatchWithFixedStart) {
  const Graph g = test_graph();
  const SingleRandomWalk srw(g, {.steps = 1000, .fixed_start = 17});
  Rng batch_rng(12);
  Rng stream_rng(12);
  const SampleRecord batch = srw.run(batch_rng);
  SingleRwCursor cursor(g, srw.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_EQ(streamed.starts, std::vector<VertexId>{17});
}

TEST(StreamCursors, MultipleRwMatchesBatch) {
  const Graph g = test_graph();
  const MultipleRandomWalks mrw(
      g, {.num_walkers = 7, .steps_per_walker = 600});
  Rng batch_rng(13);
  Rng stream_rng(13);
  const SampleRecord batch = mrw.run(batch_rng);
  MultipleRwCursor cursor(g, mrw.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_EQ(streamed.edges.size(), 7u * 600u);
  EXPECT_EQ(streamed.starts.size(), 7u);
  EXPECT_TRUE(batch_rng == cursor.rng());
}

TEST(StreamCursors, MultipleRwZeroStepsStillDrawsStarts) {
  const Graph g = test_graph();
  const MultipleRandomWalks mrw(g, {.num_walkers = 5, .steps_per_walker = 0});
  Rng batch_rng(14);
  Rng stream_rng(14);
  const SampleRecord batch = mrw.run(batch_rng);
  MultipleRwCursor cursor(g, mrw.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_TRUE(streamed.edges.empty());
  EXPECT_EQ(streamed.starts.size(), 5u);
  EXPECT_TRUE(batch_rng == cursor.rng());
}

TEST(StreamCursors, RandomWalkWithJumpsMatchesBatch) {
  const Graph g = test_graph();
  const RandomWalkWithJumps rwj(
      g, {.budget = 3000.0,
          .jump_probability = 0.15,
          .cost = {.jump_cost = 2.0, .hit_ratio = 0.5}});
  Rng batch_rng(15);
  Rng stream_rng(15);
  const SampleRecord batch = rwj.run(batch_rng);
  RwjCursor cursor(g, rwj.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_LE(streamed.cost, 3000.0);
  EXPECT_TRUE(batch_rng == cursor.rng());
}

TEST(StreamCursors, RandomWalkWithJumpsTinyBudget) {
  // Budget too small for even the initial jump: no samples, full cost.
  const Graph g = test_graph();
  const RandomWalkWithJumps rwj(
      g, {.budget = 0.5, .jump_probability = 0.2, .cost = {.jump_cost = 1.0}});
  Rng batch_rng(16);
  Rng stream_rng(16);
  const SampleRecord batch = rwj.run(batch_rng);
  RwjCursor cursor(g, rwj.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_TRUE(streamed.edges.empty());
  EXPECT_TRUE(streamed.vertices.empty());
  EXPECT_DOUBLE_EQ(streamed.cost, 0.5);
}

TEST(StreamCursors, MetropolisMatchesBatch) {
  const Graph g = test_graph();
  const MetropolisHastingsWalk mh(g, {.steps = 4000});
  Rng batch_rng(17);
  Rng stream_rng(17);
  const SampleRecord batch = mh.run(batch_rng);
  MetropolisCursor cursor(g, mh.config(), stream_rng);
  const SampleRecord streamed = collect(cursor);
  expect_identical(batch, streamed);
  EXPECT_EQ(streamed.vertices.size(), 4001u);  // steps + start
  EXPECT_TRUE(batch_rng == cursor.rng());
}

TEST(StreamCursors, DrainCursorMatchesManualCollection) {
  const Graph g = test_graph();
  const FrontierSampler fs(g, {.dimension = 5, .steps = 800});
  FrontierCursor a(g, fs.config(), Rng(21));
  FrontierCursor b(g, fs.config(), Rng(21));
  const SampleRecord manual = collect(a);
  const SampleRecord drained = drain_cursor(b, fs.config().steps);
  expect_identical(manual, drained);
}

TEST(StreamCursors, CostIsMonotoneDuringIteration) {
  const Graph g = test_graph();
  const FrontierSampler fs(g, {.dimension = 3, .steps = 50});
  FrontierCursor cursor(g, fs.config(), Rng(22));
  StreamEvent ev;
  double prev = cursor.cost();
  EXPECT_DOUBLE_EQ(prev, 3.0);  // m starts already paid
  while (cursor.next(ev)) {
    EXPECT_GT(cursor.cost(), prev);
    prev = cursor.cost();
  }
  EXPECT_DOUBLE_EQ(prev, 53.0);
}

}  // namespace
}  // namespace frontier

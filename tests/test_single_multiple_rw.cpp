#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sampling/multiple_rw.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

TEST(SingleRandomWalk, ProducesRequestedSteps) {
  Rng rng(1);
  const Graph g = barabasi_albert(100, 2, rng);
  const SingleRandomWalk walker(g, {.steps = 250});
  const SampleRecord rec = walker.run(rng);
  EXPECT_EQ(rec.edges.size(), 250u);
  EXPECT_EQ(rec.starts.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.cost, 251.0);
}

TEST(SingleRandomWalk, FixedStartIsHonored) {
  Rng rng(2);
  const Graph g = cycle_graph(8);
  const SingleRandomWalk walker(g, {.steps = 10, .fixed_start = VertexId{3}});
  const SampleRecord rec = walker.run(rng);
  EXPECT_EQ(rec.starts[0], 3u);
  EXPECT_EQ(rec.edges.front().u, 3u);
}

TEST(SingleRandomWalk, FixedStartValidation) {
  Rng rng(3);
  GraphBuilder b(3);
  b.add_undirected_edge(0, 1);  // vertex 2 isolated
  const Graph g = b.build();
  EXPECT_THROW(SingleRandomWalk(g, {.steps = 1, .fixed_start = VertexId{9}}),
               std::out_of_range);
  EXPECT_THROW(SingleRandomWalk(g, {.steps = 1, .fixed_start = VertexId{2}}),
               std::invalid_argument);
}

TEST(SingleRandomWalk, StationaryVisitLawIsDegreeProportional) {
  // Long walk on a connected non-bipartite graph: vertex visit frequency
  // converges to deg(v)/vol(V) (Section 4).
  Rng rng(4);
  const Graph g = barabasi_albert(50, 2, rng);
  const SingleRandomWalk walker(g, {.steps = 400000});
  const SampleRecord rec = walker.run(rng);
  std::vector<double> freq(g.num_vertices(), 0.0);
  for (const Edge& e : rec.edges) freq[e.v] += 1.0;
  const double vol = static_cast<double>(g.volume());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double expect = static_cast<double>(g.degree(v)) / vol;
    EXPECT_NEAR(freq[v] / static_cast<double>(rec.edges.size()), expect,
                0.25 * expect + 0.001)
        << "vertex " << v;
  }
}

TEST(SingleRandomWalk, EdgesAreChained) {
  Rng rng(5);
  const Graph g = barabasi_albert(100, 2, rng);
  const SingleRandomWalk walker(g, {.steps = 100});
  const SampleRecord rec = walker.run(rng);
  for (std::size_t i = 1; i < rec.edges.size(); ++i) {
    EXPECT_EQ(rec.edges[i].u, rec.edges[i - 1].v);
  }
}

TEST(MultipleRandomWalks, RejectsZeroWalkers) {
  Rng rng(6);
  const Graph g = cycle_graph(5);
  EXPECT_THROW(MultipleRandomWalks(g, {.num_walkers = 0}),
               std::invalid_argument);
}

TEST(MultipleRandomWalks, EdgeAndStartCounts) {
  Rng rng(7);
  const Graph g = barabasi_albert(200, 2, rng);
  const MultipleRandomWalks walkers(
      g, {.num_walkers = 8, .steps_per_walker = 25});
  const SampleRecord rec = walkers.run(rng);
  EXPECT_EQ(rec.edges.size(), 200u);
  EXPECT_EQ(rec.starts.size(), 8u);
  EXPECT_DOUBLE_EQ(rec.cost, 8.0 * 26.0);
}

TEST(MultipleRandomWalks, SegmentsAreIndependentChains) {
  Rng rng(8);
  const Graph g = barabasi_albert(100, 2, rng);
  const std::size_t m = 4;
  const std::uint64_t steps = 50;
  const MultipleRandomWalks walkers(
      g, {.num_walkers = m, .steps_per_walker = steps});
  const SampleRecord rec = walkers.run(rng);
  for (std::size_t w = 0; w < m; ++w) {
    const std::size_t base = w * steps;
    EXPECT_EQ(rec.edges[base].u, rec.starts[w]) << "walker " << w;
    for (std::size_t i = 1; i < steps; ++i) {
      EXPECT_EQ(rec.edges[base + i].u, rec.edges[base + i - 1].v);
    }
  }
}

TEST(MultipleRandomWalks, WalkersLandInTheirStartComponents) {
  // Two disconnected triangles: a walker can never cross over.
  GraphBuilder b(6);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(3, 4);
  b.add_undirected_edge(4, 5);
  b.add_undirected_edge(5, 3);
  const Graph g = b.build();
  Rng rng(9);
  const MultipleRandomWalks walkers(
      g, {.num_walkers = 6, .steps_per_walker = 30});
  const SampleRecord rec = walkers.run(rng);
  for (std::size_t w = 0; w < 6; ++w) {
    const bool start_in_a = rec.starts[w] < 3;
    for (std::size_t i = 0; i < 30; ++i) {
      const Edge& e = rec.edges[w * 30 + i];
      EXPECT_EQ(e.v < 3, start_in_a) << "walker " << w << " escaped";
    }
  }
}

TEST(MultipleRandomWalks, DegreeProportionalStartMode) {
  Rng rng(10);
  const Graph g = star_graph(6);
  const MultipleRandomWalks walkers(
      g, {.num_walkers = 2000, .steps_per_walker = 0,
          .start = StartMode::kDegreeProportional});
  const SampleRecord rec = walkers.run(rng);
  int center = 0;
  for (VertexId v : rec.starts) {
    if (v == 0) ++center;
  }
  // Center has deg 5 of vol 10 -> probability 1/2.
  EXPECT_NEAR(static_cast<double>(center) / 2000.0, 0.5, 0.05);
}

}  // namespace
}  // namespace frontier

// Lemma 5.3 (exact K_fs law), Section 5.1 (alpha ratio), and Theorem 5.4
// (K_fs -> K_un convergence).
#include "analysis/walker_counts.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/cartesian_power.hpp"
#include "analysis/dense_chain.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

Graph triangle_with_pendant() {
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(0, 3);
  return b.build();
}

TEST(SubsetStats, ComputesAverages) {
  const Graph g = triangle_with_pendant();  // degrees 3,2,2,1; vol 8
  const std::vector<VertexId> va{0, 3};
  const SubsetStats s = subset_stats(g, va);
  EXPECT_DOUBLE_EQ(s.p, 0.5);
  EXPECT_DOUBLE_EQ(s.da, 2.0);   // (3+1)/2
  EXPECT_DOUBLE_EQ(s.db, 2.0);   // (2+2)/2
  EXPECT_DOUBLE_EQ(s.d, 2.0);
}

TEST(SubsetStats, ValidatesSubset) {
  const Graph g = triangle_with_pendant();
  const std::vector<VertexId> empty;
  EXPECT_THROW((void)subset_stats(g, empty), std::invalid_argument);
  const std::vector<VertexId> all{0, 1, 2, 3};
  EXPECT_THROW((void)subset_stats(g, all), std::invalid_argument);
  const std::vector<VertexId> dup{0, 0};
  EXPECT_THROW((void)subset_stats(g, dup), std::invalid_argument);
}

TEST(BinomialPmf, SumsToOneAndMatchesKnownValues) {
  const auto pmf = binomial_pmf(4, 0.5);
  ASSERT_EQ(pmf.size(), 5u);
  EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-12);
  EXPECT_NEAR(pmf[0], 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(pmf[2], 6.0 / 16.0, 1e-12);
}

TEST(BinomialPmf, DegenerateP) {
  const auto zero = binomial_pmf(3, 0.0);
  EXPECT_DOUBLE_EQ(zero[0], 1.0);
  const auto one = binomial_pmf(3, 1.0);
  EXPECT_DOUBLE_EQ(one[3], 1.0);
  EXPECT_THROW((void)binomial_pmf(3, 1.5), std::invalid_argument);
}

TEST(KfsPmf, IsADistribution) {
  const Graph g = triangle_with_pendant();
  const std::vector<VertexId> va{0};
  const SubsetStats s = subset_stats(g, va);
  for (std::size_t m : {1, 2, 5, 20, 100}) {
    const auto pmf = kfs_pmf(m, s);
    EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-9)
        << "m = " << m;
  }
}

TEST(KfsPmf, MatchesDirectSummationOverStates) {
  // Lemma 5.3 was derived by summing the Theorem 5.2 joint law over states
  // with exactly k walkers in V_A — verify against brute-force enumeration.
  const Graph g = triangle_with_pendant();
  const std::vector<VertexId> va{0, 1};
  const SubsetStats s = subset_stats(g, va);
  const std::size_t m = 3;
  const StateCodec codec(g.num_vertices(), m);
  const auto pi = frontier_stationary_formula(g, m);
  std::vector<double> brute(m + 1, 0.0);
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    std::size_t k = 0;
    for (VertexId v : codec.decode(code)) {
      if (v == 0 || v == 1) ++k;
    }
    brute[k] += pi[code];
  }
  const auto formula = kfs_pmf(m, s);
  for (std::size_t k = 0; k <= m; ++k) {
    EXPECT_NEAR(formula[k], brute[k], 1e-9) << "k = " << k;
  }
}

TEST(KfsPmf, SizeBiasTowardHighVolumeSubsets) {
  // A high-average-degree subset holds more FS walkers than uniform.
  Rng rng(1);
  const Graph ga = barabasi_albert(100, 1, rng);  // avg deg ~2
  const Graph gb = barabasi_albert(100, 5, rng);  // avg deg ~10
  const Graph g = join_by_single_edge(ga, gb);
  std::vector<VertexId> vb(100);
  std::iota(vb.begin(), vb.end(), 100);  // the dense half
  const SubsetStats s = subset_stats(g, vb);
  const std::size_t m = 50;
  const auto fs = kfs_pmf(m, s);
  const auto un = binomial_pmf(m, s.p);
  double mean_fs = 0.0, mean_un = 0.0;
  for (std::size_t k = 0; k <= m; ++k) {
    mean_fs += static_cast<double>(k) * fs[k];
    mean_un += static_cast<double>(k) * un[k];
  }
  EXPECT_GT(mean_fs, mean_un);
  // But far less biased than independent stationary walkers:
  const auto mw = kmw_pmf(m, s);
  double mean_mw = 0.0;
  for (std::size_t k = 0; k <= m; ++k) {
    mean_mw += static_cast<double>(k) * mw[k];
  }
  EXPECT_GT(mean_mw, mean_fs);
}

TEST(Theorem54, KfsConvergesToKunInTotalVariation) {
  const Graph g = triangle_with_pendant();
  const std::vector<VertexId> va{0};
  const SubsetStats s = subset_stats(g, va);
  double prev = 1.0;
  for (std::size_t m : {2, 8, 32, 128, 512}) {
    const auto fs = kfs_pmf(m, s);
    const auto un = binomial_pmf(m, s.p);
    const double tvd = total_variation(fs, un);
    EXPECT_LT(tvd, prev) << "m = " << m;
    prev = tvd;
  }
  EXPECT_LT(prev, 0.02);  // essentially converged at m = 512
}

TEST(Theorem54, ConvergenceHoldsOnSkewedGraph) {
  Rng rng(2);
  const Graph g = barabasi_albert(200, 2, rng);
  std::vector<VertexId> va;
  for (VertexId v = 0; v < 50; ++v) va.push_back(v);  // includes early hubs
  const SubsetStats s = subset_stats(g, va);
  EXPECT_GT(alpha_ratio(s), 1.0);  // early BA vertices are above-average
  const double tvd_small = total_variation(kfs_pmf(4, s), binomial_pmf(4, s.p));
  const double tvd_large =
      total_variation(kfs_pmf(1024, s), binomial_pmf(1024, s.p));
  EXPECT_LT(tvd_large, tvd_small);
  EXPECT_LT(tvd_large, 0.05);
}

TEST(AlphaRatio, MatchesSection51) {
  // alpha_A = d_A / d: the MultipleRW walker-count distortion.
  const Graph g = triangle_with_pendant();
  const std::vector<VertexId> hub{0};
  EXPECT_DOUBLE_EQ(alpha_ratio(subset_stats(g, hub)), 3.0 / 2.0);
  const std::vector<VertexId> leaf{3};
  EXPECT_DOUBLE_EQ(alpha_ratio(subset_stats(g, leaf)), 1.0 / 2.0);
}

TEST(KmwPmf, MeanIsVolumeFraction) {
  const Graph g = triangle_with_pendant();
  const std::vector<VertexId> va{0};  // deg 3 of vol 8
  const SubsetStats s = subset_stats(g, va);
  const std::size_t m = 40;
  const auto pmf = kmw_pmf(m, s);
  double mean = 0.0;
  for (std::size_t k = 0; k <= m; ++k) {
    mean += static_cast<double>(k) * pmf[k];
  }
  EXPECT_NEAR(mean, static_cast<double>(m) * 3.0 / 8.0, 1e-9);
}

}  // namespace
}  // namespace frontier

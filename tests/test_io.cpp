#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges());
  ASSERT_EQ(a.volume(), b.volume());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "vertex " << v;
    ASSERT_EQ(a.out_degree(v), b.out_degree(v)) << "vertex " << v;
    ASSERT_EQ(a.in_degree(v), b.in_degree(v)) << "vertex " << v;
  }
}

TEST(EdgeListIo, RoundTripDirected) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 0);
  b.add_edge(0, 3);
  const Graph g = b.build();

  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph loaded = read_edge_list(ss);
  expect_same_graph(g, loaded);
}

TEST(EdgeListIo, RoundTripRandomGraph) {
  Rng rng(5);
  const Graph g = barabasi_albert(300, 2, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  expect_same_graph(g, read_edge_list(ss));
}

TEST(EdgeListIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n0 1\n  # indented comment\n1 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 2u);
}

TEST(EdgeListIo, DensifiesSparseIds) {
  std::stringstream ss("1000000 42\n42 7\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 2u);
}

TEST(EdgeListIo, ParseErrorThrows) {
  std::stringstream ss("0 1\nnot numbers\n");
  EXPECT_THROW((void)read_edge_list(ss), IoError);
}

TEST(BinaryIo, RoundTrip) {
  Rng rng(6);
  const Graph g = directed_preferential(200, 2, 0.4, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, ss);
  expect_same_graph(g, read_binary(ss));
}

TEST(BinaryIo, BadMagicThrows) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss << "garbage data here.....";
  EXPECT_THROW((void)read_binary(ss), IoError);
}

TEST(BinaryIo, TruncatedStreamThrows) {
  Rng rng(7);
  const Graph g = barabasi_albert(50, 1, rng);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, full);
  const std::string bytes = full.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW((void)read_binary(cut), IoError);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)read_edge_list_file("/nonexistent/path/graph.txt"),
               IoError);
  EXPECT_THROW((void)read_binary_file("/nonexistent/path/graph.bin"),
               IoError);
}

TEST(FileIo, RoundTripThroughTempFiles) {
  Rng rng(8);
  const Graph g = barabasi_albert(100, 2, rng);
  const std::string text_path = ::testing::TempDir() + "fs_graph.txt";
  const std::string bin_path = ::testing::TempDir() + "fs_graph.bin";
  write_edge_list_file(g, text_path);
  write_binary_file(g, bin_path);
  expect_same_graph(g, read_edge_list_file(text_path));
  expect_same_graph(g, read_binary_file(bin_path));
}

}  // namespace
}  // namespace frontier

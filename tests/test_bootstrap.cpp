#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "estimators/density.hpp"
#include "estimators/graph_moments.hpp"
#include "graph/generators.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

double mean_target_id(std::span<const Edge> edges) {
  double sum = 0.0;
  for (const Edge& e : edges) sum += static_cast<double>(e.v);
  return edges.empty() ? 0.0 : sum / static_cast<double>(edges.size());
}

TEST(BlockBootstrap, ValidatesInput) {
  Rng rng(1);
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const auto est = [](std::span<const Edge> e) { return mean_target_id(e); };
  EXPECT_THROW((void)block_bootstrap({}, est, 1, 10, 0.9, rng),
               std::invalid_argument);
  EXPECT_THROW((void)block_bootstrap(edges, est, 0, 10, 0.9, rng),
               std::invalid_argument);
  EXPECT_THROW((void)block_bootstrap(edges, est, 3, 10, 0.9, rng),
               std::invalid_argument);
  EXPECT_THROW((void)block_bootstrap(edges, est, 1, 1, 0.9, rng),
               std::invalid_argument);
  EXPECT_THROW((void)block_bootstrap(edges, est, 1, 10, 1.0, rng),
               std::invalid_argument);
}

TEST(BlockBootstrap, PointEstimateIsPlugin) {
  Rng rng(2);
  const std::vector<Edge> edges{{0, 2}, {2, 4}, {4, 6}};
  const auto ci = block_bootstrap(
      edges, [](std::span<const Edge> e) { return mean_target_id(e); }, 1,
      50, 0.9, rng);
  EXPECT_DOUBLE_EQ(ci.point, 4.0);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
}

TEST(BlockBootstrap, DegenerateSampleHasZeroWidth) {
  Rng rng(3);
  const std::vector<Edge> edges(50, Edge{1, 2});
  const auto ci = block_bootstrap(
      edges, [](std::span<const Edge> e) { return mean_target_id(e); }, 5,
      100, 0.95, rng);
  EXPECT_DOUBLE_EQ(ci.lower, 2.0);
  EXPECT_DOUBLE_EQ(ci.upper, 2.0);
}

TEST(BlockBootstrap, CoversTruthOnRealEstimator) {
  // 95% interval for the average degree from a single walk should cover
  // the true value in most replications.
  Rng rng(4);
  const Graph g = barabasi_albert(500, 3, rng);
  const double truth = g.average_degree();
  const SingleRandomWalk walker(g, {.steps = 4000});
  int covered = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    Rng walk_rng(100 + t);
    const auto edges = walker.run(walk_rng).edges;
    Rng boot_rng(200 + t);
    const auto ci = block_bootstrap(
        edges,
        [&g](std::span<const Edge> e) {
          return estimate_average_degree(g, e);
        },
        100, 200, 0.95, boot_rng);
    if (truth >= ci.lower && truth <= ci.upper) ++covered;
  }
  // Block bootstrap intervals are approximate; require >= 70% empirical
  // coverage at the 95% level.
  EXPECT_GE(covered, 21) << covered << "/" << trials;
}

TEST(BlockBootstrap, WiderIntervalAtHigherLevel) {
  Rng rng(5);
  const Graph g = barabasi_albert(300, 2, rng);
  const SingleRandomWalk walker(g, {.steps = 2000});
  const auto edges = walker.run(rng).edges;
  const auto est = [&g](std::span<const Edge> e) {
    return estimate_average_degree(g, e);
  };
  Rng ra(1), rb(1);
  const auto narrow = block_bootstrap(edges, est, 50, 400, 0.5, ra);
  const auto wide = block_bootstrap(edges, est, 50, 400, 0.99, rb);
  EXPECT_LE(wide.lower, narrow.lower);
  EXPECT_GE(wide.upper, narrow.upper);
}

}  // namespace
}  // namespace frontier

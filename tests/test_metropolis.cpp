#include "sampling/metropolis.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace frontier {
namespace {

TEST(MetropolisHastings, VisitCountIncludesStart) {
  Rng rng(1);
  const Graph g = cycle_graph(6);
  const MetropolisHastingsWalk mh(g, {.steps = 100});
  const SampleRecord rec = mh.run(rng);
  EXPECT_EQ(rec.vertices.size(), 101u);
  EXPECT_EQ(rec.vertices.front(), rec.starts.front());
}

TEST(MetropolisHastings, RejectionsKeepPosition) {
  Rng rng(2);
  const Graph g = star_graph(8);  // heavy rejection from leaves? no — from center
  const MetropolisHastingsWalk mh(g, {.steps = 2000});
  const SampleRecord rec = mh.run(rng);
  // Visits must form a lazy chain: consecutive visits equal or adjacent.
  for (std::size_t i = 1; i < rec.vertices.size(); ++i) {
    const VertexId a = rec.vertices[i - 1];
    const VertexId b = rec.vertices[i];
    EXPECT_TRUE(a == b || g.has_edge(a, b));
  }
  // Accepted transitions are a subset of steps.
  EXPECT_LE(rec.edges.size(), 2000u);
}

TEST(MetropolisHastings, VisitsAreAsymptoticallyUniform) {
  // MH-RW targets the uniform law over V even on a skewed-degree graph.
  Rng rng(3);
  const Graph g = star_graph(6);  // center deg 5, leaves deg 1
  const MetropolisHastingsWalk mh(g, {.steps = 600000});
  const SampleRecord rec = mh.run(rng);
  std::vector<double> freq(g.num_vertices(), 0.0);
  for (VertexId v : rec.vertices) freq[v] += 1.0;
  const double n = static_cast<double>(rec.vertices.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(freq[v] / n, 1.0 / 6.0, 0.02) << "vertex " << v;
  }
}

TEST(MetropolisHastings, UniformOnHeterogeneousRandomGraph) {
  Rng rng(4);
  const Graph g = barabasi_albert(25, 2, rng);
  const MetropolisHastingsWalk mh(g, {.steps = 500000});
  const SampleRecord rec = mh.run(rng);
  std::vector<double> freq(g.num_vertices(), 0.0);
  for (VertexId v : rec.vertices) freq[v] += 1.0;
  const double n = static_cast<double>(rec.vertices.size());
  const double expect = 1.0 / static_cast<double>(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(freq[v] / n, expect, 0.25 * expect) << "vertex " << v;
  }
}

TEST(MetropolisHastings, FixedStart) {
  Rng rng(5);
  const Graph g = cycle_graph(5);
  const MetropolisHastingsWalk mh(g,
                                  {.steps = 10, .fixed_start = VertexId{2}});
  const SampleRecord rec = mh.run(rng);
  EXPECT_EQ(rec.starts.front(), 2u);
}

}  // namespace
}  // namespace frontier

// Property suite: every uniform-edge sampler is interchangeable with every
// edge-based estimator. For each (sampler, characteristic) pair, a long
// stationary sample must converge to the exact value — the Theorem 4.1
// SLLN applied across the whole library surface.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "estimators/assortativity.hpp"
#include "estimators/clustering.hpp"
#include "estimators/density.hpp"
#include "estimators/graph_moments.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sampling/distributed_fs.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/multiple_rw.hpp"
#include "sampling/random_edge.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

struct SamplerCase {
  std::string name;
  std::function<std::vector<Edge>(const Graph&, Rng&)> sample;
};

std::vector<SamplerCase> uniform_edge_samplers() {
  // Each produces ~200k stationary edge samples.
  return {
      {"SingleRW",
       [](const Graph& g, Rng& rng) {
         return SingleRandomWalk(g, {.steps = 200000}).run(rng).edges;
       }},
      {"LazySingleRW",
       [](const Graph& g, Rng& rng) {
         return SingleRandomWalk(g, {.steps = 300000, .laziness = 0.3})
             .run(rng)
             .edges;
       }},
      {"FrontierSampler",
       [](const Graph& g, Rng& rng) {
         return FrontierSampler(g, {.dimension = 25, .steps = 200000})
             .run(rng)
             .edges;
       }},
      {"DistributedFS",
       [](const Graph& g, Rng& rng) {
         return DistributedFrontierSampler(
                    g, {.dimension = 25, .stop = {.max_steps = 200000}})
             .run(rng)
             .edges;
       }},
      {"RandomEdge",
       [](const Graph& g, Rng& rng) {
         return RandomEdgeSampler(g, {.budget = 400000.0, .edge_cost = 2.0})
             .run(rng)
             .edges;
       }},
  };
}

class SamplerEstimatorMatrix
    : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const Graph& graph() {
    static const Graph g = [] {
      Rng rng(77);
      // Small-world base: non-trivial clustering, assortativity, degree
      // spread — all characteristics are exercised.
      return watts_strogatz(400, 3, 0.2, rng);
    }();
    return g;
  }
};

TEST_P(SamplerEstimatorMatrix, AverageDegreeConverges) {
  const auto cases = uniform_edge_samplers();
  const auto& c = cases[GetParam()];
  Rng rng(1000 + GetParam());
  const auto edges = c.sample(graph(), rng);
  EXPECT_NEAR(estimate_average_degree(graph(), edges),
              graph().average_degree(), 0.03 * graph().average_degree())
      << c.name;
}

TEST_P(SamplerEstimatorMatrix, ClusteringConverges) {
  const auto cases = uniform_edge_samplers();
  const auto& c = cases[GetParam()];
  Rng rng(2000 + GetParam());
  const auto edges = c.sample(graph(), rng);
  const double truth = exact_global_clustering(graph());
  EXPECT_NEAR(estimate_global_clustering(graph(), edges), truth,
              0.05 * truth + 0.005)
      << c.name;
}

TEST_P(SamplerEstimatorMatrix, AssortativityConverges) {
  const auto cases = uniform_edge_samplers();
  const auto& c = cases[GetParam()];
  Rng rng(3000 + GetParam());
  const auto edges = c.sample(graph(), rng);
  EXPECT_NEAR(estimate_assortativity(graph(), edges),
              exact_assortativity(graph()), 0.05)
      << c.name;
}

TEST_P(SamplerEstimatorMatrix, LabelDensityConverges) {
  const auto cases = uniform_edge_samplers();
  const auto& c = cases[GetParam()];
  Rng rng(4000 + GetParam());
  const auto edges = c.sample(graph(), rng);
  const auto pred = [](VertexId v) { return v % 7 == 0; };
  EXPECT_NEAR(estimate_vertex_label_density(graph(), edges, pred),
              exact_label_density(graph(), pred), 0.02)
      << c.name;
}

TEST_P(SamplerEstimatorMatrix, SecondDegreeMomentConverges) {
  const auto cases = uniform_edge_samplers();
  const auto& c = cases[GetParam()];
  Rng rng(5000 + GetParam());
  const auto edges = c.sample(graph(), rng);
  double truth = 0.0;
  for (VertexId v = 0; v < graph().num_vertices(); ++v) {
    const double d = graph().degree(v);
    truth += d * d;
  }
  truth /= static_cast<double>(graph().num_vertices());
  EXPECT_NEAR(estimate_degree_moment(graph(), edges, 2), truth, 0.05 * truth)
      << c.name;
}

std::string sampler_case_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  switch (info.param) {
    case 0: return "SingleRW";
    case 1: return "LazySingleRW";
    case 2: return "FrontierSampler";
    case 3: return "DistributedFS";
    default: return "RandomEdge";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerEstimatorMatrix,
                         ::testing::Range<std::size_t>(0, 5),
                         sampler_case_name);

}  // namespace
}  // namespace frontier

#include "sampling/walk.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

TEST(StartSampler, RejectsEmptyOrEdgelessGraph) {
  const Graph empty;
  EXPECT_THROW(StartSampler(empty, StartMode::kUniform),
               std::invalid_argument);
  GraphBuilder b(3);
  const Graph edgeless = b.build();
  EXPECT_THROW(StartSampler(edgeless, StartMode::kUniform),
               std::invalid_argument);
}

TEST(StartSampler, UniformNeverReturnsIsolatedVertex) {
  GraphBuilder b(10);
  b.add_undirected_edge(0, 1);  // vertices 2..9 isolated
  const Graph g = b.build();
  const StartSampler s(g, StartMode::kUniform);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const VertexId v = s.sample(rng);
    EXPECT_TRUE(v == 0 || v == 1);
  }
}

TEST(StartSampler, UniformIsUniformOverNonIsolated) {
  const Graph g = path_graph(4);
  const StartSampler s(g, StartMode::kUniform);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[s.sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.01);
  }
}

TEST(StartSampler, DegreeProportionalMatchesDegrees) {
  const Graph g = star_graph(5);  // center deg 4, leaves deg 1; vol 8
  const StartSampler s(g, StartMode::kDegreeProportional);
  Rng rng(3);
  int center = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (s.sample(rng) == 0) ++center;
  }
  EXPECT_NEAR(static_cast<double>(center) / n, 0.5, 0.01);
}

TEST(StepUniformNeighbor, OnlyReturnsNeighbors) {
  const Graph g = cycle_graph(5);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const VertexId w = step_uniform_neighbor(g, 0, rng);
    EXPECT_TRUE(w == 1 || w == 4);
  }
}

TEST(StepUniformNeighbor, UniformOverNeighbors) {
  const Graph g = star_graph(5);
  Rng rng(5);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[step_uniform_neighbor(g, 0, rng)];
  for (VertexId leaf = 1; leaf < 5; ++leaf) {
    EXPECT_NEAR(static_cast<double>(counts[leaf]) / n, 0.25, 0.01);
  }
}

TEST(WalkFrom, ProducesChainedValidEdges) {
  Rng rng(6);
  const Graph g = barabasi_albert(200, 2, rng);
  std::vector<Edge> edges;
  walk_from(g, 0, 500, rng, edges);
  ASSERT_EQ(edges.size(), 500u);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_TRUE(g.has_edge(edges[i].u, edges[i].v)) << "step " << i;
    if (i > 0) {
      EXPECT_EQ(edges[i].u, edges[i - 1].v) << "step " << i;
    }
  }
}

TEST(WalkFrom, ZeroStepsIsEmpty) {
  Rng rng(7);
  const Graph g = cycle_graph(4);
  std::vector<Edge> edges;
  walk_from(g, 2, 0, rng, edges);
  EXPECT_TRUE(edges.empty());
}

}  // namespace
}  // namespace frontier

#include "estimators/clustering.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

std::vector<Edge> full_edge_pass(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.volume());
  for (EdgeIndex j = 0; j < g.volume(); ++j) edges.push_back(g.edge_at(j));
  return edges;
}

TEST(ClusteringEstimator, ExactOnFullPassCompleteGraph) {
  const Graph g = complete_graph(6);
  EXPECT_NEAR(estimate_global_clustering(g, full_edge_pass(g)), 1.0, 1e-9);
}

TEST(ClusteringEstimator, ExactOnFullPassBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_NEAR(estimate_global_clustering(g, full_edge_pass(g)), 0.0, 1e-9);
}

TEST(ClusteringEstimator, ExactOnFullPassMixedGraph) {
  // Triangle with pendant: C = (1/3 + 1 + 1)/3.
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(0, 3);
  const Graph g = b.build();
  const double truth = exact_global_clustering(g);
  EXPECT_NEAR(estimate_global_clustering(g, full_edge_pass(g)), truth, 1e-9);
}

TEST(ClusteringEstimator, ExactOnFullPassRandomGraph) {
  Rng rng(1);
  const Graph g = watts_strogatz(300, 3, 0.1, rng);
  const double truth = exact_global_clustering(g);
  EXPECT_GT(truth, 0.2);  // small-world: high clustering
  EXPECT_NEAR(estimate_global_clustering(g, full_edge_pass(g)), truth, 1e-9);
}

TEST(ClusteringEstimator, EmptyInputIsZero) {
  const Graph g = complete_graph(4);
  EXPECT_DOUBLE_EQ(estimate_global_clustering(g, {}), 0.0);
}

TEST(ClusteringEstimator, DegreeOneEndpointsIgnored) {
  // Star: all edges have either a deg-1 source (leaf) or the center whose
  // pairs share no edges; estimate must be 0, not NaN.
  const Graph g = star_graph(6);
  const double est = estimate_global_clustering(g, full_edge_pass(g));
  EXPECT_DOUBLE_EQ(est, 0.0);
}

TEST(ClusteringEstimator, ConvergesOnLongWalk) {
  Rng rng(2);
  const Graph g = watts_strogatz(200, 3, 0.05, rng);
  const double truth = exact_global_clustering(g);
  const SingleRandomWalk walker(g, {.steps = 300000});
  const double est = estimate_global_clustering(g, walker.run(rng).edges);
  EXPECT_NEAR(est, truth, 0.05 * truth + 0.01);
}

TEST(ClusteringEstimator, ConvergesUnderFrontierSampling) {
  Rng rng(3);
  const Graph g = watts_strogatz(200, 3, 0.05, rng);
  const double truth = exact_global_clustering(g);
  const FrontierSampler fs(g, {.dimension = 30, .steps = 300000});
  const double est = estimate_global_clustering(g, fs.run(rng).edges);
  EXPECT_NEAR(est, truth, 0.05 * truth + 0.01);
}

}  // namespace
}  // namespace frontier

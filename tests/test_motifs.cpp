// Exact motif enumeration (analysis/motifs.hpp) against analytically
// known fixtures — K4, C5, the Petersen graph, complete bipartite — plus
// a brute-force cross-check of the 3-/4-vertex census on small random
// graphs and rejection of non-simple CSR input.
#include "analysis/motifs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/storage.hpp"
#include "random/rng.hpp"

namespace frontier {
namespace {

Graph petersen() {
  GraphBuilder b(10);
  for (VertexId i = 0; i < 5; ++i) {
    b.add_undirected_edge(i, (i + 1) % 5);            // outer pentagon
    b.add_undirected_edge(5 + i, 5 + (i + 2) % 5);    // inner pentagram
    b.add_undirected_edge(i, 5 + i);                  // spokes
  }
  return b.build();
}

TEST(ExactMotifs, CompleteGraphK4) {
  const Graph g = complete_graph(4);
  EXPECT_EQ(exact_triangle_count(g), 4u);
  EXPECT_EQ(exact_wedge_count(g), 12u);
  EXPECT_DOUBLE_EQ(exact_transitivity(g), 1.0);
  EXPECT_EQ(exact_triangles_per_vertex(g),
            (std::vector<std::uint64_t>{3, 3, 3, 3}));

  const MotifCounts m = exact_motif_counts(g);
  EXPECT_EQ(m.wedge, 0u);
  EXPECT_EQ(m.triangle, 4u);
  EXPECT_EQ(m.path4, 0u);
  EXPECT_EQ(m.claw, 0u);
  EXPECT_EQ(m.cycle4, 0u);
  EXPECT_EQ(m.paw, 0u);
  EXPECT_EQ(m.diamond, 0u);
  EXPECT_EQ(m.clique4, 1u);

  const CliqueSummary cs = exact_clique_summary(g);
  EXPECT_EQ(cs.maximal_cliques, 1u);
  EXPECT_EQ(cs.max_clique_size, 4u);

  const std::vector<double> curve = exact_local_clustering_by_degree(g);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[3], 1.0);
}

TEST(ExactMotifs, CompleteGraphK5) {
  const Graph g = complete_graph(5);
  const MotifCounts m = exact_motif_counts(g);
  EXPECT_EQ(m.triangle, 10u);
  EXPECT_EQ(m.clique4, 5u);  // C(5, 4)
  EXPECT_EQ(m.wedge + m.path4 + m.claw + m.cycle4 + m.paw + m.diamond, 0u);
  const CliqueSummary cs = exact_clique_summary(g);
  EXPECT_EQ(cs.maximal_cliques, 1u);
  EXPECT_EQ(cs.max_clique_size, 5u);
}

TEST(ExactMotifs, CycleC5) {
  const Graph g = cycle_graph(5);
  EXPECT_EQ(exact_triangle_count(g), 0u);
  EXPECT_EQ(exact_wedge_count(g), 5u);
  EXPECT_DOUBLE_EQ(exact_transitivity(g), 0.0);

  const MotifCounts m = exact_motif_counts(g);
  EXPECT_EQ(m.wedge, 5u);
  EXPECT_EQ(m.triangle, 0u);
  EXPECT_EQ(m.path4, 5u);  // one induced P4 per omitted vertex
  EXPECT_EQ(m.claw, 0u);
  EXPECT_EQ(m.cycle4, 0u);
  EXPECT_EQ(m.paw, 0u);
  EXPECT_EQ(m.diamond, 0u);
  EXPECT_EQ(m.clique4, 0u);

  const CliqueSummary cs = exact_clique_summary(g);
  EXPECT_EQ(cs.maximal_cliques, 5u);  // the edges
  EXPECT_EQ(cs.max_clique_size, 2u);
}

TEST(ExactMotifs, PetersenGraph) {
  const Graph g = petersen();
  ASSERT_EQ(g.num_undirected_edges(), 15u);
  EXPECT_EQ(exact_triangle_count(g), 0u);   // girth 5
  EXPECT_EQ(exact_wedge_count(g), 30u);     // 10 · C(3,2)

  const MotifCounts m = exact_motif_counts(g);
  EXPECT_EQ(m.wedge, 30u);
  EXPECT_EQ(m.triangle, 0u);
  EXPECT_EQ(m.claw, 10u);   // one per vertex, 3-regular and triangle-free
  EXPECT_EQ(m.path4, 60u);  // 15 edges · (2·2 other-endpoint choices)
  EXPECT_EQ(m.cycle4, 0u);  // girth 5
  EXPECT_EQ(m.paw, 0u);
  EXPECT_EQ(m.diamond, 0u);
  EXPECT_EQ(m.clique4, 0u);

  const CliqueSummary cs = exact_clique_summary(g);
  EXPECT_EQ(cs.maximal_cliques, 15u);  // triangle-free: every edge
  EXPECT_EQ(cs.max_clique_size, 2u);
}

TEST(ExactMotifs, CompleteBipartiteK34) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(exact_triangle_count(g), 0u);
  EXPECT_EQ(exact_wedge_count(g), 30u);  // 3·C(4,2) + 4·C(3,2)

  const MotifCounts m = exact_motif_counts(g);
  EXPECT_EQ(m.wedge, 30u);
  EXPECT_EQ(m.triangle, 0u);
  EXPECT_EQ(m.cycle4, 18u);  // C(3,2) · C(4,2)
  EXPECT_EQ(m.claw, 16u);    // 3·C(4,3) + 4·C(3,3)
  EXPECT_EQ(m.path4, 0u);    // path endpoints sit on opposite sides: chord
  EXPECT_EQ(m.paw, 0u);
  EXPECT_EQ(m.diamond, 0u);
  EXPECT_EQ(m.clique4, 0u);
}

TEST(ExactMotifs, StarIsTriangleFree) {
  const Graph g = star_graph(4);  // center 0 with 3 leaves
  EXPECT_EQ(exact_triangle_count(g), 0u);
  EXPECT_DOUBLE_EQ(exact_transitivity(g), 0.0);
  const MotifCounts m = exact_motif_counts(g);
  EXPECT_EQ(m.claw, 1u);
  EXPECT_EQ(m.wedge, 3u);
  EXPECT_EQ(m.triangle + m.path4 + m.cycle4 + m.paw + m.diamond + m.clique4,
            0u);
}

// Brute force: classify every 3- and 4-subset by its induced subgraph.
// Any connected 4-vertex graph with 4 edges is a C4 (max degree 2) or a
// paw (max degree 3); with 3 edges it is a path or a claw, disconnected
// exactly when some subset vertex has induced degree 0.
MotifCounts brute_force_census(const Graph& g) {
  MotifCounts m;
  const std::uint32_t n = static_cast<std::uint32_t>(g.num_vertices());
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      for (std::uint32_t c = b + 1; c < n; ++c) {
        const int e = g.has_edge(a, b) + g.has_edge(a, c) + g.has_edge(b, c);
        if (e == 3) ++m.triangle;
        if (e == 2) ++m.wedge;  // two edges on 3 vertices always share one
      }
    }
  }
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      for (std::uint32_t c = b + 1; c < n; ++c) {
        for (std::uint32_t d = c + 1; d < n; ++d) {
          const std::array<VertexId, 4> s{a, b, c, d};
          std::array<int, 4> deg{};
          int edges = 0;
          for (int i = 0; i < 4; ++i) {
            for (int j = i + 1; j < 4; ++j) {
              if (g.has_edge(s[i], s[j])) {
                ++edges;
                ++deg[i];
                ++deg[j];
              }
            }
          }
          const int max_deg = *std::max_element(deg.begin(), deg.end());
          const int min_deg = *std::min_element(deg.begin(), deg.end());
          switch (edges) {
            case 6: ++m.clique4; break;
            case 5: ++m.diamond; break;
            case 4: (max_deg == 3 ? ++m.paw : ++m.cycle4); break;
            case 3:
              if (min_deg == 0) break;  // triangle + isolated vertex
              (max_deg == 3 ? ++m.claw : ++m.path4);
              break;
            default: break;
          }
        }
      }
    }
  }
  return m;
}

TEST(ExactMotifs, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const std::size_t n = 6 + seed % 7;  // 6..12 vertices
    const double p = 0.25 + 0.05 * static_cast<double>(seed % 6);
    const Graph g = erdos_renyi_gnp(n, p, rng);
    const MotifCounts got = exact_motif_counts(g);
    const MotifCounts want = brute_force_census(g);
    EXPECT_EQ(got.wedge, want.wedge) << "seed " << seed;
    EXPECT_EQ(got.triangle, want.triangle) << "seed " << seed;
    EXPECT_EQ(got.path4, want.path4) << "seed " << seed;
    EXPECT_EQ(got.claw, want.claw) << "seed " << seed;
    EXPECT_EQ(got.cycle4, want.cycle4) << "seed " << seed;
    EXPECT_EQ(got.paw, want.paw) << "seed " << seed;
    EXPECT_EQ(got.diamond, want.diamond) << "seed " << seed;
    EXPECT_EQ(got.clique4, want.clique4) << "seed " << seed;
  }
}

TEST(ExactMotifs, LocalClusteringCurveMatchesDefinition) {
  Rng rng(99);
  const Graph g = barabasi_albert(200, 3, rng);
  const std::vector<std::uint64_t> tri = exact_triangles_per_vertex(g);
  const std::vector<double> curve = exact_local_clustering_by_degree(g);
  // Recompute each class mean directly from ∆(v) / C(k, 2).
  std::vector<double> sum(curve.size(), 0.0);
  std::vector<std::uint64_t> cnt(curve.size(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t k = g.degree(v);
    if (k < 2) continue;
    const double pairs = static_cast<double>(k) * (k - 1.0) / 2.0;
    sum[k] += static_cast<double>(tri[v]) / pairs;
    cnt[k] += 1;
  }
  for (std::size_t k = 2; k < curve.size(); ++k) {
    if (cnt[k] == 0) {
      EXPECT_EQ(curve[k], 0.0) << "k=" << k;
    } else {
      EXPECT_NEAR(curve[k], sum[k] / static_cast<double>(cnt[k]), 1e-12)
          << "k=" << k;
    }
  }
}

// Non-simple CSR smuggled in through GraphStorage::from_arrays must be
// rejected by every exact entry point (GraphBuilder can't produce it).
Graph graph_with_self_loop() {
  GraphStorage::Arrays a;
  // Two vertices: 0 ~ 1 plus a self-loop at 0.
  a.offsets = {0, 3, 4};
  a.neighbors = {0, 0, 1, 0};
  a.directions.assign(4, EdgeDir::kBoth);
  a.out_degree = {2, 1};
  a.in_degree = {2, 1};
  a.num_directed_edges = 3;
  return Graph(GraphStorage::from_arrays(std::move(a)));
}

Graph graph_with_parallel_edge() {
  GraphStorage::Arrays a;
  // 0 ~ 1 duplicated in both adjacency lists.
  a.offsets = {0, 2, 4};
  a.neighbors = {1, 1, 0, 0};
  a.directions.assign(4, EdgeDir::kBoth);
  a.out_degree = {2, 2};
  a.in_degree = {2, 2};
  a.num_directed_edges = 4;
  return Graph(GraphStorage::from_arrays(std::move(a)));
}

TEST(ExactMotifs, RejectsSelfLoops) {
  const Graph g = graph_with_self_loop();
  EXPECT_THROW((void)exact_triangle_count(g), std::invalid_argument);
  EXPECT_THROW((void)exact_motif_counts(g), std::invalid_argument);
  EXPECT_THROW((void)exact_clique_summary(g), std::invalid_argument);
  EXPECT_THROW((void)exact_local_clustering_by_degree(g), std::invalid_argument);
}

TEST(ExactMotifs, RejectsParallelEdges) {
  const Graph g = graph_with_parallel_edge();
  EXPECT_THROW((void)exact_triangle_count(g), std::invalid_argument);
  EXPECT_THROW((void)exact_motif_counts(g), std::invalid_argument);
  EXPECT_THROW((void)exact_wedge_count(g), std::invalid_argument);
  EXPECT_THROW((void)exact_transitivity(g), std::invalid_argument);
}

TEST(ExactMotifs, EmptyAndTinyGraphs) {
  const Graph empty = complete_graph(0);
  EXPECT_EQ(exact_triangle_count(empty), 0u);
  EXPECT_EQ(exact_motif_counts(empty).wedge, 0u);
  EXPECT_EQ(exact_clique_summary(empty).maximal_cliques, 0u);

  const Graph one_edge = path_graph(2);
  EXPECT_EQ(exact_triangle_count(one_edge), 0u);
  EXPECT_DOUBLE_EQ(exact_transitivity(one_edge), 0.0);
  const CliqueSummary cs = exact_clique_summary(one_edge);
  EXPECT_EQ(cs.maximal_cliques, 1u);
  EXPECT_EQ(cs.max_clique_size, 2u);
}

}  // namespace
}  // namespace frontier

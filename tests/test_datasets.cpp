#include "experiments/datasets.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/components.hpp"
#include "graph/metrics.hpp"

namespace frontier {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scale_multiplier = 0.25;  // keep dataset tests fast
  cfg.seed = 123;
  return cfg;
}

TEST(Datasets, FlickrShapeProperties) {
  const Dataset ds = synthetic_flickr(small_config());
  EXPECT_EQ(ds.name, "Flickr");
  const ComponentInfo info = connected_components(ds.graph);
  EXPECT_GT(info.num_components(), 1u) << "Flickr surrogate must be disconnected";
  const double lcc_frac =
      static_cast<double>(info.size[info.largest()]) /
      static_cast<double>(ds.graph.num_vertices());
  EXPECT_GT(lcc_frac, 0.88);
  EXPECT_LT(lcc_frac, 0.97);
  EXPECT_NEAR(ds.graph.average_degree(), 12.0, 3.0);
  // Heavy tail (communities cap the global hub, so compare against 10x
  // the mean rather than the monolithic-BA 20x).
  EXPECT_GT(ds.graph.max_degree(), 10 * ds.graph.average_degree());
}

TEST(Datasets, FlickrGroupsCoverAboutOneFifth) {
  const Dataset ds = synthetic_flickr(small_config());
  ASSERT_GT(ds.num_groups, 200u);
  std::size_t with_group = 0;
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (!ds.groups(v).empty()) ++with_group;
    for (std::uint32_t grp : ds.groups(v)) ASSERT_LT(grp, ds.num_groups);
  }
  const double coverage = static_cast<double>(with_group) /
                          static_cast<double>(ds.graph.num_vertices());
  EXPECT_GT(coverage, 0.12);
  EXPECT_LT(coverage, 0.35);
}

TEST(Datasets, FlickrGroupsAreZipfOrdered) {
  const Dataset ds = synthetic_flickr(small_config());
  std::vector<std::size_t> size(ds.num_groups, 0);
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    for (std::uint32_t grp : ds.groups(v)) ++size[grp];
  }
  // First group much larger than the 100th.
  EXPECT_GT(size[0], 4 * size[99]);
}

TEST(Datasets, LiveJournalNearConnected) {
  const Dataset ds = synthetic_livejournal(small_config());
  const ComponentInfo info = connected_components(ds.graph);
  const double lcc_frac =
      static_cast<double>(info.size[info.largest()]) /
      static_cast<double>(ds.graph.num_vertices());
  EXPECT_GT(lcc_frac, 0.99);
  EXPECT_NEAR(ds.graph.average_degree(), 14.6, 3.0);
}

TEST(Datasets, YouTubeShape) {
  const Dataset ds = synthetic_youtube(small_config());
  EXPECT_NEAR(ds.graph.average_degree(), 8.7, 2.5);
}

TEST(Datasets, InternetRltSparse) {
  const Dataset ds = synthetic_internet_rlt(small_config());
  EXPECT_NEAR(ds.graph.average_degree(), 3.2, 1.2);
  // Tree-like: very low clustering.
  EXPECT_LT(exact_global_clustering(ds.graph), 0.1);
}

TEST(Datasets, HepThSmall) {
  const Dataset ds = synthetic_hepth(small_config());
  EXPECT_LT(ds.graph.num_vertices(), 4000u);
  EXPECT_GT(ds.graph.num_vertices(), 500u);
}

TEST(Datasets, GabMatchesPaperConstruction) {
  const Dataset ds = make_gab(1000, 7);
  EXPECT_EQ(ds.graph.num_vertices(), 2000u);
  EXPECT_TRUE(is_connected(ds.graph));
  // Part A: avg degree ~2, part B: ~10; exactly one cross edge.
  std::uint64_t cross = 0;
  double vol_a = 0.0, vol_b = 0.0;
  for (VertexId v = 0; v < 2000; ++v) {
    for (VertexId w : ds.graph.neighbors(v)) {
      if ((v < 1000) != (w < 1000)) ++cross;
    }
    (v < 1000 ? vol_a : vol_b) += ds.graph.degree(v);
  }
  EXPECT_EQ(cross, 2u);  // one undirected edge counted from both sides
  EXPECT_NEAR(vol_a / 1000.0, 2.0, 0.4);
  EXPECT_NEAR(vol_b / 1000.0, 10.0, 0.6);
}

TEST(Datasets, DeterministicAcrossCalls) {
  const Dataset a = synthetic_youtube(small_config());
  const Dataset b = synthetic_youtube(small_config());
  ASSERT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
  ASSERT_EQ(a.graph.volume(), b.graph.volume());
  for (VertexId v = 0; v < a.graph.num_vertices(); ++v) {
    ASSERT_EQ(a.graph.degree(v), b.graph.degree(v));
  }
}

TEST(Datasets, ScaleMultiplierChangesSize) {
  ExperimentConfig big = small_config();
  big.scale_multiplier = 0.5;
  const Dataset small_ds = synthetic_youtube(small_config());
  const Dataset big_ds = synthetic_youtube(big);
  EXPECT_GT(big_ds.graph.num_vertices(), small_ds.graph.num_vertices());
}

TEST(Datasets, Table1RegistryHasFourEntries) {
  ExperimentConfig cfg = small_config();
  cfg.scale_multiplier = 0.1;
  const auto all = table1_datasets(cfg);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "Flickr");
  EXPECT_EQ(all[1].name, "LiveJournal");
  EXPECT_EQ(all[2].name, "YouTube");
  EXPECT_EQ(all[3].name, "Internet RLT");
}

}  // namespace
}  // namespace frontier

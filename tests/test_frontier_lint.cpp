// frontier_lint contract tests.
//
// Two layers: the rule library is driven directly on synthetic content and
// on the fixture trees under tests/lint_fixtures/ (pass_tree must be
// clean, fail_tree must trip every rule with file:line diagnostics), and
// the installed binary is spawned to pin the exit-code contract
// (0 clean, 1 findings, 2 usage error) end to end.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "lint_rules.hpp"

namespace lint = frontier::lint;

namespace {

[[nodiscard]] std::vector<lint::Diagnostic> check(std::string_view path,
                                                  std::string_view content) {
  return lint::check_file(path, content);
}

[[nodiscard]] bool has_rule(const std::vector<lint::Diagnostic>& diags,
                            std::string_view rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const lint::Diagnostic& d) { return d.rule == rule; });
}

}  // namespace

// ---------------------------------------------------------------------------
// Scrubber

TEST(Scrub, BlanksCommentsAndLiteralBodiesPreservingLines) {
  const std::string src =
      "int a; // std::rand() here\n"
      "const char* s = \"time(0) inside\";\n"
      "/* system_clock\n   spans lines */ int b;\n";
  const std::string out = lint::scrub(src);
  ASSERT_EQ(out.size(), src.size());
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("time("), std::string::npos);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(Scrub, DigitSeparatorsAreNotCharLiterals) {
  const std::string src = "long x = 1'000'000; std::cout << x;\n";
  // If 1'000'000 opened a char literal, the cout would be blanked.
  EXPECT_NE(lint::scrub(src).find("std::cout"), std::string::npos);
}

// ---------------------------------------------------------------------------
// determinism-no-wall-clock

TEST(WallClockRule, FlagsForbiddenCallsWithLineNumbers) {
  const auto diags = check("src/x.cpp",
                           "int a = std::rand();\n"
                           "auto t = time(nullptr);\n"
                           "std::chrono::system_clock::time_point p;\n"
                           "std::random_device rd;\n");
  ASSERT_EQ(diags.size(), 4u);
  for (std::size_t i = 0; i < diags.size(); ++i) {
    EXPECT_EQ(diags[i].rule, "determinism-no-wall-clock");
    EXPECT_EQ(diags[i].line, i + 1);
    EXPECT_EQ(diags[i].file, "src/x.cpp");
  }
}

TEST(WallClockRule, SteadyClockAndLookalikeIdentifiersPass) {
  const auto diags =
      check("src/x.cpp",
            "using Clock = std::chrono::steady_clock;\n"
            "double wall_time_seconds = 0;\n"  // 'time' not call-like
            "auto tp = Clock::now();\n"
            "int randomized = 3;\n");  // 'rand' bounded inside identifier
  EXPECT_TRUE(diags.empty());
}

TEST(WallClockRule, OnlyAppliesToSrc) {
  EXPECT_TRUE(check("tests/t.cpp", "int a = std::rand();\n").empty());
  EXPECT_TRUE(check("bench/bench_x.cpp",
                    "BenchSession s; auto t = time(nullptr);\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// no-stdout-in-library

TEST(StdoutRule, FlagsCoutAndPrintfFamily) {
  const auto diags = check("src/x.cpp",
                           "std::cout << 1;\n"
                           "printf(\"%d\", 2);\n"
                           "puts(\"x\");\n");
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_TRUE(has_rule(diags, "no-stdout-in-library"));
  EXPECT_EQ(diags[1].line, 2u);
}

TEST(StdoutRule, SnprintfAndDesignatedPrintersPass) {
  EXPECT_TRUE(check("src/x.cpp", "std::snprintf(buf, n, \"%d\", 2);\n")
                  .empty());
  EXPECT_TRUE(
      check("src/experiments/printers.cpp", "std::cout << header;\n").empty());
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(Suppression, AllowWithRationaleSilencesTheFinding) {
  const auto diags = check(
      "src/x.cpp",
      "std::random_device rd;  // lint:allow(determinism-no-wall-clock): "
      "seeding the doc example only, value never reaches a sampler\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Suppression, AllowWithoutRationaleIsItselfAFinding) {
  const auto diags = check(
      "src/x.cpp",
      "std::random_device rd;  // lint:allow(determinism-no-wall-clock)\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "suppression-rationale");
  EXPECT_EQ(diags[0].line, 1u);
}

TEST(Suppression, WrongRuleNameDoesNotSuppress) {
  const auto diags =
      check("src/x.cpp",
            "std::random_device rd;  // lint:allow(pragma-once): nope\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "determinism-no-wall-clock");
}

// ---------------------------------------------------------------------------
// durable-file-replacement

TEST(DurableRule, FlagsRawOfstreamAndRenameInSrcAndTools) {
  const auto diags = check("src/stream/x.cpp",
                           "std::ofstream f(tmp);\n"
                           "std::rename(tmp.c_str(), path.c_str());\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(has_rule(diags, "durable-file-replacement"));
  EXPECT_EQ(diags[1].line, 2u);
  EXPECT_TRUE(has_rule(check("tools/x.cpp", "std::ofstream f(p);\n"),
                       "durable-file-replacement"));
}

TEST(DurableRule, HelperItselfAndWaiversAndOtherTreesPass) {
  // The helper is the one place the raw idiom is the implementation.
  EXPECT_TRUE(check("src/core/durable.cpp",
                    "std::ofstream f(tmp);\nstd::rename(a, b);\n")
                  .empty());
  // A create-only stream is waived per line with a rationale.
  EXPECT_TRUE(check("src/graph/x.cpp",
                    "std::ofstream f(p);  // lint:allow(durable-file-"
                    "replacement): create-only scratch file, never "
                    "replaces a read-back artifact\n")
                  .empty());
  // Tests and benches build scratch inputs freely.
  EXPECT_TRUE(check("bench/bench_x.cpp",
                    "bench_common::BenchSession s(argc, argv);\n"
                    "std::ofstream f(p);\n")
                  .empty());
  // ifstream and renamed identifiers never match.
  EXPECT_TRUE(check("src/x.cpp",
                    "std::ifstream in(p);\nint my_rename = 0;\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// pragma-once and bench-session

TEST(PragmaOnce, MissingGuardFlagsLineOne) {
  const auto diags = check("src/x.hpp", "#ifndef X\n#define X\n#endif\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "pragma-once");
  EXPECT_EQ(diags[0].line, 1u);
  EXPECT_TRUE(check("src/x.hpp", "#pragma once\nint x;\n").empty());
}

TEST(BenchSession, CommentMentionDoesNotSatisfyTheRule) {
  EXPECT_TRUE(has_rule(
      check("bench/bench_x.cpp", "// uses BenchSession, honest!\nint main(){}\n"),
      "bench-session"));
  EXPECT_TRUE(
      check("bench/bench_x.cpp", "bench_common::BenchSession s(argc, argv);\n")
          .empty());
  // Non-bench files in bench/ (the shared runtime) are exempt.
  EXPECT_TRUE(check("bench/common_helpers.cpp", "int x;\n").empty());
}

// ---------------------------------------------------------------------------
// Fixture trees + formatting

TEST(LintTree, PassTreeIsClean) {
  const lint::LintResult r =
      lint::lint_tree(std::string(LINT_FIXTURE_DIR) + "/pass_tree");
  EXPECT_TRUE(r.unreadable.empty());
  EXPECT_EQ(r.files_checked, 3u);
  for (const auto& d : r.diagnostics) ADD_FAILURE() << lint::format(d);
}

TEST(LintTree, FailTreeTripsEveryRuleWithFileAndLine) {
  const lint::LintResult r =
      lint::lint_tree(std::string(LINT_FIXTURE_DIR) + "/fail_tree");
  EXPECT_TRUE(r.unreadable.empty());
  EXPECT_EQ(r.files_checked, 6u);
  for (const char* rule :
       {"determinism-no-wall-clock", "no-stdout-in-library", "pragma-once",
        "bench-session", "suppression-rationale",
        "durable-file-replacement"}) {
    EXPECT_TRUE(has_rule(r.diagnostics, rule)) << "rule not tripped: " << rule;
  }
  // Exact anchors: the fixtures pin their violations to known lines.
  bool saw_rand = false;
  for (const auto& d : r.diagnostics) {
    EXPECT_GT(d.line, 0u);
    EXPECT_NE(d.file.find('/'), std::string::npos) << d.file;
    if (d.file == "src/bad_clock.cpp" && d.line == 15) saw_rand = true;
    const std::string line = lint::format(d);
    // file:line: [rule] message — editor-clickable.
    EXPECT_NE(line.find(d.file + ":" + std::to_string(d.line) + ": ["),
              std::string::npos)
        << line;
  }
  EXPECT_TRUE(saw_rand) << "std::rand on bad_clock.cpp:15 not anchored";
}

// ---------------------------------------------------------------------------
// Binary exit-code contract (0 clean / 1 findings / 2 usage error)

namespace {

[[nodiscard]] int run_binary(const std::string& args, std::string* output) {
  const std::string out_path =
      ::testing::TempDir() + "/frontier_lint_out.txt";
  const std::string cmd = std::string(FRONTIER_LINT_BINARY) + " " + args +
                          " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  std::ifstream in(out_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  *output = buf.str();
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace

TEST(Binary, ExitCodesAndDiagnosticsNameFileLine) {
  std::string out;
  EXPECT_EQ(run_binary(std::string(LINT_FIXTURE_DIR) + "/pass_tree", &out), 0);
  EXPECT_NE(out.find("frontier_lint: OK"), std::string::npos) << out;

  EXPECT_EQ(run_binary(std::string(LINT_FIXTURE_DIR) + "/fail_tree", &out), 1);
  EXPECT_NE(out.find("src/bad_clock.cpp:15: [determinism-no-wall-clock]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("src/bad_header.hpp:1: [pragma-once]"),
            std::string::npos)
      << out;

  EXPECT_EQ(run_binary("/no/such/dir", &out), 2);
  EXPECT_EQ(run_binary("--list-rules", &out), 0);
  EXPECT_NE(out.find("determinism-no-wall-clock"), std::string::npos);
}

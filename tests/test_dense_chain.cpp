#include "analysis/dense_chain.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

TEST(DenseChain, SetGetAndBounds) {
  DenseChain chain(3);
  chain.set(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(chain.get(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(chain.get(1, 0), 0.0);
  EXPECT_THROW(chain.set(3, 0, 0.1), std::out_of_range);
  EXPECT_THROW((void)chain.get(0, 3), std::out_of_range);
}

TEST(DenseChain, StochasticityCheck) {
  DenseChain chain(2);
  chain.set(0, 1, 1.0);
  chain.set(1, 0, 0.5);
  EXPECT_FALSE(chain.is_stochastic());
  chain.set(1, 1, 0.5);
  EXPECT_TRUE(chain.is_stochastic());
}

TEST(DenseChain, StepEvolvesDistribution) {
  DenseChain chain(2);
  chain.set(0, 1, 1.0);
  chain.set(1, 0, 1.0);
  const std::vector<double> dist{1.0, 0.0};
  const auto next = chain.step(dist);
  EXPECT_DOUBLE_EQ(next[0], 0.0);
  EXPECT_DOUBLE_EQ(next[1], 1.0);
  const auto back = chain.evolve(dist, 2);
  EXPECT_DOUBLE_EQ(back[0], 1.0);
}

TEST(DenseChain, StationaryOfPeriodicChainFails) {
  DenseChain chain(2);  // pure 2-cycle: periodic, power iteration oscillates
  chain.set(0, 1, 1.0);
  chain.set(1, 0, 1.0);
  // Uniform start is actually the fixed point here, so convergence is
  // instant — perturb with a lazy chain instead to test the generic path.
  const auto pi = chain.stationary();
  EXPECT_NEAR(pi[0], 0.5, 1e-9);
}

TEST(RandomWalkChain, IsStochasticAndDegreeStationary) {
  Rng rng(1);
  const Graph g = barabasi_albert(60, 2, rng);
  const DenseChain chain = random_walk_chain(g);
  EXPECT_TRUE(chain.is_stochastic());
  const auto pi = chain.stationary();
  const auto expect = rw_stationary_distribution(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(pi[v], expect[v], 1e-7) << "vertex " << v;
  }
}

TEST(RandomWalkChain, IsolatedVertexIsAbsorbing) {
  GraphBuilder b(3);
  b.add_undirected_edge(0, 1);
  const Graph g = b.build();
  const DenseChain chain = random_walk_chain(g);
  EXPECT_TRUE(chain.is_stochastic());
  EXPECT_DOUBLE_EQ(chain.get(2, 2), 1.0);
}

TEST(LazyRandomWalkChain, HandlesBipartiteGraphs) {
  // Power iteration on an even cycle (bipartite, periodic) does not settle
  // from a non-symmetric start; the lazy chain fixes periodicity.
  const Graph g = cycle_graph(6);
  const DenseChain lazy = lazy_random_walk_chain(g);
  EXPECT_TRUE(lazy.is_stochastic());
  std::vector<double> point(6, 0.0);
  point[0] = 1.0;
  const auto dist = lazy.evolve(point, 4000);
  for (double p : dist) EXPECT_NEAR(p, 1.0 / 6.0, 1e-6);
}

TEST(TotalVariation, BasicProperties) {
  const std::vector<double> a{0.5, 0.5};
  const std::vector<double> b{1.0, 0.0};
  EXPECT_DOUBLE_EQ(total_variation(a, a), 0.0);
  EXPECT_DOUBLE_EQ(total_variation(a, b), 0.5);
  const std::vector<double> c{1.0, 0.0, 0.0};
  EXPECT_THROW((void)total_variation(a, c), std::invalid_argument);
}

TEST(RwStationary, SumsToOneAndMatchesDegrees) {
  Rng rng(2);
  const Graph g = barabasi_albert(100, 2, rng);
  const auto pi = rw_stationary_distribution(g);
  double total = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(pi[v], static_cast<double>(g.degree(v)) /
                                static_cast<double>(g.volume()));
    total += pi[v];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DenseChain, EvolveConvergesToStationaryMonotonically) {
  Rng rng(3);
  const Graph g = barabasi_albert(40, 2, rng);
  const DenseChain chain = random_walk_chain(g);
  const auto pi = rw_stationary_distribution(g);
  std::vector<double> dist(g.num_vertices(),
                           1.0 / static_cast<double>(g.num_vertices()));
  double prev = total_variation(dist, pi);
  for (int t = 0; t < 30; ++t) {
    dist = chain.step(dist);
    const double cur = total_variation(dist, pi);
    EXPECT_LE(cur, prev + 1e-12) << "step " << t;
    prev = cur;
  }
  EXPECT_LT(prev, 0.01);
}

}  // namespace
}  // namespace frontier

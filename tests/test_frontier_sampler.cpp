#include "sampling/frontier_sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

// Validates that the edge sequence is a legal FS trajectory: replaying it
// against the start multiset, every sampled edge must leave a vertex
// currently occupied by some walker.
void expect_valid_fs_trajectory(const Graph& g, const SampleRecord& rec) {
  std::multiset<VertexId> occupancy(rec.starts.begin(), rec.starts.end());
  for (std::size_t i = 0; i < rec.edges.size(); ++i) {
    const Edge& e = rec.edges[i];
    ASSERT_TRUE(g.has_edge(e.u, e.v)) << "step " << i;
    const auto it = occupancy.find(e.u);
    ASSERT_NE(it, occupancy.end()) << "step " << i << ": no walker at " << e.u;
    occupancy.erase(it);
    occupancy.insert(e.v);
  }
}

TEST(FrontierSampler, RejectsZeroDimension) {
  Rng rng(1);
  const Graph g = cycle_graph(4);
  EXPECT_THROW(FrontierSampler(g, {.dimension = 0}), std::invalid_argument);
}

TEST(FrontierSampler, ProducesRequestedSteps) {
  Rng rng(2);
  const Graph g = barabasi_albert(100, 2, rng);
  const FrontierSampler fs(g, {.dimension = 5, .steps = 300});
  const SampleRecord rec = fs.run(rng);
  EXPECT_EQ(rec.edges.size(), 300u);
  EXPECT_EQ(rec.starts.size(), 5u);
  EXPECT_DOUBLE_EQ(rec.cost, 305.0);
}

TEST(FrontierSampler, TrajectoryIsValidWeightedTree) {
  Rng rng(3);
  const Graph g = barabasi_albert(80, 2, rng);
  const FrontierSampler fs(g, {.dimension = 7, .steps = 500});
  expect_valid_fs_trajectory(g, fs.run(rng));
}

TEST(FrontierSampler, TrajectoryIsValidLinearScan) {
  Rng rng(4);
  const Graph g = barabasi_albert(80, 2, rng);
  const FrontierSampler fs(
      g, {.dimension = 7, .steps = 500,
          .selection = FrontierSampler::Selection::kLinearScan});
  expect_valid_fs_trajectory(g, fs.run(rng));
}

TEST(FrontierSampler, DimensionOneEqualsSingleWalkLaw) {
  // With m = 1 FS degenerates to a plain random walk: stationary visit
  // frequencies are degree proportional.
  Rng rng(5);
  const Graph g = barabasi_albert(40, 2, rng);
  const FrontierSampler fs(g, {.dimension = 1, .steps = 300000});
  const SampleRecord rec = fs.run(rng);
  std::vector<double> freq(g.num_vertices(), 0.0);
  for (const Edge& e : rec.edges) freq[e.v] += 1.0;
  const double vol = static_cast<double>(g.volume());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double expect = static_cast<double>(g.degree(v)) / vol;
    EXPECT_NEAR(freq[v] / static_cast<double>(rec.edges.size()), expect,
                0.25 * expect + 0.001);
  }
}

TEST(FrontierSampler, SamplesEdgesUniformlyInLongRun) {
  // Theorem 5.2 (I): in steady state FS samples edges of G uniformly; by
  // ergodicity the long-run empirical edge frequencies converge to 1/|E|.
  Rng rng(6);
  const Graph g = barabasi_albert(30, 2, rng);
  const FrontierSampler fs(g, {.dimension = 4, .steps = 600000});
  const SampleRecord rec = fs.run(rng);
  std::map<std::pair<VertexId, VertexId>, double> freq;
  for (const Edge& e : rec.edges) freq[{e.u, e.v}] += 1.0;
  const double expect = 1.0 / static_cast<double>(g.volume());
  EXPECT_EQ(freq.size(), g.volume());  // every ordered edge visited
  for (const auto& [edge, count] : freq) {
    EXPECT_NEAR(count / static_cast<double>(rec.edges.size()), expect,
                0.25 * expect)
        << edge.first << "->" << edge.second;
  }
}

TEST(FrontierSampler, SelectionStrategiesAgreeInDistribution) {
  // Both strategies must give the same degree-proportional walker choice;
  // compare per-vertex visit frequencies on a fixed graph.
  Rng rng(7);
  const Graph g = barabasi_albert(50, 2, rng);
  const std::uint64_t steps = 200000;
  const FrontierSampler tree(g, {.dimension = 10, .steps = steps});
  const FrontierSampler scan(
      g, {.dimension = 10, .steps = steps,
          .selection = FrontierSampler::Selection::kLinearScan});
  Rng rng_a(100);
  Rng rng_b(200);
  std::vector<double> fa(g.num_vertices(), 0.0);
  std::vector<double> fb(g.num_vertices(), 0.0);
  for (const Edge& e : tree.run(rng_a).edges) fa[e.v] += 1.0;
  for (const Edge& e : scan.run(rng_b).edges) fb[e.v] += 1.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(fa[v] / static_cast<double>(steps),
                fb[v] / static_cast<double>(steps),
                0.25 * fa[v] / static_cast<double>(steps) + 0.002);
  }
}

TEST(FrontierSampler, RunFromValidatesStarts) {
  Rng rng(8);
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);  // vertex 3 isolated
  const Graph g = b.build();
  const FrontierSampler fs(g, {.dimension = 2, .steps = 10});
  const std::vector<VertexId> wrong_size{0};
  EXPECT_THROW((void)fs.run_from(wrong_size, rng), std::invalid_argument);
  const std::vector<VertexId> isolated{0, 3};
  EXPECT_THROW((void)fs.run_from(isolated, rng), std::invalid_argument);
  const std::vector<VertexId> ok{0, 2};
  const SampleRecord rec = fs.run_from(ok, rng);
  EXPECT_EQ(rec.starts, ok);
  EXPECT_EQ(rec.edges.size(), 10u);
}

TEST(FrontierSampler, ReproducibleWithSameSeed) {
  Rng setup(9);
  const Graph g = barabasi_albert(60, 2, setup);
  const FrontierSampler fs(g, {.dimension = 3, .steps = 100});
  Rng a(77);
  Rng b(77);
  const SampleRecord ra = fs.run(a);
  const SampleRecord rb = fs.run(b);
  ASSERT_EQ(ra.edges.size(), rb.edges.size());
  for (std::size_t i = 0; i < ra.edges.size(); ++i) {
    EXPECT_EQ(ra.edges[i], rb.edges[i]);
  }
}

TEST(FrontierSampler, WalkersStayInTheirComponents) {
  // FS walkers also cannot jump components — the robustness comes from the
  // budget re-allocation, not teleportation.
  GraphBuilder b(6);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(3, 4);
  b.add_undirected_edge(4, 5);
  b.add_undirected_edge(5, 3);
  const Graph g = b.build();
  Rng rng(10);
  const FrontierSampler fs(g, {.dimension = 4, .steps = 200});
  const SampleRecord rec = fs.run(rng);
  expect_valid_fs_trajectory(g, rec);
  for (const Edge& e : rec.edges) {
    EXPECT_EQ(e.u < 3, e.v < 3);  // edges never cross components
  }
}

TEST(FrontierSampler, AllocatesStepsByComponentVolume) {
  // Two disconnected cliques, one dense (K10) one sparse (path of 10):
  // in steady state FS spends budget proportional to component volume.
  std::vector<Graph> parts;
  parts.push_back(complete_graph(10));  // vol 90
  parts.push_back(path_graph(10));      // vol 18
  const Graph g = disjoint_union(parts);
  Rng rng(11);
  const FrontierSampler fs(g, {.dimension = 200, .steps = 200000});
  const SampleRecord rec = fs.run(rng);
  double dense_steps = 0.0;
  for (const Edge& e : rec.edges) {
    if (e.u < 10) dense_steps += 1.0;
  }
  const double frac = dense_steps / static_cast<double>(rec.edges.size());
  // Walker placement is uniform (10 vertices each side -> half the
  // walkers in each clique), but FS advances walkers ∝ degree, so the
  // dense side gets ~90/(90+18) of the steps as m grows.
  EXPECT_NEAR(frac, 90.0 / 108.0, 0.04);
}

class FrontierDimensionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrontierDimensionSweep, UniformEdgeSamplingHoldsForAllM) {
  const std::size_t m = GetParam();
  Rng rng(12);
  const Graph g = complete_graph(8);  // vol 56, symmetric, fast mixing
  const FrontierSampler fs(g, {.dimension = m, .steps = 150000});
  const SampleRecord rec = fs.run(rng);
  std::map<std::pair<VertexId, VertexId>, double> freq;
  for (const Edge& e : rec.edges) freq[{e.u, e.v}] += 1.0;
  const double expect = 1.0 / 56.0;
  for (const auto& [edge, count] : freq) {
    EXPECT_NEAR(count / static_cast<double>(rec.edges.size()), expect,
                0.15 * expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, FrontierDimensionSweep,
                         ::testing::Values(1, 2, 3, 8, 32, 128));

}  // namespace
}  // namespace frontier

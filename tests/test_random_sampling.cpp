#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sampling/random_edge.hpp"
#include "sampling/random_vertex.hpp"

namespace frontier {
namespace {

TEST(RandomVertexSampler, ValidatesConfig) {
  Rng rng(1);
  const Graph g = cycle_graph(4);
  EXPECT_THROW(
      RandomVertexSampler(g, {.budget = 10, .cost = {.hit_ratio = 0.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      RandomVertexSampler(g, {.budget = 10, .cost = {.jump_cost = 0.0}}),
      std::invalid_argument);
  EXPECT_THROW(RandomVertexSampler(Graph{}, {.budget = 10}),
               std::invalid_argument);
}

TEST(RandomVertexSampler, FullHitRatioSpendsExactly) {
  Rng rng(2);
  const Graph g = cycle_graph(10);
  const RandomVertexSampler rv(g, {.budget = 50.0});
  const SampleRecord rec = rv.run(rng);
  EXPECT_EQ(rec.vertices.size(), 50u);
  EXPECT_DOUBLE_EQ(rec.cost, 50.0);
}

TEST(RandomVertexSampler, LowHitRatioShrinksYield) {
  Rng rng(3);
  const Graph g = cycle_graph(10);
  const RandomVertexSampler rv(
      g, {.budget = 10000.0, .cost = {.hit_ratio = 0.1}});
  const SampleRecord rec = rv.run(rng);
  // Expected yield = budget * hit_ratio = 1000.
  EXPECT_NEAR(static_cast<double>(rec.vertices.size()), 1000.0, 120.0);
  EXPECT_LE(rec.cost, 10000.0 + 1e-9);
}

TEST(RandomVertexSampler, SamplesUniformly) {
  Rng rng(4);
  const Graph g = star_graph(5);  // degree-skewed; RV must stay uniform
  const RandomVertexSampler rv(g, {.budget = 100000.0});
  const SampleRecord rec = rv.run(rng);
  std::vector<double> freq(g.num_vertices(), 0.0);
  for (VertexId v : rec.vertices) freq[v] += 1.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(freq[v] / static_cast<double>(rec.vertices.size()), 0.2,
                0.01);
  }
}

TEST(RandomEdgeSampler, ValidatesConfig) {
  Rng rng(5);
  const Graph g = cycle_graph(4);
  GraphBuilder empty_builder(3);
  const Graph edgeless = empty_builder.build();
  EXPECT_THROW(RandomEdgeSampler(edgeless, {.budget = 10}),
               std::invalid_argument);
  EXPECT_THROW(RandomEdgeSampler(g, {.budget = 10, .hit_ratio = 2.0}),
               std::invalid_argument);
  EXPECT_THROW(RandomEdgeSampler(g, {.budget = 10, .edge_cost = 0.0}),
               std::invalid_argument);
}

TEST(RandomEdgeSampler, CostTwoPerEdge) {
  Rng rng(6);
  const Graph g = cycle_graph(6);
  const RandomEdgeSampler re(g, {.budget = 100.0});
  const SampleRecord rec = re.run(rng);
  EXPECT_EQ(rec.edges.size(), 50u);  // 100 budget / cost 2
  EXPECT_DOUBLE_EQ(rec.cost, 100.0);
}

TEST(RandomEdgeSampler, SamplesOrderedEdgesUniformly) {
  Rng rng(7);
  const Graph g = star_graph(4);  // 6 ordered edges
  const RandomEdgeSampler re(g, {.budget = 240000.0});
  const SampleRecord rec = re.run(rng);
  std::vector<double> count(g.num_vertices(), 0.0);
  for (const Edge& e : rec.edges) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    count[e.v] += 1.0;
  }
  // Target vertex law = deg(v)/vol: center 1/2, each leaf 1/6.
  const double total = static_cast<double>(rec.edges.size());
  EXPECT_NEAR(count[0] / total, 0.5, 0.01);
  for (VertexId leaf = 1; leaf < 4; ++leaf) {
    EXPECT_NEAR(count[leaf] / total, 1.0 / 6.0, 0.01);
  }
}

TEST(RandomEdgeSampler, HitRatioReducesYield) {
  Rng rng(8);
  const Graph g = cycle_graph(10);
  const RandomEdgeSampler re(
      g, {.budget = 20000.0, .edge_cost = 2.0, .hit_ratio = 0.01});
  const SampleRecord rec = re.run(rng);
  // Expected yield = budget * hit / cost = 100.
  EXPECT_NEAR(static_cast<double>(rec.edges.size()), 100.0, 40.0);
}

TEST(RandomSamplers, NeverExceedBudget) {
  Rng rng(9);
  const Graph g = barabasi_albert(100, 2, rng);
  for (double budget : {1.0, 7.0, 99.5, 1000.0}) {
    const RandomVertexSampler rv(
        g, {.budget = budget, .cost = {.hit_ratio = 0.5}});
    EXPECT_LE(rv.run(rng).cost, budget + 1e-9);
    const RandomEdgeSampler re(
        g, {.budget = budget, .hit_ratio = 0.5});
    EXPECT_LE(re.run(rng).cost, budget + 1e-9);
  }
}

}  // namespace
}  // namespace frontier

#include "experiments/printers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

namespace frontier {
namespace {

TEST(TextTable, AlignsColumnsAndPads) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b"});  // short row padded
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Row count: header + separator + 2 rows = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(FormatNumber, SignificantDigits) {
  EXPECT_EQ(format_number(0.012345, 3), "0.0123");
  EXPECT_EQ(format_number(1.0), "1");
}

TEST(FormatPercent, RendersPercentage) {
  EXPECT_EQ(format_percent(0.072), "7.2%");
  EXPECT_EQ(format_percent(7.52), "752%");
}

TEST(PrintCurves, EmitsXAndSeriesColumns) {
  std::ostringstream os;
  const std::vector<std::uint32_t> xs{1, 2, 5};
  const std::vector<std::string> names{"fs", "srw"};
  const std::vector<std::vector<double>> series{
      {0.0, 0.1, 0.2, 0.0, 0.0, 0.5}, {0.0, 0.3, 0.4}};
  print_curves(os, "degree", xs, names, series);
  const std::string out = os.str();
  EXPECT_NE(out.find("degree"), std::string::npos);
  EXPECT_NE(out.find("fs"), std::string::npos);
  EXPECT_NE(out.find("0.5"), std::string::npos);  // x=5 of series fs
}

TEST(WriteCurvesCsv, CommaSeparated) {
  std::ostringstream os;
  const std::vector<std::uint32_t> xs{1, 2};
  const std::vector<std::string> names{"a"};
  const std::vector<std::vector<double>> series{{0.0, 0.25, 0.75}};
  write_curves_csv(os, "x", xs, names, series);
  EXPECT_EQ(os.str(), "x,a\n1,0.25\n2,0.75\n");
}

TEST(PrintBanner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 5");
  EXPECT_NE(os.str().find("== Figure 5 =="), std::string::npos);
}

}  // namespace
}  // namespace frontier

#include "estimators/density.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

// Enumerates every ordered symmetric edge once — a "full pass". Feeding a
// full pass to an eq.-7 style estimator must reproduce the exact value,
// because each vertex v appears deg(v) times with weight 1/deg(v).
std::vector<Edge> full_edge_pass(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.volume());
  for (EdgeIndex j = 0; j < g.volume(); ++j) edges.push_back(g.edge_at(j));
  return edges;
}

TEST(VertexLabelDensity, ExactOnFullPass) {
  Rng rng(1);
  const Graph g = barabasi_albert(300, 2, rng);
  const auto edges = full_edge_pass(g);
  const auto pred = [](VertexId v) { return v % 3 == 0; };
  const double truth = exact_label_density(g, pred);
  const double est = estimate_vertex_label_density(g, edges, pred);
  EXPECT_NEAR(est, truth, 1e-9);
}

TEST(VertexLabelDensity, EmptyInputIsZero) {
  const Graph g = cycle_graph(4);
  EXPECT_DOUBLE_EQ(
      estimate_vertex_label_density(g, {}, [](VertexId) { return true; }),
      0.0);
}

TEST(VertexLabelDensity, AllAndNoneLabels) {
  Rng rng(2);
  const Graph g = barabasi_albert(100, 2, rng);
  const auto edges = full_edge_pass(g);
  EXPECT_DOUBLE_EQ(
      estimate_vertex_label_density(g, edges, [](VertexId) { return true; }),
      1.0);
  EXPECT_DOUBLE_EQ(
      estimate_vertex_label_density(g, edges, [](VertexId) { return false; }),
      0.0);
}

TEST(VertexLabelDensity, ConvergesOnRandomWalkSamples) {
  // SLLN (Theorem 4.1): a long stationary RW estimate converges to the
  // exact density even though the walk oversamples high-degree vertices.
  Rng rng(3);
  const Graph g = barabasi_albert(200, 3, rng);
  const auto pred = [&g](VertexId v) { return g.degree(v) <= 6; };
  const double truth = exact_label_density(g, pred);
  const SingleRandomWalk walker(g, {.steps = 400000});
  const SampleRecord rec = walker.run(rng);
  const double est = estimate_vertex_label_density(g, rec.edges, pred);
  EXPECT_NEAR(est, truth, 0.02);
}

TEST(VertexLabelDensityUniform, PlainEmpiricalFraction) {
  const std::vector<VertexId> samples{0, 1, 2, 3, 4, 5};
  const double est = estimate_vertex_label_density_uniform(
      samples, [](VertexId v) { return v < 3; });
  EXPECT_DOUBLE_EQ(est, 0.5);
  EXPECT_DOUBLE_EQ(estimate_vertex_label_density_uniform(
                       {}, [](VertexId) { return true; }),
                   0.0);
}

TEST(EdgeLabelDensity, CountsOverLabeledSubsequence) {
  // Labeled = edges out of even vertices; label present = target is odd.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {2, 1}};
  const double est = estimate_edge_label_density(
      edges, [](const Edge& e) { return e.u % 2 == 0; },
      [](const Edge& e) { return e.v % 2 == 1; });
  // Labeled: (0,1), (2,3), (2,1) -> labels present: (0,1), (2,3), (2,1).
  EXPECT_DOUBLE_EQ(est, 1.0);
}

TEST(EdgeLabelDensity, NoLabeledEdgesGivesZero) {
  std::vector<Edge> edges{{1, 1}, {3, 3}};
  const double est = estimate_edge_label_density(
      edges, [](const Edge&) { return false; },
      [](const Edge&) { return true; });
  EXPECT_DOUBLE_EQ(est, 0.0);
}

TEST(EdgeLabelDensity, ExactOnFullDirectedPass) {
  // Over a full pass of E, the fraction of E_d edges whose target has
  // even id must match direct enumeration.
  Rng rng(4);
  const Graph g = directed_preferential(200, 2, 0.3, rng);
  const auto edges = full_edge_pass(g);
  double labeled = 0.0;
  double hits = 0.0;
  for (const Edge& e : edges) {
    if (!g.has_directed_edge(e.u, e.v)) continue;
    labeled += 1.0;
    if (e.v % 2 == 0) hits += 1.0;
  }
  const double est = estimate_edge_label_density(
      edges,
      [&g](const Edge& e) { return g.has_directed_edge(e.u, e.v); },
      [](const Edge& e) { return e.v % 2 == 0; });
  EXPECT_NEAR(est, hits / labeled, 1e-12);
}

TEST(GroupDensities, ExactOnFullPass) {
  Rng rng(5);
  const Graph g = barabasi_albert(150, 2, rng);
  // Three groups: multiples of 2, of 3, of 5.
  std::vector<std::vector<std::uint32_t>> membership(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v % 2 == 0) membership[v].push_back(0);
    if (v % 3 == 0) membership[v].push_back(1);
    if (v % 5 == 0) membership[v].push_back(2);
  }
  const auto groups_of = [&membership](VertexId v) {
    return std::span<const std::uint32_t>(membership[v]);
  };
  const auto est =
      estimate_group_densities(g, full_edge_pass(g), groups_of, 3);
  for (std::uint32_t grp = 0; grp < 3; ++grp) {
    const double truth = exact_label_density(g, [&](VertexId v) {
      const auto gs = groups_of(v);
      return std::find(gs.begin(), gs.end(), grp) != gs.end();
    });
    EXPECT_NEAR(est[grp], truth, 1e-9) << "group " << grp;
  }
}

TEST(GroupDensitiesUniform, MatchesEmpiricalFractions) {
  std::vector<std::vector<std::uint32_t>> membership{{0}, {0, 1}, {}, {1}};
  const auto groups_of = [&membership](VertexId v) {
    return std::span<const std::uint32_t>(membership[v]);
  };
  const std::vector<VertexId> samples{0, 1, 2, 3};
  const auto est = estimate_group_densities_uniform(samples, groups_of, 2);
  EXPECT_DOUBLE_EQ(est[0], 0.5);
  EXPECT_DOUBLE_EQ(est[1], 0.5);
}

}  // namespace
}  // namespace frontier

#include "estimators/joint_degree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "estimators/assortativity.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

std::vector<Edge> full_edge_pass(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.volume());
  for (EdgeIndex j = 0; j < g.volume(); ++j) edges.push_back(g.edge_at(j));
  return edges;
}

TEST(JointDegree, EmptyTable) {
  const JointDegreeEstimate est;
  EXPECT_EQ(est.count(), 0u);
  EXPECT_DOUBLE_EQ(est.probability(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(est.marginal_out(1), 0.0);
  EXPECT_DOUBLE_EQ(est.assortativity(), 0.0);
}

TEST(JointDegree, IgnoresNonDirectedEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  JointDegreeEstimate est;
  est.absorb(g, Edge{1, 0});  // reverse orientation: not in E_d
  EXPECT_EQ(est.count(), 0u);
  est.absorb(g, Edge{0, 1});
  EXPECT_EQ(est.count(), 1u);
  EXPECT_DOUBLE_EQ(est.probability(1, 1), 1.0);
}

TEST(JointDegree, ProbabilitiesAndMarginalsSumToOne) {
  Rng rng(1);
  const Graph g = directed_preferential(300, 2, 0.5, rng);
  const auto est = estimate_joint_degree(g, full_edge_pass(g));
  double total = 0.0;
  for (const auto& [key, n] : est.cells()) {
    total += est.probability(key.first, key.second);
    (void)n;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Spot-check a marginal: sum of probability over all in-degrees j for a
  // fixed out-degree i equals marginal_out(i).
  const auto first = est.cells().begin()->first;
  double row = 0.0;
  for (const auto& [key, n] : est.cells()) {
    if (key.first == first.first) {
      row += est.probability(key.first, key.second);
    }
    (void)n;
  }
  EXPECT_NEAR(row, est.marginal_out(first.first), 1e-12);
}

TEST(JointDegree, AssortativityMatchesMomentEstimator) {
  Rng rng(2);
  const Graph g = directed_preferential(400, 2, 0.4, rng);
  const SingleRandomWalk walker(g, {.steps = 20000});
  Rng ra(9);
  Rng rb(9);
  const auto edges_a = walker.run(ra).edges;
  const auto edges_b = walker.run(rb).edges;
  const auto table = estimate_joint_degree(g, edges_a);
  EXPECT_NEAR(table.assortativity(), estimate_assortativity(g, edges_b),
              1e-9);
}

TEST(JointDegree, AssortativityExactOnFullPass) {
  Rng rng(3);
  const Graph g = directed_preferential(300, 3, 0.6, rng);
  const auto table = estimate_joint_degree(g, full_edge_pass(g));
  EXPECT_NEAR(table.assortativity(), exact_assortativity(g), 1e-9);
}

}  // namespace
}  // namespace frontier

// Deterministic fault injection: config grammar, trigger semantics,
// hit/fire accounting, and the dormant-is-free contract. Failpoint state
// is process-global, so every test starts and ends disarmed.
#include "core/failpoint.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/io_error.hpp"

namespace fp = frontier::failpoint;

namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear(); }
  void TearDown() override { fp::clear(); }
};

TEST_F(FailpointTest, DormantByDefaultAndAfterClear) {
  EXPECT_FALSE(fp::armed());
  EXPECT_EQ(fp::consume("durable.rename"), fp::Fault::kNone);
  fp::configure("durable.rename=io-error");
  EXPECT_TRUE(fp::armed());
  fp::clear();
  EXPECT_FALSE(fp::armed());
  EXPECT_EQ(fp::hits("durable.rename"), 0u);
}

TEST_F(FailpointTest, MacroThrowsIoErrorOnlyAtTheConfiguredSite) {
  fp::configure("graph.write=io-error");
  EXPECT_THROW(FRONTIER_FAILPOINT("graph.write"), frontier::IoError);
  EXPECT_NO_THROW(FRONTIER_FAILPOINT("graph.read"));
}

TEST_F(FailpointTest, InjectedErrorsNameTheSiteAndTheCondition) {
  fp::configure("checkpoint.save=enospc");
  try {
    fp::trip("checkpoint.save");
    FAIL() << "expected IoError";
  } catch (const frontier::IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checkpoint.save"), std::string::npos) << what;
    EXPECT_NE(what.find("no space left"), std::string::npos) << what;
  }
}

TEST_F(FailpointTest, NthOnlyFiresExactlyOnce) {
  fp::configure("s=io-error@3");
  EXPECT_EQ(fp::consume("s"), fp::Fault::kNone);
  EXPECT_EQ(fp::consume("s"), fp::Fault::kNone);
  EXPECT_EQ(fp::consume("s"), fp::Fault::kIoError);
  EXPECT_EQ(fp::consume("s"), fp::Fault::kNone);
  EXPECT_EQ(fp::hits("s"), 4u);
}

TEST_F(FailpointTest, NthOnwardsFiresFromNForever) {
  fp::configure("s=eintr@2+");
  EXPECT_EQ(fp::consume("s"), fp::Fault::kNone);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fp::consume("s"), fp::Fault::kEintr);
  }
}

TEST_F(FailpointTest, ProbabilityStreamIsDeterministicPerSeed) {
  const auto draw = [](const std::string& spec, int n) {
    fp::configure(spec);
    std::string pattern;
    for (int i = 0; i < n; ++i) {
      pattern += fp::consume("s") == fp::Fault::kNone ? '.' : 'X';
    }
    return pattern;
  };
  const std::string a = draw("s=io-error@p0.5/42", 64);
  EXPECT_EQ(a, draw("s=io-error@p0.5/42", 64));  // same (p, seed), same hits
  EXPECT_NE(a, draw("s=io-error@p0.5/43", 64));  // the seed shifts the stream
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
  // The endpoints are exact, not approximate.
  EXPECT_EQ(draw("s=io-error@p1/7", 8), "XXXXXXXX");
  EXPECT_EQ(draw("s=io-error@p0/7", 8), "........");
  EXPECT_EQ(draw("s=io-error@p0.0/7", 8), "........");
}

TEST_F(FailpointTest, StatsCountHitsAndFiresInConfigOrder) {
  fp::configure("b=io-error@2;a=eintr");
  (void)fp::consume("b");
  (void)fp::consume("b");  // fires on the 2nd hit
  (void)fp::consume("a");  // fires (always)
  const auto stats = fp::stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].site, "b");
  EXPECT_EQ(stats[0].hits, 2u);
  EXPECT_EQ(stats[0].fires, 1u);
  EXPECT_EQ(stats[1].site, "a");
  EXPECT_EQ(stats[1].hits, 1u);
  EXPECT_EQ(stats[1].fires, 1u);
}

TEST_F(FailpointTest, ReconfigureReplacesEverythingAtOnce) {
  fp::configure("a=io-error");
  (void)fp::consume("a");
  fp::configure("b=io-error");
  EXPECT_EQ(fp::consume("a"), fp::Fault::kNone);  // a is gone
  EXPECT_EQ(fp::hits("a"), 0u);                   // counters reset too
  EXPECT_EQ(fp::consume("b"), fp::Fault::kIoError);
  fp::configure("");  // the empty spec disarms, like clear()
  EXPECT_FALSE(fp::armed());
}

TEST_F(FailpointTest, MalformedSpecsThrowNamingTheEntryAndChangeNothing) {
  fp::configure("a=io-error");
  const char* bad[] = {
      "nokind",                            // missing '='
      "=io-error",                         // empty site
      "s=flood",                           // unknown kind
      "s=io-error@",                       // empty trigger
      "s=io-error@0",                      // hit count must be >= 1
      "s=io-error@x",                      // non-numeric hit count
      "s=io-error@99999999999999999999",   // overflows u64
      "s=io-error@p0.5",                   // probability without a seed
      "s=io-error@p2/1",                   // probability > 1
      "s=io-error@p1.5/1",                 // probability > 1
      "s=io-error@p0.1234567890123456789/1",  // too many digits
      "s=io-error;s=abort",                // duplicate site
  };
  for (const char* spec : bad) {
    try {
      fp::configure(spec);
      ADD_FAILURE() << "accepted malformed spec: " << spec;
    } catch (const std::invalid_argument& e) {
      // The diagnostic names the offending entry, not just "bad spec".
      EXPECT_NE(std::string(e.what()).find("failpoint spec entry"),
                std::string::npos)
          << e.what();
    }
  }
  // All-or-nothing: every failed configure() left the old table intact.
  EXPECT_EQ(fp::consume("a"), fp::Fault::kIoError);
}

TEST_F(FailpointTest, CooperativeKindsReturnFromTheKindMacro) {
  fp::configure("s=short-write;t=eintr");
  EXPECT_EQ(FRONTIER_FAILPOINT_KIND("s"), fp::Fault::kShortWrite);
  EXPECT_EQ(FRONTIER_FAILPOINT_KIND("t"), fp::Fault::kEintr);
  EXPECT_EQ(FRONTIER_FAILPOINT_KIND("u"), fp::Fault::kNone);
  // FRONTIER_FAILPOINT ignores cooperative kinds (the site implements
  // them), but both macros advance the same hit counter.
  EXPECT_NO_THROW(FRONTIER_FAILPOINT("s"));
  EXPECT_EQ(fp::hits("s"), 2u);
}

TEST_F(FailpointTest, UnconfiguredSitesRecordNoHits) {
  // Dormant: the macro is one relaxed atomic load, nothing is counted.
  FRONTIER_FAILPOINT("durable.rename");
  EXPECT_EQ(fp::hits("durable.rename"), 0u);
  // Armed but this site unconfigured: still no bookkeeping for it.
  fp::configure("other=io-error@99");
  FRONTIER_FAILPOINT("durable.rename");
  EXPECT_EQ(fp::hits("durable.rename"), 0u);
  EXPECT_EQ(fp::hits("other"), 0u);
}

}  // namespace

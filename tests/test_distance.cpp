#include "graph/distance.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

TEST(BfsDistances, PathGraph) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
  EXPECT_THROW((void)bfs_distances(g, 9), std::out_of_range);
}

TEST(BfsDistances, UnreachableMarked) {
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(2, 3);
  const Graph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Eccentricity, CycleAndStar) {
  EXPECT_EQ(eccentricity(cycle_graph(8), 0), 4u);
  EXPECT_EQ(eccentricity(star_graph(6), 0), 1u);   // center
  EXPECT_EQ(eccentricity(star_graph(6), 1), 2u);   // leaf
}

TEST(PseudoDiameter, ExactOnPathAndCycle) {
  EXPECT_EQ(pseudo_diameter(path_graph(10), 5), 9u);
  EXPECT_EQ(pseudo_diameter(cycle_graph(10)), 5u);
  EXPECT_EQ(pseudo_diameter(complete_graph(7)), 1u);
}

TEST(PseudoDiameter, GabIsLongerThanEitherHalf) {
  Rng rng(1);
  const Graph ga = barabasi_albert(500, 2, rng);
  const Graph gb = barabasi_albert(500, 2, rng);
  const Graph gab = join_by_single_edge(ga, gb);
  EXPECT_GE(pseudo_diameter(gab),
            std::max(pseudo_diameter(ga), pseudo_diameter(gb)));
}

TEST(DistanceStatistics, ExactCompleteGraph) {
  Rng rng(2);
  const Graph g = complete_graph(10);
  const DistanceStats s = distance_statistics(g, 0, rng);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_EQ(s.max_seen, 1u);
  EXPECT_EQ(s.reachable_pairs, 90u);
  EXPECT_LE(s.effective_diameter, 1.0);
}

TEST(DistanceStatistics, PathMeanMatchesFormula) {
  Rng rng(3);
  const Graph g = path_graph(20);
  const DistanceStats s = distance_statistics(g, 0, rng);
  // Mean distance of a path P_n is (n+1)/3.
  EXPECT_NEAR(s.mean, 21.0 / 3.0, 1e-9);
  EXPECT_EQ(s.max_seen, 19u);
}

TEST(DistanceStatistics, SampledCloseToExact) {
  Rng rng(4);
  const Graph g = barabasi_albert(1500, 2, rng);
  Rng ra(1), rb(2);
  const DistanceStats exact = distance_statistics(g, 0, ra);
  const DistanceStats sampled = distance_statistics(g, 200, rb);
  EXPECT_NEAR(sampled.mean, exact.mean, 0.1 * exact.mean);
  EXPECT_NEAR(sampled.effective_diameter, exact.effective_diameter, 1.5);
}

TEST(DistanceStatistics, SmallWorldIsShallow) {
  Rng rng(5);
  const Graph g = watts_strogatz(2000, 3, 0.1, rng);
  const DistanceStats s = distance_statistics(g, 100, rng);
  EXPECT_LT(s.effective_diameter, 15.0);  // rewiring shrinks distances
}

}  // namespace
}  // namespace frontier

#include "graph/components.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

Graph two_triangles() {
  GraphBuilder b(6);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(3, 4);
  b.add_undirected_edge(4, 5);
  b.add_undirected_edge(5, 3);
  return b.build();
}

TEST(ConnectedComponents, SingleComponent) {
  const Graph g = cycle_graph(5);
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.num_components(), 1u);
  EXPECT_EQ(info.size[0], 5u);
  EXPECT_EQ(info.volume[0], 10u);
}

TEST(ConnectedComponents, TwoComponents) {
  const Graph g = two_triangles();
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.num_components(), 2u);
  EXPECT_EQ(info.size[0], 3u);
  EXPECT_EQ(info.size[1], 3u);
  EXPECT_NE(info.component_of[0], info.component_of[3]);
  EXPECT_EQ(info.component_of[0], info.component_of[2]);
}

TEST(ConnectedComponents, IsolatedVerticesAreComponents) {
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  const Graph g = b.build();
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.num_components(), 3u);
}

TEST(ConnectedComponents, LargestPicksBiggest) {
  GraphBuilder b(7);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(2, 3);
  b.add_undirected_edge(3, 4);
  b.add_undirected_edge(4, 5);
  b.add_undirected_edge(5, 6);
  const Graph g = b.build();
  const ComponentInfo info = connected_components(g);
  const std::uint32_t lcc = info.largest();
  EXPECT_EQ(info.size[lcc], 5u);
}

TEST(IsConnected, Basics) {
  EXPECT_TRUE(is_connected(cycle_graph(4)));
  EXPECT_FALSE(is_connected(two_triangles()));
  EXPECT_FALSE(is_connected(Graph{}));
}

TEST(IsBipartite, EvenCycleYes) { EXPECT_TRUE(is_bipartite(cycle_graph(6))); }

TEST(IsBipartite, OddCycleNo) { EXPECT_FALSE(is_bipartite(cycle_graph(5))); }

TEST(IsBipartite, StarAndGridYes) {
  EXPECT_TRUE(is_bipartite(star_graph(5)));
  EXPECT_TRUE(is_bipartite(grid_graph(3, 3)));
}

TEST(IsBipartite, TriangleWithTailNo) {
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(2, 3);
  EXPECT_FALSE(is_bipartite(b.build()));
}

TEST(InducedSubgraph, ExtractsTriangle) {
  const Graph g = two_triangles();
  const std::vector<VertexId> sel{3, 4, 5};
  const Subgraph sub = induced_subgraph(g, sel);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_undirected_edges(), 3u);
  EXPECT_EQ(sub.original_id[0], 3u);
  EXPECT_EQ(sub.original_id[2], 5u);
}

TEST(InducedSubgraph, DropsCrossEdges) {
  const Graph g = path_graph(4);  // 0-1-2-3
  const std::vector<VertexId> sel{0, 1, 3};
  const Subgraph sub = induced_subgraph(g, sel);
  EXPECT_EQ(sub.graph.num_undirected_edges(), 1u);  // only 0-1 survives
  EXPECT_EQ(sub.graph.degree(2), 0u);               // new id of vertex 3
}

TEST(InducedSubgraph, PreservesEdgeDirections) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(2, 1);
  const Graph g = b.build();
  const std::vector<VertexId> sel{0, 1};
  const Subgraph sub = induced_subgraph(g, sel);
  EXPECT_TRUE(sub.graph.has_directed_edge(0, 1));
  EXPECT_FALSE(sub.graph.has_directed_edge(1, 0));
}

TEST(InducedSubgraph, RejectsDuplicatesAndBadIds) {
  const Graph g = path_graph(3);
  const std::vector<VertexId> dup{0, 0};
  EXPECT_THROW((void)induced_subgraph(g, dup), std::invalid_argument);
  const std::vector<VertexId> bad{0, 9};
  EXPECT_THROW((void)induced_subgraph(g, bad), std::out_of_range);
}

TEST(LargestConnectedComponent, ExtractsLcc) {
  GraphBuilder b(10);
  // Component A: path over 0..5 (6 vertices). Component B: triangle 6,7,8.
  for (VertexId v = 0; v < 5; ++v) b.add_undirected_edge(v, v + 1);
  b.add_undirected_edge(6, 7);
  b.add_undirected_edge(7, 8);
  b.add_undirected_edge(8, 6);
  const Graph g = b.build();  // vertex 9 isolated
  const Subgraph lcc = largest_connected_component(g);
  EXPECT_EQ(lcc.graph.num_vertices(), 6u);
  EXPECT_TRUE(is_connected(lcc.graph));
}

TEST(LargestConnectedComponent, RandomGraphRoundTrip) {
  Rng rng(77);
  const Graph g = erdos_renyi_gnp(800, 0.002, rng);
  const ComponentInfo info = connected_components(g);
  const Subgraph lcc = largest_connected_component(g);
  EXPECT_EQ(lcc.graph.num_vertices(), info.size[info.largest()]);
  EXPECT_TRUE(is_connected(lcc.graph));
}

}  // namespace
}  // namespace frontier

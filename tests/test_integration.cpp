// End-to-end integration tests: the paper's qualitative claims reproduced
// at test scale (seconds, not minutes). These are the smoke versions of the
// full benchmark suite in bench/.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "estimators/assortativity.hpp"
#include "estimators/degree_distribution.hpp"
#include "estimators/density.hpp"
#include "experiments/datasets.hpp"
#include "experiments/replicator.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "sampling/budget.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/multiple_rw.hpp"
#include "sampling/random_edge.hpp"
#include "sampling/random_vertex.hpp"
#include "sampling/single_rw.hpp"
#include "stats/accumulators.hpp"
#include "stats/error_metrics.hpp"

namespace frontier {
namespace {

// Shared fixture: a scaled-down G_AB (the paper's pathological
// loosely-connected instance) and a common sampling budget.
class GabExperiment : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gab_ = new Dataset(make_gab(1500, 99));
  }
  static void TearDownTestSuite() {
    delete gab_;
    gab_ = nullptr;
  }
  static const Graph& graph() { return gab_->graph; }

  static Dataset* gab_;
};

Dataset* GabExperiment::gab_ = nullptr;

double mean_density_error(
    const Graph& g, double theta_true,
    const std::function<std::vector<Edge>(Rng&)>& run_sampler,
    std::size_t runs) {
  const auto pred = [&g](VertexId v) { return g.degree(v) == 10; };
  (void)pred;
  ScalarErrorAccumulator result = parallel_accumulate<ScalarErrorAccumulator>(
      runs, 4242,
      [&] { return ScalarErrorAccumulator(theta_true); },
      [&](std::size_t, Rng& rng, ScalarErrorAccumulator& acc) {
        const auto edges = run_sampler(rng);
        acc.add_run(estimate_vertex_label_density(
            g, edges, [&g](VertexId v) { return g.degree(v) == 10; }));
      },
      [](ScalarErrorAccumulator& dst, const ScalarErrorAccumulator& src) {
        dst.merge(src);
      },
      0);
  return result.nmse();
}

TEST_F(GabExperiment, FsBeatsIndependentWalkersOnDegreeDensity) {
  // Fig. 9/10 claim: on G_AB with uniform starts, FS estimates θ_10 with
  // far lower error than SingleRW and MultipleRW under the same budget.
  const Graph& g = graph();
  const double budget = static_cast<double>(g.num_vertices()) / 10.0;
  const std::size_t m = 100;
  const double theta_true = exact_label_density(
      g, [&g](VertexId v) { return g.degree(v) == 10; });
  ASSERT_GT(theta_true, 0.0);

  const std::size_t runs = 60;
  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const double fs_err = mean_density_error(
      g, theta_true, [&](Rng& rng) { return fs.run(rng).edges; }, runs);

  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const double srw_err = mean_density_error(
      g, theta_true, [&](Rng& rng) { return srw.run(rng).edges; }, runs);

  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});
  const double mrw_err = mean_density_error(
      g, theta_true, [&](Rng& rng) { return mrw.run(rng).edges; }, runs);

  EXPECT_LT(fs_err, srw_err);
  EXPECT_LT(fs_err, mrw_err);
}

TEST_F(GabExperiment, SingleWalkerCannotSeeAssortativityAcrossTheBridge) {
  // Table 2's G_AB row: SingleRW gets trapped in one half (each half has
  // r ~ 0) while FS estimates the global r > 0 reliably. Uses the ER-halves
  // G_AB variant, where the global r is solidly positive at bench scale
  // (see make_gab_er's doc comment).
  const Dataset gab_er = make_gab_er(1500, 99);
  const Graph& g = gab_er.graph;
  const double r_true = exact_assortativity(g);
  ASSERT_GT(r_true, 0.1);

  const double budget = static_cast<double>(g.num_vertices()) / 10.0;
  const std::size_t m = 100;
  const std::size_t runs = 40;

  ScalarErrorAccumulator fs_acc = parallel_accumulate<ScalarErrorAccumulator>(
      runs, 777, [&] { return ScalarErrorAccumulator(r_true); },
      [&](std::size_t, Rng& rng, ScalarErrorAccumulator& acc) {
        const FrontierSampler fs(
            g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
        acc.add_run(estimate_assortativity(g, fs.run(rng).edges));
      },
      [](ScalarErrorAccumulator& d, const ScalarErrorAccumulator& s) {
        d.merge(s);
      },
      0);

  ScalarErrorAccumulator srw_acc = parallel_accumulate<ScalarErrorAccumulator>(
      runs, 778, [&] { return ScalarErrorAccumulator(r_true); },
      [&](std::size_t, Rng& rng, ScalarErrorAccumulator& acc) {
        const SingleRandomWalk srw(
            g, {.steps = static_cast<std::uint64_t>(budget) - 1});
        acc.add_run(estimate_assortativity(g, srw.run(rng).edges));
      },
      [](ScalarErrorAccumulator& d, const ScalarErrorAccumulator& s) {
        d.merge(s);
      },
      0);

  EXPECT_LT(fs_acc.nmse(), srw_acc.nmse());
  // SingleRW's estimate collapses toward 0 (the within-half value), i.e.
  // bias close to 100%.
  EXPECT_GT(std::abs(srw_acc.relative_bias()), 0.5);
  EXPECT_LT(std::abs(fs_acc.relative_bias()), 0.3);
}

TEST(VertexVsEdgeSampling, EdgeSamplingWinsOnTheTail) {
  // Section 3: random edge sampling estimates above-average degrees more
  // accurately; random vertex sampling wins below the average.
  ExperimentConfig cfg;
  cfg.scale_multiplier = 0.2;
  cfg.seed = 5;
  const Dataset ds = synthetic_youtube(cfg);
  const Graph& g = ds.graph;
  const auto theta = degree_distribution(g, DegreeKind::kSymmetric);
  const double budget = static_cast<double>(g.num_vertices()) / 20.0;

  // Pick a tail degree (~4x mean) and a low degree below the mean, both
  // with enough probability mass that the NMSE is finite and stable.
  const auto mean_deg = static_cast<std::uint32_t>(g.average_degree());
  std::uint32_t tail_deg = std::min<std::uint32_t>(
      4 * mean_deg, static_cast<std::uint32_t>(theta.size() - 1));
  while (tail_deg > mean_deg && theta[tail_deg] * budget < 0.5) {
    --tail_deg;
  }
  std::uint32_t low_deg = mean_deg / 2;
  while (low_deg > 0 && theta[low_deg] * budget < 0.5) {
    ++low_deg;  // climb toward the mean until there is mass
    if (low_deg >= mean_deg) break;
  }
  ASSERT_GT(tail_deg, mean_deg);
  ASSERT_LT(low_deg, mean_deg);
  ASSERT_GT(theta[tail_deg], 0.0);
  ASSERT_GT(theta[low_deg], 0.0);

  const std::size_t runs = 400;
  struct Pair {
    ScalarErrorAccumulator tail;
    ScalarErrorAccumulator low;
  };
  const auto run_method =
      [&](const std::function<std::vector<double>(Rng&)>& estimate) {
        return parallel_accumulate<Pair>(
            runs, 999,
            [&] {
              return Pair{ScalarErrorAccumulator(theta[tail_deg]),
                          ScalarErrorAccumulator(theta[low_deg])};
            },
            [&](std::size_t, Rng& rng, Pair& acc) {
              const auto est = estimate(rng);
              acc.tail.add_run(tail_deg < est.size() ? est[tail_deg] : 0.0);
              acc.low.add_run(low_deg < est.size() ? est[low_deg] : 0.0);
            },
            [](Pair& d, const Pair& s) {
              d.tail.merge(s.tail);
              d.low.merge(s.low);
            },
            0);
      };

  const RandomVertexSampler rv(g, {.budget = budget});
  const Pair rv_err = run_method([&](Rng& rng) {
    return estimate_degree_distribution_uniform(g, rv.run(rng).vertices,
                                                DegreeKind::kSymmetric);
  });
  const RandomEdgeSampler re(g, {.budget = budget, .edge_cost = 1.0});
  const Pair re_err = run_method([&](Rng& rng) {
    return estimate_degree_distribution(g, re.run(rng).edges,
                                        DegreeKind::kSymmetric);
  });

  EXPECT_LT(re_err.tail.nmse(), rv_err.tail.nmse())
      << "edge sampling must win above the mean degree";
  EXPECT_LT(rv_err.low.nmse(), re_err.low.nmse())
      << "vertex sampling must win below the mean degree";
}

TEST(FlickrSurrogate, FsBeatsMultipleRwOnGroupDensities) {
  // Section 6.5 smoke test at reduced scale: mean NMSE of the top-30 group
  // densities, FS vs MultipleRW (m = 100), budget |V|/50.
  ExperimentConfig cfg;
  cfg.scale_multiplier = 0.2;
  cfg.seed = 31;
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;
  const std::size_t top = 30;
  const auto groups_of = [&ds](VertexId v) { return ds.groups(v); };

  std::vector<double> truth(top, 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t grp : ds.groups(v)) {
      if (grp < top) truth[grp] += 1.0;
    }
  }
  for (double& t : truth) t /= static_cast<double>(g.num_vertices());

  // Budget must keep MultipleRW walkers alive: steps/walker = B/m - 1.
  const double budget = static_cast<double>(g.num_vertices()) / 10.0;
  const std::size_t m = 20;
  const std::size_t runs = 100;

  const auto mean_nmse =
      [&](const std::function<std::vector<Edge>(Rng&)>& sample) {
        MseAccumulator acc = parallel_accumulate<MseAccumulator>(
            runs, 555, [&] { return MseAccumulator(truth); },
            [&](std::size_t, Rng& rng, MseAccumulator& out) {
              out.add_run(estimate_group_densities(g, sample(rng), groups_of,
                                                   top));
            },
            [](MseAccumulator& d, const MseAccumulator& s) { d.merge(s); },
            0);
        const auto curve = acc.normalized_rmse();
        return mean_positive(curve);
      };

  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});
  const double fs_err = mean_nmse([&](Rng& rng) { return fs.run(rng).edges; });
  const double mrw_err =
      mean_nmse([&](Rng& rng) { return mrw.run(rng).edges; });
  EXPECT_LT(fs_err, mrw_err);
}

}  // namespace
}  // namespace frontier

// RandomWalkWithJumps and ParallelFrontierSampler.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sampling/distributed_fs.hpp"
#include "sampling/parallel_fs.hpp"
#include "sampling/random_walk_with_jumps.hpp"

namespace frontier {
namespace {

TEST(RandomWalkWithJumps, ValidatesConfig) {
  Rng rng(1);
  const Graph g = cycle_graph(4);
  EXPECT_THROW(RandomWalkWithJumps(g, {.budget = 10, .jump_probability = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(RandomWalkWithJumps(
                   g, {.budget = 10, .cost = {.hit_ratio = 0.0}}),
               std::invalid_argument);
}

TEST(RandomWalkWithJumps, ZeroJumpProbabilityIsPlainWalk) {
  Rng rng(2);
  const Graph g = barabasi_albert(100, 2, rng);
  const RandomWalkWithJumps rwj(g, {.budget = 200.0, .jump_probability = 0.0});
  const SampleRecord rec = rwj.run(rng);
  EXPECT_EQ(rec.edges.size(), 199u);  // 1 initial jump + 199 steps
  for (std::size_t i = 1; i < rec.edges.size(); ++i) {
    EXPECT_EQ(rec.edges[i].u, rec.edges[i - 1].v);  // unbroken chain
  }
}

TEST(RandomWalkWithJumps, NeverExceedsBudget) {
  Rng rng(3);
  const Graph g = barabasi_albert(100, 2, rng);
  for (double hit : {1.0, 0.2}) {
    const RandomWalkWithJumps rwj(
        g, {.budget = 500.0,
            .jump_probability = 0.2,
            .cost = {.jump_cost = 1.0, .hit_ratio = hit}});
    for (int r = 0; r < 20; ++r) {
      EXPECT_LE(rwj.run(rng).cost, 500.0 + 1e-9);
    }
  }
}

TEST(RandomWalkWithJumps, JumpsCrossComponents) {
  // Two disconnected triangles: only a jumping walker sees both.
  GraphBuilder b(6);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(3, 4);
  b.add_undirected_edge(4, 5);
  b.add_undirected_edge(5, 3);
  const Graph g = b.build();
  Rng rng(4);
  const RandomWalkWithJumps rwj(g, {.budget = 400.0, .jump_probability = 0.2});
  const SampleRecord rec = rwj.run(rng);
  bool saw_a = false;
  bool saw_b = false;
  for (VertexId v : rec.vertices) {
    (v < 3 ? saw_a : saw_b) = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(RandomWalkWithJumps, LowHitRatioShrinksYield) {
  Rng rng(5);
  const Graph g = barabasi_albert(200, 2, rng);
  const RandomWalkWithJumps cheap(
      g, {.budget = 2000.0, .jump_probability = 0.3});
  const RandomWalkWithJumps pricey(
      g, {.budget = 2000.0,
          .jump_probability = 0.3,
          .cost = {.jump_cost = 1.0, .hit_ratio = 0.05}});
  double cheap_edges = 0.0, pricey_edges = 0.0;
  for (int r = 0; r < 20; ++r) {
    cheap_edges += static_cast<double>(cheap.run(rng).edges.size());
    pricey_edges += static_cast<double>(pricey.run(rng).edges.size());
  }
  EXPECT_LT(pricey_edges, 0.5 * cheap_edges);
}

TEST(ParallelFs, ValidatesConfig) {
  Rng rng(6);
  const Graph g = cycle_graph(4);
  EXPECT_THROW(ParallelFrontierSampler(g, {.dimension = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      ParallelFrontierSampler(g, {.dimension = 2, .time_horizon = 0.0}),
      std::invalid_argument);
}

TEST(ParallelFs, DeterministicAcrossThreadCounts) {
  Rng setup(7);
  const Graph g = barabasi_albert(300, 2, setup);
  const ParallelFrontierSampler one(
      g, {.dimension = 32, .time_horizon = 5.0, .threads = 1});
  const ParallelFrontierSampler many(
      g, {.dimension = 32, .time_horizon = 5.0, .threads = 8});
  const SampleRecord a = one.run(42);
  const SampleRecord b = many.run(42);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i], b.edges[i]) << "edge " << i;
  }
}

TEST(ParallelFs, EdgesAreValidAndStartsRecorded) {
  Rng setup(8);
  const Graph g = barabasi_albert(200, 2, setup);
  const ParallelFrontierSampler pfs(
      g, {.dimension = 16, .time_horizon = 20.0});
  const SampleRecord rec = pfs.run(7);
  EXPECT_EQ(rec.starts.size(), 16u);
  EXPECT_GT(rec.edges.size(), 100u);
  for (const Edge& e : rec.edges) EXPECT_TRUE(g.has_edge(e.u, e.v));
}

TEST(ParallelFs, MatchesDistributedFsLaw) {
  // Same vertex-visit law as the (serial) exponential-clock sampler.
  Rng setup(9);
  const Graph g = barabasi_albert(40, 2, setup);
  const double horizon =
      300000.0 / static_cast<double>(g.volume());  // ~300k jumps

  const ParallelFrontierSampler pfs(
      g, {.dimension = 8, .time_horizon = horizon});
  std::vector<double> freq_p(g.num_vertices(), 0.0);
  const SampleRecord rp = pfs.run(11);
  for (const Edge& e : rp.edges) freq_p[e.v] += 1.0;

  const DistributedFrontierSampler dfs(
      g, {.dimension = 8, .stop = {.max_steps = rp.edges.size()}});
  Rng rng_d(12);
  std::vector<double> freq_d(g.num_vertices(), 0.0);
  const SampleRecord rd = dfs.run(rng_d);
  for (const Edge& e : rd.edges) freq_d[e.v] += 1.0;

  const double np = static_cast<double>(rp.edges.size());
  const double nd = static_cast<double>(rd.edges.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(freq_p[v] / np, freq_d[v] / nd,
                0.2 * freq_p[v] / np + 0.003)
        << "vertex " << v;
  }
}

TEST(ParallelFs, HorizonScalesEventCount) {
  Rng setup(10);
  const Graph g = barabasi_albert(500, 3, setup);
  const ParallelFrontierSampler short_run(
      g, {.dimension = 32, .time_horizon = 2.0});
  const ParallelFrontierSampler long_run(
      g, {.dimension = 32, .time_horizon = 4.0});
  double s = 0.0, l = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    s += static_cast<double>(short_run.run(seed).edges.size());
    l += static_cast<double>(long_run.run(seed).edges.size());
  }
  EXPECT_NEAR(l / s, 2.0, 0.2);
}

}  // namespace
}  // namespace frontier

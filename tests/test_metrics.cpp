#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

TEST(DegreeDistribution, StarGraph) {
  const Graph g = star_graph(5);  // center deg 4, four leaves deg 1
  const auto theta = degree_distribution(g, DegreeKind::kSymmetric);
  ASSERT_EQ(theta.size(), 5u);
  EXPECT_DOUBLE_EQ(theta[1], 0.8);
  EXPECT_DOUBLE_EQ(theta[4], 0.2);
  EXPECT_DOUBLE_EQ(theta[0] + theta[2] + theta[3], 0.0);
}

TEST(DegreeDistribution, SumsToOne) {
  Rng rng(1);
  const Graph g = barabasi_albert(1000, 2, rng);
  for (auto kind :
       {DegreeKind::kSymmetric, DegreeKind::kIn, DegreeKind::kOut}) {
    const auto theta = degree_distribution(g, kind);
    const double total =
        std::accumulate(theta.begin(), theta.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DegreeDistribution, DirectedInVsOut) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(2, 1);  // vertex 1: in-degree 2, out-degree 0
  const Graph g = b.build();
  const auto in = degree_distribution(g, DegreeKind::kIn);
  const auto out = degree_distribution(g, DegreeKind::kOut);
  EXPECT_DOUBLE_EQ(in[2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(out[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0 / 3.0);
}

TEST(CcdfFromPdf, MatchesDefinition) {
  const std::vector<double> theta{0.1, 0.2, 0.3, 0.4};
  const auto gamma = ccdf_from_pdf(theta);
  ASSERT_EQ(gamma.size(), 4u);
  EXPECT_NEAR(gamma[0], 0.9, 1e-12);   // sum of theta[1..3]
  EXPECT_NEAR(gamma[1], 0.7, 1e-12);
  EXPECT_NEAR(gamma[2], 0.4, 1e-12);
  EXPECT_NEAR(gamma[3], 0.0, 1e-12);
}

TEST(CcdfFromPdf, MonotoneNonIncreasing) {
  Rng rng(2);
  const Graph g = barabasi_albert(2000, 2, rng);
  const auto gamma =
      ccdf_from_pdf(degree_distribution(g, DegreeKind::kSymmetric));
  for (std::size_t i = 1; i < gamma.size(); ++i) {
    EXPECT_LE(gamma[i], gamma[i - 1] + 1e-12);
  }
}

TEST(ExactLabelDensity, CountsPredicate) {
  const Graph g = path_graph(10);
  const double frac = exact_label_density(
      g, [](VertexId v) { return v % 2 == 0; });
  EXPECT_DOUBLE_EQ(frac, 0.5);
}

TEST(SharedNeighbors, TriangleAndSquare) {
  const Graph tri = complete_graph(3);
  EXPECT_EQ(shared_neighbors(tri, 0, 1), 1u);
  const Graph sq = cycle_graph(4);
  EXPECT_EQ(shared_neighbors(sq, 0, 1), 0u);
  EXPECT_EQ(shared_neighbors(sq, 0, 2), 2u);  // diagonal
}

TEST(TrianglesPerVertex, CompleteGraph) {
  const Graph g = complete_graph(5);
  const auto tri = triangles_per_vertex(g);
  for (auto t : tri) EXPECT_EQ(t, 6u);  // C(4,2)
}

TEST(TrianglesPerVertex, TriangleFree) {
  const Graph g = complete_bipartite(3, 3);
  for (auto t : triangles_per_vertex(g)) EXPECT_EQ(t, 0u);
}

TEST(GlobalClustering, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(exact_global_clustering(complete_graph(6)), 1.0);
}

TEST(GlobalClustering, BipartiteIsZero) {
  EXPECT_DOUBLE_EQ(exact_global_clustering(complete_bipartite(3, 4)), 0.0);
}

TEST(GlobalClustering, StarIsZero) {
  // Only the center has degree >= 2 and it closes no triangles.
  EXPECT_DOUBLE_EQ(exact_global_clustering(star_graph(6)), 0.0);
}

TEST(GlobalClustering, TriangleWithPendant) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(0, 3);
  const Graph g = b.build();
  // c(0) = 1/C(3,2) = 1/3, c(1) = c(2) = 1, vertex 3 excluded (deg 1).
  EXPECT_NEAR(exact_global_clustering(g), (1.0 / 3.0 + 1.0 + 1.0) / 3.0,
              1e-12);
}

TEST(Assortativity, ZeroOnDegreeRegularGraph) {
  // All out/in degrees equal -> zero variance -> r = 0 by convention.
  EXPECT_DOUBLE_EQ(exact_assortativity(cycle_graph(7)), 0.0);
}

TEST(Assortativity, StarIsStronglyDisassortative) {
  // Undirected star: every directed edge connects deg-n-1 with deg-1.
  const double r = exact_assortativity(star_graph(10));
  EXPECT_NEAR(r, -1.0, 1e-9);
}

TEST(Assortativity, InRange) {
  Rng rng(3);
  const Graph g = barabasi_albert(2000, 2, rng);
  const double r = exact_assortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(Assortativity, PositiveOnAssortativeConstruction) {
  // Two cliques of different sizes joined by one edge: high-degree vertices
  // mostly link to high-degree vertices.
  const Graph joined =
      join_by_single_edge(complete_graph(8), complete_graph(3));
  EXPECT_GT(exact_assortativity(joined), 0.5);
}

TEST(Summarize, Table1Columns) {
  GraphBuilder b(5);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(3, 4);
  const Graph g = b.build();
  const GraphSummary s = summarize(g, "toy");
  EXPECT_EQ(s.name, "toy");
  EXPECT_EQ(s.num_vertices, 5u);
  EXPECT_EQ(s.lcc_size, 3u);
  EXPECT_EQ(s.num_directed_edges, 6u);
  EXPECT_DOUBLE_EQ(s.average_degree, 6.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.wmax, 2.0 / (6.0 / 5.0));
}

TEST(DegreeOf, DispatchesKinds) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(degree_of(g, 0, DegreeKind::kOut), 1u);
  EXPECT_EQ(degree_of(g, 0, DegreeKind::kIn), 0u);
  EXPECT_EQ(degree_of(g, 0, DegreeKind::kSymmetric), 1u);
}

}  // namespace
}  // namespace frontier

#include "estimators/graph_moments.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

std::vector<Edge> full_edge_pass(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.volume());
  for (EdgeIndex j = 0; j < g.volume(); ++j) edges.push_back(g.edge_at(j));
  return edges;
}

TEST(AverageDegreeEstimator, ExactOnFullPass) {
  Rng rng(1);
  const Graph g = barabasi_albert(500, 3, rng);
  EXPECT_NEAR(estimate_average_degree(g, full_edge_pass(g)),
              g.average_degree(), 1e-9);
}

TEST(AverageDegreeEstimator, EmptyIsZero) {
  const Graph g = cycle_graph(4);
  EXPECT_DOUBLE_EQ(estimate_average_degree(g, {}), 0.0);
}

TEST(AverageDegreeEstimator, ConvergesOnWalk) {
  Rng rng(2);
  const Graph g = barabasi_albert(300, 2, rng);
  const SingleRandomWalk walker(g, {.steps = 200000});
  const double est = estimate_average_degree(g, walker.run(rng).edges);
  EXPECT_NEAR(est, g.average_degree(), 0.05 * g.average_degree());
}

TEST(AverageDegreeEstimator, UniformVariant) {
  const Graph g = star_graph(5);  // degrees 4,1,1,1,1 -> mean 8/5
  std::vector<VertexId> all{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(estimate_average_degree_uniform(g, all), 1.6);
  EXPECT_DOUBLE_EQ(estimate_average_degree_uniform(g, {}), 0.0);
}

TEST(DegreeMomentEstimator, FirstMomentIsAverageDegree) {
  Rng rng(3);
  const Graph g = barabasi_albert(200, 2, rng);
  const auto edges = full_edge_pass(g);
  EXPECT_NEAR(estimate_degree_moment(g, edges, 1),
              estimate_average_degree(g, edges), 1e-9);
}

TEST(DegreeMomentEstimator, SecondMomentExactOnFullPass) {
  Rng rng(4);
  const Graph g = barabasi_albert(200, 2, rng);
  double truth = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double d = g.degree(v);
    truth += d * d;
  }
  truth /= static_cast<double>(g.num_vertices());
  EXPECT_NEAR(estimate_degree_moment(g, full_edge_pass(g), 2), truth, 1e-6);
}

TEST(DegreeMomentEstimator, ZerothMomentIsOne) {
  Rng rng(5);
  const Graph g = cycle_graph(5);
  EXPECT_DOUBLE_EQ(estimate_degree_moment(g, full_edge_pass(g), 0), 1.0);
  EXPECT_DOUBLE_EQ(estimate_degree_moment(g, {}, 0), 0.0);
}

TEST(VolumeEstimator, ExactOnFullPassGivenTrueN) {
  Rng rng(6);
  const Graph g = barabasi_albert(300, 3, rng);
  const double est = estimate_volume(
      g, full_edge_pass(g), static_cast<double>(g.num_vertices()));
  EXPECT_NEAR(est, static_cast<double>(g.volume()), 1e-6);
  EXPECT_THROW((void)estimate_volume(g, full_edge_pass(g), 0.0),
               std::invalid_argument);
}

TEST(VolumeEstimator, FrontierSamplingEstimatesVolume) {
  Rng rng(7);
  const Graph g = barabasi_albert(500, 3, rng);
  const FrontierSampler fs(g, {.dimension = 20, .steps = 200000});
  const double est = estimate_volume(
      g, fs.run(rng).edges, static_cast<double>(g.num_vertices()));
  EXPECT_NEAR(est, static_cast<double>(g.volume()),
              0.05 * static_cast<double>(g.volume()));
}

}  // namespace
}  // namespace frontier

#include "sampling/budget.hpp"

#include <gtest/gtest.h>

namespace frontier {
namespace {

TEST(CostModel, ExpectedJumpCost) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.expected_jump_cost(), 1.0);
  cm.jump_cost = 2.0;
  cm.hit_ratio = 0.1;
  EXPECT_DOUBLE_EQ(cm.expected_jump_cost(), 20.0);
}

TEST(MultipleRwSteps, PaperFormula) {
  // floor(B/m - c)
  EXPECT_EQ(multiple_rw_steps_per_walker(1000.0, 10, 1.0), 99u);
  EXPECT_EQ(multiple_rw_steps_per_walker(1000.0, 3, 1.0), 332u);
  EXPECT_EQ(multiple_rw_steps_per_walker(100.0, 10, 5.0), 5u);
}

TEST(MultipleRwSteps, ClampsAtZero) {
  EXPECT_EQ(multiple_rw_steps_per_walker(10.0, 100, 1.0), 0u);
  EXPECT_EQ(multiple_rw_steps_per_walker(0.0, 1, 1.0), 0u);
  EXPECT_EQ(multiple_rw_steps_per_walker(5.0, 0, 1.0), 0u);
}

TEST(FrontierSteps, PaperFormula) {
  // B - m*c (Algorithm 1 line 8)
  EXPECT_EQ(frontier_steps(1000.0, 10, 1.0), 990u);
  EXPECT_EQ(frontier_steps(1000.0, 1000, 1.0), 0u);
  EXPECT_EQ(frontier_steps(500.0, 10, 10.0), 400u);
}

TEST(FrontierSteps, ClampsAtZero) {
  EXPECT_EQ(frontier_steps(5.0, 100, 1.0), 0u);
}

TEST(BudgetComparison, FsTakesMoreStepsThanMrwTotal) {
  // Under the same budget B with c = 1, FS walks B - m steps while
  // MultipleRW walks m * floor(B/m - 1) = B - m (when m | B): identical.
  const double budget = 1000.0;
  const std::size_t m = 10;
  const std::uint64_t fs = frontier_steps(budget, m, 1.0);
  const std::uint64_t mrw =
      m * multiple_rw_steps_per_walker(budget, m, 1.0);
  EXPECT_EQ(fs, mrw);
  // When m does not divide B, MultipleRW loses the remainder.
  const std::uint64_t fs2 = frontier_steps(1005.0, m, 1.0);
  const std::uint64_t mrw2 =
      m * multiple_rw_steps_per_walker(1005.0, m, 1.0);
  EXPECT_GE(fs2, mrw2);
}

}  // namespace
}  // namespace frontier

#include "sampling/coverage.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

TEST(CoverageCurve, CountsDistinctVerticesAndEdges) {
  const Graph g = cycle_graph(5);
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 1}, {1, 0}};
  const std::vector<std::uint64_t> cps{1, 2, 4, 10};
  const CoverageCurve c = coverage_curve(g, edges, cps);
  ASSERT_EQ(c.distinct_vertices.size(), 4u);
  EXPECT_EQ(c.distinct_vertices[0], 2u);  // after (0,1)
  EXPECT_EQ(c.distinct_vertices[1], 3u);  // after (1,2)
  EXPECT_EQ(c.distinct_vertices[2], 3u);  // revisits add nothing
  EXPECT_EQ(c.distinct_vertices[3], 3u);  // clamped past the end
  EXPECT_EQ(c.distinct_edges[0], 1u);
  EXPECT_EQ(c.distinct_edges[3], 2u);     // {0,1} and {1,2}
}

TEST(CoverageCurve, EmptySample) {
  const Graph g = cycle_graph(4);
  const std::vector<std::uint64_t> cps{5};
  const CoverageCurve c = coverage_curve(g, {}, cps);
  ASSERT_EQ(c.distinct_vertices.size(), 1u);
  EXPECT_EQ(c.distinct_vertices[0], 0u);
}

TEST(VertexCoverage, FullWalkCoversConnectedGraph) {
  Rng rng(1);
  const Graph g = cycle_graph(30);
  const SingleRandomWalk walker(g, {.steps = 5000});
  EXPECT_DOUBLE_EQ(vertex_coverage(g, walker.run(rng).edges), 1.0);
}

TEST(VertexCoverage, IgnoresIsolatedVertices) {
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);  // vertices 2, 3 isolated
  const Graph g = b.build();
  const std::vector<Edge> edges{{0, 1}};
  EXPECT_DOUBLE_EQ(vertex_coverage(g, edges), 1.0);
}

TEST(VertexCoverage, TrappedWalkerCoversOneComponentOnly) {
  GraphBuilder b(8);
  for (VertexId v = 0; v < 3; ++v) {
    b.add_undirected_edge(v, static_cast<VertexId>((v + 1) % 4));
  }
  b.add_undirected_edge(3, 0);
  for (VertexId v = 4; v < 7; ++v) b.add_undirected_edge(v, v + 1);
  b.add_undirected_edge(7, 4);
  const Graph g = b.build();  // two 4-cycles
  Rng rng(2);
  const SingleRandomWalk walker(g, {.steps = 2000});
  const double cov = vertex_coverage(g, walker.run(rng).edges);
  EXPECT_DOUBLE_EQ(cov, 0.5);  // exactly one component reachable
}

TEST(VertexCoverage, FsCoversMoreThanSingleWalkOnDisconnectedGraph) {
  // Under the same budget on a loosely populated multi-component graph,
  // FS with many walkers touches more of the graph.
  Rng rng(3);
  std::vector<Graph> parts;
  for (int i = 0; i < 10; ++i) parts.push_back(barabasi_albert(200, 2, rng));
  const Graph g = disjoint_union(parts);

  const std::uint64_t budget = 600;
  const SingleRandomWalk srw(g, {.steps = budget});
  const FrontierSampler fs(g, {.dimension = 60, .steps = budget - 60});
  double srw_cov = 0.0;
  double fs_cov = 0.0;
  for (int r = 0; r < 10; ++r) {
    Rng ra(100 + r), rb(100 + r);
    srw_cov += vertex_coverage(g, srw.run(ra).edges);
    fs_cov += vertex_coverage(g, fs.run(rb).edges);
  }
  EXPECT_GT(fs_cov, srw_cov);
}

}  // namespace
}  // namespace frontier

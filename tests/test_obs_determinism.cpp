// Telemetry must observe, never participate: a crawl with
// CrawlInstrumentation (and a live exporter) attached must produce
// bit-identical sink state, RNG position, and checkpoint bytes to the
// same crawl with telemetry off — for every cursor kind.
#include "obs/crawl_metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "stream/engine.hpp"
#include "stream/motif_sinks.hpp"
#include "stream/sampler_cursors.hpp"
#include "stream/sinks.hpp"

namespace frontier {
namespace {

Graph test_graph() {
  Rng rng(77);
  return barabasi_albert(150, 3, rng);
}

SinkSet make_sinks(const Graph& g) {
  SinkSet sinks;
  sinks.push_back(
      std::make_unique<DegreeDistributionSink>(g, DegreeKind::kSymmetric));
  sinks.push_back(std::make_unique<AssortativitySink>(g));
  sinks.push_back(std::make_unique<GraphMomentsSink>(g));
  sinks.push_back(std::make_unique<UniformDegreeSink>(g));
  sinks.push_back(std::make_unique<TriangleSink>(g));
  sinks.push_back(std::make_unique<ClusteringSink>(g));
  sinks.push_back(std::make_unique<MotifSink>(g));
  return sinks;
}

// Byte-exact serialization of everything downstream of the event stream:
// cursor state, RNG position, and every sink's accumulators.
std::string checkpoint_bytes(const StreamEngine& engine) {
  std::ostringstream out;
  engine.save_checkpoint(out);
  return out.str();
}

// Runs the same crawl twice — bare, and with instrumentation plus a live
// JSONL exporter pulsing after every pump — pausing mid-crawl to compare
// checkpoint bytes, then again at completion.
template <typename MakeCursor>
void check_bit_identical(const Graph& g, MakeCursor make_cursor,
                         std::uint64_t pause_after) {
  StreamEngine bare(make_cursor(), make_sinks(g));
  StreamEngine instrumented(make_cursor(), make_sinks(g));

  MetricsRegistry registry;  // local: isolated from other tests
  CrawlInstrumentation instr(registry, instrumented.cursor(),
                             instrumented.sinks());
  instrumented.set_instrumentation(&instr);
  const std::string jsonl = ::testing::TempDir() + "obs_determinism.jsonl";
  MetricsExporter exporter(registry, jsonl, /*interval_seconds=*/0.0);

  // Pump in deliberately ragged chunks so block boundaries differ from the
  // engine's internal block size.
  const std::uint64_t chunks[] = {1, pause_after, 97,
                                  std::uint64_t{1} << 62};
  std::uint64_t after_pause_bare = 0;
  std::uint64_t after_pause_instr = 0;
  for (const std::uint64_t chunk : chunks) {
    after_pause_bare = bare.pump(chunk);
    after_pause_instr = instrumented.pump(chunk);
    exporter.maybe_export();
    ASSERT_EQ(after_pause_bare, after_pause_instr);
    EXPECT_EQ(checkpoint_bytes(bare), checkpoint_bytes(instrumented));
  }
  ASSERT_TRUE(bare.finished());
  ASSERT_TRUE(instrumented.finished());
  EXPECT_EQ(bare.events(), instrumented.events());
  EXPECT_EQ(bare.cursor().rng().state(), instrumented.cursor().rng().state());
  EXPECT_EQ(checkpoint_bytes(bare), checkpoint_bytes(instrumented));

  // The telemetry side must have seen the whole crawl...
  EXPECT_EQ(instr.events(), instrumented.events());
  EXPECT_GT(instr.unique_vertices(), 0u);
  const MetricsSnapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "stream.events_total") {
      EXPECT_EQ(value, instrumented.events());
    }
  }
  // ...and the exporter must have written one valid line per pump.
  exporter.export_now();
  const auto lines = read_metrics_jsonl(jsonl);
  EXPECT_EQ(lines.size(), 5u);  // one per pump + the final flush
  std::remove(jsonl.c_str());
}

TEST(ObsDeterminism, FrontierCursor) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{.dimension = 6, .steps = 5000};
  check_bit_identical(
      g, [&] { return std::make_unique<FrontierCursor>(g, cfg, Rng(11)); },
      1234);
}

TEST(ObsDeterminism, SingleRwCursor) {
  const Graph g = test_graph();
  const SingleRandomWalk::Config cfg{
      .steps = 4000, .burn_in = 300, .laziness = 0.2};
  check_bit_identical(
      g, [&] { return std::make_unique<SingleRwCursor>(g, cfg, Rng(12)); },
      150);
}

TEST(ObsDeterminism, MultipleRwCursor) {
  const Graph g = test_graph();
  const MultipleRandomWalks::Config cfg{.num_walkers = 5,
                                        .steps_per_walker = 800};
  check_bit_identical(
      g, [&] { return std::make_unique<MultipleRwCursor>(g, cfg, Rng(13)); },
      2100);
}

TEST(ObsDeterminism, RwjCursor) {
  const Graph g = test_graph();
  const RandomWalkWithJumps::Config cfg{
      .budget = 4000.0,
      .jump_probability = 0.1,
      .cost = {.jump_cost = 1.5, .hit_ratio = 0.8}};
  check_bit_identical(
      g, [&] { return std::make_unique<RwjCursor>(g, cfg, Rng(14)); }, 900);
}

TEST(ObsDeterminism, MetropolisCursor) {
  const Graph g = test_graph();
  const MetropolisHastingsWalk::Config cfg{.steps = 4000};
  check_bit_identical(
      g, [&] { return std::make_unique<MetropolisCursor>(g, cfg, Rng(15)); },
      1);
}

// Attaching and detaching instrumentation mid-crawl must also leave the
// event stream untouched — the engine only ever adds observation around
// the identical cursor/sink calls.
TEST(ObsDeterminism, AttachDetachMidCrawl) {
  const Graph g = test_graph();
  const FrontierSampler::Config cfg{.dimension = 4, .steps = 3000};
  const auto cursor = [&] {
    return std::make_unique<FrontierCursor>(g, cfg, Rng(21));
  };

  StreamEngine bare(cursor(), make_sinks(g));
  bare.run_to_completion();

  StreamEngine toggled(cursor(), make_sinks(g));
  MetricsRegistry registry;
  CrawlInstrumentation instr(registry, toggled.cursor(), toggled.sinks());
  toggled.pump(500);                        // off
  toggled.set_instrumentation(&instr);      // on
  toggled.pump(500);
  toggled.set_instrumentation(nullptr);     // off again
  toggled.run_to_completion();
  EXPECT_EQ(checkpoint_bytes(bare), checkpoint_bytes(toggled));
  EXPECT_EQ(instr.events(), 500u);  // saw exactly the instrumented window
}

}  // namespace
}  // namespace frontier

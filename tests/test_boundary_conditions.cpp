// Boundary conditions across the sampling layer: zero budgets, minimal
// graphs, and degenerate configurations must behave predictably rather
// than crash or spin.
#include <gtest/gtest.h>

#include <vector>

#include "estimators/degree_distribution.hpp"
#include "estimators/density.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sampling/coverage.hpp"
#include "sampling/distributed_fs.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/multiple_rw.hpp"
#include "sampling/random_edge.hpp"
#include "sampling/random_vertex.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

TEST(Boundary, ZeroStepWalksProduceNoEdges) {
  Rng rng(1);
  const Graph g = cycle_graph(5);
  EXPECT_TRUE(SingleRandomWalk(g, {.steps = 0}).run(rng).edges.empty());
  EXPECT_TRUE(FrontierSampler(g, {.dimension = 2, .steps = 0})
                  .run(rng)
                  .edges.empty());
  const MultipleRandomWalks mrw(g, {.num_walkers = 3, .steps_per_walker = 0});
  const SampleRecord rec = mrw.run(rng);
  EXPECT_TRUE(rec.edges.empty());
  EXPECT_EQ(rec.starts.size(), 3u);
}

TEST(Boundary, ZeroBudgetRandomSamplers) {
  Rng rng(2);
  const Graph g = cycle_graph(5);
  EXPECT_TRUE(RandomVertexSampler(g, {.budget = 0.0}).run(rng).vertices.empty());
  EXPECT_TRUE(RandomEdgeSampler(g, {.budget = 0.0}).run(rng).edges.empty());
  EXPECT_TRUE(RandomEdgeSampler(g, {.budget = 1.0}).run(rng).edges.empty())
      << "budget below the per-edge cost of 2 yields nothing";
}

TEST(Boundary, TwoVertexGraphWalks) {
  // K2 is bipartite — no stationary law — but finite walks must still be
  // well-formed edge sequences.
  const Graph g = path_graph(2);
  Rng rng(3);
  const SingleRandomWalk srw(g, {.steps = 10});
  const SampleRecord rec = srw.run(rng);
  ASSERT_EQ(rec.edges.size(), 10u);
  for (const Edge& e : rec.edges) {
    EXPECT_TRUE((e.u == 0 && e.v == 1) || (e.u == 1 && e.v == 0));
  }
}

TEST(Boundary, FrontierDimensionLargerThanGraph) {
  // More walkers than vertices is legal (multiset occupancy).
  const Graph g = complete_graph(4);
  Rng rng(4);
  const FrontierSampler fs(g, {.dimension = 20, .steps = 100});
  const SampleRecord rec = fs.run(rng);
  EXPECT_EQ(rec.starts.size(), 20u);
  EXPECT_EQ(rec.edges.size(), 100u);
}

TEST(Boundary, SingleWalkerDistributedFs) {
  Rng rng(5);
  const Graph g = cycle_graph(6);
  const DistributedFrontierSampler dfs(
      g, {.dimension = 1, .stop = {.max_steps = 50}});
  EXPECT_EQ(dfs.run(rng).edges.size(), 50u);
}

TEST(Boundary, EstimatorsOnSingleSample) {
  const Graph g = complete_graph(4);
  const std::vector<Edge> one{{0, 1}};
  EXPECT_DOUBLE_EQ(estimate_vertex_label_density(
                       g, one, [](VertexId v) { return v == 1; }),
                   1.0);
  const auto theta = estimate_degree_distribution(g, one,
                                                  DegreeKind::kSymmetric);
  ASSERT_EQ(theta.size(), 4u);
  EXPECT_DOUBLE_EQ(theta[3], 1.0);
}

TEST(Boundary, CoverageWithNoCheckpoints) {
  const Graph g = cycle_graph(4);
  const std::vector<Edge> edges{{0, 1}};
  const CoverageCurve c = coverage_curve(g, edges, {});
  EXPECT_TRUE(c.distinct_vertices.empty());
  EXPECT_TRUE(c.checkpoints.empty());
}

TEST(Boundary, MinimalConnectedNonBipartiteStationarity) {
  // The smallest graph satisfying the paper's assumptions is a triangle;
  // everything should be exact there.
  const Graph g = complete_graph(3);
  Rng rng(6);
  const FrontierSampler fs(g, {.dimension = 2, .steps = 100000});
  const SampleRecord rec = fs.run(rng);
  std::vector<double> freq(3, 0.0);
  for (const Edge& e : rec.edges) freq[e.v] += 1.0;
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_NEAR(freq[v] / static_cast<double>(rec.edges.size()), 1.0 / 3.0,
                0.01);
  }
}

TEST(Boundary, LazinessNearOneStillTerminates) {
  Rng rng(7);
  const Graph g = cycle_graph(4);
  const SingleRandomWalk lazy(g, {.steps = 1000, .laziness = 0.99});
  const SampleRecord rec = lazy.run(rng);
  EXPECT_LT(rec.edges.size(), 60u);  // ~1% of queries move
  EXPECT_DOUBLE_EQ(rec.cost, 1001.0);
}

}  // namespace
}  // namespace frontier

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/accumulators.hpp"
#include "stats/analytic.hpp"
#include "stats/error_metrics.hpp"

namespace frontier {
namespace {

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + i * 0.01;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(MseAccumulator, PerfectEstimatesGiveZeroNmse) {
  MseAccumulator acc({0.5, 0.3, 0.2});
  const std::vector<double> est{0.5, 0.3, 0.2};
  acc.add_run(est);
  acc.add_run(est);
  for (double v : acc.normalized_rmse()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MseAccumulator, MatchesHandComputedNmse) {
  MseAccumulator acc({0.5});
  acc.add_run(std::vector<double>{0.4});
  acc.add_run(std::vector<double>{0.6});
  // MSE = ((0.1)^2 + (0.1)^2)/2 = 0.01; NMSE = 0.1/0.5 = 0.2.
  EXPECT_NEAR(acc.normalized_rmse()[0], 0.2, 1e-12);
  EXPECT_NEAR(acc.mean_estimate()[0], 0.5, 1e-12);
}

TEST(MseAccumulator, ShortEstimatesAreZeroPadded) {
  MseAccumulator acc({0.5, 0.5});
  acc.add_run(std::vector<double>{0.5});  // second bucket implicitly 0
  EXPECT_DOUBLE_EQ(acc.normalized_rmse()[0], 0.0);
  EXPECT_DOUBLE_EQ(acc.normalized_rmse()[1], 1.0);  // |0 - 0.5| / 0.5
}

TEST(MseAccumulator, ZeroTruthBucketsReportZero) {
  MseAccumulator acc({0.0, 1.0});
  acc.add_run(std::vector<double>{0.7, 1.0});
  EXPECT_DOUBLE_EQ(acc.normalized_rmse()[0], 0.0);
}

TEST(MseAccumulator, MergeMatchesSequential) {
  const std::vector<double> truth{0.4, 0.6};
  MseAccumulator a(truth), b(truth), all(truth);
  for (int r = 0; r < 20; ++r) {
    const std::vector<double> est{0.4 + 0.01 * r, 0.6 - 0.005 * r};
    (r % 2 == 0 ? a : b).add_run(est);
    all.add_run(est);
  }
  a.merge(b);
  EXPECT_EQ(a.runs(), all.runs());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(a.normalized_rmse()[i], all.normalized_rmse()[i], 1e-12);
  }
}

TEST(MseAccumulator, MergeSizeMismatchThrows) {
  MseAccumulator a({0.5});
  MseAccumulator b({0.5, 0.5});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(ScalarErrorAccumulator, BiasAndNmse) {
  ScalarErrorAccumulator acc(2.0);
  acc.add_run(1.8);
  acc.add_run(2.2);
  EXPECT_DOUBLE_EQ(acc.mean_estimate(), 2.0);
  EXPECT_NEAR(acc.relative_bias(), 0.0, 1e-12);
  EXPECT_NEAR(acc.nmse(), 0.1, 1e-12);  // rmse 0.2 / 2.0
}

TEST(ScalarErrorAccumulator, BiasSignConvention) {
  // Paper's Table 2 bias = 1 - E[est]/truth: underestimates are positive.
  ScalarErrorAccumulator acc(1.0);
  acc.add_run(0.9);
  EXPECT_NEAR(acc.relative_bias(), 0.1, 1e-12);
}

TEST(Nmse, OneShotHelper) {
  const std::vector<double> est{0.4, 0.6};
  EXPECT_NEAR(nmse(est, 0.5), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(nmse({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(nmse(est, 0.0), 0.0);
}

TEST(LogSpacedDegrees, LinearThenGeometric) {
  const auto xs = log_spaced_degrees(1000, 10, 1.5);
  ASSERT_GE(xs.size(), 11u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(xs[i], i + 1);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_GT(xs[i], xs[i - 1]);
  EXPECT_LE(xs.back(), 1000u);
}

TEST(LogSpacedDegrees, SmallMax) {
  const auto xs = log_spaced_degrees(3);
  EXPECT_EQ(xs, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(MeanHelpers, PositiveOnly) {
  const std::vector<double> vals{0.0, 2.0, 0.0, 8.0};
  EXPECT_DOUBLE_EQ(mean_positive(vals), 5.0);
  EXPECT_DOUBLE_EQ(geometric_mean_positive(vals), 4.0);
  EXPECT_DOUBLE_EQ(mean_positive(std::vector<double>{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean_positive(std::vector<double>{}), 0.0);
}

TEST(AnalyticModels, MatchPaperFormulas) {
  // eq. 4: sqrt((1/theta - 1)/B).
  EXPECT_NEAR(analytic_nmse_vertex_sampling(0.1, 100.0),
              std::sqrt(9.0 / 100.0), 1e-12);
  // eq. 3 with pi = i*theta/d.
  const double pi = 20.0 * 0.01 / 10.0;  // = 0.02
  EXPECT_NEAR(analytic_nmse_edge_sampling(0.01, 20.0, 10.0, 100.0),
              std::sqrt((1.0 / pi - 1.0) / 100.0), 1e-12);
}

TEST(AnalyticModels, CrossoverAtMeanDegree) {
  const double d = 12.0;
  const double budget = 1000.0;
  const double theta = 0.001;
  // Above the mean degree: edge sampling wins.
  EXPECT_LT(analytic_nmse_edge_sampling(theta, 3.0 * d, d, budget),
            analytic_nmse_vertex_sampling(theta, budget));
  // Below the mean degree: vertex sampling wins.
  EXPECT_GT(analytic_nmse_edge_sampling(theta, d / 3.0, d, budget),
            analytic_nmse_vertex_sampling(theta, budget));
  EXPECT_DOUBLE_EQ(analytic_crossover_degree(d), d);
}

TEST(AnalyticModels, ValidateInputs) {
  EXPECT_THROW((void)analytic_nmse_vertex_sampling(0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)analytic_nmse_vertex_sampling(0.5, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)analytic_nmse_edge_sampling(0.5, 0.0, 5.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)analytic_nmse_edge_sampling(0.5, 2.0, 0.0, 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace frontier

#include "estimators/assortativity.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/single_rw.hpp"

namespace frontier {
namespace {

std::vector<Edge> full_edge_pass(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.volume());
  for (EdgeIndex j = 0; j < g.volume(); ++j) edges.push_back(g.edge_at(j));
  return edges;
}

TEST(AssortativityAccumulator, FewSamplesGiveZero) {
  AssortativityAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
  acc.add(1.0, 2.0);
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
  EXPECT_EQ(acc.count(), 1u);
}

TEST(AssortativityAccumulator, PerfectCorrelation) {
  AssortativityAccumulator acc;
  for (int i = 1; i <= 10; ++i) {
    acc.add(static_cast<double>(i), static_cast<double>(2 * i));
  }
  EXPECT_NEAR(acc.value(), 1.0, 1e-9);
}

TEST(AssortativityAccumulator, PerfectAnticorrelation) {
  AssortativityAccumulator acc;
  for (int i = 1; i <= 10; ++i) {
    acc.add(static_cast<double>(i), static_cast<double>(-3 * i + 100));
  }
  EXPECT_NEAR(acc.value(), -1.0, 1e-9);
}

TEST(AssortativityAccumulator, ZeroVarianceGivesZero) {
  AssortativityAccumulator acc;
  acc.add(2.0, 1.0);
  acc.add(2.0, 5.0);
  acc.add(2.0, 9.0);
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
}

TEST(AssortativityEstimator, ExactOnFullPass) {
  // A full pass over E visits each directed edge of E_d exactly once (in
  // its forward orientation), so the estimate equals the exact value.
  Rng rng(1);
  const Graph g = directed_preferential(500, 2, 0.4, rng);
  const double truth = exact_assortativity(g);
  const double est = estimate_assortativity(g, full_edge_pass(g));
  EXPECT_NEAR(est, truth, 1e-9);
}

TEST(AssortativityEstimator, SkipsUnlabeledEdges) {
  // Directed-only edge (0,1): its reverse orientation (1,0) is in E but not
  // E_d, so a sample of (1,0) must be ignored.
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  const std::vector<Edge> reverse_only{{1, 0}, {2, 1}};
  const double est = estimate_assortativity(g, reverse_only);
  EXPECT_DOUBLE_EQ(est, 0.0);  // nothing labeled -> fewer than 2 samples
}

TEST(AssortativityEstimator, ConvergesOnLongWalk) {
  Rng rng(2);
  const Graph g = directed_preferential(300, 3, 0.5, rng);
  const double truth = exact_assortativity(g);
  const SingleRandomWalk walker(g, {.steps = 400000});
  const double est = estimate_assortativity(g, walker.run(rng).edges);
  EXPECT_NEAR(est, truth, 0.05);
}

TEST(AssortativityEstimator, FrontierSamplingConvergesToo) {
  Rng rng(3);
  const Graph g = directed_preferential(300, 3, 0.5, rng);
  const double truth = exact_assortativity(g);
  const FrontierSampler fs(g, {.dimension = 50, .steps = 400000});
  const double est = estimate_assortativity(g, fs.run(rng).edges);
  EXPECT_NEAR(est, truth, 0.05);
}

TEST(AssortativityEstimator, StarIsMinusOne) {
  const Graph g = star_graph(8);
  const double est = estimate_assortativity(g, full_edge_pass(g));
  EXPECT_NEAR(est, -1.0, 1e-9);
}

}  // namespace
}  // namespace frontier

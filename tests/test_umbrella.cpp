// Pins the public API surface: includes ONLY the umbrella header and
// exercises one symbol from each of the eight modules. If a module is
// dropped from core/frontier.hpp (or a flagship symbol renamed), this
// test stops compiling.
#include "core/frontier.hpp"

#include <gtest/gtest.h>

namespace frontier {
namespace {

TEST(Umbrella, CoreVersionIsExposed) {
  const Version v = library_version();
  EXPECT_GE(v.major, 0);
  EXPECT_STRNE(library_version_string(), "");
}

TEST(Umbrella, RandomModuleIsExposed) {
  Rng rng(1);
  const double u = uniform01(rng);
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(Umbrella, GraphModuleIsExposed) {
  const Graph g = cycle_graph(8);
  EXPECT_EQ(g.num_vertices(), 8u);
}

TEST(Umbrella, SamplingModuleIsExposed) {
  Rng rng(7);
  const Graph g = cycle_graph(16);
  FrontierSampler::Config config;
  config.dimension = 2;
  config.steps = 32;
  const FrontierSampler sampler(g, config);
  const SampleRecord record = sampler.run(rng);
  EXPECT_EQ(record.edges.size(), 32u);
}

TEST(Umbrella, EstimatorsModuleIsExposed) {
  const Graph g = cycle_graph(8);
  const auto pdf = degree_distribution(g, DegreeKind::kSymmetric);
  ASSERT_GT(pdf.size(), 2u);
  EXPECT_DOUBLE_EQ(pdf[2], 1.0);  // every vertex of a cycle has degree 2
}

TEST(Umbrella, StatsModuleIsExposed) {
  RunningStat stat;
  stat.add(1.0);
  stat.add(3.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.0);
}

TEST(Umbrella, AnalysisModuleIsExposed) {
  const StateCodec codec(/*num_vertices=*/3, /*m=*/2);
  EXPECT_EQ(codec.num_states(), 9u);
}

TEST(Umbrella, ExperimentsModuleIsExposed) {
  const ExperimentConfig config;  // defaults, no env lookup
  EXPECT_EQ(config.seed, 20100907u);
  TextTable table({"k", "v"});
  table.add_row({"a", "b"});
  const ReplicationRunner runner(4, 1, 2);
  EXPECT_EQ(runner.runs(), 4u);
}

TEST(Umbrella, BenchReportIsExposed) {
  const BenchReport report = BenchReport::make("umbrella", {});
  EXPECT_EQ(BenchReport::parse_json(report.to_json()).name, "umbrella");
}

}  // namespace
}  // namespace frontier

// cli/options.hpp contract: the declared CommandSpec is the whole
// parser — unknown flags, missing values, malformed numbers and
// out-of-range values are rejected with UsageError naming the flag, and
// the typed accessors refuse undeclared or wrong-typed access outright
// (std::logic_error — a tool bug, not user input).
#include "cli/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace frontier::cli {
namespace {

CommandSpec demo_spec() {
  return {.program = "demo",
          .command = "crawl",
          .summary = "demo command",
          .positionals = {{.name = "input"}},
          .options = {
              {.name = "flag", .type = OptionType::kFlag, .help = "a flag"},
              {.name = "count",
               .type = OptionType::kU64,
               .value_name = "N",
               .min_u64 = 1},
              {.name = "rate",
               .type = OptionType::kDouble,
               .value_name = "R",
               .min_double = 0.0,
               .has_min_double = true,
               .exclusive_min = true},
              {.name = "label", .type = OptionType::kString},
              {.name = "out", .type = OptionType::kPath},
          }};
}

TEST(CliOptions, ParsesTypedOptionsAndPositionals) {
  const CommandSpec spec = demo_spec();  // ParsedArgs borrows the spec
  const ParsedArgs args = spec.parse(
      {"in.txt", "--flag", "--count", "7", "--rate=0.5", "--label", "x"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "in.txt");
  EXPECT_TRUE(args.get_flag("flag"));
  EXPECT_EQ(args.get_u64("count", 0), 7u);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(args.get_string("label", ""), "x");
  EXPECT_TRUE(args.has("count"));
  EXPECT_FALSE(args.has("out"));
}

TEST(CliOptions, FallbacksWhenAbsent) {
  const CommandSpec spec = demo_spec();
  const ParsedArgs args = spec.parse({"in.txt"});
  EXPECT_FALSE(args.get_flag("flag"));
  EXPECT_EQ(args.get_u64("count", 42), 42u);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(args.get_path("out", "dflt"), "dflt");
}

TEST(CliOptions, RejectsUnknownOptionWithUsage) {
  try {
    (void)demo_spec().parse({"in.txt", "--bogus"});
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown option --bogus"), std::string::npos);
    EXPECT_NE(what.find("usage: demo crawl"), std::string::npos);
  }
}

TEST(CliOptions, RejectsDuplicateMissingValueAndFlagValue) {
  EXPECT_THROW((void)demo_spec().parse({"a", "--count", "1", "--count", "2"}),
               UsageError);
  EXPECT_THROW((void)demo_spec().parse({"a", "--label"}), UsageError);
  EXPECT_THROW((void)demo_spec().parse({"a", "--flag=1"}), UsageError);
}

TEST(CliOptions, EnforcesPositionalArity) {
  EXPECT_THROW((void)demo_spec().parse({}), UsageError);
  EXPECT_THROW((void)demo_spec().parse({"a", "b"}), UsageError);
  CommandSpec variadic = demo_spec();
  variadic.variadic_positionals = true;
  EXPECT_EQ(variadic.parse({"a", "b", "c"}).positional().size(), 3u);
}

TEST(CliOptions, StrictU64) {
  EXPECT_EQ(parse_u64("n", "0"), 0u);
  EXPECT_EQ(parse_u64("n", "18446744073709551615"),
            18446744073709551615ull);
  EXPECT_THROW((void)parse_u64("n", "banana"), UsageError);
  EXPECT_THROW((void)parse_u64("n", "-1"), UsageError);
  EXPECT_THROW((void)parse_u64("n", "1.5"), UsageError);
  EXPECT_THROW((void)parse_u64("n", ""), UsageError);
  EXPECT_THROW((void)parse_u64("n", "18446744073709551616"), UsageError);
  EXPECT_THROW((void)parse_u64("n", "0", 1), UsageError);  // below min
}

TEST(CliOptions, StrictDouble) {
  EXPECT_DOUBLE_EQ(parse_double("x", "2.25"), 2.25);
  EXPECT_THROW((void)parse_double("x", "nope"), UsageError);
  EXPECT_THROW((void)parse_double("x", "1.5y"), UsageError);
  EXPECT_THROW((void)parse_double("x", "inf"), UsageError);
  EXPECT_THROW((void)parse_double("x", "-1", true, 0.0, false), UsageError);
  EXPECT_THROW((void)parse_double("x", "0", true, 0.0, true), UsageError);
  EXPECT_DOUBLE_EQ(parse_double("x", "0", true, 0.0, false), 0.0);
}

TEST(CliOptions, OptionBoundsComeFromTheSpec) {
  EXPECT_THROW((void)demo_spec().parse({"a", "--count", "0"}), UsageError);
  EXPECT_THROW((void)demo_spec().parse({"a", "--rate", "0"}), UsageError);
  EXPECT_THROW((void)demo_spec().parse({"a", "--rate", "-2"}), UsageError);
}

TEST(CliOptions, TypedAccessGuards) {
  const CommandSpec spec = demo_spec();
  const ParsedArgs args = spec.parse({"in.txt", "--count", "3"});
  EXPECT_THROW((void)args.get_u64("undeclared", 0), std::logic_error);
  EXPECT_THROW((void)args.has("undeclared"), std::logic_error);
  EXPECT_THROW((void)args.get_string("count", ""), std::logic_error);
  EXPECT_THROW((void)args.get_flag("count"), std::logic_error);
}

TEST(CliOptions, UsageListsEveryOption) {
  const std::string usage = demo_spec().usage();
  for (const char* name : {"--flag", "--count", "--rate", "--label", "--out"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
  EXPECT_NE(usage.find("<input>"), std::string::npos);
}

}  // namespace
}  // namespace frontier::cli

// ReplicationRunner: the acceptance property is that every result —
// including floating-point roundoff — is bit-identical for any thread
// count, because per-run results are materialized in run-index slots and
// reduced in run order. Verified here on raw RNG draws, on ordered folds,
// and end-to-end on FS / MultipleRW / Metropolis-Hastings replications.
#include "experiments/replication_runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/frontier.hpp"

namespace frontier {
namespace {

TEST(ReplicationRunner, WorkersCappedAtRunCount) {
  EXPECT_EQ(ReplicationRunner(2, 1, 8).workers(), 2u);
  EXPECT_EQ(ReplicationRunner(100, 1, 3).workers(), 3u);
  EXPECT_GE(ReplicationRunner(100, 1, 0).workers(), 1u);
  // Zero runs still resolves a worker count (nothing is spawned).
  EXPECT_EQ(ReplicationRunner(0, 1, 8).workers(), 1u);
}

TEST(ReplicationRunner, MapReturnsRunOrderResults) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const ReplicationRunner runner(37, 99, threads);
    const std::vector<double> draws =
        runner.map([](std::size_t, Rng& rng) { return uniform01(rng); });
    ASSERT_EQ(draws.size(), 37u);
    // Same per-run substream derivation as a 1-thread runner.
    const Rng base(99);
    for (std::size_t r = 0; r < draws.size(); ++r) {
      Rng expected = base.split_stream(r);
      EXPECT_EQ(draws[r], uniform01(expected)) << "run " << r;
    }
  }
}

TEST(ReplicationRunner, MapReduceBitIdenticalAcrossThreadCounts) {
  // Non-associative floating-point fold: only an order-preserving
  // reduction gives the same bits for every thread count.
  const auto fold_with = [](std::size_t threads) {
    const ReplicationRunner runner(200, 7, threads);
    return runner.map_reduce(
        0.0,
        [](std::size_t, Rng& rng) { return uniform01(rng) * 1e-3 + 1.0; },
        [](double& acc, double&& x) { acc += x * acc * 1e-6 + x; });
  };
  const double t1 = fold_with(1);
  EXPECT_EQ(t1, fold_with(2));
  EXPECT_EQ(t1, fold_with(8));
}

TEST(ReplicationRunner, ZeroRunsReturnsInit) {
  const ReplicationRunner runner(0, 1, 4);
  EXPECT_EQ(runner.map([](std::size_t, Rng&) { return 1; }).size(), 0u);
  EXPECT_EQ(runner.map_reduce(42, [](std::size_t, Rng&) { return 1; },
                              [](int& acc, int&& x) { acc += x; }),
            42);
}

TEST(ReplicationRunner, ExceptionsPropagate) {
  for (const std::size_t threads : {1u, 4u}) {
    const ReplicationRunner runner(64, 3, threads);
    EXPECT_THROW(runner.for_each([](std::size_t r, Rng&) {
                   if (r == 13) throw std::runtime_error("boom");
                 }),
                 std::runtime_error);
  }
}

/// Replicated sampler edges for a given thread count.
template <typename Sampler>
std::vector<std::vector<Edge>> replicate_edges(const Sampler& sampler,
                                               std::size_t threads) {
  const ReplicationRunner runner(12, 20100907, threads);
  return runner.map(
      [&](std::size_t, Rng& rng) { return sampler.run(rng).edges; });
}

template <typename Sampler>
void expect_bit_identical(const Sampler& sampler) {
  const auto t1 = replicate_edges(sampler, 1);
  const auto t2 = replicate_edges(sampler, 2);
  const auto t8 = replicate_edges(sampler, 8);
  ASSERT_EQ(t1.size(), 12u);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ReplicationRunner, FrontierSamplingBitIdentical) {
  Rng graph_rng(5);
  const Graph g = barabasi_albert(400, 3, graph_rng);
  const FrontierSampler fs(g, {.dimension = 16, .steps = 500});
  expect_bit_identical(fs);
}

TEST(ReplicationRunner, MultipleRwBitIdentical) {
  Rng graph_rng(6);
  const Graph g = barabasi_albert(400, 3, graph_rng);
  const MultipleRandomWalks mrw(g, {.num_walkers = 16,
                                    .steps_per_walker = 40});
  expect_bit_identical(mrw);
}

TEST(ReplicationRunner, MetropolisHastingsBitIdentical) {
  Rng graph_rng(7);
  const Graph g = barabasi_albert(400, 3, graph_rng);
  const MetropolisHastingsWalk mh(g, {.steps = 600});
  expect_bit_identical(mh);
}

TEST(ReplicationRunner, ParallelAccumulateBitIdenticalAcrossThreadCounts) {
  // The legacy wrapper inherits the run-order fold: MseAccumulator curves
  // come out bitwise equal for any thread count.
  Rng graph_rng(8);
  const Graph g = barabasi_albert(300, 3, graph_rng);
  const FrontierSampler fs(g, {.dimension = 8, .steps = 300});
  const auto truth = degree_distribution(g, DegreeKind::kSymmetric);
  const auto run_with = [&](std::size_t threads) {
    return parallel_accumulate<MseAccumulator>(
        10, 42, [&] { return MseAccumulator(truth); },
        [&](std::size_t, Rng& rng, MseAccumulator& acc) {
          acc.add_run(estimate_degree_distribution(g, fs.run(rng).edges,
                                                   DegreeKind::kSymmetric));
        },
        [](MseAccumulator& dst, const MseAccumulator& src) {
          dst.merge(src);
        },
        threads);
  };
  const auto c1 = run_with(1).normalized_rmse();
  const auto c2 = run_with(2).normalized_rmse();
  const auto c8 = run_with(8).normalized_rmse();
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1, c8);
}

}  // namespace
}  // namespace frontier

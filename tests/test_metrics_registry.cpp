// MetricsRegistry: bucket mapping edge cases, saturation, inert handles,
// and the per-thread shard merge (sums, extrema, associativity across
// shard counts).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

namespace frontier {
namespace {

constexpr std::uint64_t kMax64 = std::numeric_limits<std::uint64_t>::max();

TEST(HistogramBucket, EdgeValues) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(7), 3u);
  EXPECT_EQ(histogram_bucket(8), 4u);
  for (std::uint32_t k = 1; k < 64; ++k) {
    const std::uint64_t pow = std::uint64_t{1} << k;
    EXPECT_EQ(histogram_bucket(pow - 1), k) << "value 2^" << k << " - 1";
    EXPECT_EQ(histogram_bucket(pow), k + 1) << "value 2^" << k;
  }
  EXPECT_EQ(histogram_bucket(kMax64), 64u);
}

TEST(HistogramBucket, RangeRoundTrip) {
  // Every bucket's [lo, hi] maps back to that bucket, and ranges tile the
  // uint64 line without gaps.
  std::uint64_t expected_lo = 0;
  for (std::uint32_t b = 0; b <= 64; ++b) {
    const auto [lo, hi] = histogram_bucket_range(b);
    EXPECT_EQ(lo, expected_lo) << "bucket " << b;
    EXPECT_LE(lo, hi);
    EXPECT_EQ(histogram_bucket(lo), b);
    EXPECT_EQ(histogram_bucket(hi), b);
    if (b == 64) {
      EXPECT_EQ(hi, kMax64);
    } else {
      expected_lo = hi + 1;
    }
  }
}

TEST(MetricsRegistry, CountersSumAcrossAdds) {
  MetricsRegistry reg;
  Counter c = reg.counter("test.counter");
  c.add();
  c.add(41);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "test.counter");
  EXPECT_EQ(snap.counters[0].second, 42u);
}

TEST(MetricsRegistry, CounterSaturatesAtMax) {
  MetricsRegistry reg;
  Counter c = reg.counter("sat");
  c.add(kMax64 - 1);
  c.add(10);
  EXPECT_EQ(reg.snapshot().counters[0].second, kMax64);
  c.add(1);  // must stay pinned, not wrap
  EXPECT_EQ(reg.snapshot().counters[0].second, kMax64);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge gauge = reg.gauge("g");
  gauge.set(1.5);
  gauge.set(-2.25);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -2.25);
}

TEST(MetricsRegistry, HistogramZeroObservations) {
  MetricsRegistry reg;
  (void)reg.histogram("empty");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0].second;
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.sum, 0u);
  EXPECT_TRUE(h.buckets.empty());
}

TEST(MetricsRegistry, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("h");
  // One observation per boundary value; buckets must come back sparse and
  // ascending with exactly the expected indexes.
  h.observe(0);    // bucket 0
  h.observe(1);    // bucket 1
  h.observe(2);    // bucket 2
  h.observe(3);    // bucket 2
  h.observe(4);    // bucket 3
  h.observe(255);  // bucket 8
  h.observe(256);  // bucket 9
  const HistogramSnapshot snap = reg.snapshot().histograms[0].second;
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.sum, 0u + 1 + 2 + 3 + 4 + 255 + 256);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 256u);
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> want = {
      {0, 1}, {1, 1}, {2, 2}, {3, 1}, {8, 1}, {9, 1}};
  EXPECT_EQ(snap.buckets, want);
}

TEST(MetricsRegistry, HistogramSumSaturates) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("h");
  h.observe(kMax64);
  h.observe(kMax64);
  const HistogramSnapshot snap = reg.snapshot().histograms[0].second;
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, kMax64);  // saturated, not wrapped to ~0
  EXPECT_EQ(snap.min, kMax64);
  EXPECT_EQ(snap.max, kMax64);
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> want = {{64, 2}};
  EXPECT_EQ(snap.buckets, want);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  Counter a = reg.counter("same");
  Counter b = reg.counter("same");
  a.add(1);
  b.add(2);
  EXPECT_EQ(reg.num_metrics(), 1u);
  EXPECT_EQ(reg.snapshot().counters[0].second, 3u);
}

TEST(MetricsRegistry, KindMismatchAndBadNamesThrow) {
  MetricsRegistry reg;
  (void)reg.counter("name");
  EXPECT_THROW((void)reg.histogram("name"), std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("name"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter(""), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("quote\"inside"), std::invalid_argument);
}

TEST(MetricsRegistry, InertHandlesAreNoOps) {
  Counter c;
  Gauge gauge;
  Histogram h;
  EXPECT_FALSE(c.active());
  EXPECT_FALSE(gauge.active());
  EXPECT_FALSE(h.active());
  c.add(5);
  gauge.set(1.0);
  h.observe(7);
  { ScopeTimer timer(h); }  // no clock calls, no crash
}

TEST(MetricsRegistry, ScopeTimerRecordsOneObservation) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("t");
  { ScopeTimer timer(h); }
  const HistogramSnapshot snap = reg.snapshot().histograms[0].second;
  EXPECT_EQ(snap.count, 1u);
}

TEST(MetricsRegistry, MergeAcrossThreads) {
  MetricsRegistry reg;
  Counter c = reg.counter("threads.counter");
  Histogram h = reg.histogram("threads.histogram");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        // Values span buckets; thread t owns the band [t*kPerThread, ...)
        // so min/max merging is exercised across shards.
        h.observe(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : pool) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].second, kThreads * kPerThread);
  const HistogramSnapshot& hist = snap.histograms[0].second;
  EXPECT_EQ(hist.count, kThreads * kPerThread);
  EXPECT_EQ(hist.min, 0u);
  EXPECT_EQ(hist.max, kThreads * kPerThread - 1);
  std::uint64_t bucket_total = 0;
  for (const auto& [bucket, count] : hist.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, hist.count);
}

TEST(MetricsRegistry, MergeIsAssociativeAcrossShardCounts) {
  // The same multiset of observations, sharded 1 way and 4 ways, must
  // merge to the identical snapshot (registration order matches, so the
  // whole MetricsSnapshot compares equal field for field).
  const auto observe_all = [](MetricsRegistry& reg, int threads) {
    Counter c = reg.counter("c");
    Histogram h = reg.histogram("h");
    const int total = 1 << 12;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = t; i < total; i += threads) {
          c.add(static_cast<std::uint64_t>(i));
          h.observe(static_cast<std::uint64_t>(i) * 37u);
        }
      });
    }
    for (auto& th : pool) th.join();
  };

  MetricsRegistry one;
  MetricsRegistry four;
  observe_all(one, 1);
  observe_all(four, 4);
  const MetricsSnapshot a = one.snapshot();
  const MetricsSnapshot b = four.snapshot();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.histograms, b.histograms);
}

TEST(MetricsRegistry, EnabledFlagTogglesGlobally) {
  EXPECT_FALSE(metrics_enabled());  // default off
  set_metrics_enabled(true);
  EXPECT_TRUE(metrics_enabled());
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
}

}  // namespace
}  // namespace frontier

// Exact verification of the paper's core theory: Lemma 5.1 (FS = single RW
// on G^m) and Theorem 5.2 (closed-form stationary law, uniform edge
// sampling) on graphs small enough to enumerate |V|^m states.
#include "analysis/cartesian_power.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "sampling/frontier_sampler.hpp"

namespace frontier {
namespace {

// Connected, non-bipartite 4-vertex graph: triangle {0,1,2} + pendant 3-0.
Graph triangle_with_pendant() {
  GraphBuilder b(4);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 0);
  b.add_undirected_edge(0, 3);
  return b.build();
}

TEST(StateCodec, EncodeDecodeRoundTrip) {
  const StateCodec codec(5, 3);
  EXPECT_EQ(codec.num_states(), 125u);
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    EXPECT_EQ(codec.encode(codec.decode(code)), code);
  }
}

TEST(StateCodec, ValidatesInput) {
  EXPECT_THROW(StateCodec(0, 2), std::invalid_argument);
  EXPECT_THROW(StateCodec(3, 0), std::invalid_argument);
  const StateCodec codec(3, 2);
  EXPECT_THROW((void)codec.decode(9), std::out_of_range);
  EXPECT_THROW((void)codec.encode({0}), std::invalid_argument);
  EXPECT_THROW((void)codec.encode({0, 5}), std::out_of_range);
}

TEST(FrontierChain, IsStochastic) {
  const Graph g = triangle_with_pendant();
  for (std::size_t m : {1, 2, 3}) {
    const DenseChain chain = frontier_chain(g, m);
    EXPECT_TRUE(chain.is_stochastic()) << "m = " << m;
  }
}

TEST(FrontierChain, RefusesHugeStateSpaces) {
  const Graph g = complete_graph(10);
  EXPECT_THROW((void)frontier_chain(g, 3, 100), std::invalid_argument);
}

TEST(FrontierChain, MEqualsOneIsPlainRandomWalk) {
  const Graph g = triangle_with_pendant();
  const DenseChain fs1 = frontier_chain(g, 1);
  const DenseChain rw = random_walk_chain(g);
  for (std::size_t i = 0; i < g.num_vertices(); ++i) {
    for (std::size_t j = 0; j < g.num_vertices(); ++j) {
      EXPECT_NEAR(fs1.get(i, j), rw.get(i, j), 1e-12);
    }
  }
}

TEST(FrontierChain, TransitionProbabilityIsInverseFrontierDegree) {
  // Lemma 5.1: every transition out of L has probability 1/|e(L)|.
  const Graph g = triangle_with_pendant();
  const std::size_t m = 2;
  const StateCodec codec(g.num_vertices(), m);
  const DenseChain chain = frontier_chain(g, m);
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    const auto tuple = codec.decode(code);
    double deg_sum = 0.0;
    for (VertexId v : tuple) deg_sum += static_cast<double>(g.degree(v));
    for (std::size_t to = 0; to < codec.num_states(); ++to) {
      const double p = chain.get(code, to);
      if (p == 0.0) continue;
      // Transitions may stack when multiple single-coordinate moves lead to
      // the same state; each contributes exactly 1/deg_sum.
      const double units = p * deg_sum;
      EXPECT_NEAR(units, std::round(units), 1e-9);
      EXPECT_GE(units, 1.0 - 1e-9);
    }
  }
}

TEST(FrontierStationaryFormula, IsADistribution) {
  const Graph g = triangle_with_pendant();
  for (std::size_t m : {1, 2, 3}) {
    const auto pi = frontier_stationary_formula(g, m);
    const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << "m = " << m;
  }
}

TEST(FrontierStationaryFormula, MatchesPowerIteration) {
  // Theorem 5.2 (II): the closed form is the stationary law of the chain.
  const Graph g = triangle_with_pendant();
  for (std::size_t m : {1, 2}) {
    const DenseChain chain = frontier_chain(g, m);
    const auto pi_exact = chain.stationary();
    const auto pi_formula = frontier_stationary_formula(g, m);
    ASSERT_EQ(pi_exact.size(), pi_formula.size());
    for (std::size_t s = 0; s < pi_exact.size(); ++s) {
      EXPECT_NEAR(pi_exact[s], pi_formula[s], 1e-7) << "state " << s;
    }
  }
}

TEST(FrontierStationaryFormula, MatchesOnSecondGraph) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnp(6, 0.6, rng);
  if (!is_connected(g) || is_bipartite(g)) GTEST_SKIP();
  const DenseChain chain = frontier_chain(g, 2);
  const auto pi_exact = chain.stationary();
  const auto pi_formula = frontier_stationary_formula(g, 2);
  for (std::size_t s = 0; s < pi_exact.size(); ++s) {
    EXPECT_NEAR(pi_exact[s], pi_formula[s], 1e-7);
  }
}

TEST(FrontierStationary, MarginalIsMixtureOfDegreeLawAndUniform) {
  // Summing the m = 2 joint law over the second coordinate gives
  // (deg(v)/vol + 1/|V|)/2 — the frontier occupancy interpolates between
  // the walk law and the uniform law, which is why FS tolerates uniform
  // starting vertices (Section 5.2).
  const Graph g = triangle_with_pendant();
  const std::size_t m = 2;
  const StateCodec codec(g.num_vertices(), m);
  const auto pi = frontier_stationary_formula(g, m);
  std::vector<double> marginal(g.num_vertices(), 0.0);
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    marginal[codec.decode(code)[0]] += pi[code];
  }
  // The FS joint marginal is a 50/50 mixture of deg/vol and uniform:
  // P[v_1 = v] = (deg(v)/vol + 1/|V|)/2 for m = 2. Verify against formula.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double expect = 0.5 * (static_cast<double>(g.degree(v)) /
                                     static_cast<double>(g.volume()) +
                                 1.0 / static_cast<double>(g.num_vertices()));
    EXPECT_NEAR(marginal[v], expect, 1e-9) << "vertex " << v;
  }
}

TEST(IndependentWalkersStationary, ProductLaw) {
  const Graph g = triangle_with_pendant();
  const auto pi = independent_walkers_stationary(g, 2);
  const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  const StateCodec codec(g.num_vertices(), 2);
  const auto single = rw_stationary_distribution(g);
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    const auto tuple = codec.decode(code);
    EXPECT_NEAR(pi[code], single[tuple[0]] * single[tuple[1]], 1e-12);
  }
}

TEST(JointLaws, FsIsCloserToUniformThanIndependentWalkers) {
  // Section 5's headline property: TVD(FS steady state, uniform) <
  // TVD(independent walkers steady state, uniform), for every m > 1.
  const Graph g = triangle_with_pendant();
  for (std::size_t m : {2, 3, 4}) {
    const auto uniform = uniform_joint_distribution(g, m);
    const double fs_dist =
        total_variation(frontier_stationary_formula(g, m), uniform);
    const double ind_dist =
        total_variation(independent_walkers_stationary(g, m), uniform);
    EXPECT_LT(fs_dist, ind_dist) << "m = " << m;
  }
}

TEST(JointLaws, FsDistanceToUniformShrinksWithM) {
  const Graph g = triangle_with_pendant();
  double prev = 1.0;
  for (std::size_t m : {1, 2, 3, 4, 5}) {
    const double d = total_variation(frontier_stationary_formula(g, m),
                                     uniform_joint_distribution(g, m));
    EXPECT_LT(d, prev + 1e-12) << "m = " << m;
    prev = d;
  }
}

TEST(EmpiricalFs, JointOccupancyMatchesExactStationary) {
  // Run the actual FrontierSampler long enough and compare the empirical
  // occupancy of (v1, v2) as an unordered multiset against the exact law.
  const Graph g = triangle_with_pendant();
  const std::size_t m = 2;
  const StateCodec codec(g.num_vertices(), m);
  const auto pi = frontier_stationary_formula(g, m);

  // Aggregate the exact law over multisets (the sampler's walker identity
  // is not recoverable from the edge sequence, but the multiset is).
  std::vector<double> exact_multiset(codec.num_states(), 0.0);
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    auto t = codec.decode(code);
    if (t[0] > t[1]) std::swap(t[0], t[1]);
    exact_multiset[codec.encode(t)] += pi[code];
  }

  Rng rng(7);
  const std::uint64_t steps = 400000;
  const FrontierSampler fs(g, {.dimension = m, .steps = steps});
  const SampleRecord rec = fs.run(rng);
  std::vector<VertexId> occ(rec.starts);
  std::vector<double> counts(codec.num_states(), 0.0);
  for (const Edge& e : rec.edges) {
    // Replay: move one walker from e.u to e.v (any walker at e.u — the
    // multiset evolution is identical whichever is chosen).
    for (auto& v : occ) {
      if (v == e.u) {
        v = e.v;
        break;
      }
    }
    auto t = occ;
    if (t[0] > t[1]) std::swap(t[0], t[1]);
    counts[codec.encode(t)] += 1.0;
  }
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    const double freq = counts[code] / static_cast<double>(steps);
    EXPECT_NEAR(freq, exact_multiset[code], 0.15 * exact_multiset[code] + 0.003)
        << "state " << code;
  }
}

}  // namespace
}  // namespace frontier

// Burn-in and lazy-walk options of SingleRandomWalk (Section 4.3 remedies).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "estimators/density.hpp"
#include "experiments/replicator.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sampling/single_rw.hpp"
#include "stats/accumulators.hpp"

namespace frontier {
namespace {

TEST(LazyWalk, ValidatesLaziness) {
  Rng rng(1);
  const Graph g = cycle_graph(4);
  EXPECT_THROW(SingleRandomWalk(g, {.steps = 1, .laziness = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(SingleRandomWalk(g, {.steps = 1, .laziness = -0.1}),
               std::invalid_argument);
}

TEST(LazyWalk, StaysReduceSampleCount) {
  Rng rng(2);
  const Graph g = cycle_graph(100);
  const SingleRandomWalk lazy(g, {.steps = 10000, .laziness = 0.5});
  const SampleRecord rec = lazy.run(rng);
  EXPECT_LT(rec.edges.size(), 6000u);
  EXPECT_GT(rec.edges.size(), 4000u);
  EXPECT_DOUBLE_EQ(rec.cost, 10001.0);
}

TEST(LazyWalk, RecordedEdgesAreRealEdges) {
  Rng rng(3);
  const Graph g = barabasi_albert(100, 2, rng);
  const SingleRandomWalk lazy(g, {.steps = 2000, .laziness = 0.3});
  for (const Edge& e : lazy.run(rng).edges) {
    EXPECT_NE(e.u, e.v);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(LazyWalk, StationaryLawUnchanged) {
  // Laziness does not alter the stationary distribution.
  Rng rng(4);
  const Graph g = star_graph(6);  // center visited half the time
  const SingleRandomWalk lazy(g, {.steps = 400000, .laziness = 0.4});
  const SampleRecord rec = lazy.run(rng);
  double center = 0.0;
  for (const Edge& e : rec.edges) {
    if (e.v == 0) center += 1.0;
  }
  EXPECT_NEAR(center / static_cast<double>(rec.edges.size()), 0.5, 0.01);
}

TEST(BurnIn, DiscardsButPays) {
  Rng rng(5);
  const Graph g = cycle_graph(50);
  const SingleRandomWalk walker(g, {.steps = 100, .burn_in = 400});
  const SampleRecord rec = walker.run(rng);
  EXPECT_EQ(rec.edges.size(), 100u);
  EXPECT_DOUBLE_EQ(rec.cost, 501.0);
}

TEST(BurnIn, FirstRecordedEdgeIsNotAtStart) {
  // With a long burn-in on a path-like graph, the recorded walk should
  // usually begin away from the start vertex.
  Rng rng(6);
  const Graph g = cycle_graph(1000);
  const SingleRandomWalk walker(
      g, {.steps = 1, .fixed_start = VertexId{0}, .burn_in = 2000});
  int moved = 0;
  for (int r = 0; r < 50; ++r) {
    const SampleRecord rec = walker.run(rng);
    if (rec.edges.front().u != 0) ++moved;
  }
  EXPECT_GT(moved, 40);
}

TEST(BurnIn, ReducesTransientBiasOnSkewedStart) {
  // Estimating the fraction of degree-1 vertices on a star-of-stars graph
  // starting from the hub: burn-in reduces the start-dependence.
  Rng rng(7);
  const Graph g = barabasi_albert(2000, 1, rng);  // tree: slow mixing
  const auto pred = [&g](VertexId v) { return g.degree(v) == 1; };
  const double truth = exact_label_density(g, pred);

  const auto bias_with = [&](std::uint64_t burn) {
    const SingleRandomWalk walker(
        g, {.steps = 200, .fixed_start = VertexId{0}, .burn_in = burn});
    ScalarErrorAccumulator acc = parallel_accumulate<ScalarErrorAccumulator>(
        600, 99, [&] { return ScalarErrorAccumulator(truth); },
        [&](std::size_t, Rng& run_rng, ScalarErrorAccumulator& a) {
          a.add_run(estimate_vertex_label_density(
              g, walker.run(run_rng).edges, pred));
        },
        [](ScalarErrorAccumulator& a, const ScalarErrorAccumulator& b) {
          a.merge(b);
        },
        0);
    return std::abs(acc.relative_bias());
  };
  // Vertex 0 is the oldest (hub-like) vertex: starting there biases the
  // short walk toward the core. Burn-in dilutes that.
  EXPECT_LT(bias_with(2000), bias_with(0) + 0.02);
}

}  // namespace
}  // namespace frontier

#include "random/alias_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace frontier {
namespace {

TEST(AliasTable, RejectsEmptyWeights) {
  std::vector<double> w;
  EXPECT_THROW(AliasTable{std::span<const double>(w)}, std::invalid_argument);
}

TEST(AliasTable, RejectsAllZeroWeights) {
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(AliasTable{std::span<const double>(w)}, std::invalid_argument);
}

TEST(AliasTable, RejectsNegativeWeights) {
  std::vector<double> w{1.0, -0.5};
  EXPECT_THROW(AliasTable{std::span<const double>(w)}, std::invalid_argument);
}

TEST(AliasTable, SingleBucketAlwaysSampled) {
  std::vector<double> w{3.0};
  AliasTable table{std::span<const double>(w)};
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightBucketNeverSampled) {
  std::vector<double> w{1.0, 0.0, 1.0};
  AliasTable table{std::span<const double>(w)};
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.sample(rng), 1u);
}

TEST(AliasTable, ProbabilityAccessorNormalizes) {
  std::vector<double> w{1.0, 3.0};
  AliasTable table{std::span<const double>(w)};
  EXPECT_DOUBLE_EQ(table.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(table.probability(1), 0.75);
  EXPECT_DOUBLE_EQ(table.total_weight(), 4.0);
}

TEST(AliasTable, ProbabilityAccessorBoundsChecked) {
  std::vector<double> w{1.0};
  AliasTable table{std::span<const double>(w)};
  EXPECT_THROW((void)table.probability(1), std::out_of_range);
}

TEST(AliasTable, EmpiricalFrequenciesMatchWeights) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  AliasTable table{std::span<const double>(w)};
  Rng rng(3);
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i] / 10.0, 0.005)
        << "bucket " << i;
  }
}

TEST(AliasTable, HandlesExtremeWeightSkew) {
  std::vector<double> w{1e-9, 1.0};
  AliasTable table{std::span<const double>(w)};
  Rng rng(4);
  int zero_hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table.sample(rng) == 0) ++zero_hits;
  }
  EXPECT_LE(zero_hits, 2);  // p ~ 1e-9
}

class AliasTableSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AliasTableSizeSweep, UniformWeightsAreUniform) {
  const std::size_t k = GetParam();
  std::vector<double> w(k, 2.5);
  AliasTable table{std::span<const double>(w)};
  Rng rng(100 + k);
  std::vector<int> counts(k, 0);
  const int n = 20000 * static_cast<int>(k);
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, 1.0 / k, 0.15 / k)
        << "bucket " << i << " of " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasTableSizeSweep,
                         ::testing::Values(1, 2, 5, 17, 64));

}  // namespace
}  // namespace frontier

// Malformed-input suite for graph IO: negative ids, trailing garbage,
// truncated / corrupt v1 and v2 binaries, empty graphs, sparse ids, and
// full-disk flush detection.
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace frontier {
namespace {

std::string io_error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const IoError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected IoError";
  return "";
}

Graph parse(const std::string& text, std::size_t threads = 0) {
  std::stringstream ss(text);
  return read_edge_list(ss, threads);
}

TEST(EdgeListErrors, NegativeFirstIdThrowsWithLineNumber) {
  const std::string msg =
      io_error_message([] { (void)parse("-1 2\n"); });
  EXPECT_NE(msg.find("negative vertex id"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
}

TEST(EdgeListErrors, NegativeSecondIdThrows) {
  EXPECT_THROW((void)parse("0 -1\n"), IoError);
}

TEST(EdgeListErrors, LineNumberCountsCommentsAndBlanks) {
  const std::string msg = io_error_message(
      [] { (void)parse("# header\n0 1\n\n2 3\n-4 5\n"); });
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
}

TEST(EdgeListErrors, TrailingGarbageThrows) {
  const std::string msg =
      io_error_message([] { (void)parse("0 1\n1 2 junk\n"); });
  EXPECT_NE(msg.find("trailing garbage"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(EdgeListErrors, GarbageStuckToNumberThrows) {
  EXPECT_THROW((void)parse("0x1 2\n"), IoError);
  EXPECT_THROW((void)parse("0 1x\n"), IoError);
}

TEST(EdgeListErrors, MissingSecondIdThrows) {
  EXPECT_THROW((void)parse("5\n"), IoError);
  EXPECT_THROW((void)parse("5 \n"), IoError);
}

TEST(EdgeListErrors, OutOfRangeIdThrows) {
  const std::string msg = io_error_message(
      [] { (void)parse("99999999999999999999999999 1\n"); });
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
}

TEST(EdgeListErrors, ErrorInLaterParallelChunkReportsGlobalLine) {
  // Force many chunks so the bad line lands away from chunk 0; the line
  // number must still be global.
  std::string text;
  for (int i = 0; i < 99; ++i) text += "0 1\n";
  text += "bad line\n";  // line 100
  std::stringstream ss(text);
  const std::string msg =
      io_error_message([&] { (void)read_edge_list(ss, 8); });
  EXPECT_NE(msg.find("line 100"), std::string::npos) << msg;
}

TEST(EdgeListErrors, InlineCommentAfterEdgeIsAllowed) {
  const Graph g = parse("0 1 # forward edge\n1 2\t# tabbed comment\n");
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 2u);
}

TEST(EdgeListErrors, CrlfLineEndingsParse) {
  const Graph g = parse("0 1\r\n1 2\r\n");
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 2u);
}

TEST(EdgeListErrors, EmptyAndCommentOnlyInputsYieldEmptyGraph) {
  EXPECT_EQ(parse("").num_vertices(), 0u);
  EXPECT_EQ(parse("# nothing here\n\n").num_vertices(), 0u);
}

TEST(EdgeListErrors, SparseIdsDensifyInNumericOrder) {
  const Graph g = parse("1000000 42\n42 7\n", 4);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 2u);
  // Numeric order: 7 -> 0, 42 -> 1, 1000000 -> 2.
  EXPECT_TRUE(g.has_directed_edge(2, 1));
  EXPECT_TRUE(g.has_directed_edge(1, 0));
}

TEST(BinaryErrors, CorruptV1EdgeCountFailsFastWithoutAllocation) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint64_t magic = 0x46524f4e54474230ULL;
  const std::uint32_t version = 1;
  const std::uint64_t n = 4;
  const std::uint64_t m = std::uint64_t{1} << 60;  // absurd edge count
  ss.write(reinterpret_cast<const char*>(&magic), 8);
  ss.write(reinterpret_cast<const char*>(&version), 4);
  ss.write(reinterpret_cast<const char*>(&n), 8);
  ss.write(reinterpret_cast<const char*>(&m), 8);
  const std::string msg =
      io_error_message([&] { (void)read_binary(ss); });
  EXPECT_NE(msg.find("exceed"), std::string::npos) << msg;
}

TEST(BinaryErrors, V1EdgeEndpointOutOfRangeThrows) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint64_t magic = 0x46524f4e54474230ULL;
  const std::uint32_t version = 1;
  const std::uint64_t n = 2;
  const std::uint64_t m = 1;
  const std::uint32_t u = 0, v = 7;  // v >= n
  ss.write(reinterpret_cast<const char*>(&magic), 8);
  ss.write(reinterpret_cast<const char*>(&version), 4);
  ss.write(reinterpret_cast<const char*>(&n), 8);
  ss.write(reinterpret_cast<const char*>(&m), 8);
  ss.write(reinterpret_cast<const char*>(&u), 4);
  ss.write(reinterpret_cast<const char*>(&v), 4);
  EXPECT_THROW((void)read_binary(ss), IoError);
}

TEST(BinaryErrors, TruncatedV1Throws) {
  Rng rng(3);
  const Graph g = barabasi_albert(60, 2, rng);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  write_binary_v1(g, full);
  const std::string bytes = full.str();
  for (const std::size_t cut : {std::size_t{6}, std::size_t{21},
                                bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream trunc(std::ios::in | std::ios::out | std::ios::binary);
    trunc << bytes.substr(0, cut);
    EXPECT_THROW((void)read_binary(trunc), IoError) << "cut at " << cut;
  }
}

TEST(BinaryErrors, TruncatedV2StreamThrows) {
  Rng rng(4);
  const Graph g = barabasi_albert(60, 2, rng);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, full);
  const std::string bytes = full.str();
  for (const std::size_t cut : {std::size_t{10}, std::size_t{39},
                                std::size_t{41}, bytes.size() / 2,
                                bytes.size() - 1}) {
    std::stringstream trunc(std::ios::in | std::ios::out | std::ios::binary);
    trunc << bytes.substr(0, cut);
    EXPECT_THROW((void)read_binary(trunc), IoError) << "cut at " << cut;
  }
}

TEST(BinaryErrors, TruncatedAndPaddedV2FilesThrow) {
  Rng rng(5);
  const Graph g = barabasi_albert(80, 2, rng);
  const std::string path = ::testing::TempDir() + "trunc_v2.bin";
  write_binary_file(g, path);
  const auto full_size = std::filesystem::file_size(path);

  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_THROW((void)read_binary_file(path), IoError);

  // Trailing garbage (wrong total size) must also be rejected.
  write_binary_file(g, path);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "extra";
  }
  EXPECT_THROW((void)read_binary_file(path), IoError);
  std::filesystem::remove(path);
}

TEST(BinaryErrors, CorruptV2CountsFailFast) {
  Rng rng(6);
  const Graph g = barabasi_albert(40, 2, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, ss);
  std::string bytes = ss.str();
  // Overwrite the symmetric-edge count (offset 32) with an absurd value.
  const std::uint64_t huge = std::uint64_t{1} << 61;
  bytes.replace(32, 8, reinterpret_cast<const char*>(&huge), 8);
  std::stringstream corrupt(std::ios::in | std::ios::out | std::ios::binary);
  corrupt << bytes;
  EXPECT_THROW((void)read_binary(corrupt), IoError);
}

TEST(BinaryErrors, CorruptV2PayloadRejectedByStreamPath) {
  Rng rng(8);
  const Graph g = barabasi_albert(50, 2, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, ss);
  const std::string bytes = ss.str();

  // Non-monotone offsets: swap two adjacent offset entries.
  {
    std::string corrupt = bytes;
    const std::size_t off = 40 + 8;  // offsets[1], after the 40-byte header
    std::swap_ranges(corrupt.begin() + off, corrupt.begin() + off + 8,
                     corrupt.begin() + off + 8);
    std::stringstream in(std::ios::in | std::ios::out | std::ios::binary);
    in << corrupt;
    EXPECT_THROW((void)read_binary(in), IoError);
  }

  // Out-of-range neighbor id: overwrite the first neighbor entry.
  {
    std::string corrupt = bytes;
    const std::size_t neighbors_off =
        40 + (g.num_vertices() + 1) * 8;  // offsets array then neighbors
    const std::uint32_t bogus = 0xFFFFFFFFu;
    corrupt.replace(neighbors_off, 4,
                    reinterpret_cast<const char*>(&bogus), 4);
    std::stringstream in(std::ios::in | std::ios::out | std::ios::binary);
    in << corrupt;
    EXPECT_THROW((void)read_binary(in), IoError);
  }
}

TEST(BinaryErrors, UnsupportedVersionThrows) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint64_t magic = 0x46524f4e54474230ULL;
  const std::uint32_t version = 3;
  ss.write(reinterpret_cast<const char*>(&magic), 8);
  ss.write(reinterpret_cast<const char*>(&version), 4);
  const std::string msg = io_error_message([&] { (void)read_binary(ss); });
  EXPECT_NE(msg.find("unsupported version"), std::string::npos) << msg;
}

TEST(BinaryErrors, EmptyGraphRoundTripsThroughV2) {
  const Graph empty = GraphBuilder(0).build();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(empty, ss);
  const Graph loaded = read_binary(ss);
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded.num_directed_edges(), 0u);

  const std::string path = ::testing::TempDir() + "empty_v2.bin";
  write_binary_file(empty, path);
  const Graph mapped = read_binary_file(path);
  EXPECT_EQ(mapped.num_vertices(), 0u);
  std::filesystem::remove(path);
}

TEST(WriteErrors, UnwritablePathThrows) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_THROW(write_edge_list_file(g, "/nonexistent/dir/graph.txt"),
               IoError);
  EXPECT_THROW(write_binary_file(g, "/nonexistent/dir/graph.bin"), IoError);
}

TEST(WriteErrors, FullDiskSurfacesAsIoError) {
  // /dev/full accepts opens and writes but fails on flush — exactly the
  // silent-tail-loss scenario the flush check guards against.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  Rng rng(7);
  const Graph g = barabasi_albert(200, 2, rng);
  EXPECT_THROW(write_edge_list_file(g, "/dev/full"), IoError);
  EXPECT_THROW(write_binary_file(g, "/dev/full"), IoError);
}

}  // namespace
}  // namespace frontier

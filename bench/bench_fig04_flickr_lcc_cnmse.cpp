// Figure 4: CNMSE of in-degree CCDF estimates on the *largest connected
// component* of Flickr, B = |V|/100 — FS vs SingleRW vs MultipleRW, all
// from uniform starts. Paper shape: FS best even with no disconnected
// components; SingleRW beats MultipleRW.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig04_flickr_lcc_cnmse");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph g = largest_connected_component(ds.graph).graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t m = scaled_dimension(budget, 17152.0, 1000, 10);
  const std::size_t runs = cfg.runs(600);

  print_header("Figure 4: CNMSE of in-degree CCDF, LCC of Flickr", g,
               "B = |V|/100 = " + format_number(budget) + ", m = " +
                   std::to_string(m) + ", runs = " + std::to_string(runs));

  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});

  const std::vector<EdgeMethod> methods{
      edge_method("FS(m=" + std::to_string(m) + ")", fs),
      edge_method("SingleRW", srw),
      edge_method("MultipleRW(m=" + std::to_string(m) + ")", mrw),
  };
  const CurveResult result =
      degree_error_curves(g, methods, DegreeKind::kIn, true, runs, cfg);
  print_curve_result("in-degree", result);
  session.add_curves(result);
  std::cout << "\nexpected shape: FS lowest (paper: FS < SingleRW < "
               "MultipleRW; at bench scale MultipleRW ties FS while "
               "SingleRW trails — the community traps dominate here)\n";
  return 0;
}

// Graph load-path benchmark: text vs binary-v1 vs binary-v2 (mmap).
//
// Generates a Barabási–Albert graph (default 250k vertices, attach 4 —
// just over one million directed edges), writes it in all three formats,
// and times a cold load of each plus the first full touch of the mmap'd
// arrays. The v2 load is O(1) — header validation plus an mmap call — so
// its speedup over v1 (per-edge decode + full CSR rebuild) grows with the
// graph; the acceptance bar is >= 20x at >= 1M directed edges. RSS deltas
// come from /proc/self/status (VmRSS), 0 where unavailable: the mmap load
// itself should admit ~no resident growth until the arrays are touched.
//
//   bench_graph_load [--n N]     N = vertices (default 250000; CI smoke
//                                 passes a small N to gate regressions)
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace frontier;
namespace fs = std::filesystem;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Current resident set size in MiB (VmRSS); 0.0 when unavailable.
double rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// Forces every CSR page resident and returns a checksum so the traversal
/// cannot be optimized away.
std::uint64_t touch_all(const Graph& g) {
  std::uint64_t sum = g.num_directed_edges();
  for (const EdgeIndex o : g.offsets()) sum += o;
  for (const VertexId v : g.neighbor_array()) sum += v;
  for (const EdgeDir d : g.direction_array()) {
    sum += static_cast<std::uint64_t>(d);
  }
  for (const std::uint32_t d : g.out_degree_array()) sum += d;
  for (const std::uint32_t d : g.in_degree_array()) sum += d;
  return sum;
}

struct LoadRow {
  std::string format;
  double file_mib = 0.0;
  double load_ms = 0.0;
  double touch_ms = 0.0;
  double rss_delta_mib = 0.0;
  std::uint64_t checksum = 0;
};

template <typename LoadFn>
LoadRow measure(const std::string& format, const std::string& path,
                const LoadFn& load) {
  LoadRow row;
  row.format = format;
  row.file_mib =
      static_cast<double>(fs::file_size(path)) / (1024.0 * 1024.0);
  const double rss_before = rss_mib();
  const auto t0 = Clock::now();
  const Graph g = load(path);
  row.load_ms = ms_since(t0);
  row.rss_delta_mib = rss_mib() - rss_before;
  const auto t1 = Clock::now();
  row.checksum = touch_all(g);
  row.touch_ms = ms_since(t1);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  frontier::bench::BenchSession session(argc, argv, "bench_graph_load");
  std::size_t n = 250000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }

  Rng rng(1);
  std::cout << "generating barabasi_albert(n=" << n << ", attach=4)...\n";
  const Graph g = barabasi_albert(n, 4, rng);
  std::cout << g.summary() << "\n\n";

  const std::string stem =
      (fs::temp_directory_path() / "frontier_bench_load").string();
  const std::string text_path = stem + ".txt";
  const std::string v1_path = stem + ".v1.bin";
  const std::string v2_path = stem + ".v2.bin";
  write_edge_list_file(g, text_path);
  {
    std::ofstream f(v1_path, std::ios::binary);
    write_binary_v1(g, f);
  }
  write_binary_file(g, v2_path);

  std::vector<LoadRow> rows;
  // mmap first: a later text/v1 load cannot pollute its RSS delta.
  rows.push_back(measure("v2 (mmap)", v2_path,
                         [](const std::string& p) {
                           return read_binary_file(p);
                         }));
  rows.push_back(measure("v1 (rebuild)", v1_path,
                         [](const std::string& p) {
                           return read_binary_file(p);
                         }));
  rows.push_back(measure("text", text_path, [](const std::string& p) {
    return read_edge_list_file(p);
  }));

  fs::remove(text_path);
  fs::remove(v1_path);
  fs::remove(v2_path);

  TextTable table({"format", "file MiB", "load ms", "first-touch ms",
                   "rss delta MiB"});
  for (const LoadRow& r : rows) {
    table.add_row({r.format, format_number(r.file_mib),
                   format_number(r.load_ms), format_number(r.touch_ms),
                   format_number(r.rss_delta_mib)});
  }
  table.print(std::cout);

  if (rows[0].checksum != rows[1].checksum ||
      rows[0].checksum != rows[2].checksum) {
    std::cerr << "FAIL: formats disagree on graph contents\n";
    return 1;
  }

  const double v1_over_v2 = rows[1].load_ms / std::max(rows[0].load_ms, 1e-6);
  const double text_over_v2 =
      rows[2].load_ms / std::max(rows[0].load_ms, 1e-6);
  std::cout << "\nv2 mmap speedup: " << format_number(v1_over_v2)
            << "x vs v1, " << format_number(text_over_v2) << "x vs text\n";
  for (const LoadRow& r : rows) {
    session.metric("load_ms/" + r.format, r.load_ms, "ms");
    session.metric("first_touch_ms/" + r.format, r.touch_ms, "ms");
  }
  session.metric("vertices", static_cast<double>(n));
  session.metric("directed_edges",
                 static_cast<double>(g.num_directed_edges()));
  session.metric("mmap_speedup_vs_v1", v1_over_v2, "x");
  session.metric("mmap_speedup_vs_text", text_over_v2, "x");
  const bool big_enough = g.num_directed_edges() >= 1000000;
  if (big_enough) {
    std::cout << (v1_over_v2 >= 20.0 ? "PASS" : "FAIL")
              << ": acceptance bar is >= 20x vs v1 at >= 1M directed "
                 "edges\n";
  } else {
    std::cout << "note: graph below 1M directed edges; acceptance bar "
                 "applies to the default size\n";
  }
  return big_enough && v1_over_v2 < 20.0 ? 1 : 0;
}

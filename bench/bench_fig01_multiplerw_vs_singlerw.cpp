// Figure 1: CNMSE of the in-degree CCDF on Flickr with budget B = |V|/10,
// SingleRW vs MultipleRW (m = 10, jump cost c = 1, uniform starts).
// Paper shape: MultipleRW is consistently *less* accurate than SingleRW
// when walkers start from uniformly sampled vertices.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig01_multiplerw_vs_singlerw");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 10.0);
  const std::size_t m = 10;
  const std::size_t runs = cfg.runs(400);

  print_header("Figure 1: CNMSE of in-degree CCDF, SingleRW vs MultipleRW",
               g,
               "B = |V|/10 = " + format_number(budget) +
                   ", m = 10, c = 1, runs = " + std::to_string(runs));

  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});

  const std::vector<EdgeMethod> methods{
      edge_method("SingleRW", srw),
      edge_method("MultipleRW(m=10)", mrw),
  };
  const CurveResult result =
      degree_error_curves(g, methods, DegreeKind::kIn, true, runs, cfg);
  print_curve_result("in-degree", result);
  session.add_curves(result);

  std::cout << "\nexpected shape: SingleRW below MultipleRW at most degrees\n";
  return 0;
}

// Microbenchmarks (google-benchmark): sampler step throughput and the
// FS walker-selection ablation (Fenwick weighted tree vs linear scan)
// called out in DESIGN.md §5.
#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace frontier;

const Graph& bench_graph() {
  static const Graph g = [] {
    Rng rng(42);
    return barabasi_albert(50000, 5, rng);
  }();
  return g;
}

void BM_SingleRandomWalk(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto steps = static_cast<std::uint64_t>(state.range(0));
  const SingleRandomWalk walker(g, {.steps = steps});
  Rng rng(1);
  SampleArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(walker.run_into(arena, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SingleRandomWalk)->Arg(1000)->Arg(10000);

void BM_MetropolisHastings(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto steps = static_cast<std::uint64_t>(state.range(0));
  const MetropolisHastingsWalk walker(g, {.steps = steps});
  Rng rng(2);
  SampleArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(walker.run_into(arena, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_MetropolisHastings)->Arg(10000);

void BM_MultipleRw(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::uint64_t steps = 10000;
  const MultipleRandomWalks mrw(
      g, {.num_walkers = m, .steps_per_walker = steps / m});
  Rng rng(9);
  SampleArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mrw.run_into(arena, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_MultipleRw)->Arg(10)->Arg(100);

void BM_FrontierTree(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::uint64_t steps = 10000;
  const FrontierSampler fs(
      g, {.dimension = m, .steps = steps,
          .selection = FrontierSampler::Selection::kWeightedTree});
  Rng rng(3);
  SampleArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.run_into(arena, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_FrontierTree)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FrontierLinearScan(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::uint64_t steps = 10000;
  const FrontierSampler fs(
      g, {.dimension = m, .steps = steps,
          .selection = FrontierSampler::Selection::kLinearScan});
  Rng rng(4);
  SampleArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.run_into(arena, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_FrontierLinearScan)->Arg(4)->Arg(64)->Arg(1024);

void BM_DistributedFs(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::uint64_t steps = 10000;
  const DistributedFrontierSampler dfs(
      g, {.dimension = m, .stop = {.max_steps = steps}});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfs.run(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_DistributedFs)->Arg(64)->Arg(1024);

void BM_RandomEdgeSampler(benchmark::State& state) {
  const Graph& g = bench_graph();
  const RandomEdgeSampler re(g, {.budget = 20000.0});
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.run(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_RandomEdgeSampler);

void BM_DegreeDistributionEstimator(benchmark::State& state) {
  const Graph& g = bench_graph();
  const SingleRandomWalk walker(g, {.steps = 100000});
  Rng rng(7);
  const SampleRecord rec = walker.run(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_degree_distribution(g, rec.edges, DegreeKind::kSymmetric));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_DegreeDistributionEstimator);

void BM_JointDegreeAbsorb(benchmark::State& state) {
  const Graph& g = bench_graph();
  const SingleRandomWalk walker(g, {.steps = 100000});
  Rng rng(10);
  const SampleRecord rec = walker.run(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_joint_degree(g, rec.edges));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rec.edges.size()));
}
BENCHMARK(BM_JointDegreeAbsorb);

void BM_GraphBuild(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    Rng local = rng.split_stream(static_cast<std::uint64_t>(state.iterations()));
    benchmark::DoNotOptimize(barabasi_albert(10000, 3, local));
  }
}
BENCHMARK(BM_GraphBuild);

/// Deterministic result fingerprint. Timings vary run to run, so the
/// fingerprint hashes fixed-seed sampler *outputs* instead — one short
/// run per sampler family benchmarked above, folding every sampled edge,
/// start vertex and the final cost. It must be invariant across
/// FS_THREADS and FS_BLOCK (the samplers' drain path goes through
/// StreamEventBlock), which is exactly what CI's perf-smoke gate checks.
double deterministic_fingerprint() {
  const Graph& g = bench_graph();
  std::uint64_t h = kFnv1aOffsetBasis;
  const auto absorb = [&h](const SampleRecord& rec) {
    for (const Edge& e : rec.edges) {
      h = fnv1a_u64(h, e.u);
      h = fnv1a_u64(h, e.v);
    }
    for (const VertexId s : rec.starts) h = fnv1a_u64(h, s);
    h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(rec.cost));
  };
  {
    Rng rng(1);
    absorb(SingleRandomWalk(g, {.steps = 2000}).run(rng));
  }
  {
    Rng rng(2);
    absorb(MetropolisHastingsWalk(g, {.steps = 2000}).run(rng));
  }
  {
    Rng rng(9);
    absorb(MultipleRandomWalks(g, {.num_walkers = 10, .steps_per_walker = 200})
               .run(rng));
  }
  {
    Rng rng(3);
    absorb(FrontierSampler(
               g, {.dimension = 64, .steps = 2000,
                   .selection = FrontierSampler::Selection::kWeightedTree})
               .run(rng));
  }
  {
    Rng rng(4);
    absorb(FrontierSampler(
               g, {.dimension = 64, .steps = 2000,
                   .selection = FrontierSampler::Selection::kLinearScan})
               .run(rng));
  }
  {
    Rng rng(6);
    absorb(RandomWalkWithJumps(g, {.budget = 2000.0}).run(rng));
  }
  return static_cast<double>(h & ((std::uint64_t{1} << 52) - 1));
}

/// Mirrors every completed google-benchmark run into the shared
/// BenchReport, so bench_micro_samplers speaks the same --json schema as
/// the figure/table benches despite its different driver.
class SessionReporter : public benchmark::ConsoleReporter {
 public:
  explicit SessionReporter(frontier::bench::BenchSession& session)
      : session_(session) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      session_.metric(run.benchmark_name() + "/real_time",
                      run.GetAdjustedRealTime(),
                      benchmark::GetTimeUnitString(run.time_unit));
      // Walker benches SetItemsProcessed(steps), so this is steps/s —
      // the number the perf-smoke job prints and the BENCH trajectory
      // tracks.
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        session_.metric(run.benchmark_name() + "/items_per_second",
                        it->second, "items/s");
      }
    }
  }

 private:
  frontier::bench::BenchSession& session_;
};

}  // namespace

// Hand-rolled BENCHMARK_MAIN(): the shared --json flag must be stripped
// before benchmark::Initialize (which rejects flags it does not know).
int main(int argc, char** argv) {
  frontier::bench::BenchSession session(argc, argv, "bench_micro_samplers");
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      if (i + 1 < argc) ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  SessionReporter reporter(session);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  session.metric("result_fingerprint", deterministic_fingerprint(), "fnv52");
  return 0;
}

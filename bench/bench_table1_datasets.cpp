// Table 1: summary of the evaluation datasets (synthetic surrogates).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  frontier::bench::BenchSession session(argc, argv, "bench_table1_datasets");
  const ExperimentConfig& cfg = session.config();
  print_banner(std::cout,
               "Table 1: summary of the graph datasets (surrogates)");

  TextTable table({"Graph", "# Vertices", "Size of LCC", "# Dir. Edges",
                   "Avg Degree", "wmax"});
  auto datasets = table1_datasets(cfg);
  datasets.push_back(synthetic_hepth(cfg));
  datasets.push_back(synthetic_gab(cfg));
  for (const Dataset& ds : datasets) {
    const GraphSummary s = summarize(ds.graph, ds.name);
    table.add_row({s.name, std::to_string(s.num_vertices),
                   std::to_string(s.lcc_size),
                   std::to_string(s.num_directed_edges),
                   format_number(s.average_degree, 3),
                   format_number(s.wmax, 3)});
    session.metric("vertices/" + s.name,
                   static_cast<double>(s.num_vertices));
    session.metric("lcc_fraction/" + s.name,
                   static_cast<double>(s.lcc_size) /
                       static_cast<double>(s.num_vertices));
    session.metric("avg_degree/" + s.name, s.average_degree);
  }
  table.print(std::cout);
  std::cout << "\nPaper shapes to match: Flickr ~94% LCC with heavy tail;"
               "\nLiveJournal/YouTube ~99.7% LCC; Internet RLT d~3.2;"
               "\nGAB halves d=2 and d=10 joined by one edge.\n";
  return 0;
}

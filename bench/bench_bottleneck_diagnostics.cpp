// Diagnostics: why walkers get trapped. For each evaluation graph, reports
// the spectral gap, relaxation time, Cheeger bounds, and the bottleneck cut
// found by the spectral sweep — connecting the estimation-error experiments
// (Figs. 5, 10) to the structural cause (Section 4.3).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_bottleneck_diagnostics");
  ExperimentConfig cfg = session.config();
  // Spectral analysis is dense-ish; shrink the surrogates.
  cfg.scale_multiplier *= 0.2;

  print_banner(std::cout,
               "Diagnostics: mixing bottlenecks of the evaluation graphs");
  std::cout << "(LCCs at 0.2x scale; power iteration on the lazy kernel)\n\n";

  std::vector<Dataset> datasets;
  datasets.push_back(synthetic_flickr(cfg));
  datasets.push_back(synthetic_internet_rlt(cfg));
  datasets.push_back(synthetic_gab(cfg));
  datasets.push_back(synthetic_gab_er(cfg));

  TextTable table({"graph", "|V| (LCC)", "gap", "relax. time",
                   "Cheeger lo", "sweep-cut phi", "Cheeger hi",
                   "cut size"});
  std::vector<double> fingerprint_values;
  for (const Dataset& ds : datasets) {
    const Graph lcc = largest_connected_component(ds.graph).graph;
    const SpectralInfo s = spectral_gap(lcc);
    const auto [lo, hi] = cheeger_bounds(s.spectral_gap);
    const SweepCut cut = spectral_sweep_cut(lcc);
    table.add_row({ds.name, std::to_string(lcc.num_vertices()),
                   format_number(s.spectral_gap, 3),
                   format_number(s.relaxation_time, 3), format_number(lo, 3),
                   format_number(cut.conductance, 3), format_number(hi, 3),
                   std::to_string(cut.side.size())});
    session.metric("spectral_gap/" + ds.name, s.spectral_gap);
    session.metric("relaxation_time/" + ds.name, s.relaxation_time);
    session.metric("sweep_conductance/" + ds.name, cut.conductance);
    fingerprint_values.push_back(s.spectral_gap);
    fingerprint_values.push_back(s.relaxation_time);
    fingerprint_values.push_back(cut.conductance);
    fingerprint_values.push_back(static_cast<double>(cut.side.size()));
  }
  // Spectral sweeps are deterministic (power iteration from a fixed
  // start), so the fingerprint must match across thread counts — this is
  // what lets CI's perf-smoke gate on it like the curve benches.
  session.metric("result_fingerprint", values_fingerprint(fingerprint_values),
                 "fnv52");
  table.print(std::cout);
  std::cout << "\nexpected shape: the GAB graphs and the "
               "community-structured Flickr surrogate have relaxation "
               "times orders of magnitude above the tree-like Internet "
               "graph; the sweep cut recovers the planted structure (on "
               "GAB: exactly one half); phi always lies inside the Cheeger "
               "sandwich\n";
  return 0;
}

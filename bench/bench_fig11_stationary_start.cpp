// Figure 11: the Figure 5 experiment with SingleRW and MultipleRW started
// *in steady state* (degree-proportional starts) instead of uniformly.
// Paper shape: MultipleRW improves dramatically and matches FS — proving
// the Figure 5 errors came from the uniform starting vertices.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig11_stationary_start");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t m = scaled_dimension(budget, 17152.0, 1000, 10);
  const std::size_t runs = cfg.runs(600);

  print_header(
      "Figure 11: CNMSE of in-degree CCDF, Flickr; SRW/MRW start in "
      "steady state",
      g,
      "B = |V|/100 = " + format_number(budget) + ", m = " +
          std::to_string(m) + ", runs = " + std::to_string(runs));

  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const SingleRandomWalk srw_ss(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1,
          .start = StartMode::kDegreeProportional});
  const MultipleRandomWalks mrw_ss(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0),
          .start = StartMode::kDegreeProportional});

  const std::vector<EdgeMethod> methods{
      edge_method("FS(m=" + std::to_string(m) + ",uniform)", fs),
      edge_method("SingleRW(steady)", srw_ss),
      edge_method("MultipleRW(steady)", mrw_ss),
  };
  const CurveResult result =
      degree_error_curves(g, methods, DegreeKind::kIn, true, runs, cfg);
  print_curve_result("in-degree", result);
  session.add_curves(result);
  std::cout << "\nexpected shape: all three methods now comparable "
               "(MultipleRW's Figure 5 errors were start-up transients)\n";
  return 0;
}

// Figure 8: CNMSE of the out-degree distribution estimates on LiveJournal,
// budget B = |V|/100 — FS vs SingleRW vs MultipleRW. Paper shape: FS up to
// an order of magnitude more accurate at small out-degrees.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig08_livejournal_cnmse");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_livejournal(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t m = scaled_dimension(budget, 52844.0, 1000, 10);
  const std::size_t runs = cfg.runs(600);

  print_header("Figure 8: CNMSE of out-degree CCDF, LiveJournal", g,
               "B = |V|/100 = " + format_number(budget) + ", m = " +
                   std::to_string(m) + ", runs = " + std::to_string(runs));

  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});

  const std::vector<EdgeMethod> methods{
      edge_method("FS(m=" + std::to_string(m) + ")", fs),
      edge_method("SingleRW", srw),
      edge_method("MultipleRW(m=" + std::to_string(m) + ")", mrw),
  };
  const CurveResult result =
      degree_error_curves(g, methods, DegreeKind::kOut, true, runs, cfg);
  print_curve_result("out-degree", result);
  session.add_curves(result);
  std::cout << "\nexpected shape: FS lowest, biggest margin at small "
               "out-degrees\n";
  return 0;
}

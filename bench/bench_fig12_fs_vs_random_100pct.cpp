// Figure 12: NMSE (not CNMSE) of the in-degree distribution on Flickr at
// 100% hit ratio: random edge sampling (cost 2/edge) vs random vertex
// sampling (cost 1/vertex) vs FS, B = |V|/100. Paper shape: RE beats RV
// above the average in-degree and loses below it (eqs. 3-4); FS tracks RE.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig12_fs_vs_random_100pct");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t m = scaled_dimension(budget, 18612.0, 1000, 10);
  const std::size_t runs = cfg.runs(1500);
  const auto theta = degree_distribution(g, DegreeKind::kIn);

  print_header("Figure 12: NMSE of in-degree estimates, 100% hit ratio", g,
               "B = |V|/100 = " + format_number(budget) + ", m = " +
                   std::to_string(m) + ", runs = " + std::to_string(runs) +
                   ", avg in-degree = " +
                   format_number(static_cast<double>(g.num_directed_edges()) /
                                 static_cast<double>(g.num_vertices())));

  const RandomEdgeSampler re(g, {.budget = budget, .edge_cost = 2.0});
  const RandomVertexSampler rv(g, {.budget = budget});
  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});

  const auto run_curve =
      [&](const std::function<std::vector<double>(Rng&)>& estimate,
          std::uint64_t salt) {
        MseAccumulator acc = parallel_accumulate<MseAccumulator>(
            runs, cfg.seed + salt, [&] { return MseAccumulator(theta); },
            [&](std::size_t, Rng& rng, MseAccumulator& out) {
              out.add_run(estimate(rng));
            },
            [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
            cfg.threads);
        return acc.normalized_rmse();
      };

  const std::vector<std::string> names{"RandomEdge(100%)", "FS(100%)",
                                       "RandomVertex(100%)"};
  std::vector<std::vector<double>> curves;
  curves.push_back(run_curve(
      [&](Rng& rng) {
        return estimate_degree_distribution(g, re.run(rng).edges,
                                            DegreeKind::kIn);
      },
      1));
  curves.push_back(run_curve(
      [&](Rng& rng) {
        return estimate_degree_distribution(g, fs.run(rng).edges,
                                            DegreeKind::kIn);
      },
      2));
  curves.push_back(run_curve(
      [&](Rng& rng) {
        return estimate_degree_distribution_uniform(g, rv.run(rng).vertices,
                                                    DegreeKind::kIn);
      },
      3));

  const auto degrees =
      log_spaced_degrees(static_cast<std::uint32_t>(theta.size() - 1));
  print_curves(std::cout, "in-degree", degrees,
               std::vector<std::string>(names),
               std::vector<std::vector<double>>(curves));
  session.add_curves(CurveResult{degrees, names, curves, {}});
  std::cout << "\nexpected shape: RandomVertex best below the average "
               "in-degree, worst above it; FS tracks RandomEdge\n";
  return 0;
}

// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of Ribeiro & Towsley
// (IMC 2010) on the synthetic surrogate datasets (DESIGN.md §3). Absolute
// error values differ from the paper (different graphs, scaled-down sizes
// and run counts); the *shape* — method ordering, crossovers, error decay —
// is the reproduction target and is what EXPERIMENTS.md records.
//
// Environment knobs: FS_RUNS, FS_SCALE, FS_THREADS, FS_SEED (see
// experiments/config.hpp; malformed values are a fatal error, exit 2).
//
// Every binary additionally accepts `--json <path>`: on exit the harness
// writes a BenchReport (stats/bench_report.hpp) there — name, config
// fingerprint, wall time, and whatever metrics the bench recorded — which
// is what CI's perf-smoke job uploads and validates.
#pragma once

#include <chrono>
#include <functional>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/frontier.hpp"

namespace frontier::bench {

/// A sampling method under comparison: name + one-run edge producer. The
/// producer drains into the worker's reusable SampleArena (via the
/// samplers' run_into) and returns a view of the sampled edges; the view
/// is consumed before the arena's next run, so replications allocate
/// nothing after each worker's first.
struct EdgeMethod {
  std::string name;
  std::function<std::span<const Edge>(Rng&, SampleArena&)> run;
};

/// Wraps any sampler with a `run_into(arena, rng)` method into an
/// EdgeMethod producer. The sampler is captured by reference and must
/// outlive the method (benches keep samplers on the stack of main).
template <typename Sampler>
[[nodiscard]] EdgeMethod edge_method(std::string name, const Sampler& s) {
  return {std::move(name), [&s](Rng& rng, SampleArena& arena) {
            return std::span<const Edge>(s.run_into(arena, rng).edges);
          }};
}

/// Result of a CNMSE/NMSE curve experiment for several methods.
struct CurveResult {
  std::vector<std::uint32_t> degrees;           // x values (log spaced)
  std::vector<std::string> names;               // per method
  std::vector<std::vector<double>> curves;      // per method, indexed by degree
  std::vector<double> mean_error;               // mean positive NMSE per method
};

/// Per-bench lifetime object: parses the shared `--json <path>` flag
/// (leaving any bench-specific arguments alone), loads the experiment
/// configuration from the environment — exiting 2 with a clear message on
/// malformed FS_* knobs — and, on destruction, writes the accumulated
/// BenchReport when a path was given (exit 3 if the write fails).
class BenchSession {
 public:
  BenchSession(int argc, char** argv, std::string name);
  ~BenchSession();
  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// Records one named metric in the report.
  void metric(std::string name, double value, std::string unit = "");

  /// Records per-method geometric-mean errors plus `result_fingerprint`, a
  /// 52-bit FNV-1a hash over every curve value's bit pattern. Reports from
  /// different FS_THREADS settings must show the *same* fingerprint — the
  /// replication engine is bit-identical across thread counts — while
  /// their wall_time_seconds exposes the parallel speedup.
  void add_curves(const CurveResult& result);

 private:
  ExperimentConfig config_;
  BenchReport report_;
  std::string json_path_;  // empty = report discarded
  std::chrono::steady_clock::time_point start_;
};

/// Runs `runs` replications of each method, estimating the `kind` degree
/// distribution (as CCDF when `use_ccdf`), and returns per-degree
/// normalized RMSE curves against the exact distribution of `g`. Fanned
/// across resolve_threads(cfg.threads) workers by ReplicationRunner; the
/// result is bit-identical for any thread count.
CurveResult degree_error_curves(const Graph& g,
                                const std::vector<EdgeMethod>& methods,
                                DegreeKind kind, bool use_ccdf,
                                std::size_t runs,
                                const ExperimentConfig& cfg);

/// Prints a CurveResult as an aligned table plus per-method means.
void print_curve_result(const std::string& x_name, const CurveResult& result);

/// Prints the standard bench header (dataset summary + parameters).
void print_header(const std::string& title, const Graph& g,
                  const std::string& params);

/// Budget shorthand: |V| / divisor.
[[nodiscard]] double vertex_fraction_budget(const Graph& g, double divisor);

/// Scales the paper's walker count so steps-per-walker stays comparable
/// when the budget shrinks with the surrogate graphs: keeps
/// budget/m ≈ paper_budget/paper_m, with a floor.
[[nodiscard]] std::size_t scaled_dimension(double budget, double paper_budget,
                                           std::size_t paper_m,
                                           std::size_t floor_m = 10);

/// 52-bit FNV-1a hash over the bit patterns of `values` — the shared
/// `result_fingerprint` scheme (same core and mask as the curve
/// fingerprint of add_curves), small enough to live losslessly in a
/// double-valued metric. Benches that do not go through add_curves hash
/// their deterministic result values with this and emit the metric
/// themselves, so CI's bit-identity gates cover them too.
[[nodiscard]] double values_fingerprint(std::span<const double> values);

/// Small-integer env knob (e.g. FS_STREAM_MAX_EXP) with the same strict
/// parsing as the FS_* knobs: malformed values exit 2 with a message.
[[nodiscard]] int checked_env_int(const char* name, int fallback);

}  // namespace frontier::bench

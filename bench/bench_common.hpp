// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of Ribeiro & Towsley
// (IMC 2010) on the synthetic surrogate datasets (DESIGN.md §3). Absolute
// error values differ from the paper (different graphs, scaled-down sizes
// and run counts); the *shape* — method ordering, crossovers, error decay —
// is the reproduction target and is what EXPERIMENTS.md records.
//
// Environment knobs: FS_RUNS, FS_SCALE, FS_THREADS, FS_SEED (see
// experiments/config.hpp).
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/frontier.hpp"

namespace frontier::bench {

/// A sampling method under comparison: name + one-run edge producer.
struct EdgeMethod {
  std::string name;
  std::function<std::vector<Edge>(Rng&)> run;
};

/// Result of a CNMSE/NMSE curve experiment for several methods.
struct CurveResult {
  std::vector<std::uint32_t> degrees;           // x values (log spaced)
  std::vector<std::string> names;               // per method
  std::vector<std::vector<double>> curves;      // per method, indexed by degree
  std::vector<double> mean_error;               // mean positive NMSE per method
};

/// Runs `runs` replications of each method, estimating the `kind` degree
/// distribution (as CCDF when `use_ccdf`), and returns per-degree
/// normalized RMSE curves against the exact distribution of `g`.
CurveResult degree_error_curves(const Graph& g,
                                const std::vector<EdgeMethod>& methods,
                                DegreeKind kind, bool use_ccdf,
                                std::size_t runs,
                                const ExperimentConfig& cfg);

/// Prints a CurveResult as an aligned table plus per-method means.
void print_curve_result(const std::string& x_name, const CurveResult& result);

/// Prints the standard bench header (dataset summary + parameters).
void print_header(const std::string& title, const Graph& g,
                  const std::string& params);

/// Budget shorthand: |V| / divisor.
[[nodiscard]] double vertex_fraction_budget(const Graph& g, double divisor);

/// Scales the paper's walker count so steps-per-walker stays comparable
/// when the budget shrinks with the surrogate graphs: keeps
/// budget/m ≈ paper_budget/paper_m, with a floor.
[[nodiscard]] std::size_t scaled_dimension(double budget, double paper_budget,
                                           std::size_t paper_m,
                                           std::size_t floor_m = 10);

}  // namespace frontier::bench

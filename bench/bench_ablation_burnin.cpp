// Ablation: burn-in (the classical remedy of Section 4.3) versus Frontier
// Sampling. Burn-in discards the transient but *pays* for it, and no
// burn-in length can rescue a walker trapped in a disconnected component —
// FS needs no burn-in at all.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_ablation_burnin");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t runs = cfg.runs(500);
  const auto theta = degree_distribution(g, DegreeKind::kIn);
  const auto truth = ccdf_from_pdf(theta);

  print_header("Ablation: SingleRW burn-in vs Frontier Sampling", g,
               "B = |V|/100 = " + format_number(budget) +
                   " (burn-in consumes budget), runs = " +
                   std::to_string(runs));

  const auto gm_error = [&](const std::function<std::vector<Edge>(Rng&)>& run,
                            std::uint64_t salt) {
    MseAccumulator acc = parallel_accumulate<MseAccumulator>(
        runs, cfg.seed + salt, [&] { return MseAccumulator(truth); },
        [&](std::size_t, Rng& rng, MseAccumulator& out) {
          out.add_run(ccdf_from_pdf(
              estimate_degree_distribution(g, run(rng), DegreeKind::kIn)));
        },
        [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
        cfg.threads);
    const auto curve = acc.normalized_rmse();
    std::vector<double> at_display;
    for (std::uint32_t d :
         log_spaced_degrees(static_cast<std::uint32_t>(truth.size() - 1))) {
      if (d < curve.size()) at_display.push_back(curve[d]);
    }
    return geometric_mean_positive(at_display);
  };

  TextTable table({"method", "burn-in", "kept samples", "geo-mean CNMSE"});
  const auto total = static_cast<std::uint64_t>(budget);
  for (double frac : {0.0, 0.1, 0.25, 0.5, 0.75}) {
    const auto burn = static_cast<std::uint64_t>(frac * budget);
    const std::uint64_t kept = total - burn - 1;
    const SingleRandomWalk walker(g, {.steps = kept, .burn_in = burn});
    const double err =
        gm_error([&](Rng& rng) { return walker.run(rng).edges; },
                 static_cast<std::uint64_t>(frac * 100));
    table.add_row({"SingleRW", std::to_string(burn), std::to_string(kept),
                   format_number(err)});
    session.metric("cnmse/SingleRW/burn=" + std::to_string(burn), err);
  }
  const std::size_t m = scaled_dimension(budget, 17152.0, 1000, 10);
  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const double fs_err =
      gm_error([&](Rng& rng) { return fs.run(rng).edges; }, 999);
  table.add_row({"FS(m=" + std::to_string(m) + ")", "0",
                 std::to_string(frontier_steps(budget, m, 1.0)),
                 format_number(fs_err)});
  session.metric("cnmse/FS", fs_err);
  table.print(std::cout);
  std::cout << "\nexpected shape: burn-in helps SingleRW a little, then "
               "hurts (it spends budget without sampling); FS beats every "
               "burn-in setting because no burn-in fixes disconnected "
               "components\n";
  return 0;
}

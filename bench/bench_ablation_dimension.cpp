// Ablation: the FS dimension m. The paper evaluates m in {10, 100, 1000};
// this sweep traces the whole curve under a fixed budget B on the complete
// (disconnected) Flickr surrogate. Two forces trade off:
//   * larger m -> the uniform start is closer to the FS steady state
//     (Theorem 5.4) and walkers cover more components, but
//   * larger m -> fewer steps per walker (budget B - m*c) and m=B leaves
//     no steps at all.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_ablation_dimension");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t runs = cfg.runs(500);
  const auto theta = degree_distribution(g, DegreeKind::kIn);
  const auto truth = ccdf_from_pdf(theta);

  print_header("Ablation: FS dimension m under fixed budget", g,
               "B = |V|/100 = " + format_number(budget) +
                   ", runs = " + std::to_string(runs));

  TextTable table({"m", "steps (B - m)", "geo-mean CNMSE"});
  const std::vector<std::size_t> dims{
      1, 4, 16, 64, 128, 256, static_cast<std::size_t>(budget) * 3 / 4};
  for (std::size_t m : dims) {
    const std::uint64_t steps = frontier_steps(budget, m, 1.0);
    if (steps == 0) continue;
    const FrontierSampler fs(g, {.dimension = m, .steps = steps});
    MseAccumulator acc = parallel_accumulate<MseAccumulator>(
        runs, cfg.seed + m, [&] { return MseAccumulator(truth); },
        [&](std::size_t, Rng& rng, MseAccumulator& out) {
          out.add_run(ccdf_from_pdf(estimate_degree_distribution(
              g, fs.run(rng).edges, DegreeKind::kIn)));
        },
        [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
        cfg.threads);
    const auto curve = acc.normalized_rmse();
    std::vector<double> at_display;
    for (std::uint32_t d :
         log_spaced_degrees(static_cast<std::uint32_t>(truth.size() - 1))) {
      if (d < curve.size()) at_display.push_back(curve[d]);
    }
    const double err = geometric_mean_positive(at_display);
    table.add_row({std::to_string(m), std::to_string(steps),
                   format_number(err)});
    session.metric("cnmse/m=" + std::to_string(m), err);
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: error falls as m grows (robustness to "
               "disconnected components), then rises again when m*c eats "
               "the walking budget\n";
  return 0;
}

// Figure 7: log-log plot of the LiveJournal out-degree CCDF (ground truth).
#include "bench_common.hpp"

int main() {
  using namespace frontier;
  using namespace frontier::bench;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  const Dataset ds = synthetic_livejournal(cfg);
  const Graph& g = ds.graph;
  print_header("Figure 7: LiveJournal out-degree CCDF (exact)", g, "");

  const auto gamma = ccdf_from_pdf(degree_distribution(g, DegreeKind::kOut));
  TextTable table({"out-degree", "CCDF"});
  for (std::uint32_t d :
       log_spaced_degrees(static_cast<std::uint32_t>(gamma.size() - 1))) {
    if (gamma[d] <= 0.0) continue;
    table.add_row({std::to_string(d), format_number(gamma[d], 4)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: heavy-tailed decay\n";
  return 0;
}

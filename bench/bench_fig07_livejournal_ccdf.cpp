// Figure 7: log-log plot of the LiveJournal out-degree CCDF (ground truth).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig07_livejournal_ccdf");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_livejournal(cfg);
  const Graph& g = ds.graph;
  print_header("Figure 7: LiveJournal out-degree CCDF (exact)", g, "");

  const auto gamma = ccdf_from_pdf(degree_distribution(g, DegreeKind::kOut));
  TextTable table({"out-degree", "CCDF"});
  std::size_t points = 0;
  for (std::uint32_t d :
       log_spaced_degrees(static_cast<std::uint32_t>(gamma.size() - 1))) {
    if (gamma[d] <= 0.0) continue;
    table.add_row({std::to_string(d), format_number(gamma[d], 4)});
    ++points;
  }
  table.print(std::cout);
  session.metric("ccdf_points", static_cast<double>(points));
  session.metric("max_out_degree", static_cast<double>(gamma.size() - 1));
  std::cout << "\nexpected shape: heavy-tailed decay\n";
  return 0;
}

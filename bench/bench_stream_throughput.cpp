// Streaming vs batch sampling at large budgets: edges/sec and peak RSS.
//
// The streaming engine folds each sampled edge into online sinks, so its
// memory is O(graph + sink buckets) regardless of the budget B; the batch
// path materializes all B edges (16 bytes each) before estimating. This
// bench runs Frontier Sampling at geometrically increasing budgets and
// reports wall time, throughput, and the process peak RSS after each run.
//
// Run order matters: peak RSS is a process-wide high-water mark, so all
// streaming budgets run before the first batch run. The streaming rows
// should show near-constant RSS (within 2x from B=10^6 to B=10^8, the
// acceptance bar); the batch rows grow linearly with B.
//
// Knobs: FS_STREAM_MAX_EXP (default 8) and FS_BATCH_MAX_EXP (default 7)
// cap the largest streaming/batch budget at 10^exp; raise to 9 for the
// billion-step demonstration if you have the time and (for batch) RAM.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace frontier;

// Peak RSS of this process in MiB; 0 where getrusage is unavailable.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

struct RunResult {
  double seconds = 0.0;
  double estimate = 0.0;  // streamed/batched avg-degree, sanity check
};

}  // namespace

int main(int argc, char** argv) {
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_stream_throughput");
  const ExperimentConfig& cfg = session.config();
  const int stream_max_exp = checked_env_int("FS_STREAM_MAX_EXP", 8);
  const int batch_max_exp = checked_env_int("FS_BATCH_MAX_EXP", 7);

  Rng graph_rng(cfg.seed);
  const Graph g = barabasi_albert(200000, 3, graph_rng);
  print_header(
      "Streaming vs batch throughput and memory", g,
      "FS, m = 500, budgets 10^6 .. 10^" + std::to_string(stream_max_exp) +
          " (streaming) / 10^" + std::to_string(batch_max_exp) + " (batch)");

  const std::size_t m = 500;
  const auto fs_config = [&](double budget) {
    return FrontierSampler::Config{
        .dimension = m, .steps = frontier_steps(budget, m, 1.0)};
  };

  const auto run_streaming = [&](double budget, bool instrument = false) {
    SinkSet sinks;
    sinks.push_back(std::make_unique<GraphMomentsSink>(g));
    sinks.push_back(
        std::make_unique<DegreeDistributionSink>(g, DegreeKind::kSymmetric));
    StreamEngine engine(
        std::make_unique<FrontierCursor>(g, fs_config(budget), Rng(cfg.seed)),
        std::move(sinks));
    std::unique_ptr<CrawlInstrumentation> instr;
    if (instrument) {
      instr = std::make_unique<CrawlInstrumentation>(
          MetricsRegistry::global(), engine.cursor(), engine.sinks());
      engine.set_instrumentation(instr.get());
    }
    const auto t0 = std::chrono::steady_clock::now();
    engine.run_to_completion();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    const auto& moments =
        dynamic_cast<const GraphMomentsSink&>(*engine.sinks()[0]);
    return RunResult{dt.count(), moments.average_degree()};
  };

  const auto run_batch = [&](double budget) {
    const FrontierSampler fs(g, fs_config(budget));
    Rng rng(cfg.seed);
    const auto t0 = std::chrono::steady_clock::now();
    const SampleRecord rec = fs.run(rng);
    const double estimate = estimate_average_degree(g, rec.edges);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return RunResult{dt.count(), estimate};
  };

  TextTable table({"mode", "budget", "seconds", "edges/sec", "peak RSS (MiB)",
                   "avg-degree est"});
  const auto add_row = [&](const char* mode, double budget,
                           const RunResult& r) {
    const double rate = budget / std::max(r.seconds, 1e-9);
    const double rss = peak_rss_mib();
    table.add_row({mode, format_number(budget), format_number(r.seconds),
                   format_number(rate), format_number(rss),
                   format_number(r.estimate)});
    const std::string tag =
        std::string(mode) + "/B=" + format_number(budget);
    session.metric("edges_per_sec/" + tag, rate, "edges/s");
    session.metric("peak_rss/" + tag, rss, "MiB");
  };

  // Streaming first: it must not inherit the batch path's high-water mark.
  for (int exp = 6; exp <= stream_max_exp; ++exp) {
    const double budget = std::pow(10.0, exp);
    add_row("stream", budget, run_streaming(budget));
  }

  for (int exp = 6; exp <= batch_max_exp; ++exp) {
    const double budget = std::pow(10.0, exp);
    add_row("batch", budget, run_batch(budget));
  }
  table.print(std::cout);
  std::cout << "\nRSS rows are cumulative high-water marks: a flat streaming "
               "column is the O(1)-in-budget memory claim; batch grows ~16 "
               "bytes/edge.\n";

  // Telemetry overhead at a fixed budget: the same crawl with and without
  // CrawlInstrumentation attached. The estimates must agree exactly
  // (telemetry never touches the RNG stream or sink state); the wall-time
  // delta is the advertised hot-loop cost (< 2% at the default FS_BLOCK,
  // see docs/OBSERVABILITY.md).
  {
    const double budget = std::pow(10.0, std::min(stream_max_exp, 7));
    const RunResult off = run_streaming(budget);
    const RunResult on = run_streaming(budget, /*instrument=*/true);
    const double overhead_pct =
        100.0 * (on.seconds - off.seconds) / std::max(off.seconds, 1e-9);
    session.metric("metrics_overhead_pct", overhead_pct, "%");
    session.metric("metrics_estimate_identical",
                   on.estimate == off.estimate ? 1.0 : 0.0);
    std::cout << "\ntelemetry overhead at B=" << format_number(budget) << ": "
              << format_number(overhead_pct) << "% ("
              << format_number(off.seconds) << " s off, "
              << format_number(on.seconds) << " s on), estimates "
              << (on.estimate == off.estimate ? "bit-identical"
                                              : "DIFFER (bug!)")
              << "\n";
  }
  return 0;
}

// Motif-estimand variance: NRMSE of the streaming motif sinks — triangle
// count, transitivity, global clustering, claw and induced-C4 counts —
// under FS vs SingleRW vs RWJ at equal budget B on G_AB. The paper's
// variance story (Section 6: FS spreads its walkers, independent walks
// get trapped by the single bridge) should carry over from the degree
// distribution to the motif estimands: the sparse half of G_AB is a tree
// (BA attachment 1), so a trapped SingleRW reports zero triangles.
//
// Every replication drives a fresh cursor through StreamEngine with the
// three motif sinks, so FS_BLOCK exercises the block-ingest fast path and
// CI's fingerprint gate proves it bit-identical to per-event ingestion.
#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace frontier;

constexpr std::size_t kNumEstimands = 5;
constexpr std::array<const char*, kNumEstimands> kEstimands = {
    "triangles", "transitivity", "clustering", "claws", "cycle4"};

/// One replication: stream the cursor to exhaustion through the three
/// motif sinks and read off the five estimands.
std::array<double, kNumEstimands> run_once(
    const Graph& g, std::unique_ptr<SamplerCursor> cursor, double volume) {
  auto tri = std::make_unique<TriangleSink>(g);
  auto clus = std::make_unique<ClusteringSink>(g);
  auto motifs = std::make_unique<MotifSink>(g);
  const TriangleSink* tri_p = tri.get();
  const ClusteringSink* clus_p = clus.get();
  const MotifSink* motifs_p = motifs.get();

  SinkSet sinks;
  sinks.push_back(std::move(tri));
  sinks.push_back(std::move(clus));
  sinks.push_back(std::move(motifs));
  StreamEngine engine(std::move(cursor), std::move(sinks));
  engine.run_to_completion();

  const MotifEstimate est = motifs_p->estimate(volume);
  return {tri_p->triangle_count(volume), tri_p->transitivity(),
          clus_p->global_clustering(), est.claw, est.cycle4};
}

/// Per-method fold state: one error accumulator per estimand, fed in run
/// order by ReplicationRunner so the NRMSE values are thread-invariant.
struct MotifErrorAccumulators {
  std::vector<ScalarErrorAccumulator> per_estimand;

  explicit MotifErrorAccumulators(
      const std::array<double, kNumEstimands>& truths) {
    per_estimand.reserve(truths.size());
    for (const double t : truths) per_estimand.emplace_back(t);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_motif_variance");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_gab(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 10.0);
  const std::size_t m = scaled_dimension(budget, 17152.0, 1000, 10);
  const std::size_t runs = cfg.runs(120);
  const double volume = static_cast<double>(g.volume());

  print_header("Motif-estimand NRMSE on GAB: FS vs SingleRW vs RWJ", g,
               "B = |V|/10 = " + format_number(budget) + ", m = " +
                   std::to_string(m) + ", runs = " + std::to_string(runs));

  // Ground truth from the exact enumerator (analysis/motifs.hpp). All
  // five truths are nonzero on G_AB — the dense half (BA attachment 5)
  // carries triangles, claws and induced C4s — so every NRMSE is finite.
  const MotifCounts exact = exact_motif_counts(g);
  const std::array<double, kNumEstimands> truths = {
      static_cast<double>(exact.triangle), exact_transitivity(g),
      exact_global_clustering(g), static_cast<double>(exact.claw),
      static_cast<double>(exact.cycle4)};
  {
    TextTable truth_table({"estimand", "exact"});
    for (std::size_t i = 0; i < kNumEstimands; ++i) {
      truth_table.add_row({kEstimands[i], format_number(truths[i])});
    }
    truth_table.print(std::cout);
    std::cout << '\n';
  }

  struct Method {
    const char* name;
    std::function<std::unique_ptr<SamplerCursor>(Rng)> make_cursor;
  };
  const std::uint64_t fs_steps = frontier_steps(budget, m, 1.0);
  const auto srw_steps = static_cast<std::uint64_t>(budget) - 1;
  const std::vector<Method> methods = {
      {"fs",
       [&](Rng rng) {
         return std::make_unique<FrontierCursor>(
             g, FrontierSampler::Config{.dimension = m, .steps = fs_steps},
             rng);
       }},
      {"srw",
       [&](Rng rng) {
         return std::make_unique<SingleRwCursor>(
             g, SingleRandomWalk::Config{.steps = srw_steps}, rng);
       }},
      {"rwj",
       [&](Rng rng) {
         return std::make_unique<RwjCursor>(
             g, RandomWalkWithJumps::Config{.budget = budget}, rng);
       }},
  };

  TextTable table({"method", "nmse:triangles", "nmse:transitivity",
                   "nmse:clustering", "nmse:claws", "nmse:cycle4"});
  std::vector<double> fingerprint_values;
  const ReplicationRunner runner(runs, cfg.seed, cfg.threads);
  for (const Method& method : methods) {
    const MotifErrorAccumulators acc = runner.map_reduce(
        MotifErrorAccumulators(truths),
        [&](std::size_t, Rng& rng) {
          return run_once(g, method.make_cursor(rng), volume);
        },
        [](MotifErrorAccumulators& dst,
           std::array<double, kNumEstimands>&& est) {
          for (std::size_t i = 0; i < kNumEstimands; ++i) {
            dst.per_estimand[i].add_run(est[i]);
          }
        });
    std::vector<std::string> row = {method.name};
    for (std::size_t i = 0; i < kNumEstimands; ++i) {
      const double nmse = acc.per_estimand[i].nmse();
      session.metric(std::string("nmse/") + kEstimands[i] + "/" + method.name,
                     nmse);
      fingerprint_values.push_back(nmse);
      row.push_back(format_number(nmse));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  session.metric("result_fingerprint", values_fingerprint(fingerprint_values),
                 "fnv52");

  std::cout << "\nexpected shape: FS lowest NRMSE on every estimand, "
               "SingleRW worst (~3-4x FS) — walks trapped in the "
               "triangle-free half report zero triangles\n";
  return 0;
}

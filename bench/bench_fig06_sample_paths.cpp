// Figure 6: four sample paths of θ̂₁(n) — the estimated fraction of
// vertices with in-degree 1 on the complete Flickr graph — as a function of
// the number of walk steps n, for FS, SingleRW and MultipleRW. FS and
// MultipleRW share the same uniformly sampled start vertices in each run.
// Paper shape: all FS paths converge quickly to θ₁; SingleRW paths settle
// at wrong values depending on the component they start in; MultipleRW
// overestimates persistently.
#include "bench_common.hpp"

namespace {

using namespace frontier;

/// Incremental eq.-7 estimator for a fixed vertex predicate.
class RunningDensity {
 public:
  RunningDensity(const Graph& g, std::function<bool(VertexId)> pred)
      : graph_(&g), pred_(std::move(pred)) {}

  void absorb(const Edge& e) {
    const double inv_deg = 1.0 / static_cast<double>(graph_->degree(e.v));
    s_ += inv_deg;
    if (pred_(e.v)) hits_ += inv_deg;
  }

  [[nodiscard]] double value() const { return s_ == 0.0 ? 0.0 : hits_ / s_; }

 private:
  const Graph* graph_;
  std::function<bool(VertexId)> pred_;
  double s_ = 0.0;
  double hits_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig06_sample_paths");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const auto pred = [&g](VertexId v) { return g.in_degree(v) == 1; };
  const double theta1 = exact_label_density(g, pred);
  const std::size_t m = scaled_dimension(
      static_cast<double>(g.num_vertices()) / 100.0, 17152.0, 1000, 10);
  const std::uint64_t max_steps = g.num_vertices() / 4;

  print_header("Figure 6: sample paths of theta_1(n), complete Flickr", g,
               "theta_1 = " + format_number(theta1) + ", m = " +
                   std::to_string(m) + ", 4 runs per method");

  // Checkpoints: log-spaced step counts.
  std::vector<std::uint32_t> checkpoints;
  for (std::uint64_t n = 64; n <= max_steps; n *= 2) {
    checkpoints.push_back(static_cast<std::uint32_t>(n));
  }

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;

  for (int run = 0; run < 4; ++run) {
    Rng rng(cfg.seed + static_cast<std::uint64_t>(run));
    const StartSampler starts(g, StartMode::kUniform);
    std::vector<VertexId> init(m);
    for (auto& v : init) v = starts.sample(rng);

    // --- FS from the shared starts.
    {
      Rng walk_rng = rng.split_stream(1);
      const FrontierSampler fs(g, {.dimension = m, .steps = max_steps});
      const SampleRecord rec = fs.run_from(init, walk_rng);
      RunningDensity est(g, pred);
      std::vector<double> path(checkpoints.back() + 1, 0.0);
      std::size_t next = 0;
      for (std::size_t i = 0; i < rec.edges.size() && next < checkpoints.size();
           ++i) {
        est.absorb(rec.edges[i]);
        if (i + 1 == checkpoints[next]) {
          path[checkpoints[next]] = est.value();
          ++next;
        }
      }
      names.push_back("FS#" + std::to_string(run));
      series.push_back(std::move(path));
    }

    // --- MultipleRW from the same starts, stepped round-robin.
    {
      Rng walk_rng = rng.split_stream(2);
      std::vector<VertexId> pos = init;
      RunningDensity est(g, pred);
      std::vector<double> path(checkpoints.back() + 1, 0.0);
      std::size_t next = 0;
      for (std::uint64_t n = 0; n < max_steps && next < checkpoints.size();
           ++n) {
        auto& p = pos[n % m];
        const VertexId v = step_uniform_neighbor(g, p, walk_rng);
        est.absorb(Edge{p, v});
        p = v;
        if (n + 1 == checkpoints[next]) {
          path[checkpoints[next]] = est.value();
          ++next;
        }
      }
      names.push_back("MRW#" + std::to_string(run));
      series.push_back(std::move(path));
    }

    // --- SingleRW from its own uniform start.
    {
      Rng walk_rng = rng.split_stream(3);
      VertexId p = init[0];
      RunningDensity est(g, pred);
      std::vector<double> path(checkpoints.back() + 1, 0.0);
      std::size_t next = 0;
      for (std::uint64_t n = 0; n < max_steps && next < checkpoints.size();
           ++n) {
        const VertexId v = step_uniform_neighbor(g, p, walk_rng);
        est.absorb(Edge{p, v});
        p = v;
        if (n + 1 == checkpoints[next]) {
          path[checkpoints[next]] = est.value();
          ++next;
        }
      }
      names.push_back("SRW#" + std::to_string(run));
      series.push_back(std::move(path));
    }
  }

  print_curves(std::cout, "steps n", checkpoints, names, series);
  session.metric("theta_1_target", theta1);
  session.add_curves(CurveResult{checkpoints, names, series, {}});
  std::cout << "\ntarget theta_1 = " << format_number(theta1)
            << "\nexpected shape: FS paths converge to the target; SRW/MRW "
               "paths settle off-target when trapped outside/inside the "
               "LCC\n";
  return 0;
}

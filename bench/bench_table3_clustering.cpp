// Table 3: global clustering coefficient estimates E[Ĉ] (NMSE) on Flickr
// and LiveJournal, budget 1% of |V| — FS vs SingleRW vs MultipleRW.
// Paper shape: all three close to the true C, FS with the smallest NMSE.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_table3_clustering");
  const ExperimentConfig& cfg = session.config();
  const std::size_t runs = cfg.runs(400);

  print_banner(std::cout,
               "Table 3: global clustering estimates, B = |V|/100");
  std::cout << "runs = " << runs << "\n\n";

  TextTable table({"Graph", "C", "FS E[C] (NMSE)", "SRW E[C] (NMSE)",
                   "MRW E[C] (NMSE)"});

  std::vector<Dataset> datasets;
  datasets.push_back(synthetic_flickr(cfg));
  datasets.push_back(synthetic_livejournal(cfg));

  for (const Dataset& ds : datasets) {
    const Graph& g = ds.graph;
    const double c_true = exact_global_clustering(g);
    const double budget = vertex_fraction_budget(g, 100.0);
    const std::size_t m = scaled_dimension(budget, 17152.0, 1000, 10);

    const FrontierSampler fs(
        g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
    const SingleRandomWalk srw(
        g, {.steps = static_cast<std::uint64_t>(budget) - 1});
    const MultipleRandomWalks mrw(
        g, {.num_walkers = m,
            .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});

    const auto eval = [&](const std::function<std::vector<Edge>(Rng&)>& run,
                          std::uint64_t salt) {
      return parallel_accumulate<ScalarErrorAccumulator>(
          runs, cfg.seed + salt,
          [&] { return ScalarErrorAccumulator(c_true); },
          [&](std::size_t, Rng& rng, ScalarErrorAccumulator& acc) {
            acc.add_run(estimate_global_clustering(g, run(rng)));
          },
          [](ScalarErrorAccumulator& a, const ScalarErrorAccumulator& b) {
            a.merge(b);
          },
          cfg.threads);
    };
    const auto fmt = [](const ScalarErrorAccumulator& acc) {
      return format_number(acc.mean_estimate(), 3) + " (" +
             format_number(acc.nmse(), 2) + ")";
    };
    const auto fs_acc = eval([&](Rng& rng) { return fs.run(rng).edges; }, 1);
    const auto srw_acc = eval([&](Rng& rng) { return srw.run(rng).edges; }, 2);
    const auto mrw_acc = eval([&](Rng& rng) { return mrw.run(rng).edges; }, 3);
    table.add_row({ds.name, format_number(c_true, 3), fmt(fs_acc),
                   fmt(srw_acc), fmt(mrw_acc)});
    session.metric("nmse/" + ds.name + "/FS", fs_acc.nmse());
    session.metric("nmse/" + ds.name + "/SRW", srw_acc.nmse());
    session.metric("nmse/" + ds.name + "/MRW", mrw_acc.nmse());
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: all means near C; FS with the smallest "
               "NMSE\n";
  return 0;
}

// Related-work baselines (Section 7): Frontier Sampling vs the
// Metropolis–Hastings RW (uniform-vertex sampler used by [16,17,32,4,34])
// and the random walk with jumps (PageRank-style Web sampler). The paper
// cites [15, 29] for "plain RW beats MH-RW"; this bench reproduces that
// comparison and adds RWJ under both cheap and expensive jump regimes.
// Metric: CNMSE of the in-degree CCDF on the complete Flickr surrogate.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_related_baselines");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t m = scaled_dimension(budget, 17152.0, 1000, 10);
  const std::size_t runs = cfg.runs(600);
  const auto theta = degree_distribution(g, DegreeKind::kIn);
  const auto truth = ccdf_from_pdf(theta);

  print_header("Related-work baselines: FS vs MH-RW vs RW-with-jumps", g,
               "B = |V|/100 = " + format_number(budget) + ", m = " +
                   std::to_string(m) + ", runs = " + std::to_string(runs));

  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const MetropolisHastingsWalk mh(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const RandomWalkWithJumps rwj_cheap(
      g, {.budget = budget, .jump_probability = 0.15});
  const RandomWalkWithJumps rwj_pricey(
      g, {.budget = budget,
          .jump_probability = 0.15,
          .cost = {.jump_cost = 1.0, .hit_ratio = 0.1}});

  const auto gm = [&](const std::function<std::vector<double>(Rng&)>& est,
                      std::uint64_t salt) {
    MseAccumulator acc = parallel_accumulate<MseAccumulator>(
        runs, cfg.seed + salt, [&] { return MseAccumulator(truth); },
        [&](std::size_t, Rng& rng, MseAccumulator& out) {
          out.add_run(ccdf_from_pdf(est(rng)));
        },
        [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
        cfg.threads);
    const auto curve = acc.normalized_rmse();
    std::vector<double> at_display;
    for (std::uint32_t d :
         log_spaced_degrees(static_cast<std::uint32_t>(truth.size() - 1))) {
      if (d < curve.size()) at_display.push_back(curve[d]);
    }
    return geometric_mean_positive(at_display);
  };

  TextTable table({"method", "geo-mean CNMSE", "notes"});
  const auto add_method =
      [&](const std::string& label,
          const std::function<std::vector<double>(Rng&)>& est,
          std::uint64_t salt, const char* notes) {
        const double err = gm(est, salt);
        table.add_row({label, format_number(err), notes});
        session.metric("geo_mean_error/" + label, err);
      };
  add_method(
      "FS(m=" + std::to_string(m) + ")",
      [&](Rng& rng) {
        return estimate_degree_distribution(g, fs.run(rng).edges,
                                            DegreeKind::kIn);
      },
      1, "uniform edge sampling, eq.7 reweighting");
  add_method(
      "MH-RW",
      [&](Rng& rng) {
        return estimate_degree_distribution_uniform(g, mh.run(rng).vertices,
                                                    DegreeKind::kIn);
      },
      2, "uniform vertex sampling, plain histogram");
  add_method(
      "RWJ(p=0.15, c=1)",
      [&](Rng& rng) {
        return estimate_degree_distribution(g, rwj_cheap.run(rng).edges,
                                            DegreeKind::kIn);
      },
      3, "jumps fix trapping but bias eq.7 slightly");
  add_method(
      "RWJ(p=0.15, 10% hit)",
      [&](Rng& rng) {
        return estimate_degree_distribution(g, rwj_pricey.run(rng).edges,
                                            DegreeKind::kIn);
      },
      4, "expensive jumps burn ~60% of the budget");
  table.print(std::cout);
  std::cout << "\nexpected shape: FS lowest; MH-RW trails the reweighted "
               "walk (as in the paper's cited experiments); RWJ degrades "
               "sharply when jumps are expensive\n";
  return 0;
}

// Figure 13: CNMSE of the in-degree CCDF on LiveJournal under sparse
// user-id spaces: random vertex sampling with a 10% hit ratio, random edge
// sampling with a 1% hit ratio, and FS (which pays the 10% hit ratio only
// for its m starting vertices). Paper shape: FS beats both — it is far
// more robust to low hit ratios.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig13_fs_vs_random_low_hit");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_livejournal(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t m = scaled_dimension(budget, 52844.0, 1000, 10);
  const std::size_t runs = cfg.runs(800);
  const double vertex_hit = 0.10;
  const double edge_hit = 0.01;

  print_header("Figure 13: CNMSE of in-degree CCDF under low hit ratios",
               g,
               "B = |V|/100 = " + format_number(budget) + ", m = " +
                   std::to_string(m) + ", RV hit = 10%, RE hit = 1%, runs = " +
                   std::to_string(runs));

  // FS pays ~1/hit queries per starting vertex; remaining budget walks.
  const CostModel fs_cost{.jump_cost = 1.0, .hit_ratio = vertex_hit};
  const double fs_steps =
      budget - static_cast<double>(m) * fs_cost.expected_jump_cost();
  const FrontierSampler fs(
      g, {.dimension = m,
          .steps = fs_steps <= 0.0
                       ? 0
                       : static_cast<std::uint64_t>(fs_steps)});
  const RandomVertexSampler rv(
      g, {.budget = budget, .cost = {.jump_cost = 1.0, .hit_ratio = vertex_hit}});
  const RandomEdgeSampler re(
      g, {.budget = budget, .edge_cost = 2.0, .hit_ratio = edge_hit});

  const auto theta = degree_distribution(g, DegreeKind::kIn);
  const auto truth = ccdf_from_pdf(theta);
  const auto run_curve =
      [&](const std::function<std::vector<double>(Rng&)>& estimate,
          std::uint64_t salt) {
        MseAccumulator acc = parallel_accumulate<MseAccumulator>(
            runs, cfg.seed + salt, [&] { return MseAccumulator(truth); },
            [&](std::size_t, Rng& rng, MseAccumulator& out) {
              out.add_run(ccdf_from_pdf(estimate(rng)));
            },
            [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
            cfg.threads);
        return acc.normalized_rmse();
      };

  const std::vector<std::string> names{"RandomEdge(1% hit)",
                                       "FS(10% hit starts)",
                                       "RandomVertex(10% hit)"};
  std::vector<std::vector<double>> curves;
  curves.push_back(run_curve(
      [&](Rng& rng) {
        return estimate_degree_distribution(g, re.run(rng).edges,
                                            DegreeKind::kIn);
      },
      1));
  curves.push_back(run_curve(
      [&](Rng& rng) {
        return estimate_degree_distribution(g, fs.run(rng).edges,
                                            DegreeKind::kIn);
      },
      2));
  curves.push_back(run_curve(
      [&](Rng& rng) {
        return estimate_degree_distribution_uniform(g, rv.run(rng).vertices,
                                                    DegreeKind::kIn);
      },
      3));

  const auto degrees =
      log_spaced_degrees(static_cast<std::uint32_t>(truth.size() - 1));
  print_curves(std::cout, "in-degree", degrees,
               std::vector<std::string>(names),
               std::vector<std::vector<double>>(curves));
  session.add_curves(CurveResult{degrees, names, curves, {}});
  std::cout << "\nexpected shape: FS below RandomEdge everywhere and below "
               "RandomVertex for all but the smallest in-degrees\n";
  return 0;
}

// Section 5.1/5.2 (Lemma 5.3, Theorem 5.4): how the steady-state number of
// walkers inside a subset V_A compares with m uniform draws —
// MultipleRW is off by alpha = d_A/d while K_fs converges to K_un as m
// grows. Regenerates the theory behind "FS can start from uniform samples".
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_lemma53_kfs_vs_kun");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_gab(cfg);
  const Graph& g = ds.graph;

  // V_A = the sparse half of G_AB (average degree 2).
  std::vector<VertexId> va;
  const std::size_t half = g.num_vertices() / 2;
  va.reserve(half);
  for (VertexId v = 0; v < half; ++v) va.push_back(v);
  const SubsetStats stats = subset_stats(g, va);

  print_header("Lemma 5.3 / Theorem 5.4: walker-count laws on GAB", g,
               "V_A = sparse half; p = " + format_number(stats.p, 3) +
                   ", d_A = " + format_number(stats.da, 3) + ", d_B = " +
                   format_number(stats.db, 3) + ", alpha = " +
                   format_number(alpha_ratio(stats), 3));

  TextTable table({"m", "TVD(K_fs, K_un)", "TVD(K_mw, K_un)",
                   "E[K_fs]/m", "E[K_mw]/m", "p"});
  for (std::size_t m : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const auto fs = kfs_pmf(m, stats);
    const auto un = binomial_pmf(m, stats.p);
    const auto mw = kmw_pmf(m, stats);
    double mean_fs = 0.0, mean_mw = 0.0;
    for (std::size_t k2 = 0; k2 <= m; ++k2) {
      mean_fs += static_cast<double>(k2) * fs[k2];
      mean_mw += static_cast<double>(k2) * mw[k2];
    }
    const double tvd_fs = total_variation(fs, un);
    const double tvd_mw = total_variation(mw, un);
    table.add_row({std::to_string(m), format_number(tvd_fs),
                   format_number(tvd_mw),
                   format_number(mean_fs / static_cast<double>(m), 4),
                   format_number(mean_mw / static_cast<double>(m), 4),
                   format_number(stats.p, 4)});
    session.metric("tvd_kfs_kun/m=" + std::to_string(m), tvd_fs);
    session.metric("tvd_kmw_kun/m=" + std::to_string(m), tvd_mw);
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: TVD(K_fs, K_un) -> 0 as m grows "
               "(Theorem 5.4) while TVD(K_mw, K_un) stays large; "
               "E[K_mw]/m = p*alpha, E[K_fs]/m -> p\n";
  return 0;
}

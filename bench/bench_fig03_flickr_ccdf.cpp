// Figure 3: log-log plot of the Flickr in-degree CCDF (ground truth of the
// estimation experiments). Paper shape: straight-line power-law decay over
// several decades.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig03_flickr_ccdf");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;
  print_header("Figure 3: Flickr in-degree CCDF (exact)", g, "");

  const auto gamma = ccdf_from_pdf(degree_distribution(g, DegreeKind::kIn));
  TextTable table({"in-degree", "CCDF"});
  std::size_t points = 0;
  for (std::uint32_t d :
       log_spaced_degrees(static_cast<std::uint32_t>(gamma.size() - 1))) {
    if (gamma[d] <= 0.0) continue;
    table.add_row({std::to_string(d), format_number(gamma[d], 4)});
    ++points;
  }
  table.print(std::cout);
  session.metric("ccdf_points", static_cast<double>(points));
  session.metric("max_in_degree", static_cast<double>(gamma.size() - 1));
  std::cout << "\nexpected shape: power-law decay spanning ~4 decades\n";
  return 0;
}

// Crawl-health diagnostics: distinct-vertex coverage as a function of
// spent budget. Unlike NMSE this is observable *without* ground truth —
// a flattening coverage curve is the practical symptom of a trapped
// walker. FS's curve keeps climbing because its walkers sit in every
// component/community from the start.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_coverage");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 10.0);
  const std::size_t m = scaled_dimension(budget, 171520.0, 1000, 50);
  const std::size_t runs = cfg.runs(50);

  print_header("Coverage: distinct vertices visited vs budget", g,
               "B = |V|/10 = " + format_number(budget) + ", m = " +
                   std::to_string(m) + ", mean over " +
                   std::to_string(runs) + " runs");

  std::vector<std::uint64_t> checkpoints;
  for (std::uint64_t n = 64; n <= static_cast<std::uint64_t>(budget);
       n *= 2) {
    checkpoints.push_back(n);
  }

  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});

  struct Acc {
    std::vector<double> sums;
  };
  const auto mean_curve =
      [&](const std::function<std::vector<Edge>(Rng&)>& run,
          std::uint64_t salt) {
        Acc acc = parallel_accumulate<Acc>(
            runs, cfg.seed + salt,
            [&] { return Acc{std::vector<double>(checkpoints.size(), 0.0)}; },
            [&](std::size_t, Rng& rng, Acc& out) {
              const auto curve = coverage_curve(g, run(rng), checkpoints);
              for (std::size_t i = 0; i < checkpoints.size(); ++i) {
                out.sums[i] +=
                    static_cast<double>(curve.distinct_vertices[i]);
              }
            },
            [](Acc& a, const Acc& b) {
              for (std::size_t i = 0; i < a.sums.size(); ++i) {
                a.sums[i] += b.sums[i];
              }
            },
            cfg.threads);
        std::vector<double> mean(checkpoints.size());
        for (std::size_t i = 0; i < mean.size(); ++i) {
          mean[i] = acc.sums[i] / static_cast<double>(runs);
        }
        return mean;
      };

  const auto fs_curve =
      mean_curve([&](Rng& rng) { return fs.run(rng).edges; }, 1);
  const auto srw_curve =
      mean_curve([&](Rng& rng) { return srw.run(rng).edges; }, 2);
  const auto mrw_curve =
      mean_curve([&](Rng& rng) { return mrw.run(rng).edges; }, 3);

  TextTable table({"samples", "FS distinct", "SRW distinct", "MRW distinct"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.add_row({std::to_string(checkpoints[i]),
                   format_number(fs_curve[i], 5),
                   format_number(srw_curve[i], 5),
                   format_number(mrw_curve[i], 5)});
  }
  table.print(std::cout);
  session.metric("final_coverage/FS", fs_curve.back());
  session.metric("final_coverage/SRW", srw_curve.back());
  session.metric("final_coverage/MRW", mrw_curve.back());
  std::cout << "\nexpected shape: FS visits the most distinct vertices at "
               "every budget level; SRW's curve flattens first (revisits "
               "inside its neighborhood)\n";
  return 0;
}

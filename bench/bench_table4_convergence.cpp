// Table 4 (Appendix B): relative worst-case difference between steady-state
// and transient edge-sampling probabilities after the budget is spent, on
// the LCCs of Internet RLT, YouTube and Hep-Th. FS(K=10) vs SRW vs
// MRW(K=10); budgets 100 / 20 / 20. Paper shape: the independent walkers'
// deviations are 5-42x larger than Frontier sampling's.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_table4_convergence");
  const ExperimentConfig& cfg = session.config();
  const std::size_t k = 10;
  const std::size_t mc_runs = cfg.runs(400000);

  print_banner(std::cout,
               "Table 4: worst-case transient edge-sampling deviation");
  std::cout << "K = 10 walkers; SRW/MRW computed exactly on the dense "
               "chain, FS by Rao-Blackwellized Monte Carlo (" << mc_runs
            << " runs)\n\n";

  // Budgets: the paper uses B = 100 / 20 / 20 on graphs 10-80x larger than
  // the surrogates; B = 20 keeps SingleRW visibly transient here. The
  // GAB-ER row (loosely connected communities) shows the paper's full
  // ordering — FS << SRW < MRW — even at a larger budget.
  struct Row {
    Dataset ds;
    double budget;
  };
  std::vector<Row> rows;
  rows.push_back({synthetic_internet_rlt(cfg), 20.0});
  rows.push_back({synthetic_youtube(cfg), 20.0});
  rows.push_back({synthetic_hepth(cfg), 20.0});
  rows.push_back({synthetic_gab_er(cfg), 100.0});

  TextTable table({"Graph", "B", "FS(K=10)", "MRW(K=10)", "SRW"});
  for (const Row& row : rows) {
    const Graph lcc = largest_connected_component(row.ds.graph).graph;
    Rng mc(cfg.seed ^ 0x7ab1e4ULL);
    const double fs = fs_edge_deficit_mc(
        lcc, k, static_cast<std::uint64_t>(row.budget) - k, mc_runs, mc);
    const double srw = srw_edge_deficit_exact(
        lcc, static_cast<std::uint64_t>(row.budget) - 1);
    const double mrw = mrw_edge_deficit_exact(lcc, k, row.budget);
    table.add_row({row.ds.name, format_number(row.budget, 3),
                   format_percent(fs), format_percent(mrw),
                   format_percent(srw)});
    session.metric("deficit/" + row.ds.name + "/FS", fs);
    session.metric("deficit/" + row.ds.name + "/MRW", mrw);
    session.metric("deficit/" + row.ds.name + "/SRW", srw);
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: FS far below MRW on every row, and far "
               "below SRW wherever SRW is still transient (Internet RLT, "
               "GAB-ER; paper: 17-43% vs 156-1510%). On fast-mixing "
               "surrogates SRW is already stationary at B=20 — the FS "
               "number there is a Monte-Carlo noise floor.\n";
  return 0;
}

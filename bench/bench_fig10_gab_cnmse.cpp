// Figure 10: CNMSE of the degree-distribution estimates on G_AB with
// budget B = |V|/100 — FS vs SingleRW vs MultipleRW (m = 100, shared
// uniform starts). Paper shape: FS consistently lowest; the loosely
// connected bridge traps the independent walkers.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig10_gab_cnmse");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_gab(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 10.0);
  const std::size_t m = 100;
  const std::size_t runs = cfg.runs(600);

  print_header("Figure 10: CNMSE of degree CCDF, GAB graph", g,
               "B = |V|/10 = " + format_number(budget) + ", m = " +
                   std::to_string(m) + ", runs = " + std::to_string(runs) +
                   " (budget raised from the paper's |V|/100 so each "
                   "MultipleRW walker takes >= 1 step at bench scale)");

  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});

  const std::vector<EdgeMethod> methods{
      edge_method("FS(m=100)", fs),
      edge_method("SingleRW", srw),
      edge_method("MultipleRW(m=100)", mrw),
  };
  const CurveResult result = degree_error_curves(
      g, methods, DegreeKind::kSymmetric, true, runs, cfg);
  print_curve_result("degree", result);
  session.add_curves(result);
  std::cout << "\nexpected shape: FS lowest across the whole degree range\n";
  return 0;
}

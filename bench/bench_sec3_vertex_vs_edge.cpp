// Section 3 (eqs. 3-4): analytic NMSE of random vertex vs random edge
// sampling of the out-degree distribution, with a Monte-Carlo cross-check.
// Paper claim: edge sampling is more accurate above the average degree,
// vertex sampling below it — so edge sampling wins on the tail.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_sec3_vertex_vs_edge");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;
  const auto theta = degree_distribution(g, DegreeKind::kOut);
  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t runs = cfg.runs(2000);

  // Average *out*-degree (= |E_d| / |V|), the crossover point of eqs. 3-4.
  const double d = static_cast<double>(g.num_directed_edges()) /
                   static_cast<double>(g.num_vertices());

  print_header("Section 3: analytic NMSE, random vertex vs random edge",
               g,
               "B = |V|/100 = " + format_number(budget) +
                   ", avg out-degree = " + format_number(d) +
                   ", runs(MC) = " + std::to_string(runs));

  // Monte-Carlo: B vertex samples vs B edge samples (unit cost each, as in
  // the Section 3 model), estimating theta directly.
  const RandomVertexSampler rv(g, {.budget = budget});
  const RandomEdgeSampler re(g, {.budget = budget, .edge_cost = 1.0});
  MseAccumulator rv_acc = parallel_accumulate<MseAccumulator>(
      runs, cfg.seed, [&] { return MseAccumulator(theta); },
      [&](std::size_t, Rng& rng, MseAccumulator& out) {
        out.add_run(estimate_degree_distribution_uniform(
            g, rv.run(rng).vertices, DegreeKind::kOut));
      },
      [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
      cfg.threads);
  MseAccumulator re_acc = parallel_accumulate<MseAccumulator>(
      runs, cfg.seed + 1, [&] { return MseAccumulator(theta); },
      [&](std::size_t, Rng& rng, MseAccumulator& out) {
        out.add_run(estimate_degree_distribution(g, re.run(rng).edges,
                                                 DegreeKind::kOut));
      },
      [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
      cfg.threads);
  const auto rv_mc = rv_acc.normalized_rmse();
  const auto re_mc = re_acc.normalized_rmse();
  {
    std::vector<double> rv_display;
    std::vector<double> re_display;
    for (std::uint32_t deg :
         log_spaced_degrees(static_cast<std::uint32_t>(theta.size() - 1))) {
      if (deg >= theta.size() || theta[deg] <= 0.0) continue;
      rv_display.push_back(rv_mc[deg]);
      re_display.push_back(re_mc[deg]);
    }
    session.metric("geo_mean_nmse/RandomVertex",
                   geometric_mean_positive(rv_display));
    session.metric("geo_mean_nmse/RandomEdge",
                   geometric_mean_positive(re_display));
    session.metric("avg_out_degree_crossover", d);
  }

  TextTable table({"out-deg", "theta", "RV analytic (eq.4)", "RV Monte-Carlo",
                   "RE analytic (eq.3)", "RE Monte-Carlo", "winner"});
  for (std::uint32_t deg :
       log_spaced_degrees(static_cast<std::uint32_t>(theta.size() - 1))) {
    if (deg >= theta.size() || theta[deg] <= 0.0) continue;
    const double rv_an = analytic_nmse_vertex_sampling(theta[deg], budget);
    const double re_an =
        analytic_nmse_edge_sampling(theta[deg], deg, d, budget);
    table.add_row({std::to_string(deg), format_number(theta[deg], 3),
                   format_number(rv_an), format_number(rv_mc[deg]),
                   format_number(re_an), format_number(re_mc[deg]),
                   re_an < rv_an ? "edge" : "vertex"});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: winner flips from 'vertex' to 'edge' at "
               "the average out-degree ("
            << format_number(d) << ")\n";
  return 0;
}

// Ablation: the random-jump cost c (Section 4.4). FS pays m*c once; under
// expensive jumps (sparse user-id spaces, rate-limited APIs) the effective
// dimension a budget can afford shrinks. This sweep shows how FS degrades
// gracefully while MultipleRW collapses (its per-walker budget
// floor(B/m - c) hits zero).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_ablation_jump_cost");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const double budget = vertex_fraction_budget(g, 100.0);
  const std::size_t m = 50;
  const std::size_t runs = cfg.runs(500);
  const auto theta = degree_distribution(g, DegreeKind::kIn);
  const auto truth = ccdf_from_pdf(theta);

  print_header("Ablation: jump cost c, FS vs MultipleRW (m = 50)", g,
               "B = |V|/100 = " + format_number(budget) +
                   ", runs = " + std::to_string(runs));

  const auto gm_error = [&](const std::function<std::vector<Edge>(Rng&)>& run,
                            std::uint64_t salt) {
    MseAccumulator acc = parallel_accumulate<MseAccumulator>(
        runs, cfg.seed + salt, [&] { return MseAccumulator(truth); },
        [&](std::size_t, Rng& rng, MseAccumulator& out) {
          out.add_run(ccdf_from_pdf(
              estimate_degree_distribution(g, run(rng), DegreeKind::kIn)));
        },
        [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
        cfg.threads);
    const auto curve = acc.normalized_rmse();
    std::vector<double> at_display;
    for (std::uint32_t d :
         log_spaced_degrees(static_cast<std::uint32_t>(truth.size() - 1))) {
      if (d < curve.size()) at_display.push_back(curve[d]);
    }
    return geometric_mean_positive(at_display);
  };

  TextTable table({"c", "FS steps", "FS CNMSE", "MRW steps/walker",
                   "MRW CNMSE"});
  for (double c : {1.0, 2.0, 4.0, 6.0}) {
    const std::uint64_t fs_steps = frontier_steps(budget, m, c);
    const std::uint64_t mrw_steps = multiple_rw_steps_per_walker(budget, m, c);
    std::string fs_err = "-";
    std::string mrw_err = "-";
    if (fs_steps > 0) {
      const FrontierSampler fs(g, {.dimension = m, .steps = fs_steps,
                                   .jump_cost = c});
      const double err =
          gm_error([&](Rng& rng) { return fs.run(rng).edges; },
                   static_cast<std::uint64_t>(c * 10));
      fs_err = format_number(err);
      session.metric("cnmse/FS/c=" + format_number(c, 2), err);
    }
    if (mrw_steps > 0) {
      const MultipleRandomWalks mrw(
          g, {.num_walkers = m, .steps_per_walker = mrw_steps,
              .jump_cost = c});
      const double err =
          gm_error([&](Rng& rng) { return mrw.run(rng).edges; },
                   static_cast<std::uint64_t>(c * 10) + 1);
      mrw_err = format_number(err);
      session.metric("cnmse/MRW/c=" + format_number(c, 2), err);
    }
    table.add_row({format_number(c, 2), std::to_string(fs_steps), fs_err,
                   std::to_string(mrw_steps), mrw_err});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: FS error grows slowly with c (loses m*c "
               "steps); MultipleRW error grows faster (each walker loses c "
               "steps out of B/m)\n";
  return 0;
}

// Table 2: bias and NMSE of assortative-mixing estimates — FS vs
// MultipleRW vs SingleRW across all datasets, budget |V|/100, 100 runs.
// Paper shape: FS consistently most accurate; SingleRW catastrophically
// biased on G_AB (it sees only one component, where r = 0); Internet RLT
// shows little FS/MultipleRW difference.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_table2_assortativity");
  const ExperimentConfig& cfg = session.config();
  // The paper uses 100 runs; with ~40x smaller sample sizes the bias
  // estimate itself is noisy, so the default here is higher.
  const std::size_t runs = cfg.runs(400);

  std::vector<Dataset> datasets = table1_datasets(cfg);
  datasets.push_back(synthetic_gab_er(cfg));

  print_banner(std::cout,
               "Table 2: assortativity estimates (bias, |NMSE|), B = |V|/100");
  std::cout << "runs = " << runs
            << "; GAB uses ER halves (see DESIGN.md: BA halves have r ~ 0 "
               "at bench scale)\n\n";

  TextTable table({"Graph", "r", "FS bias", "FS NMSE", "MRW bias", "MRW NMSE",
                   "SRW bias", "SRW NMSE"});

  for (const Dataset& ds : datasets) {
    const Graph& g = ds.graph;
    const double r_true = exact_assortativity(g);
    const double budget = vertex_fraction_budget(g, 100.0);
    // Keep steps-per-walker comparable to the paper (B=|V|/100 of a ~40x
    // larger graph with m = 1000).
    const std::size_t m = scaled_dimension(budget, 17152.0, 1000, 10);

    const FrontierSampler fs(
        g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
    const MultipleRandomWalks mrw(
        g, {.num_walkers = m,
            .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});
    const SingleRandomWalk srw(
        g, {.steps = static_cast<std::uint64_t>(budget) - 1});

    const auto eval = [&](const std::function<std::vector<Edge>(Rng&)>& run,
                          std::uint64_t salt) {
      return parallel_accumulate<ScalarErrorAccumulator>(
          runs, cfg.seed + salt,
          [&] { return ScalarErrorAccumulator(r_true); },
          [&](std::size_t, Rng& rng, ScalarErrorAccumulator& acc) {
            acc.add_run(estimate_assortativity(g, run(rng)));
          },
          [](ScalarErrorAccumulator& a, const ScalarErrorAccumulator& b) {
            a.merge(b);
          },
          cfg.threads);
    };
    const auto fs_acc =
        eval([&](Rng& rng) { return fs.run(rng).edges; }, 11);
    const auto mrw_acc =
        eval([&](Rng& rng) { return mrw.run(rng).edges; }, 22);
    const auto srw_acc =
        eval([&](Rng& rng) { return srw.run(rng).edges; }, 33);

    table.add_row({ds.name, format_number(r_true, 3),
                   format_percent(fs_acc.relative_bias()),
                   format_number(fs_acc.nmse(), 3),
                   format_percent(mrw_acc.relative_bias()),
                   format_number(mrw_acc.nmse(), 3),
                   format_percent(srw_acc.relative_bias()),
                   format_number(srw_acc.nmse(), 3)});
    session.metric("bias/" + ds.name + "/FS", fs_acc.relative_bias());
    session.metric("bias/" + ds.name + "/MRW", mrw_acc.relative_bias());
    session.metric("bias/" + ds.name + "/SRW", srw_acc.relative_bias());
    session.metric("nmse/" + ds.name + "/FS", fs_acc.nmse());
    session.metric("nmse/" + ds.name + "/MRW", mrw_acc.nmse());
    session.metric("nmse/" + ds.name + "/SRW", srw_acc.nmse());
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: FS has the smallest |bias| on every row "
               "(the paper's headline: Flickr FS 8% vs MRW 752% vs SRW "
               "-619%); SRW bias ~100% on GAB. NMSE values are huge where "
               "the true r is near 0 (also true in the paper) and FS/MRW "
               "NMSE can tie at bench-scale budgets.\n";
  return 0;
}

#include "bench_common.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <limits>
#include <string_view>
#include <utility>

namespace frontier::bench {
namespace {

/// 52-bit hash over every curve value, degree, and method name — small
/// enough to live losslessly in a double-valued metric. Uses the same
/// FNV-1a core as BenchReport::config_fingerprint.
double curve_fingerprint(const CurveResult& result) {
  std::uint64_t hash = kFnv1aOffsetBasis;
  for (const std::uint32_t d : result.degrees) hash = fnv1a_u64(hash, d);
  for (const std::string& name : result.names) {
    hash = fnv1a_bytes(hash, name.data(), name.size());
  }
  for (const auto& curve : result.curves) {
    for (const double v : curve) {
      hash = fnv1a_u64(hash, std::bit_cast<std::uint64_t>(v));
    }
  }
  for (const double v : result.mean_error) {
    hash = fnv1a_u64(hash, std::bit_cast<std::uint64_t>(v));
  }
  return static_cast<double>(hash & ((std::uint64_t{1} << 52) - 1));
}

}  // namespace

double values_fingerprint(std::span<const double> values) {
  std::uint64_t hash = kFnv1aOffsetBasis;
  for (const double v : values) {
    hash = fnv1a_u64(hash, std::bit_cast<std::uint64_t>(v));
  }
  return static_cast<double>(hash & ((std::uint64_t{1} << 52) - 1));
}

BenchSession::BenchSession(int argc, char** argv, std::string name)
    : start_(std::chrono::steady_clock::now()) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "bad argument: --json requires a file path\n";
        std::exit(2);
      }
      json_path_ = argv[i + 1];
      ++i;
    }
  }
  try {
    config_ = ExperimentConfig::from_env();
    // FS_BLOCK is read lazily at the first block construction, deep in
    // the run; force the parse here so a malformed value fails the
    // session up front like every other FS_* knob.
    (void)default_block_capacity();
  } catch (const std::exception& e) {
    std::cerr << "bad environment: " << e.what() << '\n';
    std::exit(2);
  }
  report_ = BenchReport::make(std::move(name), config_);
}

BenchSession::~BenchSession() {
  if (json_path_.empty()) return;
  report_.add_metric("threads_resolved",
                     static_cast<double>(resolve_threads(config_.threads)));
  // Process-level resource columns (obs/resource.hpp): peak RSS is the
  // run's high-water mark, the fault counts expose mmap-vs-rebuild load
  // behavior. Recorded in every report so regressions show up in CI's
  // perf-smoke artifacts without rerunning anything.
  const ResourceUsage usage = process_usage();
  report_.add_metric("peak_rss_bytes",
                     static_cast<double>(usage.peak_rss_bytes), "bytes");
  report_.add_metric("minor_page_faults",
                     static_cast<double>(usage.minor_page_faults));
  report_.add_metric("major_page_faults",
                     static_cast<double>(usage.major_page_faults));
  report_.wall_time_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  try {
    report_.write_file(json_path_);
    std::cout << "wrote bench report: " << json_path_ << '\n';
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    // Normal return would hide the lost report from CI; die loudly instead.
    std::_Exit(3);
  }
}

void BenchSession::metric(std::string name, double value, std::string unit) {
  report_.add_metric(std::move(name), value, std::move(unit));
}

void BenchSession::add_curves(const CurveResult& result) {
  const std::size_t summarized =
      std::min(result.names.size(), result.mean_error.size());
  for (std::size_t i = 0; i < summarized; ++i) {
    metric("geo_mean_error/" + result.names[i], result.mean_error[i]);
  }
  metric("result_fingerprint", curve_fingerprint(result), "fnv52");
}

CurveResult degree_error_curves(const Graph& g,
                                const std::vector<EdgeMethod>& methods,
                                DegreeKind kind, bool use_ccdf,
                                std::size_t runs,
                                const ExperimentConfig& cfg) {
  const auto theta = degree_distribution(g, kind);
  const auto truth = use_ccdf ? ccdf_from_pdf(theta) : theta;

  CurveResult result;
  result.degrees = log_spaced_degrees(
      static_cast<std::uint32_t>(truth.size() - 1));

  const ReplicationRunner runner(runs, cfg.seed, cfg.threads);
  for (const EdgeMethod& method : methods) {
    // Each run returns its estimate vector; add_run folds them into the
    // accumulator in run order, so the curves (roundoff included) do not
    // depend on how the runs were scheduled across workers.
    MseAccumulator acc = runner.map_reduce(
        MseAccumulator(truth),
        [&](std::size_t, Rng& rng, SampleArena& arena) {
          const auto edges = method.run(rng, arena);
          const auto est = estimate_degree_distribution(g, edges, kind);
          return use_ccdf ? ccdf_from_pdf(est) : est;
        },
        [](MseAccumulator& dst, std::vector<double>&& est) {
          dst.add_run(est);
        });
    result.names.push_back(method.name);
    result.curves.push_back(acc.normalized_rmse());
    // Summarize only over the log-spaced display degrees so a long flat
    // tail does not dominate the mean.
    std::vector<double> at_display;
    for (std::uint32_t d : result.degrees) {
      if (d < result.curves.back().size()) {
        at_display.push_back(result.curves.back()[d]);
      }
    }
    result.mean_error.push_back(geometric_mean_positive(at_display));
  }
  return result;
}

void print_curve_result(const std::string& x_name, const CurveResult& result) {
  print_curves(std::cout, x_name, result.degrees, result.names,
               result.curves);
  std::cout << "\ngeometric-mean error over displayed degrees:\n";
  for (std::size_t i = 0; i < result.names.size(); ++i) {
    std::cout << "  " << result.names[i] << ": "
              << format_number(result.mean_error[i]) << '\n';
  }
}

void print_header(const std::string& title, const Graph& g,
                  const std::string& params) {
  print_banner(std::cout, title);
  std::cout << "graph: " << g.summary() << '\n';
  if (!params.empty()) std::cout << "params: " << params << '\n';
  std::cout << '\n';
}

double vertex_fraction_budget(const Graph& g, double divisor) {
  return static_cast<double>(g.num_vertices()) / divisor;
}

std::size_t scaled_dimension(double budget, double paper_budget,
                             std::size_t paper_m, std::size_t floor_m) {
  const double scaled = static_cast<double>(paper_m) * budget / paper_budget;
  return std::max(floor_m, static_cast<std::size_t>(std::llround(scaled)));
}

int checked_env_int(const char* name, int fallback) {
  try {
    const std::uint64_t value =
        env_u64(name, static_cast<std::uint64_t>(fallback));
    if (value > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
      throw std::invalid_argument(std::string(name) + "=" +
                                  std::to_string(value) +
                                  ": value does not fit in int");
    }
    return static_cast<int>(value);
  } catch (const std::exception& e) {
    std::cerr << "bad environment: " << e.what() << '\n';
    std::exit(2);
  }
}

}  // namespace frontier::bench

#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

namespace frontier::bench {

CurveResult degree_error_curves(const Graph& g,
                                const std::vector<EdgeMethod>& methods,
                                DegreeKind kind, bool use_ccdf,
                                std::size_t runs,
                                const ExperimentConfig& cfg) {
  const auto theta = degree_distribution(g, kind);
  const auto truth = use_ccdf ? ccdf_from_pdf(theta) : theta;

  CurveResult result;
  result.degrees = log_spaced_degrees(
      static_cast<std::uint32_t>(truth.size() - 1));

  for (const EdgeMethod& method : methods) {
    MseAccumulator acc = parallel_accumulate<MseAccumulator>(
        runs, cfg.seed,
        [&] { return MseAccumulator(truth); },
        [&](std::size_t, Rng& rng, MseAccumulator& out) {
          const auto edges = method.run(rng);
          const auto est = estimate_degree_distribution(g, edges, kind);
          out.add_run(use_ccdf ? ccdf_from_pdf(est) : est);
        },
        [](MseAccumulator& dst, const MseAccumulator& src) {
          dst.merge(src);
        },
        cfg.threads);
    result.names.push_back(method.name);
    result.curves.push_back(acc.normalized_rmse());
    // Summarize only over the log-spaced display degrees so a long flat
    // tail does not dominate the mean.
    std::vector<double> at_display;
    for (std::uint32_t d : result.degrees) {
      if (d < result.curves.back().size()) {
        at_display.push_back(result.curves.back()[d]);
      }
    }
    result.mean_error.push_back(geometric_mean_positive(at_display));
  }
  return result;
}

void print_curve_result(const std::string& x_name, const CurveResult& result) {
  print_curves(std::cout, x_name, result.degrees, result.names,
               result.curves);
  std::cout << "\ngeometric-mean error over displayed degrees:\n";
  for (std::size_t i = 0; i < result.names.size(); ++i) {
    std::cout << "  " << result.names[i] << ": "
              << format_number(result.mean_error[i]) << '\n';
  }
}

void print_header(const std::string& title, const Graph& g,
                  const std::string& params) {
  print_banner(std::cout, title);
  std::cout << "graph: " << g.summary() << '\n';
  if (!params.empty()) std::cout << "params: " << params << '\n';
  std::cout << '\n';
}

double vertex_fraction_budget(const Graph& g, double divisor) {
  return static_cast<double>(g.num_vertices()) / divisor;
}

std::size_t scaled_dimension(double budget, double paper_budget,
                             std::size_t paper_m, std::size_t floor_m) {
  const double scaled = static_cast<double>(paper_m) * budget / paper_budget;
  return std::max(floor_m, static_cast<std::size_t>(std::llround(scaled)));
}

}  // namespace frontier::bench

// Figure 14: NMSE of the density estimates of the 200 most popular special-
// interest groups in Flickr, ordered by decreasing popularity — FS vs
// SingleRW vs MultipleRW (m = 100). Paper shape: FS clearly lowest across
// the whole popularity range.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig14_group_density");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_flickr(cfg);
  const Graph& g = ds.graph;

  const std::size_t top =
      std::min<std::size_t>(200, ds.num_groups);
  const double budget = vertex_fraction_budget(g, 10.0);
  const std::size_t m = 100;
  const std::size_t runs = cfg.runs(600);

  print_header(
      "Figure 14: NMSE of the top-" + std::to_string(top) +
          " group densities, Flickr",
      g,
      "B = |V|/10 = " + format_number(budget) + ", m = 100, runs = " +
          std::to_string(runs) +
          " (budget raised from the paper's |V|/100 so each MultipleRW "
          "walker takes >= 1 step at bench scale)");

  // Exact group densities; groups are already ordered by popularity rank.
  std::vector<double> truth(top, 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t grp : ds.groups(v)) {
      if (grp < top) truth[grp] += 1.0;
    }
  }
  for (double& t : truth) t /= static_cast<double>(g.num_vertices());

  const auto groups_of = [&ds](VertexId v) { return ds.groups(v); };
  const FrontierSampler fs(
      g, {.dimension = m, .steps = frontier_steps(budget, m, 1.0)});
  const SingleRandomWalk srw(
      g, {.steps = static_cast<std::uint64_t>(budget) - 1});
  const MultipleRandomWalks mrw(
      g, {.num_walkers = m,
          .steps_per_walker = multiple_rw_steps_per_walker(budget, m, 1.0)});

  const auto run_curve =
      [&](const std::function<std::vector<Edge>(Rng&)>& sample,
          std::uint64_t salt) {
        MseAccumulator acc = parallel_accumulate<MseAccumulator>(
            runs, cfg.seed + salt, [&] { return MseAccumulator(truth); },
            [&](std::size_t, Rng& rng, MseAccumulator& out) {
              out.add_run(
                  estimate_group_densities(g, sample(rng), groups_of, top));
            },
            [](MseAccumulator& a, const MseAccumulator& b) { a.merge(b); },
            cfg.threads);
        return acc.normalized_rmse();
      };

  const std::vector<std::string> names{"FS(m=100)", "SingleRW",
                                       "MultipleRW(m=100)"};
  std::vector<std::vector<double>> curves;
  curves.push_back(run_curve([&](Rng& rng) { return fs.run(rng).edges; }, 1));
  curves.push_back(run_curve([&](Rng& rng) { return srw.run(rng).edges; }, 2));
  curves.push_back(run_curve([&](Rng& rng) { return mrw.run(rng).edges; }, 3));

  // Group index axis (1-based rank).
  std::vector<std::uint32_t> ranks;
  for (std::uint32_t r = 1; r < top; r += (r < 10 ? 1 : 10)) ranks.push_back(r);
  print_curves(std::cout, "group rank", ranks,
               std::vector<std::string>(names),
               std::vector<std::vector<double>>(curves));

  std::cout << "\nmean NMSE over all " << top << " groups:\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    const double mean_nmse = mean_positive(curves[i]);
    std::cout << "  " << names[i] << ": " << format_number(mean_nmse)
              << '\n';
    session.metric("mean_nmse/" + names[i], mean_nmse);
  }
  session.add_curves(CurveResult{ranks, names, curves, {}});
  std::cout << "\nexpected shape: FS clearly below SingleRW and MultipleRW\n";
  return 0;
}

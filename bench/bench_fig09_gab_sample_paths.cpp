// Figure 9: four sample paths of θ̂₁₀(n) on the G_AB graph (two BA graphs,
// average degrees 2 and 10, joined by a single edge), m = 100. FS and
// MultipleRW share starting vertices. Paper shape: FS converges quickly to
// θ₁₀; SingleRW over/underestimates depending on its component; most
// MultipleRW paths converge to the same wrong value.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace frontier;
  using namespace frontier::bench;
  BenchSession session(argc, argv, "bench_fig09_gab_sample_paths");
  const ExperimentConfig& cfg = session.config();
  const Dataset ds = synthetic_gab(cfg);
  const Graph& g = ds.graph;

  const auto pred = [&g](VertexId v) { return g.degree(v) == 10; };
  const double theta10 = exact_label_density(g, pred);
  const std::size_t m = 100;
  const std::uint64_t max_steps = g.num_vertices();

  print_header("Figure 9: sample paths of theta_10(n), GAB graph", g,
               "theta_10 = " + format_number(theta10) +
                   ", m = 100, 4 runs per method");

  std::vector<std::uint32_t> checkpoints;
  for (std::uint64_t n = 128; n <= max_steps; n *= 2) {
    checkpoints.push_back(static_cast<std::uint32_t>(n));
  }

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;

  const auto record_path =
      [&](const std::string& name,
          const std::function<Edge(Rng&)>& stepper, Rng& rng) {
        double s = 0.0;
        double hits = 0.0;
        std::vector<double> path(checkpoints.back() + 1, 0.0);
        std::size_t next = 0;
        for (std::uint64_t n = 0;
             n < max_steps && next < checkpoints.size(); ++n) {
          const Edge e = stepper(rng);
          const double inv = 1.0 / static_cast<double>(g.degree(e.v));
          s += inv;
          if (pred(e.v)) hits += inv;
          if (n + 1 == checkpoints[next]) {
            path[checkpoints[next]] = s == 0.0 ? 0.0 : hits / s;
            ++next;
          }
        }
        names.push_back(name);
        series.push_back(std::move(path));
      };

  for (int run = 0; run < 4; ++run) {
    Rng rng(cfg.seed + 100 + static_cast<std::uint64_t>(run));
    const StartSampler starts(g, StartMode::kUniform);
    std::vector<VertexId> init(m);
    for (auto& v : init) v = starts.sample(rng);

    {  // FS via the real sampler from the shared starts.
      Rng walk_rng = rng.split_stream(1);
      const FrontierSampler fs(g, {.dimension = m, .steps = max_steps});
      const SampleRecord rec = fs.run_from(init, walk_rng);
      std::size_t i = 0;
      record_path("FS#" + std::to_string(run),
                  [&](Rng&) { return rec.edges[i++]; }, walk_rng);
    }
    {  // MultipleRW round-robin from the same starts.
      Rng walk_rng = rng.split_stream(2);
      std::vector<VertexId> pos = init;
      std::uint64_t n = 0;
      record_path(
          "MRW#" + std::to_string(run),
          [&](Rng& r) {
            auto& p = pos[n++ % m];
            const VertexId v = step_uniform_neighbor(g, p, r);
            const Edge e{p, v};
            p = v;
            return e;
          },
          walk_rng);
    }
    {  // SingleRW.
      Rng walk_rng = rng.split_stream(3);
      VertexId p = init[0];
      record_path(
          "SRW#" + std::to_string(run),
          [&](Rng& r) {
            const VertexId v = step_uniform_neighbor(g, p, r);
            const Edge e{p, v};
            p = v;
            return e;
          },
          walk_rng);
    }
  }

  print_curves(std::cout, "steps n", checkpoints, names, series);
  session.metric("theta_10_target", theta10);
  session.add_curves(CurveResult{checkpoints, names, series, {}});
  std::cout << "\ntarget theta_10 = " << format_number(theta10)
            << "\nexpected shape: FS paths hug the target; SRW/MRW paths "
               "converge to component-local (wrong) values\n";
  return 0;
}

#include "obs/resource.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define FRONTIER_HAS_GETRUSAGE 1
#else
#define FRONTIER_HAS_GETRUSAGE 0
#endif

namespace frontier {

ResourceUsage process_usage() noexcept {
  ResourceUsage usage;
#if FRONTIER_HAS_GETRUSAGE
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return usage;
#if defined(__APPLE__)
  usage.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  usage.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
  usage.minor_page_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  usage.major_page_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  usage.user_cpu_seconds =
      static_cast<double>(ru.ru_utime.tv_sec) +
      static_cast<double>(ru.ru_utime.tv_usec) / 1e6;
  usage.system_cpu_seconds =
      static_cast<double>(ru.ru_stime.tv_sec) +
      static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
#endif
  return usage;
}

}  // namespace frontier

#include "obs/metrics.hpp"

#include <array>
#include <cassert>
#include <stdexcept>
#include <thread>

namespace frontier {
namespace {

std::atomic<bool> g_metrics_enabled{false};
std::atomic<std::uint64_t> g_next_instance_id{1};

[[nodiscard]] std::uint64_t sat_add(std::uint64_t a,
                                    std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? ~std::uint64_t{0} : s;
}

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x21 || u > 0x7e || c == '"' || c == '\\') return false;
  }
  return true;
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Shards: one per (thread, registry) acquisition. Only the owning thread
// ever writes a shard's cells; chunks are published with release stores so
// a concurrent snapshot never sees a half-constructed chunk.

struct MetricsRegistry::Shard {
  using Cell = std::atomic<std::uint64_t>;

  std::array<std::atomic<Cell*>, kMaxChunks> chunks{};
#ifndef NDEBUG
  // Single-writer invariant, machine-checked: cell() is only ever called
  // by the thread that acquired this shard through local_shard() (which
  // constructs the shard on the owning thread). The relaxed load+store
  // increment in Counter::add/Histogram::observe is race-free *only*
  // because of this — a second writer would lose increments silently, so
  // debug builds (and the tsan preset, which builds Debug) fail loudly
  // instead of merely documenting the claim.
  std::thread::id owner = std::this_thread::get_id();
#endif

  ~Shard() {
    for (auto& chunk : chunks) delete[] chunk.load(std::memory_order_relaxed);
  }

  /// Owner-thread accessor; allocates the chunk on first touch.
  [[nodiscard]] Cell& cell(std::size_t index) noexcept {
    assert(std::this_thread::get_id() == owner &&
           "MetricsRegistry shard written by a non-owner thread");
    auto& slot = chunks[index >> kChunkBits];
    Cell* chunk = slot.load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new Cell[kChunkSize]();  // value-init: all cells zero
      slot.store(chunk, std::memory_order_release);
    }
    return chunk[index & (kChunkSize - 1)];
  }

  /// Snapshot-side accessor; nullptr when the owner never touched the
  /// chunk (all its cells are implicitly zero).
  [[nodiscard]] const Cell* try_cell(std::size_t index) const noexcept {
    const Cell* chunk =
        chunks[index >> kChunkBits].load(std::memory_order_acquire);
    return chunk == nullptr ? nullptr : &chunk[index & (kChunkSize - 1)];
  }
};

namespace {

/// Thread-local shard cache. Keyed by the registry's process-unique
/// instance id (never by address, which the allocator may reuse). A cache
/// miss creates a *new* shard for this thread — a thread that alternates
/// between registries may own several shards in one of them, which is
/// fine: merging is associative and only the owner ever writes a shard.
struct TlShardCache {
  std::uint64_t instance_id = 0;
  void* shard = nullptr;  // MetricsRegistry::Shard*, a private type
};
thread_local TlShardCache tl_shard_cache;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : gauges_(new std::atomic<double>[kMaxGauges]),
      instance_id_(
          g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  for (std::size_t i = 0; i < kMaxGauges; ++i) {
    gauges_[i].store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  if (tl_shard_cache.instance_id == instance_id_) {
    return *static_cast<Shard*>(tl_shard_cache.shard);
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  tl_shard_cache = {instance_id_, shard};
  return *shard;
}

std::uint32_t MetricsRegistry::register_metric(std::string_view name,
                                               MetricKind kind,
                                               std::size_t cells) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("MetricsRegistry: invalid metric name \"" +
                                std::string(name) + "\"");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricDef& def : defs_) {
    if (def.name == name) {
      if (def.kind != kind) {
        throw std::invalid_argument(
            "MetricsRegistry: metric \"" + std::string(name) +
            "\" already registered with a different kind");
      }
      return def.slot;
    }
  }
  std::uint32_t slot = 0;
  if (kind == MetricKind::kGauge) {
    if (gauge_count_ >= kMaxGauges) {
      throw std::invalid_argument("MetricsRegistry: too many gauges");
    }
    slot = static_cast<std::uint32_t>(gauge_count_);
    gauge_count_ += 1;
  } else {
    if (cell_count_ + cells > kMaxChunks * kChunkSize) {
      throw std::invalid_argument("MetricsRegistry: metric cell space full");
    }
    slot = static_cast<std::uint32_t>(cell_count_);
    cell_count_ += cells;
  }
  defs_.push_back({std::string(name), kind, slot});
  return slot;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(this, register_metric(name, MetricKind::kCounter, 1));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(this, register_metric(name, MetricKind::kGauge, 0));
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  return Histogram(
      this, register_metric(name, MetricKind::kHistogram, kHistogramCells));
}

std::size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto sum_cell = [&](std::size_t index) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      if (const auto* cell = shard->try_cell(index)) {
        total = sat_add(total, cell->load(std::memory_order_relaxed));
      }
    }
    return total;
  };
  const auto max_cell = [&](std::size_t index) {
    std::uint64_t best = 0;
    for (const auto& shard : shards_) {
      if (const auto* cell = shard->try_cell(index)) {
        const std::uint64_t v = cell->load(std::memory_order_relaxed);
        if (v > best) best = v;
      }
    }
    return best;
  };

  MetricsSnapshot snap;
  for (const MetricDef& def : defs_) {
    switch (def.kind) {
      case MetricKind::kCounter:
        snap.counters.emplace_back(def.name, sum_cell(def.slot));
        break;
      case MetricKind::kGauge:
        snap.gauges.emplace_back(
            def.name, gauges_[def.slot].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
          const std::uint64_t count = sum_cell(def.slot + b);
          if (count != 0) {
            h.buckets.emplace_back(b, count);
            h.count = sat_add(h.count, count);
          }
        }
        h.sum = sum_cell(def.slot + kSumOffset);
        if (h.count > 0) {
          h.min = ~max_cell(def.slot + kNotMinOffset);
          h.max = max_cell(def.slot + kMaxOffset);
        }
        snap.histograms.emplace_back(def.name, std::move(h));
        break;
      }
    }
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// ---------------------------------------------------------------------------
// Handles. All writes are owner-thread relaxed stores into sharded cells
// (counters, histograms) or a relaxed store into the central gauge array.

void Counter::add(std::uint64_t n) const noexcept {
  if (registry_ == nullptr || n == 0) return;
  auto& cell = registry_->local_shard().cell(cell_);
  cell.store(sat_add(cell.load(std::memory_order_relaxed), n),
             std::memory_order_relaxed);
}

void Gauge::set(double value) const noexcept {
  if (registry_ == nullptr) return;
  registry_->gauges_[slot_].store(value, std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t value) const noexcept {
  if (registry_ == nullptr) return;
  auto& shard = registry_->local_shard();
  const std::size_t base = cell_;

  auto& bucket = shard.cell(base + histogram_bucket(value));
  bucket.store(sat_add(bucket.load(std::memory_order_relaxed), 1),
               std::memory_order_relaxed);

  auto& sum = shard.cell(base + MetricsRegistry::kSumOffset);
  sum.store(sat_add(sum.load(std::memory_order_relaxed), value),
            std::memory_order_relaxed);

  // min is stored bitwise-NOTed so the zero-initialized cell is neutral
  // and both extrema merge with plain max().
  auto& not_min = shard.cell(base + MetricsRegistry::kNotMinOffset);
  if (~value > not_min.load(std::memory_order_relaxed)) {
    not_min.store(~value, std::memory_order_relaxed);
  }
  auto& max = shard.cell(base + MetricsRegistry::kMaxOffset);
  if (value > max.load(std::memory_order_relaxed)) {
    max.store(value, std::memory_order_relaxed);
  }
}

}  // namespace frontier

#include "obs/snapshot.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "stats/json.hpp"

namespace frontier {
namespace {

constexpr std::string_view kParseContext = "metrics snapshot";
constexpr std::string_view kSchemaContext = "metrics snapshot schema";

[[noreturn]] void fail(const std::string& why) {
  json::schema_fail(kSchemaContext, why);
}

/// Object whose member names must be unique and non-empty (the
/// counters/gauges/histograms maps).
const json::Value& metric_map(const json::Value& root, const std::string& key) {
  const json::Value& obj = json::member(root, key, kSchemaContext);
  if (obj.kind != json::Value::Kind::kObject) {
    fail("\"" + key + "\" must be an object");
  }
  for (std::size_t i = 0; i < obj.members.size(); ++i) {
    if (obj.members[i].first.empty()) {
      fail("empty metric name in \"" + key + "\"");
    }
    for (std::size_t j = i + 1; j < obj.members.size(); ++j) {
      if (obj.members[i].first == obj.members[j].first) {
        fail("duplicate metric \"" + obj.members[i].first + "\" in \"" + key +
             "\"");
      }
    }
  }
  return obj;
}

HistogramSnapshot parse_histogram(const std::string& name,
                                  const json::Value& v) {
  if (v.kind != json::Value::Kind::kObject) {
    fail("histogram \"" + name + "\" must be an object");
  }
  json::require_exact_keys(v, {"count", "sum", "min", "max", "buckets"},
                           "histogram \"" + name + "\"", kSchemaContext);
  HistogramSnapshot h;
  h.count = json::get_u64(v, "count", kSchemaContext);
  h.sum = json::get_u64(v, "sum", kSchemaContext);

  const auto extremum = [&](const char* key) -> std::uint64_t {
    const json::Value& e = json::member(v, key, kSchemaContext);
    if (e.kind == json::Value::Kind::kNull) {
      if (h.count != 0) {
        fail("histogram \"" + name + "\": \"" + key +
             "\" must be a number when count > 0");
      }
      return 0;
    }
    if (h.count == 0) {
      fail("histogram \"" + name + "\": \"" + key +
           "\" must be null when count == 0");
    }
    return json::as_u64(e, "histogram \"" + name + "\" " + key,
                        kSchemaContext);
  };
  h.min = extremum("min");
  h.max = extremum("max");
  if (h.count != 0 && h.min > h.max) {
    fail("histogram \"" + name + "\": min exceeds max");
  }

  const json::Value& buckets = json::member(v, "buckets", kSchemaContext);
  if (buckets.kind != json::Value::Kind::kArray) {
    fail("histogram \"" + name + "\": \"buckets\" must be an array");
  }
  std::int64_t prev = -1;
  for (const json::Value& entry : buckets.items) {
    if (entry.kind != json::Value::Kind::kArray || entry.items.size() != 2) {
      fail("histogram \"" + name +
           "\": bucket entries must be [index, count] pairs");
    }
    const std::uint64_t index = json::as_u64(
        entry.items[0], "histogram \"" + name + "\" bucket index",
        kSchemaContext);
    const std::uint64_t count = json::as_u64(
        entry.items[1], "histogram \"" + name + "\" bucket count",
        kSchemaContext);
    if (index > 64) {
      fail("histogram \"" + name + "\": bucket index out of range");
    }
    if (count == 0) {
      fail("histogram \"" + name + "\": bucket count must be positive");
    }
    if (static_cast<std::int64_t>(index) <= prev) {
      fail("histogram \"" + name + "\": bucket indexes must be ascending");
    }
    prev = static_cast<std::int64_t>(index);
    h.buckets.emplace_back(static_cast<std::uint32_t>(index), count);
  }
  if (h.count == 0 && !h.buckets.empty()) {
    fail("histogram \"" + name + "\": count == 0 with non-empty buckets");
  }
  return h;
}

MetricsSnapshot parse_impl(std::string_view line) {
  const json::Value root = json::parse(line, kParseContext);
  if (root.kind != json::Value::Kind::kObject) {
    fail("document must be an object");
  }
  json::require_exact_keys(root,
                           {"schema_version", "seq", "elapsed_seconds",
                            "process", "counters", "gauges", "histograms"},
                           "snapshot", kSchemaContext);
  if (json::get_u64(root, "schema_version", kSchemaContext) !=
      static_cast<std::uint64_t>(MetricsSnapshot::kSchemaVersion)) {
    fail("unsupported schema_version (expected " +
         std::to_string(MetricsSnapshot::kSchemaVersion) + ")");
  }

  MetricsSnapshot snap;
  snap.seq = json::get_u64(root, "seq", kSchemaContext);
  snap.elapsed_seconds =
      json::get_number(root, "elapsed_seconds", false, kSchemaContext);
  if (!(snap.elapsed_seconds >= 0.0)) {
    fail("\"elapsed_seconds\" must be non-negative");
  }

  const json::Value& process = json::member(root, "process", kSchemaContext);
  if (process.kind != json::Value::Kind::kObject) {
    fail("\"process\" must be an object");
  }
  json::require_exact_keys(
      process, {"peak_rss_bytes", "minor_page_faults", "major_page_faults"},
      "process", kSchemaContext);
  snap.peak_rss_bytes = json::get_u64(process, "peak_rss_bytes",
                                      kSchemaContext);
  snap.minor_page_faults =
      json::get_u64(process, "minor_page_faults", kSchemaContext);
  snap.major_page_faults =
      json::get_u64(process, "major_page_faults", kSchemaContext);

  for (const auto& [name, value] : metric_map(root, "counters").members) {
    snap.counters.emplace_back(
        name, json::as_u64(value, "counter \"" + name + "\"", kSchemaContext));
  }
  for (const auto& [name, value] : metric_map(root, "gauges").members) {
    if (value.kind == json::Value::Kind::kNull) {
      snap.gauges.emplace_back(name, std::nan(""));
      continue;
    }
    if (value.kind != json::Value::Kind::kNumber) {
      fail("gauge \"" + name + "\" must be a number");
    }
    double v = 0.0;
    std::istringstream(value.text) >> v;
    snap.gauges.emplace_back(name, v);
  }
  for (const auto& [name, value] : metric_map(root, "histograms").members) {
    snap.histograms.emplace_back(name, parse_histogram(name, value));
  }
  return snap;
}

}  // namespace

std::string to_jsonl(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"schema_version\":" << MetricsSnapshot::kSchemaVersion
      << ",\"seq\":" << snapshot.seq
      << ",\"elapsed_seconds\":" << json::number(snapshot.elapsed_seconds)
      << ",\"process\":{\"peak_rss_bytes\":" << snapshot.peak_rss_bytes
      << ",\"minor_page_faults\":" << snapshot.minor_page_faults
      << ",\"major_page_faults\":" << snapshot.major_page_faults << "}";

  out << ",\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out << ',';
    out << json::quote(snapshot.counters[i].first) << ':'
        << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out << ',';
    out << json::quote(snapshot.gauges[i].first) << ':'
        << json::number(snapshot.gauges[i].second);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i != 0) out << ',';
    const auto& [name, h] = snapshot.histograms[i];
    out << json::quote(name) << ":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"min\":";
    if (h.count == 0) {
      out << "null";
    } else {
      out << h.min;
    }
    out << ",\"max\":";
    if (h.count == 0) {
      out << "null";
    } else {
      out << h.max;
    }
    out << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out << ',';
      out << '[' << h.buckets[b].first << ',' << h.buckets[b].second << ']';
    }
    out << "]}";
  }
  out << "}}\n";
  return out.str();
}

MetricsSnapshot parse_metrics_snapshot(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  try {
    return parse_impl(line);
  } catch (const json::ParseError& e) {
    throw MetricsError(e.what());
  }
}

std::vector<MetricsSnapshot> read_metrics_jsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw MetricsError("metrics file: cannot open " + path);
  std::vector<MetricsSnapshot> snapshots;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    try {
      snapshots.push_back(parse_metrics_snapshot(line));
    } catch (const MetricsError& e) {
      throw MetricsError(path + ": line " + std::to_string(line_number) +
                         ": " + e.what());
    }
  }
  if (in.bad()) throw MetricsError("metrics file: read failed: " + path);
  return snapshots;
}

}  // namespace frontier

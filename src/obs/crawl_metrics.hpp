// CrawlInstrumentation — per-crawl telemetry for the streaming pipeline.
//
// StreamEngine calls into this object from *outside* the sampling hot
// path: after each block refill it hands over the filled block (plus the
// measured next_batch duration), and around each sink ingest / checkpoint
// it reports durations and byte counts. The instrumentation only reads —
// it never draws random numbers, never mutates the cursor or the sinks —
// so a crawl with instrumentation attached produces bit-identical
// estimates, RNG state and checkpoint bytes to one without
// (tests/test_obs_determinism.cpp, and the CI checkpoint-compare gate).
//
// Metric catalog (all registered on construction; see
// docs/OBSERVABILITY.md):
//   counters   stream.events_total           budgeted cursor steps
//              stream.blocks_total           next_batch refills
//              stream.edge_events_total      rows carrying an edge
//              stream.vertex_events_total    rows carrying a vertex
//              stream.empty_events_total     rows carrying neither
//              stream.unique_vertices        distinct vertices touched
//              stream.revisits_total         touches of already-seen ones
//   gauges     stream.active_walkers         SamplerCursor::active_walkers
//   histograms stream.pump_ns                one pump() call
//              stream.cursor_batch_ns        one next_batch() call
//              stream.sink_ingest_ns.<sink>  one ingest_block() per sink
//              stream.checkpoint_save_ns / _bytes
//              stream.checkpoint_load_ns / _bytes
//
// "Touched" means: the observed vertex of a vertex-carrying row, else the
// edge target of an edge-only row; empty rows touch nothing. The revisit
// rate of a crawl is revisits_total / (events_total - empty_events_total).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "stream/cursor.hpp"
#include "stream/sinks.hpp"

namespace frontier {

class CrawlInstrumentation {
 public:
  /// Registers the catalog above in `registry`. The per-sink ingest
  /// histograms are named after EstimatorSink::name() in sink order.
  CrawlInstrumentation(
      MetricsRegistry& registry, const SamplerCursor& cursor,
      std::span<const std::unique_ptr<EstimatorSink>> sinks);

  /// One filled block, straight out of next_batch(); `cursor_ns` is the
  /// wall time that next_batch() call took.
  void on_block(const StreamEventBlock& block, const SamplerCursor& cursor,
                std::uint64_t cursor_ns);

  /// One ingest_block() call on sinks[sink_index] took `ns`.
  void on_sink_ingest(std::size_t sink_index, std::uint64_t ns);

  void on_pump(std::uint64_t ns) { pump_ns_.observe(ns); }
  void on_checkpoint_save(std::uint64_t ns, std::uint64_t bytes);
  void on_checkpoint_load(std::uint64_t ns, std::uint64_t bytes);

  // Running totals, for --progress lines (cheaper than a full snapshot).
  [[nodiscard]] std::uint64_t events() const noexcept { return events_seen_; }
  [[nodiscard]] std::uint64_t unique_vertices() const noexcept {
    return unique_seen_;
  }
  [[nodiscard]] std::uint64_t revisits() const noexcept {
    return revisits_seen_;
  }
  /// revisits / touches, 0 before the first touch.
  [[nodiscard]] double revisit_rate() const noexcept {
    const std::uint64_t touches = unique_seen_ + revisits_seen_;
    return touches == 0
               ? 0.0
               : static_cast<double>(revisits_seen_) /
                     static_cast<double>(touches);
  }

 private:
  void touch(VertexId v);

  Counter events_total_;
  Counter blocks_total_;
  Counter edge_events_total_;
  Counter vertex_events_total_;
  Counter empty_events_total_;
  Counter unique_vertices_;
  Counter revisits_total_;
  Gauge active_walkers_;
  Histogram pump_ns_;
  Histogram cursor_batch_ns_;
  Histogram checkpoint_save_ns_;
  Histogram checkpoint_save_bytes_;
  Histogram checkpoint_load_ns_;
  Histogram checkpoint_load_bytes_;
  std::vector<Histogram> sink_ingest_ns_;

  std::vector<bool> visited_;  // sized |V| of the crawled graph
  std::uint64_t events_seen_ = 0;
  std::uint64_t unique_seen_ = 0;
  std::uint64_t revisits_seen_ = 0;
};

}  // namespace frontier

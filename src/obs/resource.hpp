// Process resource accounting via getrusage(2), shared by the metrics
// exporter (per-snapshot RSS/fault columns) and bench_common's
// BenchSession (peak-RSS / page-fault metrics in every BenchReport).
// On platforms without getrusage, every field reads zero.
#pragma once

#include <cstdint>

namespace frontier {

struct ResourceUsage {
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t minor_page_faults = 0;
  std::uint64_t major_page_faults = 0;
  double user_cpu_seconds = 0.0;
  double system_cpu_seconds = 0.0;
};

/// Cumulative usage of the calling process (RUSAGE_SELF). peak_rss_bytes
/// is a process-lifetime high-water mark, not the current RSS.
[[nodiscard]] ResourceUsage process_usage() noexcept;

}  // namespace frontier

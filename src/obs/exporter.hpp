// MetricsExporter — periodic JSONL snapshots of a MetricsRegistry.
//
// The exporter owns the output stream (a file path, or "-" for stderr),
// the snapshot cadence, and the seq / elapsed_seconds / process stamps.
// maybe_export() is cheap when the interval has not elapsed (one clock
// read), so the stream loop can call it once per checkpoint chunk without
// caring about the cadence. Every exported line is flushed immediately —
// the file is greppable while the crawl is still running, and a crash
// truncates at a line boundary (which metrics-summary then rejects with
// the offending line number rather than silently accepting).
//
// Failure discipline: an unwritable path or a failed write throws IoError
// (graph/io.hpp), the same error type the CLI already maps to a clean
// "io error: ..." exit — never a mid-crawl abort().
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"

namespace frontier {

class MetricsExporter {
 public:
  /// Opens `path` for writing (truncating; "-" means stderr). An interval
  /// of <= 0 seconds makes every maybe_export() call export. Throws
  /// IoError if the path cannot be opened.
  MetricsExporter(MetricsRegistry& registry, std::string path,
                  double interval_seconds);

  /// Exports iff at least the configured interval has passed since the
  /// last exported line (the first call always exports). Returns true if
  /// a line was written.
  bool maybe_export();

  /// Unconditionally snapshots, stamps (seq, elapsed, getrusage) and
  /// writes one JSONL line, flushing it. Throws IoError on write failure.
  void export_now();

  [[nodiscard]] std::uint64_t lines_written() const noexcept { return seq_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  MetricsRegistry& registry_;
  std::string path_;
  double interval_seconds_;
  bool to_stderr_;
  std::ofstream file_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_export_;
  std::uint64_t seq_ = 0;
};

}  // namespace frontier

// MetricsExporter — periodic JSONL snapshots of a MetricsRegistry.
//
// The exporter owns the output stream (a file path, or "-" for stderr),
// the snapshot cadence, and the seq / elapsed_seconds / process stamps.
// maybe_export() is cheap when the interval has not elapsed (one clock
// read), so the stream loop can call it once per checkpoint chunk without
// caring about the cadence. Every exported line is flushed immediately —
// the file is greppable while the crawl is still running, and a crash
// truncates at a line boundary (which metrics-summary then rejects with
// the offending line number rather than silently accepting).
//
// Failure discipline: an unwritable path at construction throws IoError
// (a config error the operator should see before the crawl starts). A
// *mid-run* write failure (disk filled up under the crawl) must never
// take the crawl down: the exporter increments the obs.export_errors
// counter, closes the stream, and degrades to a no-op — telemetry
// observes, it does not participate, and that includes its own failures.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"

namespace frontier {

class MetricsExporter {
 public:
  /// Opens `path` for writing (truncating; "-" means stderr). An interval
  /// of <= 0 seconds makes every maybe_export() call export. Throws
  /// IoError if the path cannot be opened.
  MetricsExporter(MetricsRegistry& registry, std::string path,
                  double interval_seconds);

  /// Exports iff at least the configured interval has passed since the
  /// last exported line (the first call always exports). Returns true if
  /// a line was written. Always false once degraded.
  bool maybe_export();

  /// Unconditionally snapshots, stamps (seq, elapsed, getrusage) and
  /// writes one JSONL line, flushing it. A write failure degrades the
  /// exporter (see degraded()) instead of throwing — the crawl outlives
  /// its telemetry.
  void export_now();

  [[nodiscard]] std::uint64_t lines_written() const noexcept { return seq_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// True once a mid-run write failed; every later export is a no-op.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

 private:
  MetricsRegistry& registry_;
  std::string path_;
  double interval_seconds_;
  bool to_stderr_;
  // Long-lived JSONL stream, flushed per line: a crash truncates at a
  // line boundary by design; there is no replace-in-place to make atomic.
  std::ofstream file_;  // lint:allow(durable-file-replacement): append-only JSONL stream, no replace
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_export_;
  std::uint64_t seq_ = 0;
  bool degraded_ = false;
};

}  // namespace frontier

#include "obs/exporter.hpp"

#include <iostream>
#include <utility>

#include "core/failpoint.hpp"
#include "graph/io.hpp"
#include "obs/resource.hpp"
#include "obs/snapshot.hpp"

namespace frontier {

MetricsExporter::MetricsExporter(MetricsRegistry& registry, std::string path,
                                 double interval_seconds)
    : registry_(registry),
      path_(std::move(path)),
      interval_seconds_(interval_seconds),
      to_stderr_(path_ == "-"),
      start_(std::chrono::steady_clock::now()),
      last_export_(start_) {
  if (!to_stderr_) {
    file_.open(path_, std::ios::binary | std::ios::trunc);
    if (!file_) {
      throw IoError("metrics: cannot open " + path_ + " for writing");
    }
  }
}

bool MetricsExporter::maybe_export() {
  if (degraded_) return false;
  if (seq_ != 0) {
    const std::chrono::duration<double> since =
        std::chrono::steady_clock::now() - last_export_;
    if (since.count() < interval_seconds_) return false;
  }
  export_now();
  return seq_ != 0 && !degraded_;
}

void MetricsExporter::export_now() {
  if (degraded_) return;
  const auto now = std::chrono::steady_clock::now();
  MetricsSnapshot snap = registry_.snapshot();
  snap.seq = seq_;
  snap.elapsed_seconds = std::chrono::duration<double>(now - start_).count();
  const ResourceUsage usage = process_usage();
  snap.peak_rss_bytes = usage.peak_rss_bytes;
  snap.minor_page_faults = usage.minor_page_faults;
  snap.major_page_faults = usage.major_page_faults;

  const std::string line = to_jsonl(snap);
  bool failed = false;
  try {
    FRONTIER_FAILPOINT("obs.export");
    if (to_stderr_) {
      std::cerr << line << std::flush;
    } else {
      file_ << line;
      file_.flush();
      failed = !file_;
    }
  } catch (const IoError&) {
    failed = true;  // injected — same path as a real write failure
  }
  if (failed) {
    // Disk filled up (or similar) under a running crawl: telemetry must
    // not take the crawl down. Count it where the next snapshot of any
    // *working* exporter/summary can see it, stop exporting, and let
    // the crawl finish.
    registry_.counter("obs.export_errors").add();
    degraded_ = true;
    if (!to_stderr_) file_.close();
    return;
  }
  seq_ += 1;
  last_export_ = now;
}

}  // namespace frontier

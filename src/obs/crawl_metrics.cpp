#include "obs/crawl_metrics.hpp"

#include <string>

#include "graph/graph.hpp"

namespace frontier {

CrawlInstrumentation::CrawlInstrumentation(
    MetricsRegistry& registry, const SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks)
    : events_total_(registry.counter("stream.events_total")),
      blocks_total_(registry.counter("stream.blocks_total")),
      edge_events_total_(registry.counter("stream.edge_events_total")),
      vertex_events_total_(registry.counter("stream.vertex_events_total")),
      empty_events_total_(registry.counter("stream.empty_events_total")),
      unique_vertices_(registry.counter("stream.unique_vertices")),
      revisits_total_(registry.counter("stream.revisits_total")),
      active_walkers_(registry.gauge("stream.active_walkers")),
      pump_ns_(registry.histogram("stream.pump_ns")),
      cursor_batch_ns_(registry.histogram("stream.cursor_batch_ns")),
      checkpoint_save_ns_(registry.histogram("stream.checkpoint_save_ns")),
      checkpoint_save_bytes_(
          registry.histogram("stream.checkpoint_save_bytes")),
      checkpoint_load_ns_(registry.histogram("stream.checkpoint_load_ns")),
      checkpoint_load_bytes_(
          registry.histogram("stream.checkpoint_load_bytes")),
      visited_(cursor.graph().num_vertices(), false) {
  sink_ingest_ns_.reserve(sinks.size());
  for (const auto& sink : sinks) {
    sink_ingest_ns_.push_back(registry.histogram(
        "stream.sink_ingest_ns." + std::string(sink->name())));
  }
  active_walkers_.set(static_cast<double>(cursor.active_walkers()));
}

void CrawlInstrumentation::touch(VertexId v) {
  if (static_cast<std::size_t>(v) >= visited_.size()) return;
  if (visited_[static_cast<std::size_t>(v)]) {
    revisits_seen_ += 1;
  } else {
    visited_[static_cast<std::size_t>(v)] = true;
    unique_seen_ += 1;
  }
}

void CrawlInstrumentation::on_block(const StreamEventBlock& block,
                                    const SamplerCursor& cursor,
                                    std::uint64_t cursor_ns) {
  const auto flags = block.flags();
  const auto v = block.v();
  const auto vertex = block.vertex();
  const std::uint64_t unique_before = unique_seen_;
  const std::uint64_t revisits_before = revisits_seen_;

  std::uint64_t edge_rows = 0;
  std::uint64_t vertex_rows = 0;
  std::uint64_t empty_rows = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const std::uint8_t f = flags[i];
    if (f & StreamEventBlock::kHasEdge) edge_rows += 1;
    if (f & StreamEventBlock::kHasVertex) {
      vertex_rows += 1;
      touch(vertex[i]);
    } else if (f & StreamEventBlock::kHasEdge) {
      touch(v[i]);
    } else {
      empty_rows += 1;
    }
  }

  events_total_.add(block.size());
  blocks_total_.add(1);
  edge_events_total_.add(edge_rows);
  vertex_events_total_.add(vertex_rows);
  empty_events_total_.add(empty_rows);
  unique_vertices_.add(unique_seen_ - unique_before);
  revisits_total_.add(revisits_seen_ - revisits_before);
  events_seen_ += block.size();

  cursor_batch_ns_.observe(cursor_ns);
  active_walkers_.set(static_cast<double>(cursor.active_walkers()));
}

void CrawlInstrumentation::on_sink_ingest(std::size_t sink_index,
                                          std::uint64_t ns) {
  if (sink_index < sink_ingest_ns_.size()) {
    sink_ingest_ns_[sink_index].observe(ns);
  }
}

void CrawlInstrumentation::on_checkpoint_save(std::uint64_t ns,
                                              std::uint64_t bytes) {
  checkpoint_save_ns_.observe(ns);
  checkpoint_save_bytes_.observe(bytes);
}

void CrawlInstrumentation::on_checkpoint_load(std::uint64_t ns,
                                              std::uint64_t bytes) {
  checkpoint_load_ns_.observe(ns);
  checkpoint_load_bytes_.observe(bytes);
}

}  // namespace frontier

// MetricsRegistry — process-wide runtime telemetry counters.
//
// Three metric kinds, all registered by name (registration is idempotent,
// so instrumentation sites can look handles up lazily):
//   * counters   — monotonic uint64, saturating at UINT64_MAX,
//   * gauges     — last-write-wins doubles (queue depths, frontier sizes),
//   * histograms — log2-bucketed uint64 distributions (latencies in ns,
//                  sizes in bytes): bucket 0 holds the value 0, bucket
//                  b >= 1 holds [2^(b-1), 2^b - 1], plus saturating
//                  sum and exact min/max.
//
// Counter and histogram cells are sharded per thread: each thread owns a
// block of uint64 cells that only it writes, so a hot-path increment is a
// relaxed load + relaxed store of a thread-local cell — no contended
// atomics, no locks, no fences. snapshot() merges the shards (sum for
// counters/buckets, min/max for the extrema) under the registry mutex.
//
// The registry observes; it never participates. Nothing in this module
// draws random numbers or touches estimator state, so metrics-on and
// metrics-off crawls are bit-identical by construction (enforced by
// tests/test_obs_determinism.cpp and the CI checkpoint-compare gate).
//
// Handles are trivially copyable POD-ish values. A default-constructed
// handle is inert: every operation on it is a no-op, which is how
// instrumented code paths compile to nearly nothing when telemetry is
// disabled.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace frontier {

class MetricsRegistry;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Merged (cross-shard) state of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< saturating; UINT64_MAX means "at least"
  std::uint64_t min = 0;  ///< meaningful iff count > 0
  std::uint64_t max = 0;  ///< meaningful iff count > 0
  /// Sparse non-zero buckets, ascending by index (0..64).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// One merged view of every registered metric, in registration order.
/// Pure data — the schema-v1 JSONL rendering lives in obs/snapshot.hpp.
struct MetricsSnapshot {
  static constexpr int kSchemaVersion = 1;

  std::uint64_t seq = 0;          ///< exporter-assigned line number
  double elapsed_seconds = 0.0;   ///< since the exporter started
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t minor_page_faults = 0;
  std::uint64_t major_page_faults = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Log2 bucket of a value: bit_width(v), i.e. 0 -> 0, 1 -> 1, [2,3] -> 2,
/// [4,7] -> 3, ..., [2^63, 2^64-1] -> 64.
[[nodiscard]] constexpr std::uint32_t histogram_bucket(
    std::uint64_t value) noexcept {
  return static_cast<std::uint32_t>(std::bit_width(value));
}

/// Inclusive [lo, hi] range of values a bucket covers.
[[nodiscard]] constexpr std::pair<std::uint64_t, std::uint64_t>
histogram_bucket_range(std::uint32_t bucket) noexcept {
  if (bucket == 0) return {0, 0};
  const std::uint64_t lo = std::uint64_t{1} << (bucket - 1);
  const std::uint64_t hi =
      bucket >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bucket) - 1;
  return {lo, hi};
}

/// Monotonic counter handle. Default-constructed handles are inert.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept;
  [[nodiscard]] bool active() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t cell)
      : registry_(registry), cell_(cell) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Last-write-wins gauge handle.
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;
  [[nodiscard]] bool active() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Log2-bucket histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t value) const noexcept;
  [[nodiscard]] bool active() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t cell)
      : registry_(registry), cell_(cell) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// RAII timer: records the scope's wall duration in nanoseconds into a
/// histogram at destruction. Inert (no clock calls) when the histogram is.
class ScopeTimer {
 public:
  explicit ScopeTimer(Histogram h) noexcept : h_(h) {
    if (h_.active()) start_ = std::chrono::steady_clock::now();
  }
  ~ScopeTimer() {
    if (h_.active()) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_);
      h_.observe(ns.count() < 0 ? 0 : static_cast<std::uint64_t>(ns.count()));
    }
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Histogram h_;
  std::chrono::steady_clock::time_point start_;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) a metric. Idempotent per name; re-registering
  /// a name under a different kind throws std::invalid_argument, as do
  /// empty names and names with characters outside printable ASCII minus
  /// '"' and '\'.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  /// Merged view of every registered metric, in registration order. Safe
  /// to call concurrently with hot-path updates (which are relaxed, so a
  /// snapshot is a consistent-enough instant, not a linearization point).
  /// seq/elapsed/process fields are left zero — the exporter stamps them.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t num_metrics() const;

  /// The process-wide registry used by library seams (graph loading,
  /// replication) when metrics_enabled() is on.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  // Cell space: chunked so a shard can grow lock-free while a snapshot
  // walks it (chunk pointers are acquire/release, cells relaxed).
  static constexpr std::size_t kChunkBits = 9;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 128;  // 65536 cells
  static constexpr std::size_t kMaxGauges = 1024;

  // Histogram cell layout: 65 buckets, then saturating sum, then ~min
  // (bitwise NOT, so the zero-initialized cell is the neutral element),
  // then max.
  static constexpr std::size_t kNumBuckets = 65;
  static constexpr std::size_t kSumOffset = kNumBuckets;
  static constexpr std::size_t kNotMinOffset = kNumBuckets + 1;
  static constexpr std::size_t kMaxOffset = kNumBuckets + 2;
  static constexpr std::size_t kHistogramCells = kNumBuckets + 3;

  struct Shard;
  struct MetricDef {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;  // first cell index; gauge: index into gauges_
  };

  [[nodiscard]] Shard& local_shard();
  [[nodiscard]] std::uint32_t register_metric(std::string_view name,
                                              MetricKind kind,
                                              std::size_t cells);

  mutable std::mutex mu_;
  std::vector<MetricDef> defs_;
  std::size_t cell_count_ = 0;
  std::size_t gauge_count_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<std::atomic<double>[]> gauges_;
  std::uint64_t instance_id_;  // distinguishes reused addresses in TL cache
};

/// Process-wide telemetry switch, off by default. Library seams that
/// instrument themselves (graph loading, the replication pool) check this
/// with one relaxed atomic load before touching the global registry.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

}  // namespace frontier

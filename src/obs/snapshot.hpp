// Schema-versioned JSONL rendering of MetricsSnapshot.
//
// One snapshot = one line of compact JSON (no newlines inside), so a live
// crawl appends to a .jsonl file that is greppable mid-run and parseable
// as a whole afterwards. Same discipline as stats/bench_report.*: the
// parser accepts exactly what the writer emits — unknown keys, missing
// keys, wrong types, out-of-range buckets are all schema errors — so a
// metrics file that parses is a file `frontier_cli metrics-summary` and
// CI can trust.
//
// Line layout (schema version 1):
//   {"schema_version":1,"seq":N,"elapsed_seconds":X,
//    "process":{"peak_rss_bytes":N,"minor_page_faults":N,
//               "major_page_faults":N},
//    "counters":{"name":N,...},"gauges":{"name":X,...},
//    "histograms":{"name":{"count":N,"sum":N,"min":N|null,"max":N|null,
//                          "buckets":[[bucket,count],...]},...}}
// Counter values are exact uint64; gauge values are shortest-round-trip
// doubles (non-finite -> null); histogram buckets are sparse, strictly
// ascending, with positive counts; min/max are null iff count == 0.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace frontier {

/// Schema violation or malformed JSON in a metrics snapshot / JSONL file;
/// .what() names the offending key (and, for files, the 1-based line).
class MetricsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One line of compact JSON, trailing '\n' included.
[[nodiscard]] std::string to_jsonl(const MetricsSnapshot& snapshot);

/// Inverse of to_jsonl (the trailing newline is optional); throws
/// MetricsError on any deviation from the schema.
[[nodiscard]] MetricsSnapshot parse_metrics_snapshot(std::string_view line);

/// Parses every line of a JSONL metrics file. Throws MetricsError naming
/// the 1-based line number on the first malformed/garbage line (blank
/// lines included — a truncated write must not validate), or on I/O
/// failure. An empty file yields an empty vector.
[[nodiscard]] std::vector<MetricsSnapshot> read_metrics_jsonl(
    const std::string& path);

}  // namespace frontier

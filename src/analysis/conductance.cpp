#include "analysis/conductance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "analysis/spectral.hpp"

namespace frontier {

double cut_conductance(const Graph& g, std::span<const VertexId> subset) {
  if (subset.empty() || subset.size() >= g.num_vertices()) {
    throw std::invalid_argument("cut_conductance: proper non-empty subset");
  }
  std::vector<bool> in_s(g.num_vertices(), false);
  std::uint64_t vol_s = 0;
  for (VertexId v : subset) {
    if (v >= g.num_vertices() || in_s[v]) {
      throw std::invalid_argument("cut_conductance: bad or duplicate vertex");
    }
    in_s[v] = true;
    vol_s += g.degree(v);
  }
  std::uint64_t cut = 0;
  for (VertexId v : subset) {
    for (VertexId w : g.neighbors(v)) {
      if (!in_s[w]) ++cut;
    }
  }
  const std::uint64_t vol_rest = g.volume() - vol_s;
  const std::uint64_t denom = std::min(vol_s, vol_rest);
  if (denom == 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

SweepCut spectral_sweep_cut(const Graph& g) {
  const auto fiedler = second_eigenvector(g);
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&fiedler](VertexId a, VertexId b) {
    return fiedler[a] < fiedler[b];
  });

  // Incremental sweep: maintain cut and volume while moving vertices into
  // S in eigenvector order; O(|E|) total.
  std::vector<bool> in_s(g.num_vertices(), false);
  std::uint64_t vol_s = 0;
  std::int64_t cut = 0;
  double best = 1.0;
  std::size_t best_prefix = 1;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const VertexId v = order[i];
    in_s[v] = true;
    vol_s += g.degree(v);
    for (VertexId w : g.neighbors(v)) {
      cut += in_s[w] ? -1 : +1;
    }
    const std::uint64_t vol_rest = g.volume() - vol_s;
    const std::uint64_t denom = std::min(vol_s, vol_rest);
    if (denom == 0) continue;
    const double phi =
        static_cast<double>(cut) / static_cast<double>(denom);
    if (phi < best) {
      best = phi;
      best_prefix = i + 1;
    }
  }

  SweepCut result;
  result.conductance = best;
  // Return the smaller-volume side.
  std::uint64_t vol_prefix = 0;
  for (std::size_t i = 0; i < best_prefix; ++i) {
    vol_prefix += g.degree(order[i]);
  }
  if (vol_prefix * 2 <= g.volume()) {
    result.side.assign(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(best_prefix));
  } else {
    result.side.assign(order.begin() + static_cast<std::ptrdiff_t>(best_prefix),
                       order.end());
  }
  std::sort(result.side.begin(), result.side.end());
  return result;
}

std::pair<double, double> cheeger_bounds(double spectral_gap) {
  if (spectral_gap < 0.0) {
    throw std::invalid_argument("cheeger_bounds: gap >= 0");
  }
  return {spectral_gap / 2.0, std::sqrt(2.0 * spectral_gap)};
}

}  // namespace frontier

// Walker-count laws of Section 5 — how many of the m walkers sit inside a
// vertex subset V_A.
//
//   K_un(m): m uniform starts  -> Binomial(m, |V_A|/|V|),
//   K_fs(m): FS in steady state -> Lemma 5.3's size-biased binomial,
//   K_mw(m): m independent stationary walkers -> Binomial(m, vol(V_A)/vol(V)),
//
// and Section 5.1's ratio α_A = E[K_mw]/E[K_un] = d̄_A/d̄. Theorem 5.4 says
// K_fs converges in distribution to K_un as m → ∞ — the key reason FS can
// be *started* from uniform vertex samples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace frontier {

/// Subset statistics used by every law below.
struct SubsetStats {
  double p = 0.0;    ///< |V_A| / |V|
  double da = 0.0;   ///< average degree inside V_A
  double db = 0.0;   ///< average degree of the complement
  double d = 0.0;    ///< overall average degree
};

[[nodiscard]] SubsetStats subset_stats(const Graph& g,
                                       std::span<const VertexId> subset);

/// Binomial(m, p) pmf vector of length m+1.
[[nodiscard]] std::vector<double> binomial_pmf(std::size_t m, double p);

/// Lemma 5.3: P[K_fs(m) = k] = (1/(m d̄)) C(m,k) p^k (1-p)^{m-k}
///            (k d̄_A + (m-k) d̄_B), as a vector of length m+1.
[[nodiscard]] std::vector<double> kfs_pmf(std::size_t m,
                                          const SubsetStats& stats);

/// Steady-state law of m independent walkers: Binomial(m, vol(V_A)/vol(V)).
[[nodiscard]] std::vector<double> kmw_pmf(std::size_t m,
                                          const SubsetStats& stats);

/// Section 5.1's α_A = E[K_mw(m)] / E[K_un(m)] = d̄_A / d̄.
[[nodiscard]] double alpha_ratio(const SubsetStats& stats);

}  // namespace frontier

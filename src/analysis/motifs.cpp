#include "analysis/motifs.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "graph/metrics.hpp"

namespace frontier {

namespace {

// C(n, 2) and C(n, 3) over integers.
std::uint64_t choose2(std::uint64_t n) { return n * (n - 1) / 2; }
std::uint64_t choose3(std::uint64_t n) {
  if (n < 3) return 0;
  return n * (n - 1) / 2 * (n - 2) / 3;  // C(n,2) is integral first
}

}  // namespace

void common_neighbors(const Graph& g, VertexId u, VertexId v,
                      std::vector<VertexId>& out) {
  out.clear();
  const auto a = g.neighbors(u);
  const auto b = g.neighbors(v);
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

void require_simple_graph(const Graph& g) {
  const std::uint64_t n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == v) {
        throw std::invalid_argument("motifs: graph has a self-loop at vertex " +
                                    std::to_string(v));
      }
      if (i > 0 && nbrs[i] <= nbrs[i - 1]) {
        throw std::invalid_argument(
            "motifs: adjacency of vertex " + std::to_string(v) +
            " is not strictly ascending (parallel edge or unsorted CSR)");
      }
    }
  }
}

std::uint64_t exact_triangle_count(const Graph& g) {
  require_simple_graph(g);
  // Σ over undirected edges of f(u,v) counts each triangle once per edge.
  std::uint64_t sum = 0;
  const std::uint64_t n = g.num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (v <= u) continue;
      sum += shared_neighbors(g, u, v);
    }
  }
  return sum / 3;
}

std::vector<std::uint64_t> exact_triangles_per_vertex(const Graph& g) {
  require_simple_graph(g);
  return triangles_per_vertex(g);
}

std::uint64_t exact_wedge_count(const Graph& g) {
  require_simple_graph(g);
  std::uint64_t wedges = 0;
  const std::uint64_t n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) wedges += choose2(g.degree(v));
  return wedges;
}

double exact_transitivity(const Graph& g) {
  const std::uint64_t wedges = exact_wedge_count(g);
  if (wedges == 0) return 0.0;
  return static_cast<double>(3 * exact_triangle_count(g)) /
         static_cast<double>(wedges);
}

std::vector<double> exact_local_clustering_by_degree(const Graph& g) {
  require_simple_graph(g);
  const std::vector<std::uint64_t> tri = triangles_per_vertex(g);
  std::vector<std::uint64_t> twice_tri_sum;  // Σ 2∆(v) per degree class
  std::vector<std::uint64_t> class_size;
  const std::uint64_t n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t d = g.degree(v);
    if (d >= twice_tri_sum.size()) {
      twice_tri_sum.resize(d + 1, 0);
      class_size.resize(d + 1, 0);
    }
    twice_tri_sum[d] += 2 * tri[v];
    class_size[d] += 1;
  }
  std::vector<double> curve(twice_tri_sum.size(), 0.0);
  for (std::size_t k = 2; k < curve.size(); ++k) {
    if (class_size[k] == 0) continue;
    // mean of ∆/C(k,2) = (Σ 2∆) / (n_k · k · (k-1)); every factor is an
    // exact integer below 2^53, so the double quotient is the correctly
    // rounded true value — and bit-identical to ClusteringSink's
    // full-enumeration curve, which divides the same two integers.
    const double denom = static_cast<double>(class_size[k]) *
                         static_cast<double>(k) * (static_cast<double>(k) - 1.0);
    curve[k] = static_cast<double>(twice_tri_sum[k]) / denom;
  }
  return curve;
}

MotifCounts exact_motif_counts(const Graph& g) {
  require_simple_graph(g);
  const std::uint64_t n = g.num_vertices();

  // Degree-sequence terms: wedges and non-induced claws.
  std::uint64_t wedges = 0;
  std::uint64_t claw_n = 0;  // Σ C(deg, 3): claws counted per center
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = g.degree(v);
    wedges += choose2(d);
    claw_n += choose3(d);
  }

  // Edge-local sums over undirected edges {u < v} with codegree f = f(u,v):
  //   Σ f            = 3 · triangles
  //   Σ [(du-1)(dv-1) - f]  = non-induced P4 (counted per middle edge)
  //   Σ f·(du+dv-4)  = 2 · non-induced paws (per triangle edge, per pendant)
  //   Σ C(f, 2)      = non-induced diamonds (counted per hinge edge)
  //   Σ adjacent pairs within the common neighborhood = 6 · K4
  std::int64_t tri3 = 0;
  std::int64_t p4_n = 0;
  std::int64_t paw2_n = 0;
  std::int64_t diamond_n = 0;
  std::int64_t k4_6 = 0;
  std::vector<VertexId> common;
  for (VertexId u = 0; u < n; ++u) {
    const std::int64_t du = g.degree(u);
    for (VertexId v : g.neighbors(u)) {
      if (v <= u) continue;
      common_neighbors(g, u, v, common);
      const std::int64_t f = static_cast<std::int64_t>(common.size());
      const std::int64_t dv = g.degree(v);
      tri3 += f;
      p4_n += (du - 1) * (dv - 1) - f;
      paw2_n += f * (du + dv - 4);
      diamond_n += f * (f - 1) / 2;
      for (std::size_t i = 0; i < common.size(); ++i) {
        for (std::size_t j = i + 1; j < common.size(); ++j) {
          if (g.has_edge(common[i], common[j])) ++k4_6;
        }
      }
    }
  }

  // Non-induced C4 via codegree pairs: each unordered pair {a, b} with κ
  // common neighbors closes C(κ, 2) four-cycles in which a and b are
  // opposite corners; summing over pairs counts each C4 twice (it has two
  // opposite pairs). Pairs are materialized per wedge center, so memory
  // is O(#wedges).
  std::vector<std::uint64_t> codegree_pairs;
  codegree_pairs.reserve(wedges);
  for (VertexId w = 0; w < n; ++w) {
    const auto nbrs = g.neighbors(w);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        codegree_pairs.push_back((static_cast<std::uint64_t>(nbrs[i]) << 32) |
                                 nbrs[j]);
      }
    }
  }
  std::sort(codegree_pairs.begin(), codegree_pairs.end());
  std::int64_t c4_2n = 0;  // 2 · non-induced C4
  for (std::size_t i = 0; i < codegree_pairs.size();) {
    std::size_t j = i;
    while (j < codegree_pairs.size() && codegree_pairs[j] == codegree_pairs[i])
      ++j;
    c4_2n += static_cast<std::int64_t>(choose2(j - i));
    i = j;
  }

  // Non-induced totals, then inclusion–exclusion down to induced counts
  // (coefficients: copies of the smaller motif inside the larger one).
  const std::int64_t tri = tri3 / 3;
  const std::int64_t paw_n = paw2_n / 2;
  const std::int64_t c4_n = c4_2n / 2;
  const std::int64_t k4 = k4_6 / 6;
  const std::int64_t diamond_i = diamond_n - 6 * k4;
  const std::int64_t c4_i = c4_n - diamond_n + 3 * k4;
  const std::int64_t paw_i = paw_n - 4 * diamond_i - 12 * k4;
  const std::int64_t claw_i =
      static_cast<std::int64_t>(claw_n) - paw_i - 2 * diamond_i - 4 * k4;
  const std::int64_t p4_i =
      p4_n - 4 * c4_i - 2 * paw_i - 6 * diamond_i - 12 * k4;

  MotifCounts out;
  out.wedge = static_cast<std::uint64_t>(wedges - 3 * tri);
  out.triangle = static_cast<std::uint64_t>(tri);
  out.path4 = static_cast<std::uint64_t>(p4_i);
  out.claw = static_cast<std::uint64_t>(claw_i);
  out.cycle4 = static_cast<std::uint64_t>(c4_i);
  out.paw = static_cast<std::uint64_t>(paw_i);
  out.diamond = static_cast<std::uint64_t>(diamond_i);
  out.clique4 = static_cast<std::uint64_t>(k4);
  return out;
}

namespace {

// Bron–Kerbosch with pivoting over sorted CSR adjacency. P and X are
// sorted vertex vectors; neighborhood intersection uses binary-searched
// has_edge, which is O(log deg) per probe.
struct BronKerbosch {
  const Graph& g;
  CliqueSummary summary;
  std::uint32_t depth = 0;

  void run(std::vector<VertexId> p, std::vector<VertexId> x) {
    if (p.empty() && x.empty()) {
      // depth == 0 only for the empty graph, whose empty R is not a clique.
      if (depth > 0) {
        ++summary.maximal_cliques;
        summary.max_clique_size = std::max(summary.max_clique_size, depth);
      }
      return;
    }
    // Pivot: the vertex of P ∪ X covering the most of P; its neighbors
    // need not be branched on.
    VertexId pivot = kInvalidVertex;
    std::size_t best = 0;
    bool have_pivot = false;
    auto consider = [&](VertexId u) {
      std::size_t covered = 0;
      for (VertexId w : p) {
        if (g.has_edge(u, w)) ++covered;
      }
      if (!have_pivot || covered > best) {
        have_pivot = true;
        best = covered;
        pivot = u;
      }
    };
    for (VertexId u : p) consider(u);
    for (VertexId u : x) consider(u);

    std::vector<VertexId> candidates;
    for (VertexId u : p) {
      if (!g.has_edge(pivot, u)) candidates.push_back(u);
    }
    for (VertexId u : candidates) {
      std::vector<VertexId> p_next;
      std::vector<VertexId> x_next;
      for (VertexId w : p) {
        if (g.has_edge(u, w)) p_next.push_back(w);
      }
      for (VertexId w : x) {
        if (g.has_edge(u, w)) x_next.push_back(w);
      }
      ++depth;
      run(std::move(p_next), std::move(x_next));
      --depth;
      // Move u from P to X.
      p.erase(std::find(p.begin(), p.end(), u));
      x.insert(std::lower_bound(x.begin(), x.end(), u), u);
    }
  }
};

}  // namespace

CliqueSummary exact_clique_summary(const Graph& g) {
  require_simple_graph(g);
  std::vector<VertexId> p(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) p[v] = v;
  BronKerbosch bk{g, {}, 0};
  bk.run(std::move(p), {});
  return bk.summary;
}

}  // namespace frontier

// Explicit construction of the m-th Cartesian power G^m and of the Frontier
// Sampling Markov chain on it (Lemma 5.1 / Theorem 5.2). Only feasible for
// tiny graphs — |V|^m states — which is exactly what the correctness tests
// need: the empirical FS process can be checked against the exact chain.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/dense_chain.hpp"
#include "graph/graph.hpp"

namespace frontier {

/// Encodes/decodes FS states L = (v_1, ..., v_m) as mixed-radix integers
/// over |V|^m.
class StateCodec {
 public:
  StateCodec(std::size_t num_vertices, std::size_t m);

  [[nodiscard]] std::size_t num_states() const noexcept { return states_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return m_; }

  [[nodiscard]] std::size_t encode(
      const std::vector<VertexId>& tuple) const;
  [[nodiscard]] std::vector<VertexId> decode(std::size_t code) const;

 private:
  std::size_t n_;
  std::size_t m_;
  std::size_t states_;
};

/// The FS transition chain on G^m: from L, each component v_i steps to a
/// uniform neighbor with probability deg(v_i)/Σ_j deg(v_j) × 1/deg(v_i)
/// = 1/Σ_j deg(v_j) per incident edge — i.e. a single random walk on G^m
/// (Lemma 5.1). States containing an isolated vertex are absorbing.
/// Throws std::invalid_argument if |V|^m exceeds max_states.
[[nodiscard]] DenseChain frontier_chain(const Graph& g, std::size_t m,
                                        std::size_t max_states = 1 << 20);

/// Theorem 5.2 (II): the closed-form FS stationary law
/// P[L = (v_1..v_m)] = Σ_i deg(v_i) / (m |V|^{m-1} vol(V)), indexed by
/// StateCodec codes.
[[nodiscard]] std::vector<double> frontier_stationary_formula(const Graph& g,
                                                              std::size_t m);

/// The product law of m independent stationary walkers:
/// Π_i deg(v_i)/vol(V). The paper's Section 5.2 compares how far each joint
/// law sits from the uniform starting law.
[[nodiscard]] std::vector<double> independent_walkers_stationary(
    const Graph& g, std::size_t m);

/// Uniform law over V^m (the initialization law of FS with uniform starts).
[[nodiscard]] std::vector<double> uniform_joint_distribution(const Graph& g,
                                                             std::size_t m);

}  // namespace frontier

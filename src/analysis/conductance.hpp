// Cut conductance and spectral sweep partitioning.
//
// The conductance Φ(S) = cut(S, S̄) / min(vol(S), vol(S̄)) of the worst cut
// is *the* structural quantity behind walker trapping (Section 4.3): by
// Cheeger's inequality the random walk needs Ω(1/Φ) steps to cross a
// bottleneck, so a graph with a low-conductance cut traps a single walker
// on one side for most of a small budget. The sweep-cut routine recovers
// such a bottleneck from the second eigenvector of the walk kernel —
// useful both as a diagnostic and to validate that the synthetic
// surrogates actually contain the bottlenecks the experiments rely on.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace frontier {

/// Φ(S) for an explicit vertex subset (proper, non-empty; ids unique).
/// Throws std::invalid_argument otherwise.
[[nodiscard]] double cut_conductance(const Graph& g,
                                     std::span<const VertexId> subset);

struct SweepCut {
  std::vector<VertexId> side;  ///< the smaller-volume side of the best cut
  double conductance = 1.0;
};

/// Spectral sweep: orders vertices by the second eigenvector of the lazy
/// walk kernel and returns the best prefix cut. Connected graphs up to a
/// few thousand vertices (uses analysis/spectral.hpp's power iteration).
[[nodiscard]] SweepCut spectral_sweep_cut(const Graph& g);

/// Cheeger bounds for the spectral gap: gap/2 <= Φ <= sqrt(2*gap).
/// Returns {lower, upper} for the given measured gap.
[[nodiscard]] std::pair<double, double> cheeger_bounds(double spectral_gap);

}  // namespace frontier

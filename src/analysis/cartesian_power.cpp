#include "analysis/cartesian_power.hpp"

#include <cmath>
#include <stdexcept>

namespace frontier {

StateCodec::StateCodec(std::size_t num_vertices, std::size_t m)
    : n_(num_vertices), m_(m) {
  if (n_ == 0 || m_ == 0) {
    throw std::invalid_argument("StateCodec: n and m must be positive");
  }
  states_ = 1;
  for (std::size_t i = 0; i < m_; ++i) {
    if (states_ > (~std::size_t{0}) / n_) {
      throw std::invalid_argument("StateCodec: |V|^m overflows");
    }
    states_ *= n_;
  }
}

std::size_t StateCodec::encode(const std::vector<VertexId>& tuple) const {
  if (tuple.size() != m_) throw std::invalid_argument("StateCodec::encode");
  std::size_t code = 0;
  for (std::size_t i = 0; i < m_; ++i) {
    if (tuple[i] >= n_) throw std::out_of_range("StateCodec::encode vertex");
    code = code * n_ + tuple[i];
  }
  return code;
}

std::vector<VertexId> StateCodec::decode(std::size_t code) const {
  if (code >= states_) throw std::out_of_range("StateCodec::decode");
  std::vector<VertexId> tuple(m_);
  for (std::size_t i = m_; i-- > 0;) {
    tuple[i] = static_cast<VertexId>(code % n_);
    code /= n_;
  }
  return tuple;
}

DenseChain frontier_chain(const Graph& g, std::size_t m,
                          std::size_t max_states) {
  const StateCodec codec(g.num_vertices(), m);
  if (codec.num_states() > max_states) {
    throw std::invalid_argument("frontier_chain: |V|^m exceeds max_states");
  }
  DenseChain chain(codec.num_states());
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    const auto tuple = codec.decode(code);
    double frontier_degree = 0.0;
    for (VertexId v : tuple) {
      frontier_degree += static_cast<double>(g.degree(v));
    }
    if (frontier_degree == 0.0) {
      chain.set(code, code, 1.0);  // all walkers stuck on isolated vertices
      continue;
    }
    // Each edge incident to the frontier is taken with equal probability
    // 1/|e(L_n)| (proof of Lemma 5.1).
    const double p = 1.0 / frontier_degree;
    auto next = tuple;
    for (std::size_t i = 0; i < m; ++i) {
      for (VertexId w : g.neighbors(tuple[i])) {
        next[i] = w;
        const std::size_t to = codec.encode(next);
        chain.set(code, to, chain.get(code, to) + p);
      }
      next[i] = tuple[i];
    }
  }
  return chain;
}

std::vector<double> frontier_stationary_formula(const Graph& g,
                                                std::size_t m) {
  const StateCodec codec(g.num_vertices(), m);
  std::vector<double> pi(codec.num_states(), 0.0);
  const double denom = static_cast<double>(m) *
                       std::pow(static_cast<double>(g.num_vertices()),
                                static_cast<double>(m - 1)) *
                       static_cast<double>(g.volume());
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    double deg_sum = 0.0;
    for (VertexId v : codec.decode(code)) {
      deg_sum += static_cast<double>(g.degree(v));
    }
    pi[code] = deg_sum / denom;
  }
  return pi;
}

std::vector<double> independent_walkers_stationary(const Graph& g,
                                                   std::size_t m) {
  const StateCodec codec(g.num_vertices(), m);
  const double vol = static_cast<double>(g.volume());
  std::vector<double> pi(codec.num_states(), 0.0);
  for (std::size_t code = 0; code < codec.num_states(); ++code) {
    double p = 1.0;
    for (VertexId v : codec.decode(code)) {
      p *= static_cast<double>(g.degree(v)) / vol;
    }
    pi[code] = p;
  }
  return pi;
}

std::vector<double> uniform_joint_distribution(const Graph& g,
                                               std::size_t m) {
  const StateCodec codec(g.num_vertices(), m);
  return std::vector<double>(
      codec.num_states(),
      1.0 / static_cast<double>(codec.num_states()));
}

}  // namespace frontier

#include "analysis/dense_chain.hpp"

#include <cmath>
#include <stdexcept>

namespace frontier {

DenseChain::DenseChain(std::size_t n) : n_(n), p_(n * n, 0.0) {}

void DenseChain::set(std::size_t from, std::size_t to, double p) {
  if (from >= n_ || to >= n_) throw std::out_of_range("DenseChain::set");
  p_[from * n_ + to] = p;
}

double DenseChain::get(std::size_t from, std::size_t to) const {
  if (from >= n_ || to >= n_) throw std::out_of_range("DenseChain::get");
  return p_[from * n_ + to];
}

bool DenseChain::is_stochastic(double tol) const noexcept {
  for (std::size_t i = 0; i < n_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      const double p = p_[i * n_ + j];
      if (p < -tol) return false;
      row += p;
    }
    if (std::abs(row - 1.0) > tol) return false;
  }
  return true;
}

std::vector<double> DenseChain::step(std::span<const double> dist) const {
  if (dist.size() != n_) throw std::invalid_argument("DenseChain::step size");
  std::vector<double> out(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const double di = dist[i];
    if (di == 0.0) continue;
    const double* row = p_.data() + i * n_;
    for (std::size_t j = 0; j < n_; ++j) out[j] += di * row[j];
  }
  return out;
}

std::vector<double> DenseChain::evolve(std::span<const double> dist,
                                       std::uint64_t steps) const {
  std::vector<double> cur(dist.begin(), dist.end());
  for (std::uint64_t t = 0; t < steps; ++t) cur = step(cur);
  return cur;
}

std::vector<double> DenseChain::stationary(double tol,
                                           std::uint64_t max_iters) const {
  std::vector<double> cur(n_, n_ > 0 ? 1.0 / static_cast<double>(n_) : 0.0);
  for (std::uint64_t it = 0; it < max_iters; ++it) {
    std::vector<double> next = step(cur);
    double l1 = 0.0;
    for (std::size_t i = 0; i < n_; ++i) l1 += std::abs(next[i] - cur[i]);
    cur = std::move(next);
    if (l1 < tol) return cur;
  }
  throw std::runtime_error("DenseChain::stationary: no convergence");
}

DenseChain random_walk_chain(const Graph& g) {
  DenseChain chain(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) {
      chain.set(u, u, 1.0);
      continue;
    }
    const double p = 1.0 / static_cast<double>(nbrs.size());
    for (VertexId v : nbrs) chain.set(u, v, chain.get(u, v) + p);
  }
  return chain;
}

DenseChain lazy_random_walk_chain(const Graph& g) {
  DenseChain chain(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) {
      chain.set(u, u, 1.0);
      continue;
    }
    chain.set(u, u, 0.5);
    const double p = 0.5 / static_cast<double>(nbrs.size());
    for (VertexId v : nbrs) chain.set(u, v, chain.get(u, v) + p);
  }
  return chain;
}

double total_variation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("total_variation: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return 0.5 * sum;
}

std::vector<double> rw_stationary_distribution(const Graph& g) {
  std::vector<double> pi(g.num_vertices(), 0.0);
  const double vol = static_cast<double>(g.volume());
  if (vol == 0.0) return pi;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    pi[v] = static_cast<double>(g.degree(v)) / vol;
  }
  return pi;
}

}  // namespace frontier

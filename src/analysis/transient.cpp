#include "analysis/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/dense_chain.hpp"
#include "sampling/budget.hpp"
#include "sampling/walk.hpp"

namespace frontier {

namespace {

double max_deficit_from_vertex_rates(const Graph& g,
                                     const std::vector<double>& rate) {
  // rate[u] = p(u,v) / (1/|E|) for every edge out of u; the relative
  // difference of every edge out of u is identical, so maximize over
  // vertices with positive degree. The absolute value matters: a transient
  // walk started uniformly *over*samples low-degree vertices by up to
  // d̄/deg(u), which is how the paper's Table 4 reports values above 100%.
  double worst = 0.0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) == 0) continue;
    worst = std::max(worst, std::abs(1.0 - rate[u]));
  }
  return worst;
}

}  // namespace

std::vector<double> rw_evolve_sparse(const Graph& g,
                                     std::vector<double> dist,
                                     std::uint64_t steps) {
  if (dist.size() != g.num_vertices()) {
    throw std::invalid_argument("rw_evolve_sparse: distribution size");
  }
  std::vector<double> next(dist.size());
  for (std::uint64_t t = 0; t < steps; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const double mass = dist[u];
      if (mass == 0.0) continue;
      const auto nbrs = g.neighbors(u);
      if (nbrs.empty()) {
        next[u] += mass;  // isolated vertices absorb
        continue;
      }
      const double share = mass / static_cast<double>(nbrs.size());
      for (VertexId v : nbrs) next[v] += share;
    }
    dist.swap(next);
  }
  return dist;
}

double srw_edge_deficit_exact(const Graph& g, std::uint64_t steps) {
  if (steps == 0) {
    throw std::invalid_argument("srw_edge_deficit_exact: steps >= 1");
  }
  std::vector<double> dist(
      g.num_vertices(), 1.0 / static_cast<double>(g.num_vertices()));
  dist = rw_evolve_sparse(g, std::move(dist), steps - 1);

  const double vol = static_cast<double>(g.volume());
  std::vector<double> rate(g.num_vertices(), 0.0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) == 0) continue;
    // p(u,v) = dist[u]/deg(u); relative to 1/vol.
    rate[u] = dist[u] / static_cast<double>(g.degree(u)) * vol;
  }
  return max_deficit_from_vertex_rates(g, rate);
}

double mrw_edge_deficit_exact(const Graph& g, std::size_t k, double budget) {
  const std::uint64_t steps = multiple_rw_steps_per_walker(budget, k, 1.0);
  if (steps == 0) {
    throw std::invalid_argument("mrw_edge_deficit_exact: budget too small");
  }
  return srw_edge_deficit_exact(g, steps);
}

std::vector<double> fs_vertex_edge_rates_mc(const Graph& g, std::size_t m,
                                            std::uint64_t steps,
                                            std::size_t runs, Rng& rng) {
  if (m == 0 || runs == 0) {
    throw std::invalid_argument("fs_vertex_edge_rates_mc: m, runs >= 1");
  }
  const StartSampler starts(g, StartMode::kUniform);
  std::vector<double> acc(g.num_vertices(), 0.0);
  std::vector<VertexId> frontier(m);

  for (std::size_t r = 0; r < runs; ++r) {
    double total_deg = 0.0;
    for (auto& v : frontier) {
      v = starts.sample(rng);
      total_deg += static_cast<double>(g.degree(v));
    }
    // Advance steps-1 FS transitions; the Rao-Blackwell contribution is the
    // conditional law of the step-th (last) edge given the frontier.
    for (std::uint64_t n = 0; n + 1 < steps; ++n) {
      // Linear-scan walker selection: m is small in Appendix B (K = 10).
      const double target = uniform01(rng) * total_deg;
      double cum = 0.0;
      std::size_t i = m - 1;
      for (std::size_t j = 0; j < m; ++j) {
        cum += static_cast<double>(g.degree(frontier[j]));
        if (target < cum) {
          i = j;
          break;
        }
      }
      const VertexId u = frontier[i];
      const VertexId v = step_uniform_neighbor(g, u, rng);
      total_deg += static_cast<double>(g.degree(v)) -
                   static_cast<double>(g.degree(u));
      frontier[i] = v;
    }
    const double inv_d = 1.0 / total_deg;
    for (VertexId v : frontier) acc[v] += inv_d;
  }

  // E[c_u/D] is already the probability of each individual edge out of u
  // (a walker at u is selected with prob c_u·deg(u)/D and picks a specific
  // neighbor with prob 1/deg(u)); scale by vol so stationarity reads 1.0.
  const double vol = static_cast<double>(g.volume());
  std::vector<double> rate(g.num_vertices(), 0.0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) == 0) continue;
    rate[u] = acc[u] / static_cast<double>(runs) * vol;
  }
  return rate;
}

double fs_edge_deficit_mc(const Graph& g, std::size_t m, std::uint64_t steps,
                          std::size_t runs, Rng& rng) {
  const auto rate = fs_vertex_edge_rates_mc(g, m, steps, runs, rng);
  return max_deficit_from_vertex_rates(g, rate);
}

}  // namespace frontier

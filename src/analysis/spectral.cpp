#include "analysis/spectral.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/components.hpp"

namespace frontier {

namespace {

// One application of the lazy walk kernel (I+P)/2 to a function f:
// (Pf)(u) = mean of f over N(u).
std::vector<double> apply_lazy(const Graph& g, const std::vector<double>& f) {
  std::vector<double> out(f.size());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    double acc = 0.0;
    for (VertexId v : nbrs) acc += f[v];
    const double pf =
        nbrs.empty() ? f[u] : acc / static_cast<double>(nbrs.size());
    out[u] = 0.5 * (f[u] + pf);
  }
  return out;
}

struct Iteration {
  double lambda_lazy = 0.0;
  std::vector<double> eigenvector;
};

// Power iteration for the second eigenpair of the lazy kernel, deflating
// the principal (constant) eigenfunction in the π-inner product.
Iteration second_eigenpair(const Graph& g, std::uint64_t max_iters,
                           double tol) {
  if (g.num_vertices() < 2 || !is_connected(g)) {
    throw std::invalid_argument("spectral: need a connected graph");
  }
  const std::size_t n = g.num_vertices();
  std::vector<double> pi(n);
  const double vol = static_cast<double>(g.volume());
  for (VertexId v = 0; v < n; ++v) {
    pi[v] = static_cast<double>(g.degree(v)) / vol;
  }
  const auto deflate = [&](std::vector<double>& f) {
    double mean = 0.0;
    for (std::size_t v = 0; v < n; ++v) mean += pi[v] * f[v];
    for (double& x : f) x -= mean;
  };
  const auto norm = [&](const std::vector<double>& f) {
    double s = 0.0;
    for (std::size_t v = 0; v < n; ++v) s += pi[v] * f[v] * f[v];
    return std::sqrt(s);
  };

  std::vector<double> f(n);
  for (std::size_t v = 0; v < n; ++v) {
    f[v] = (v % 2 == 0 ? 1.0 : -1.0) +
           static_cast<double>(v) / static_cast<double>(n) * 0.01;
  }
  deflate(f);
  double nf = norm(f);
  if (nf == 0.0) {
    f[0] = 1.0;
    deflate(f);
    nf = norm(f);
  }
  for (double& x : f) x /= nf;

  Iteration out;
  for (std::uint64_t it = 0; it < max_iters; ++it) {
    std::vector<double> next = apply_lazy(g, f);
    deflate(next);
    const double nn = norm(next);
    if (nn == 0.0) {
      out.lambda_lazy = 0.0;
      break;
    }
    for (double& x : next) x /= nn;
    const double prev = out.lambda_lazy;
    out.lambda_lazy = nn;
    f = std::move(next);
    if (it > 10 && std::abs(out.lambda_lazy - prev) < tol) break;
  }
  out.eigenvector = std::move(f);
  return out;
}

}  // namespace

SpectralInfo spectral_gap(const Graph& g, std::uint64_t max_iters,
                          double tol) {
  const Iteration it = second_eigenpair(g, max_iters, tol);
  SpectralInfo info;
  info.lambda2 = 2.0 * it.lambda_lazy - 1.0;  // undo the lazy transform
  info.spectral_gap = 1.0 - info.lambda2;
  info.relaxation_time = info.spectral_gap <= 0.0
                             ? std::numeric_limits<double>::infinity()
                             : 1.0 / info.spectral_gap;
  return info;
}

std::vector<double> second_eigenvector(const Graph& g,
                                       std::uint64_t max_iters, double tol) {
  return second_eigenpair(g, max_iters, tol).eigenvector;
}

double mixing_time_bound(const Graph& g, const SpectralInfo& s, double eps) {
  if (eps <= 0.0 || eps >= 1.0) {
    throw std::invalid_argument("mixing_time_bound: eps in (0,1)");
  }
  double pi_min = 1.0;
  const double vol = static_cast<double>(g.volume());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > 0) {
      pi_min = std::min(pi_min, static_cast<double>(g.degree(v)) / vol);
    }
  }
  return s.relaxation_time * std::log(1.0 / (eps * pi_min));
}

}  // namespace frontier

// Transient edge-sampling probabilities (Appendix B / Table 4).
//
// Appendix B measures convergence to stationarity through
//   max_{(u,v) ∈ E} | 1 - p^{(B)}_{u,v} / (1/|E|) |,
// the worst relative difference between the probability that the *last*
// edge a method samples under budget B is (u,v) and the stationary uniform
// edge law 1/|E|. (Table 4 reports values above 100%: a walker started
// from a uniform vertex oversamples the edges of low-degree vertices by a
// factor of up to d̄/deg(u) before it mixes.)
//
// For one walker the last-edge law factorizes exactly:
//   p(u,v) = P[X_{s-1} = u] / deg(u),
// so SingleRW (and MultipleRW, whose walkers are iid copies) are computed
// *exactly* by evolving the dense chain from the uniform start. The FS chain
// lives on |V|^m states, so FS is estimated by Monte Carlo with a
// Rao-Blackwellized estimator: conditioned on the frontier L before the
// last step, the next edge is (u,v) with probability c_u(L)/D(L) for every
// edge out of u (c_u = walkers at u, D = Σ_i deg(v_i)), so each run
// contributes the whole conditional vector instead of a single indicator —
// cutting the variance by roughly a factor of |E|.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "random/rng.hpp"

namespace frontier {

/// Sparse t-step evolution of a vertex distribution under the RW kernel:
/// O(|E|) per step, no dense matrix — usable on full-size graphs.
[[nodiscard]] std::vector<double> rw_evolve_sparse(const Graph& g,
                                                   std::vector<double> dist,
                                                   std::uint64_t steps);

/// Exact last-edge relative deficit of a single walker after `steps` steps
/// from a uniform start. Requires a connected graph with steps >= 1.
[[nodiscard]] double srw_edge_deficit_exact(const Graph& g,
                                            std::uint64_t steps);

/// MultipleRW with K walkers under total budget B and unit jump cost: each
/// walker takes floor(B/K - 1) steps; walkers are iid so the deficit equals
/// the single-walker deficit at that horizon.
[[nodiscard]] double mrw_edge_deficit_exact(const Graph& g, std::size_t k,
                                            double budget);

/// Monte-Carlo estimate of the FS last-edge deficit with m walkers after
/// `steps` FS steps from uniform starts, averaged over `runs` replications.
[[nodiscard]] double fs_edge_deficit_mc(const Graph& g, std::size_t m,
                                        std::uint64_t steps, std::size_t runs,
                                        Rng& rng);

/// The per-vertex expected edge-rate vector E[c_u(L)/D(L)] scaled by vol(V)
/// (1.0 everywhere at stationarity) that fs_edge_deficit_mc maximizes over.
/// Exposed for tests.
[[nodiscard]] std::vector<double> fs_vertex_edge_rates_mc(
    const Graph& g, std::size_t m, std::uint64_t steps, std::size_t runs,
    Rng& rng);

}  // namespace frontier

#include "analysis/walker_counts.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace frontier {

SubsetStats subset_stats(const Graph& g, std::span<const VertexId> subset) {
  if (subset.empty() || subset.size() >= g.num_vertices()) {
    throw std::invalid_argument("subset_stats: V_A must be a proper subset");
  }
  std::vector<bool> in_a(g.num_vertices(), false);
  std::uint64_t vol_a = 0;
  for (VertexId v : subset) {
    if (v >= g.num_vertices() || in_a[v]) {
      throw std::invalid_argument("subset_stats: bad or duplicate vertex");
    }
    in_a[v] = true;
    vol_a += g.degree(v);
  }
  const std::uint64_t na = subset.size();
  const std::uint64_t nb = g.num_vertices() - na;
  const std::uint64_t vol_b = g.volume() - vol_a;

  SubsetStats s;
  s.p = static_cast<double>(na) / static_cast<double>(g.num_vertices());
  s.da = static_cast<double>(vol_a) / static_cast<double>(na);
  s.db = static_cast<double>(vol_b) / static_cast<double>(nb);
  s.d = g.average_degree();
  return s;
}

std::vector<double> binomial_pmf(std::size_t m, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("binomial_pmf: p in [0,1]");
  }
  // Log-space evaluation keeps large m stable.
  std::vector<double> pmf(m + 1, 0.0);
  for (std::size_t k = 0; k <= m; ++k) {
    double log_p = std::lgamma(static_cast<double>(m) + 1.0) -
                   std::lgamma(static_cast<double>(k) + 1.0) -
                   std::lgamma(static_cast<double>(m - k) + 1.0);
    if (k > 0) {
      if (p == 0.0) continue;
      log_p += static_cast<double>(k) * std::log(p);
    }
    if (k < m) {
      if (p == 1.0) continue;
      log_p += static_cast<double>(m - k) * std::log1p(-p);
    }
    pmf[k] = std::exp(log_p);
  }
  return pmf;
}

std::vector<double> kfs_pmf(std::size_t m, const SubsetStats& stats) {
  if (stats.d <= 0.0) throw std::invalid_argument("kfs_pmf: d > 0 required");
  std::vector<double> pmf = binomial_pmf(m, stats.p);
  const double md = static_cast<double>(m) * stats.d;
  for (std::size_t k = 0; k <= m; ++k) {
    const double tilt = (static_cast<double>(k) * stats.da +
                         static_cast<double>(m - k) * stats.db) /
                        md;
    pmf[k] *= tilt;
  }
  return pmf;
}

std::vector<double> kmw_pmf(std::size_t m, const SubsetStats& stats) {
  // vol(V_A)/vol(V) = p * da / d.
  return binomial_pmf(m, stats.p * stats.da / stats.d);
}

double alpha_ratio(const SubsetStats& stats) {
  if (stats.d <= 0.0) throw std::invalid_argument("alpha_ratio: d > 0");
  return stats.da / stats.d;
}

}  // namespace frontier

// Dense finite Markov chains — exact transient and stationary analysis for
// small graphs. Used to verify the paper's theorems numerically and by the
// Appendix-B convergence study (Table 4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace frontier {

/// Row-stochastic matrix with dense storage. Intended for chains of at most
/// a few thousand states (random walks on test graphs and small Cartesian
/// powers).
class DenseChain {
 public:
  DenseChain() = default;

  /// Zero matrix on n states; fill with set().
  explicit DenseChain(std::size_t n);

  [[nodiscard]] std::size_t num_states() const noexcept { return n_; }

  void set(std::size_t from, std::size_t to, double p);
  [[nodiscard]] double get(std::size_t from, std::size_t to) const;

  /// Verifies every row sums to 1 within tol.
  [[nodiscard]] bool is_stochastic(double tol = 1e-9) const noexcept;

  /// One step of distribution evolution: out = dist * P.
  [[nodiscard]] std::vector<double> step(
      std::span<const double> dist) const;

  /// t-step evolution.
  [[nodiscard]] std::vector<double> evolve(std::span<const double> dist,
                                           std::uint64_t steps) const;

  /// Stationary distribution via power iteration from uniform, to within
  /// l1 tolerance (throws std::runtime_error if not converged within
  /// max_iters — e.g. a periodic chain).
  [[nodiscard]] std::vector<double> stationary(double tol = 1e-12,
                                               std::uint64_t max_iters =
                                                   200000) const;

 private:
  std::size_t n_ = 0;
  std::vector<double> p_;  // row-major
};

/// Transition matrix of the simple random walk on the symmetric graph G:
/// P(u,v) = 1/deg(u) for each neighbor v. Vertices of degree 0 are absorbing
/// (self-loop) so the matrix stays stochastic.
[[nodiscard]] DenseChain random_walk_chain(const Graph& g);

/// Transition matrix of the lazy walk: stay with prob 1/2, else RW step.
[[nodiscard]] DenseChain lazy_random_walk_chain(const Graph& g);

/// Total variation distance between two distributions of equal length.
[[nodiscard]] double total_variation(std::span<const double> a,
                                     std::span<const double> b);

/// The degree-proportional stationary law deg(v)/vol(V) of the RW on G.
[[nodiscard]] std::vector<double> rw_stationary_distribution(const Graph& g);

}  // namespace frontier

// Exact small-subgraph (motif) enumeration — the ground truth the
// streaming motif sinks (stream/motif_sinks.hpp) are validated against.
//
// Everything here is exact integer combinatorics over the symmetric graph
// G: sorted-adjacency merge intersection gives the per-edge codegree
// f(u,v) = |N(u) ∩ N(v)|, and every connected 3-/4-vertex motif count
// follows from edge-local sums of f plus the degree sequence. Counts are
// returned as std::uint64_t so a full pass over E through a streaming
// sink can be compared for *equality*, not within a tolerance.
//
// All entry points require a simple graph (no self-loops, no parallel
// edges) and throw std::invalid_argument otherwise; GraphBuilder always
// produces simple graphs, but GraphStorage::from_arrays can smuggle in
// malformed CSR, which is exactly what the rejection tests do.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace frontier {

/// Validates that g is simple: every adjacency list strictly ascending
/// (sorted CSR ⇒ a duplicate neighbor appears as an equal consecutive
/// entry) and free of self-loops. Throws std::invalid_argument naming the
/// offending vertex otherwise. All exact_* functions below call this.
void require_simple_graph(const Graph& g);

/// Appends N(u) ∩ N(v), sorted ascending, into `out` (cleared first) by
/// merging the two sorted adjacency lists. |out| is f(u,v) of Section
/// 4.2.4; the list itself feeds the C4/K4 terms of the motif census.
void common_neighbors(const Graph& g, VertexId u, VertexId v,
                      std::vector<VertexId>& out);

/// Exact number of triangles in G (each counted once).
[[nodiscard]] std::uint64_t exact_triangle_count(const Graph& g);

/// Exact ∆(v) per vertex: triangles through v. Equivalent to
/// triangles_per_vertex (graph/metrics.hpp) plus the simplicity check.
[[nodiscard]] std::vector<std::uint64_t> exact_triangles_per_vertex(
    const Graph& g);

/// Exact number of wedges (paths of length 2): Σ_v C(deg(v), 2).
[[nodiscard]] std::uint64_t exact_wedge_count(const Graph& g);

/// Exact transitivity ratio 3·triangles / wedges; 0 when the graph has
/// no wedge. (Distinct from exact_global_clustering, which averages the
/// per-vertex coefficient.)
[[nodiscard]] double exact_transitivity(const Graph& g);

/// Exact mean local clustering per degree class: curve[k] is the mean of
/// c(v) = ∆(v)/C(k,2) over vertices with deg(v) = k, for k >= 2; 0 where
/// the class is empty or k < 2. Computed as the integer ratio
/// (Σ 2∆(v)) / (n_k · k · (k-1)) so the streaming ClusteringSink's
/// full-enumeration curve matches it bit for bit.
[[nodiscard]] std::vector<double> exact_local_clustering_by_degree(
    const Graph& g);

/// Exact *induced* counts of every connected motif on 3 and 4 vertices.
/// Each unordered vertex set is counted once under the motif whose edge
/// set it induces.
struct MotifCounts {
  // 3-vertex: induced path (wedge) and triangle.
  std::uint64_t wedge = 0;
  std::uint64_t triangle = 0;
  // 4-vertex, by increasing edge count: path P4 (3 edges), star/claw
  // K1,3 (3), cycle C4 (4), triangle-with-pendant "paw" (4), diamond
  // K4 minus an edge (5), clique K4 (6).
  std::uint64_t path4 = 0;
  std::uint64_t claw = 0;
  std::uint64_t cycle4 = 0;
  std::uint64_t paw = 0;
  std::uint64_t diamond = 0;
  std::uint64_t clique4 = 0;
};

/// Exact induced 3-/4-vertex motif census. Time is dominated by the
/// per-edge codegree merges plus Σ_e C(f_e, 2) adjacency probes for K4;
/// memory is O(#wedges) for the C4 codegree-pair table.
[[nodiscard]] MotifCounts exact_motif_counts(const Graph& g);

/// Maximal-clique summary via Bron–Kerbosch with pivoting: the number of
/// maximal cliques (isolated vertices count as maximal 1-cliques) and the
/// clique number ω(G).
struct CliqueSummary {
  std::uint64_t maximal_cliques = 0;
  std::uint32_t max_clique_size = 0;
};

[[nodiscard]] CliqueSummary exact_clique_summary(const Graph& g);

}  // namespace frontier

// Spectral diagnostics of the random-walk kernel: the spectral gap and the
// relaxation/mixing-time bounds behind the "trapped walker" phenomenon
// (Section 4.3). A loosely connected graph — G_AB, community-structured
// social networks — has a second eigenvalue close to 1, so a single walker
// needs ~1/(1-λ₂) steps to forget its start; Frontier Sampling's advantage
// is precisely that its *start* is already near-stationary (Theorem 5.4)
// so it never pays this relaxation time.
//
// Dense computations — intended for analysis-scale graphs (up to a few
// thousand vertices).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace frontier {

struct SpectralInfo {
  double lambda2 = 0.0;         ///< second-largest eigenvalue magnitude
  double spectral_gap = 0.0;    ///< 1 - lambda2
  double relaxation_time = 0.0; ///< 1 / gap (infinite if gap ~ 0)
};

/// Second eigenvalue of the random-walk kernel P on a connected graph via
/// power iteration on the stationarity-orthogonal complement (the kernel is
/// reversible, so eigenvalues are real; deflation uses the known principal
/// pair (1, π)). Uses the lazy kernel (I+P)/2 internally so the result is
/// the magnitude-relevant eigenvalue even on near-bipartite graphs, then
/// maps back (λ_lazy = (1+λ)/2).
/// Throws std::invalid_argument on disconnected or empty graphs.
[[nodiscard]] SpectralInfo spectral_gap(const Graph& g,
                                        std::uint64_t max_iters = 5000,
                                        double tol = 1e-10);

/// The (π-normalized) eigenfunction paired with lambda2 — the Fiedler-like
/// direction whose sign/sweep structure identifies the walk's bottleneck
/// (used by analysis/conductance.hpp's spectral_sweep_cut).
[[nodiscard]] std::vector<double> second_eigenvector(
    const Graph& g, std::uint64_t max_iters = 5000, double tol = 1e-10);

/// Upper bound on the total-variation mixing time implied by the gap:
/// t_mix(eps) <= relaxation_time * ln(1/(eps * pi_min)).
[[nodiscard]] double mixing_time_bound(const Graph& g, const SpectralInfo& s,
                                       double eps = 0.25);

}  // namespace frontier

// Synthetic surrogates for the paper's evaluation datasets (Table 1).
//
// The original crawls (Flickr / LiveJournal / YouTube from Mislove et al.
// IMC'07, the CAIDA router-level traceroute graph, Hep-Th) are not
// redistributable. Each surrogate is a deterministic, seeded construction
// matching the *shape* properties the paper's claims depend on:
// heavy-tailed degrees (preferential attachment), the LCC mass fraction
// (small disconnected components built from a power-law configuration
// model plus isolated-edge dust), the mean degree, and — for Flickr —
// Zipf-popularity group affiliations covering ~21% of users (Section 6.5).
// See DESIGN.md §3 for the full substitution table.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "experiments/config.hpp"
#include "graph/graph.hpp"
#include "random/rng.hpp"

namespace frontier {

/// A named evaluation graph, optionally with group-affiliation labels.
struct Dataset {
  std::string name;
  Graph graph;
  /// groups_of_vertex[v] = sorted group ids of v; empty when unlabeled.
  std::vector<std::vector<std::uint32_t>> groups_of_vertex;
  std::size_t num_groups = 0;

  [[nodiscard]] std::span<const std::uint32_t> groups(VertexId v) const {
    return groups_of_vertex.empty() ? std::span<const std::uint32_t>{}
                                    : groups_of_vertex[v];
  }
};

/// Flickr surrogate: ~94% LCC, mean degree ~12, heavy in-degree tail,
/// 300 Zipf-popular interest groups covering ~21% of vertices.
[[nodiscard]] Dataset synthetic_flickr(const ExperimentConfig& cfg);

/// LiveJournal surrogate: ~99.7% LCC, mean degree ~14.6.
[[nodiscard]] Dataset synthetic_livejournal(const ExperimentConfig& cfg);

/// YouTube surrogate: ~99.7% LCC, mean degree ~8.7.
[[nodiscard]] Dataset synthetic_youtube(const ExperimentConfig& cfg);

/// Router-level Internet surrogate: tree-like, mean degree ~3.2, a few
/// small disconnected fragments.
[[nodiscard]] Dataset synthetic_internet_rlt(const ExperimentConfig& cfg);

/// Hep-Th surrogate (Appendix B): small sparse citation-style graph.
[[nodiscard]] Dataset synthetic_hepth(const ExperimentConfig& cfg);

/// The paper's G_AB (Sections 6.1/6.2): two Barabási–Albert graphs with
/// equal vertex counts and average degrees 2 and 10, joined by a single
/// edge between their minimum-degree vertices. `half_size` vertices per
/// part (the paper uses 5e5; benches scale down).
[[nodiscard]] Dataset make_gab(std::size_t half_size, std::uint64_t seed);
[[nodiscard]] Dataset synthetic_gab(const ExperimentConfig& cfg);

/// G_AB variant with Erdős–Rényi halves (mean degrees 2 and 10) instead of
/// Barabási–Albert. At the paper's 5e5-vertex scale the BA construction has
/// a clearly positive assortativity (r = 0.08); at bench scale (~1e4) BA
/// hub variance swamps the between-component degree gap and r collapses to
/// ~0, destroying the signal the paper designed G_AB to expose for the
/// Table 2 experiment. ER halves restore a solidly positive global r while
/// keeping the within-half r ≈ 0 — the property that traps SingleRW.
[[nodiscard]] Dataset make_gab_er(std::size_t half_size, std::uint64_t seed);
[[nodiscard]] Dataset synthetic_gab_er(const ExperimentConfig& cfg);

/// All Table-1 datasets in paper order (Flickr, LiveJournal, YouTube,
/// Internet RLT) — convenience for Table 1/Table 2 benches.
[[nodiscard]] std::vector<Dataset> table1_datasets(
    const ExperimentConfig& cfg);

}  // namespace frontier

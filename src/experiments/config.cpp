#include "experiments/config.hpp"

#include <algorithm>
#include <cstdlib>

namespace frontier {

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return end == raw ? fallback : value;
}

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  return end == raw ? fallback : static_cast<std::uint64_t>(value);
}

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig cfg;
  cfg.runs_multiplier = std::max(0.0, env_double("FS_RUNS", 1.0));
  cfg.scale_multiplier = std::max(0.0, env_double("FS_SCALE", 1.0));
  cfg.threads = static_cast<std::size_t>(env_u64("FS_THREADS", 0));
  cfg.seed = env_u64("FS_SEED", 20100907);
  return cfg;
}

std::size_t ExperimentConfig::runs(std::size_t base_runs) const {
  const double scaled =
      static_cast<double>(base_runs) * std::max(0.001, runs_multiplier);
  return std::max<std::size_t>(4, static_cast<std::size_t>(scaled));
}

std::size_t ExperimentConfig::scaled(std::size_t base_size) const {
  const double scaled =
      static_cast<double>(base_size) * std::max(0.001, scale_multiplier);
  return std::max<std::size_t>(64, static_cast<std::size_t>(scaled));
}

}  // namespace frontier

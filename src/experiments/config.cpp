#include "experiments/config.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace frontier {
namespace {

/// The variable's value with surrounding whitespace stripped, or nullopt
/// semantics via empty-check at the call sites: unset and empty both mean
/// "use the fallback", anything else must parse completely.
const char* env_raw(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  return (raw == nullptr || *raw == '\0') ? nullptr : raw;
}

[[noreturn]] void parse_fail(const std::string& name, const char* raw,
                             const std::string& expected) {
  throw std::invalid_argument(name + "=\"" + raw + "\": expected " +
                              expected);
}

bool only_trailing_space(const char* p) {
  while (*p != '\0') {
    if (std::isspace(static_cast<unsigned char>(*p)) == 0) return false;
    ++p;
  }
  return true;
}

}  // namespace

double env_double(const std::string& name, double fallback) {
  const char* raw = env_raw(name);
  if (raw == nullptr) return fallback;
  // strtod accepts C99 hex floats ("0x12" == 18.0); that is never what an
  // FS_* knob means, and env_u64 rejects the same text, so be consistent.
  if (std::strpbrk(raw, "xX") != nullptr) {
    parse_fail(name, raw, "a decimal number");
  }
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || !only_trailing_space(end)) {
    parse_fail(name, raw, "a number");
  }
  if (!std::isfinite(value)) parse_fail(name, raw, "a finite number");
  return value;
}

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const char* raw = env_raw(name);
  if (raw == nullptr) return fallback;
  // strtoull silently wraps negative input ("-3" becomes 2^64-3); reject
  // a leading minus sign explicitly.
  const char* first = raw;
  while (std::isspace(static_cast<unsigned char>(*first)) != 0) ++first;
  if (*first == '-') parse_fail(name, raw, "a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || !only_trailing_space(end)) {
    parse_fail(name, raw, "a non-negative integer");
  }
  if (errno == ERANGE) parse_fail(name, raw, "an integer below 2^64");
  return static_cast<std::uint64_t>(value);
}

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig cfg;
  cfg.runs_multiplier = env_double("FS_RUNS", 1.0);
  cfg.scale_multiplier = env_double("FS_SCALE", 1.0);
  if (cfg.runs_multiplier < 0.0) {
    throw std::invalid_argument("FS_RUNS must be >= 0, got " +
                                std::to_string(cfg.runs_multiplier));
  }
  if (cfg.scale_multiplier < 0.0) {
    throw std::invalid_argument("FS_SCALE must be >= 0, got " +
                                std::to_string(cfg.scale_multiplier));
  }
  cfg.threads = static_cast<std::size_t>(env_u64("FS_THREADS", 0));
  cfg.seed = env_u64("FS_SEED", 20100907);
  return cfg;
}

std::size_t ExperimentConfig::runs(std::size_t base_runs) const {
  const double scaled =
      static_cast<double>(base_runs) * std::max(0.001, runs_multiplier);
  return std::max<std::size_t>(4, static_cast<std::size_t>(scaled));
}

std::size_t ExperimentConfig::scaled(std::size_t base_size) const {
  const double scaled =
      static_cast<double>(base_size) * std::max(0.001, scale_multiplier);
  return std::max<std::size_t>(64, static_cast<std::size_t>(scaled));
}

}  // namespace frontier

#include "experiments/config.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace frontier {

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig cfg;
  cfg.runs_multiplier = env_double("FS_RUNS", 1.0);
  cfg.scale_multiplier = env_double("FS_SCALE", 1.0);
  if (cfg.runs_multiplier < 0.0) {
    throw std::invalid_argument("FS_RUNS must be >= 0, got " +
                                std::to_string(cfg.runs_multiplier));
  }
  if (cfg.scale_multiplier < 0.0) {
    throw std::invalid_argument("FS_SCALE must be >= 0, got " +
                                std::to_string(cfg.scale_multiplier));
  }
  cfg.threads = static_cast<std::size_t>(env_u64("FS_THREADS", 0));
  cfg.seed = env_u64("FS_SEED", 20100907);
  return cfg;
}

std::size_t ExperimentConfig::runs(std::size_t base_runs) const {
  const double scaled =
      static_cast<double>(base_runs) * std::max(0.001, runs_multiplier);
  return std::max<std::size_t>(4, static_cast<std::size_t>(scaled));
}

std::size_t ExperimentConfig::scaled(std::size_t base_size) const {
  const double scaled =
      static_cast<double>(base_size) * std::max(0.001, scale_multiplier);
  return std::max<std::size_t>(64, static_cast<std::size_t>(scaled));
}

}  // namespace frontier

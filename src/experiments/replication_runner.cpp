#include "experiments/replication_runner.hpp"

#include <atomic>
#include <exception>
#include <thread>

namespace frontier {

void ReplicationRunner::dispatch_range(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, Rng&, SampleArena&)>& per_run)
    const {
  if (begin >= end) return;
  const Rng base(seed_);
  const std::size_t workers = std::min(workers_, end - begin);

  if (workers <= 1) {
    SampleArena arena;  // reused across every run, like a worker's
    for (std::size_t r = begin; r < end; ++r) {
      Rng rng = base.split_stream(r);
      per_run(r, rng, arena);
    }
    return;
  }

  std::atomic<std::size_t> next{begin};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        // One arena per worker, constructed on the worker's own thread
        // (first-touch locality) and reused across all its runs.
        SampleArena arena;
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t r = next.fetch_add(1, std::memory_order_relaxed);
          if (r >= end) break;
          Rng rng = base.split_stream(r);
          per_run(r, rng, arena);
        }
      } catch (...) {
        errors[w] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace frontier

#include "experiments/replication_runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "obs/metrics.hpp"

namespace frontier {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t ns_since(Clock::time_point start) noexcept {
  const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     Clock::now() - start)
                     .count();
  return d < 0 ? 0 : static_cast<std::uint64_t>(d);
}

/// Pool telemetry, registered once per dispatch when metrics are on.
/// Handles are value types, so each worker times its own runs without
/// touching shared state (the cells are per-thread shards).
struct PoolMetrics {
  Counter runs_total;
  Counter busy_ns_total;
  Gauge workers;
  Gauge queue_depth;
  Histogram run_ns;
  Histogram dispatch_ns;

  static PoolMetrics make() {
    MetricsRegistry& reg = MetricsRegistry::global();
    return PoolMetrics{reg.counter("replication.runs_total"),
                       reg.counter("replication.busy_ns_total"),
                       reg.gauge("replication.workers"),
                       reg.gauge("replication.queue_depth"),
                       reg.histogram("replication.run_ns"),
                       reg.histogram("replication.dispatch_ns")};
  }
};

}  // namespace

void ReplicationRunner::dispatch_range(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, Rng&, SampleArena&)>& per_run)
    const {
  if (begin >= end) return;
  const Rng base(seed_);
  const std::size_t workers = std::min(workers_, end - begin);

  const bool instrumented = metrics_enabled();
  PoolMetrics metrics;
  Clock::time_point dispatch_start{};
  if (instrumented) {
    metrics = PoolMetrics::make();
    metrics.workers.set(static_cast<double>(workers));
    metrics.queue_depth.set(static_cast<double>(end - begin));
    dispatch_start = Clock::now();
  }

  if (workers <= 1) {
    SampleArena arena;  // reused across every run, like a worker's
    for (std::size_t r = begin; r < end; ++r) {
      Rng rng = base.split_stream(r);
      if (instrumented) {
        const auto run_start = Clock::now();
        per_run(r, rng, arena);
        const std::uint64_t ns = ns_since(run_start);
        metrics.run_ns.observe(ns);
        metrics.busy_ns_total.add(ns);
        metrics.runs_total.add(1);
        metrics.queue_depth.set(static_cast<double>(end - r - 1));
      } else {
        per_run(r, rng, arena);
      }
    }
    if (instrumented) metrics.dispatch_ns.observe(ns_since(dispatch_start));
    return;
  }

  std::atomic<std::size_t> next{begin};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        // One arena per worker, constructed on the worker's own thread
        // (first-touch locality) and reused across all its runs.
        SampleArena arena;
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t r = next.fetch_add(1, std::memory_order_relaxed);
          if (r >= end) break;
          Rng rng = base.split_stream(r);
          if (instrumented) {
            metrics.queue_depth.set(
                static_cast<double>(r + 1 < end ? end - r - 1 : 0));
            const auto run_start = Clock::now();
            per_run(r, rng, arena);
            const std::uint64_t ns = ns_since(run_start);
            metrics.run_ns.observe(ns);
            metrics.busy_ns_total.add(ns);
            metrics.runs_total.add(1);
          } else {
            per_run(r, rng, arena);
          }
        }
      } catch (...) {
        errors[w] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) t.join();
  if (instrumented) {
    metrics.queue_depth.set(0.0);
    metrics.dispatch_ns.observe(ns_since(dispatch_start));
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace frontier

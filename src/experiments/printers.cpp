#include "experiments/printers.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace frontier {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_number(double value, int significant) {
  std::ostringstream os;
  os << std::setprecision(significant) << value;
  return os.str();
}

std::string format_percent(double fraction, int significant) {
  std::ostringstream os;
  os << std::setprecision(significant) << fraction * 100.0 << '%';
  return os.str();
}

void print_curves(std::ostream& os, const std::string& x_name,
                  std::span<const std::uint32_t> xs,
                  std::span<const std::string> series_names,
                  std::span<const std::vector<double>> series) {
  std::vector<std::string> headers;
  headers.push_back(x_name);
  for (const auto& name : series_names) headers.push_back(name);
  TextTable table(std::move(headers));
  for (std::uint32_t x : xs) {
    std::vector<std::string> row;
    row.push_back(std::to_string(x));
    for (const auto& s : series) {
      row.push_back(x < s.size() && s[x] > 0.0 ? format_number(s[x]) : "");
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

void write_curves_csv(std::ostream& os, const std::string& x_name,
                      std::span<const std::uint32_t> xs,
                      std::span<const std::string> series_names,
                      std::span<const std::vector<double>> series) {
  os << x_name;
  for (const auto& name : series_names) os << ',' << name;
  os << '\n';
  for (std::uint32_t x : xs) {
    os << x;
    for (const auto& s : series) {
      os << ',';
      if (x < s.size()) os << s[x];
    }
    os << '\n';
  }
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==\n\n";
}

}  // namespace frontier

// Legacy replication entry points, kept as thin wrappers over
// ReplicationRunner (experiments/replication_runner.hpp). New code should
// use the runner directly; these functions preserve the original free-
// function signatures for the many existing experiment call sites.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

// resolve_threads lives in core/parallel.hpp (shared with the parallel
// graph-ingestion path) and is re-exported here for existing callers.
#include "core/parallel.hpp"
#include "experiments/replication_runner.hpp"
#include "random/rng.hpp"

namespace frontier {

/// Runs `runs` replications of `body(run_index, rng)` across threads.
/// Per-run generators derive from `seed` via split_stream(run_index).
void parallel_replicate(std::size_t runs, std::uint64_t seed,
                        const std::function<void(std::size_t, Rng&)>& body,
                        std::size_t threads = 0);

/// Accumulator-merging variant: each *run* owns an Acc created by
/// `make_acc`, fills it, and the per-run accumulators are merged in run
/// order — so the result, roundoff included, is independent of the thread
/// count. Acc must be movable; merge(dst, src) folds src into dst.
template <typename Acc>
[[nodiscard]] Acc parallel_accumulate(
    std::size_t runs, std::uint64_t seed,
    const std::function<Acc()>& make_acc,
    const std::function<void(std::size_t, Rng&, Acc&)>& body,
    const std::function<void(Acc&, const Acc&)>& merge,
    std::size_t threads = 0) {
  const ReplicationRunner runner(runs, seed, threads);
  return runner.map_reduce(
      make_acc(),
      [&](std::size_t r, Rng& rng) {
        Acc acc = make_acc();
        body(r, rng, acc);
        return acc;
      },
      [&](Acc& dst, Acc&& src) { merge(dst, src); });
}

}  // namespace frontier

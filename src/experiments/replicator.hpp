// Multi-threaded Monte-Carlo replication with deterministic per-run RNG
// streams: run r always sees the same generator regardless of thread count
// or scheduling, so every experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

// resolve_threads lives in core/parallel.hpp (shared with the parallel
// graph-ingestion path) and is re-exported here for existing callers.
#include "core/parallel.hpp"
#include "random/rng.hpp"

namespace frontier {

/// Runs `runs` replications of `body(run_index, rng)` across threads.
/// Per-run generators derive from `seed` via split_stream(run_index).
void parallel_replicate(std::size_t runs, std::uint64_t seed,
                        const std::function<void(std::size_t, Rng&)>& body,
                        std::size_t threads = 0);

/// Accumulator-merging variant: each worker owns an Acc created by
/// `make_acc`, fills it run by run, and the per-worker accumulators are
/// merged left-to-right (worker order) into the returned value. Acc must be
/// movable; merge(dst, src) folds src into dst.
template <typename Acc>
[[nodiscard]] Acc parallel_accumulate(
    std::size_t runs, std::uint64_t seed,
    const std::function<Acc()>& make_acc,
    const std::function<void(std::size_t, Rng&, Acc&)>& body,
    const std::function<void(Acc&, const Acc&)>& merge,
    std::size_t threads = 0) {
  const std::size_t workers = resolve_threads(threads);
  std::vector<Acc> accs;
  accs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) accs.push_back(make_acc());

  const Rng base(seed);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      // Static striping keeps run->thread assignment deterministic; the
      // per-run RNG stream makes results independent of the assignment.
      for (std::size_t r = w; r < runs; r += workers) {
        Rng rng = base.split_stream(r);
        body(r, rng, accs[w]);
      }
    });
  }
  for (auto& t : pool) t.join();

  Acc result = std::move(accs.front());
  for (std::size_t w = 1; w < workers; ++w) merge(result, accs[w]);
  return result;
}

}  // namespace frontier

#include "experiments/replicator.hpp"

namespace frontier {

void parallel_replicate(std::size_t runs, std::uint64_t seed,
                        const std::function<void(std::size_t, Rng&)>& body,
                        std::size_t threads) {
  struct Nothing {};
  (void)parallel_accumulate<Nothing>(
      runs, seed, [] { return Nothing{}; },
      [&body](std::size_t r, Rng& rng, Nothing&) { body(r, rng); },
      [](Nothing&, const Nothing&) {}, threads);
}

}  // namespace frontier

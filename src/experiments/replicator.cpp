#include "experiments/replicator.hpp"

namespace frontier {

void parallel_replicate(std::size_t runs, std::uint64_t seed,
                        const std::function<void(std::size_t, Rng&)>& body,
                        std::size_t threads) {
  ReplicationRunner(runs, seed, threads).for_each(body);
}

}  // namespace frontier

// Parallel replication engine for Monte-Carlo experiments.
//
// Every figure and table of the paper is an average over many independent
// replications. ReplicationRunner fans those replications across worker
// threads with run r always drawing from the RNG substream
// Rng(seed).split_stream(r), and materializes per-run results in run-index
// slots that are reduced in run order after the pool joins. Scheduling is
// therefore free to be dynamic (an atomic work queue balances uneven run
// costs), while the output — including every floating-point rounding — is
// bit-identical for any thread count, which tests/test_replication_runner
// asserts and CI diffs across 1- vs 8-thread bench reports.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/parallel.hpp"
#include "random/rng.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class ReplicationRunner {
 public:
  /// `threads` resolves like resolve_threads(); the worker count is also
  /// capped at the run count so tiny experiments never spawn idle threads.
  ReplicationRunner(std::size_t runs, std::uint64_t seed,
                    std::size_t threads = 0)
      : runs_(runs),
        seed_(seed),
        workers_(std::min(resolve_threads(threads),
                          std::max<std::size_t>(runs, 1))) {}

  [[nodiscard]] std::size_t runs() const noexcept { return runs_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Runs the body for every run; no results are kept. Bodies take either
  /// (run_index, rng) or (run_index, rng, arena) — the arena overload
  /// hands the body its worker's SampleArena, which is constructed once
  /// per worker and reused across every run that worker executes, so a
  /// body that drains samplers through run_into() allocates nothing after
  /// its first run. The arena carries *scratch*, never results: runs
  /// scheduled onto the same worker must not communicate through it.
  template <typename Body>
  void for_each(const Body& body) const {
    dispatch([&](std::size_t r, Rng& rng, SampleArena& arena) {
      invoke_body(body, r, rng, arena);
    });
  }

  /// Runs body(run_index, rng[, arena]) -> R for every run and returns
  /// the results in run order. R must be movable; all runs are
  /// materialized at once, so per-run results should be O(estimate), not
  /// O(budget).
  template <typename Body>
  [[nodiscard]] auto map(const Body& body) const {
    using R = body_result_t<Body>;
    std::vector<std::optional<R>> slots(runs_);
    dispatch([&](std::size_t r, Rng& rng, SampleArena& arena) {
      slots[r].emplace(invoke_body(body, r, rng, arena));
    });
    std::vector<R> results;
    results.reserve(runs_);
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  /// Ordered fold: fold(acc, std::move(result_r)) is applied for
  /// r = 0, 1, ..., runs-1 regardless of how the runs were scheduled, so
  /// the reduction is bit-identical for any thread count. Runs are
  /// processed in fixed-size chunks (kReduceChunk — a constant, so the
  /// fold order never depends on the thread count) and each chunk's slots
  /// are released after folding: transient memory is O(chunk * result),
  /// not O(runs * result) like map().
  template <typename Acc, typename Body, typename Fold>
  [[nodiscard]] Acc map_reduce(Acc init, const Body& body,
                               const Fold& fold) const {
    using R = body_result_t<Body>;
    Acc acc = std::move(init);
    std::vector<std::optional<R>> slots(std::min(runs_, kReduceChunk));
    for (std::size_t base = 0; base < runs_; base += kReduceChunk) {
      const std::size_t count = std::min(kReduceChunk, runs_ - base);
      dispatch_range(base, base + count,
                     [&](std::size_t r, Rng& rng, SampleArena& arena) {
                       slots[r - base].emplace(
                           invoke_body(body, r, rng, arena));
                     });
      for (std::size_t i = 0; i < count; ++i) {
        fold(acc, std::move(*slots[i]));
        slots[i].reset();
      }
    }
    return acc;
  }

 private:
  /// Chunk granularity of map_reduce: large enough that the per-chunk
  /// barrier is noise next to the Monte-Carlo work, small enough that a
  /// chunk of per-run estimates stays a few MB.
  static constexpr std::size_t kReduceChunk = 256;

  /// Invokes 2-arg (run, rng) and 3-arg (run, rng, arena) bodies alike.
  template <typename Body>
  static decltype(auto) invoke_body(const Body& body, std::size_t r,
                                    Rng& rng, SampleArena& arena) {
    if constexpr (std::is_invocable_v<const Body&, std::size_t, Rng&,
                                      SampleArena&>) {
      return body(r, rng, arena);
    } else {
      return body(r, rng);
    }
  }

  template <typename Body>
  using body_result_t = std::decay_t<decltype(invoke_body(
      std::declval<const Body&>(), std::size_t{}, std::declval<Rng&>(),
      std::declval<SampleArena&>()))>;

  /// Runs [begin, end): workers claim run indices from a shared atomic
  /// counter and invoke per_run with that run's derived generator and the
  /// worker's own SampleArena (constructed on the worker's thread, reused
  /// across its runs). An exception thrown by any run is rethrown here
  /// (the lowest worker's wins) after the pool drains.
  void dispatch_range(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, Rng&, SampleArena&)>& per_run)
      const;

  void dispatch(
      const std::function<void(std::size_t, Rng&, SampleArena&)>& per_run)
      const {
    dispatch_range(0, runs_, per_run);
  }

  std::size_t runs_;
  std::uint64_t seed_;
  std::size_t workers_;
};

}  // namespace frontier

// Environment-driven experiment scaling.
//
// The paper averages over 10,000 runs on multi-million-vertex crawls; the
// default bench configuration scales this down so the whole suite finishes
// in minutes on a laptop. Override per run:
//   FS_RUNS    — multiplier on Monte-Carlo replication counts (default 1.0)
//   FS_SCALE   — multiplier on surrogate graph sizes         (default 1.0)
//   FS_THREADS — worker threads (default: hardware concurrency)
//   FS_SEED    — master seed (default 20100907, the arXiv v2 date)
#pragma once

#include <cstdint>
#include <string>

#include "core/env.hpp"

namespace frontier {

struct ExperimentConfig {
  double runs_multiplier = 1.0;
  double scale_multiplier = 1.0;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  std::uint64_t seed = 20100907;

  /// Reads FS_RUNS / FS_SCALE / FS_THREADS / FS_SEED from the environment.
  /// Malformed values (unparsable text, trailing garbage, negative
  /// multipliers or negative integers) throw std::invalid_argument naming
  /// the variable — they are never silently replaced by defaults.
  [[nodiscard]] static ExperimentConfig from_env();

  /// base_runs scaled by runs_multiplier, at least 4.
  [[nodiscard]] std::size_t runs(std::size_t base_runs) const;

  /// base_size scaled by scale_multiplier, at least 64.
  [[nodiscard]] std::size_t scaled(std::size_t base_size) const;
};

// env_double / env_u64 (the strict knob parsers previously declared here)
// live in core/env.hpp, re-exported above for the existing call sites.

}  // namespace frontier

#include "experiments/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace frontier {

namespace {

/// Appends small disconnected components (power-law configuration chunks
/// and isolated edges) around `core` until roughly `dust_vertices` extra
/// vertices exist, then unions everything.
Graph with_dust(Graph core, std::size_t dust_vertices, Rng& rng) {
  std::vector<Graph> parts;
  parts.push_back(std::move(core));
  std::size_t added = 0;
  while (added < dust_vertices) {
    const std::size_t remaining = dust_vertices - added;
    std::size_t size = 2 + uniform_index(rng, 40);
    size = std::min(size, remaining < 2 ? 2 : remaining);
    if (size <= 3) {
      parts.push_back(path_graph(std::max<std::size_t>(2, size)));
    } else if (bernoulli(rng, 0.5)) {
      // Sparse power-law fragment.
      const auto degrees = power_law_degrees(
          size, 2.2, 1, static_cast<std::uint32_t>(std::max<std::size_t>(3, size / 3)),
          rng);
      parts.push_back(configuration_model(degrees, rng));
    } else {
      parts.push_back(barabasi_albert(size, 1, rng));
    }
    added += parts.back().num_vertices();
  }
  return disjoint_union(parts);
}

/// Zipf-popularity interest groups over the vertices of g: group k has
/// ~base/(k+1)^exponent members chosen uniformly; about `coverage` of all
/// vertices end up in at least one group.
void assign_groups(Dataset& ds, std::size_t num_groups, double coverage,
                   double exponent, Rng& rng) {
  const std::size_t n = ds.graph.num_vertices();
  ds.num_groups = num_groups;
  ds.groups_of_vertex.assign(n, {});

  // Calibrate the Zipf scale so total memberships ≈ 1.4 * coverage * n
  // (the overshoot compensates for multi-membership overlap).
  double harmonic = 0.0;
  for (std::size_t k = 0; k < num_groups; ++k) {
    harmonic += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
  }
  const double base = 1.4 * coverage * static_cast<double>(n) / harmonic;

  for (std::size_t k = 0; k < num_groups; ++k) {
    const auto size = std::max<std::size_t>(
        3, static_cast<std::size_t>(
               base / std::pow(static_cast<double>(k + 1), exponent)));
    for (std::size_t j = 0; j < size; ++j) {
      const auto v = static_cast<VertexId>(uniform_index(rng, n));
      auto& groups = ds.groups_of_vertex[v];
      const auto gid = static_cast<std::uint32_t>(k);
      if (std::find(groups.begin(), groups.end(), gid) == groups.end()) {
        groups.push_back(gid);
      }
    }
  }
  for (auto& groups : ds.groups_of_vertex) {
    std::sort(groups.begin(), groups.end());
  }
}

}  // namespace

Dataset synthetic_flickr(const ExperimentConfig& cfg) {
  Rng rng(cfg.seed ^ 0xf11c4ULL);
  const std::size_t n = cfg.scaled(40000);
  const auto lcc_n = static_cast<std::size_t>(static_cast<double>(n) * 0.94);
  Dataset ds;
  ds.name = "Flickr";
  // 30 loosely-bridged communities: social graphs are modular, and the
  // paper's LCC experiments (Fig. 4) rely on walkers getting temporarily
  // trapped inside neighborhoods.
  ds.graph = with_dust(
      community_preferential(lcc_n, 6, 0.55, 30, 2, rng), n - lcc_n, rng);
  assign_groups(ds, std::max<std::size_t>(210, cfg.scaled(300)), 0.21, 0.95,
                rng);
  return ds;
}

Dataset synthetic_livejournal(const ExperimentConfig& cfg) {
  Rng rng(cfg.seed ^ 0x11feULL);
  const std::size_t n = cfg.scaled(30000);
  const auto lcc_n = static_cast<std::size_t>(static_cast<double>(n) * 0.997);
  Dataset ds;
  ds.name = "LiveJournal";
  ds.graph = with_dust(
      community_preferential(lcc_n, 7, 0.6, 24, 2, rng), n - lcc_n, rng);
  return ds;
}

Dataset synthetic_youtube(const ExperimentConfig& cfg) {
  Rng rng(cfg.seed ^ 0x70beULL);
  const std::size_t n = cfg.scaled(24000);
  const auto lcc_n = static_cast<std::size_t>(static_cast<double>(n) * 0.997);
  Dataset ds;
  ds.name = "YouTube";
  ds.graph = with_dust(
      community_preferential(lcc_n, 4, 0.5, 20, 2, rng), n - lcc_n, rng);
  return ds;
}

Dataset synthetic_internet_rlt(const ExperimentConfig& cfg) {
  Rng rng(cfg.seed ^ 0x1e7ULL);
  const std::size_t n = cfg.scaled(15000);
  // Tree-like router topology: power-law configuration model with mostly
  // degree-1/2 stubs and rare high-degree exchange points. Mean degree
  // lands near the paper's 3.2; the config model naturally leaves a few
  // small fragments outside the LCC.
  const auto degrees = power_law_degrees(
      n, 2.1, 1, static_cast<std::uint32_t>(std::max<std::size_t>(8, n / 50)),
      rng);
  Dataset ds;
  ds.name = "Internet RLT";
  ds.graph = configuration_model(degrees, rng);
  return ds;
}

Dataset synthetic_hepth(const ExperimentConfig& cfg) {
  Rng rng(cfg.seed ^ 0x4e94ULL);
  const std::size_t n = cfg.scaled(6000);
  const auto lcc_n = static_cast<std::size_t>(static_cast<double>(n) * 0.96);
  Dataset ds;
  ds.name = "Hep-Th";
  ds.graph = with_dust(barabasi_albert(lcc_n, 2, rng), n - lcc_n, rng);
  return ds;
}

Dataset make_gab(std::size_t half_size, std::uint64_t seed) {
  Rng rng(seed ^ 0x9abULL);
  // Average degrees 2 and 10 -> BA attachment of 1 and 5 links.
  const Graph ga = barabasi_albert(half_size, 1, rng);
  const Graph gb = barabasi_albert(half_size, 5, rng);
  Dataset ds;
  ds.name = "GAB";
  ds.graph = join_by_single_edge(ga, gb);
  return ds;
}

Dataset synthetic_gab(const ExperimentConfig& cfg) {
  return make_gab(cfg.scaled(5000), cfg.seed);
}

Dataset make_gab_er(std::size_t half_size, std::uint64_t seed) {
  Rng rng(seed ^ 0x9abe7ULL);
  const double n = static_cast<double>(half_size);
  // G(n, p) with expected degrees 2 and 10. ER components can leave a few
  // isolated vertices; keep only each half's LCC so G_AB stays connected
  // by its single bridge, then rebuild to equal halves.
  Graph ga = erdos_renyi_gnp(half_size, 2.0 / (n - 1.0), rng);
  Graph gb = erdos_renyi_gnp(half_size, 10.0 / (n - 1.0), rng);
  ga = largest_connected_component(ga).graph;
  gb = largest_connected_component(gb).graph;
  Dataset ds;
  ds.name = "GAB-ER";
  ds.graph = join_by_single_edge(ga, gb);
  return ds;
}

Dataset synthetic_gab_er(const ExperimentConfig& cfg) {
  return make_gab_er(cfg.scaled(5000), cfg.seed);
}

std::vector<Dataset> table1_datasets(const ExperimentConfig& cfg) {
  std::vector<Dataset> out;
  out.push_back(synthetic_flickr(cfg));
  out.push_back(synthetic_livejournal(cfg));
  out.push_back(synthetic_youtube(cfg));
  out.push_back(synthetic_internet_rlt(cfg));
  return out;
}

}  // namespace frontier

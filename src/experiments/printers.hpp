// Text rendering of experiment output: aligned tables and x/series curves,
// matching the rows and series the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace frontier {

/// Simple aligned table: header row + string cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed significant digits ("0.0123", "1.8e-05").
[[nodiscard]] std::string format_number(double value, int significant = 4);

/// Formats as a percentage ("7.2%").
[[nodiscard]] std::string format_percent(double fraction, int significant = 3);

/// Prints a named curve set: one x column and one column per series, with
/// rows restricted to the given x values. Series shorter than the x range
/// print blanks. This is the textual equivalent of the paper's log-log
/// figure series.
void print_curves(std::ostream& os, const std::string& x_name,
                  std::span<const std::uint32_t> xs,
                  std::span<const std::string> series_names,
                  std::span<const std::vector<double>> series);

/// Writes the same data as CSV (for external plotting).
void write_curves_csv(std::ostream& os, const std::string& x_name,
                      std::span<const std::uint32_t> xs,
                      std::span<const std::string> series_names,
                      std::span<const std::vector<double>> series);

/// Prints a figure/table banner ("== Figure 5: ... ==").
void print_banner(std::ostream& os, const std::string& title);

}  // namespace frontier

// Streaming statistics over Monte-Carlo replications.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace frontier {

/// Welford's numerically stable running mean/variance.
class RunningStat {
 public:
  /// Plain-old-data snapshot of the accumulator, for checkpointing
  /// (stream/checkpoint.hpp serializes it verbatim).
  struct State {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };

  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  [[nodiscard]] State state() const noexcept { return {n_, mean_, m2_}; }
  void restore(const State& s) noexcept {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Accumulates E[(θ̂ - θ)^2] per bucket across runs; produces the paper's
/// NMSE(l) = sqrt(E[(θ̂_l - θ_l)^2]) / θ_l  (eq. 1) — and, when fed CCDF
/// estimates, the CNMSE of eq. 2.
class MseAccumulator {
 public:
  /// `truth[l]` is the true value per bucket; buckets with truth 0 yield
  /// NMSE 0 (excluded from reports).
  explicit MseAccumulator(std::vector<double> truth);

  /// Adds one run's estimate vector (shorter vectors are implicitly
  /// zero-padded; longer ones have their overflow compared against 0 truth
  /// and ignored in normalized output).
  void add_run(std::span<const double> estimate);

  void merge(const MseAccumulator& other);

  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }
  [[nodiscard]] const std::vector<double>& truth() const noexcept {
    return truth_;
  }

  /// sqrt(mean squared error) / truth per bucket (0 where truth is 0).
  [[nodiscard]] std::vector<double> normalized_rmse() const;

  /// Per-bucket mean of the estimates (for bias reports).
  [[nodiscard]] std::vector<double> mean_estimate() const;

 private:
  std::vector<double> truth_;
  std::vector<double> sq_err_sum_;
  std::vector<double> est_sum_;
  std::uint64_t runs_ = 0;
};

/// Scalar counterpart: NMSE and relative bias of a single-valued estimator
/// (used by Table 2 and Table 3).
class ScalarErrorAccumulator {
 public:
  explicit ScalarErrorAccumulator(double truth) : truth_(truth) {}

  void add_run(double estimate) noexcept;
  void merge(const ScalarErrorAccumulator& other) noexcept;

  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }
  [[nodiscard]] double truth() const noexcept { return truth_; }
  [[nodiscard]] double mean_estimate() const noexcept;
  /// sqrt(E[(x̂ - truth)^2]) / |truth|; infinity if truth is 0.
  [[nodiscard]] double nmse() const noexcept;
  /// Paper's Table 2 "Bias": 1 - E[x̂]/truth.
  [[nodiscard]] double relative_bias() const noexcept;

 private:
  double truth_;
  double est_sum_ = 0.0;
  double sq_err_sum_ = 0.0;
  std::uint64_t runs_ = 0;
};

}  // namespace frontier

// Closed-form error models of Section 3: the NMSE of estimating the
// fraction θ_i of vertices with out-degree i from B independent samples.
//
//   random edge sampling   (eq. 3): NMSE(i) = sqrt((1/π_i - 1)/B),
//                                   π_i = i θ_i / d̄,
//   random vertex sampling (eq. 4): NMSE(i) = sqrt((1/θ_i - 1)/B).
//
// Edge sampling wins exactly when π_i > θ_i ⇔ i > d̄: the tail of the
// degree distribution is better estimated from edges. Stationary random
// walks (and FS) sample edges uniformly and inherit eq. 3's behaviour.
#pragma once

namespace frontier {

/// eq. 3. Requires theta_i in (0,1], degree i >= 1, mean_degree > 0.
[[nodiscard]] double analytic_nmse_edge_sampling(double theta_i, double degree,
                                                 double mean_degree,
                                                 double budget);

/// eq. 4. Requires theta_i in (0,1].
[[nodiscard]] double analytic_nmse_vertex_sampling(double theta_i,
                                                   double budget);

/// Degree at which the two models cross: edge sampling is more accurate for
/// degrees above the mean degree, vertex sampling below it.
[[nodiscard]] constexpr double analytic_crossover_degree(
    double mean_degree) noexcept {
  return mean_degree;
}

}  // namespace frontier

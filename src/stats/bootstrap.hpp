// Bootstrap confidence intervals for scalar estimates.
//
// A crawler gets *one* sample path, not 10,000 Monte-Carlo replications —
// in practice the error bar has to come from the path itself. The block
// bootstrap resamples contiguous blocks of the (autocorrelated) walk so
// the dependence structure survives resampling, then reports percentile
// intervals of the re-estimated statistic.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "random/rng.hpp"

namespace frontier {

struct ConfidenceInterval {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.95;
};

/// Percentile block bootstrap over an edge-sample sequence. `estimator`
/// maps an edge sequence to the scalar of interest (e.g. a lambda closing
/// over estimate_assortativity). `block_length` should exceed the walk's
/// decorrelation time; `replicates` draws are used for the percentiles.
[[nodiscard]] ConfidenceInterval block_bootstrap(
    std::span<const Edge> edges,
    const std::function<double(std::span<const Edge>)>& estimator,
    std::size_t block_length, std::size_t replicates, double level, Rng& rng);

}  // namespace frontier

// Machine-readable benchmark reports (schema version 1).
//
// Every bench binary can emit one JSON document describing what it ran
// (name, library version, the FS_* experiment configuration and a
// fingerprint of it) and what it measured (named numeric metrics with
// units, plus total wall time). CI's perf-smoke job collects these as
// workflow artifacts, validates them with `frontier_cli bench-report`, and
// diffs them across runs — the perf trajectory of the project is the
// history of these files, not of free-form stdout.
//
// The format is deliberately tiny: a flat object, numeric metric values
// (non-finite values serialize as JSON null), and a stable key order so
// two reports diff cleanly. parse_json() accepts exactly what to_json()
// emits — unknown keys, missing keys, wrong types, or a fingerprint that
// does not match the embedded config are all schema errors, so a report
// that parses is a report CI can trust.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "experiments/config.hpp"

namespace frontier {

/// Schema violation or malformed JSON; .what() names the offending key.
class BenchReportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a 64-bit hashing, shared by the config fingerprint below and the
/// bench harness's result fingerprints so the two schemes cannot drift.
inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
[[nodiscard]] std::uint64_t fnv1a_bytes(std::uint64_t hash, const void* data,
                                        std::size_t len) noexcept;
[[nodiscard]] std::uint64_t fnv1a_u64(std::uint64_t hash,
                                      std::uint64_t value) noexcept;

/// One measured quantity. `unit` is free-form ("ms", "edges/s", "x", "" for
/// dimensionless values like fingerprints and counts).
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;

  friend bool operator==(const BenchMetric&, const BenchMetric&) = default;
};

struct BenchReport {
  static constexpr int kSchemaVersion = 1;

  std::string name;             ///< bench binary name, e.g. "bench_fig04_..."
  std::string library_version;  ///< library_version_string() at emit time
  ExperimentConfig config;      ///< FS_RUNS/FS_SCALE/FS_THREADS/FS_SEED
  double wall_time_seconds = 0.0;
  std::vector<BenchMetric> metrics;

  /// A report for `name` under `cfg`, stamped with the library version.
  [[nodiscard]] static BenchReport make(std::string name,
                                        const ExperimentConfig& cfg);

  void add_metric(std::string metric_name, double value,
                  std::string unit = "");

  /// FNV-1a over (schema, name, runs/scale multipliers, seed) — threads
  /// excluded, because the replication engine is bit-identical across
  /// thread counts: two reports with equal fingerprints measured the same
  /// experiment, so their metrics are comparable points on a trajectory
  /// (and their wall times a valid speedup comparison).
  [[nodiscard]] std::uint64_t config_fingerprint() const noexcept;

  /// Pretty-printed JSON document (trailing newline included).
  [[nodiscard]] std::string to_json() const;

  /// Inverse of to_json(); throws BenchReportError on any deviation.
  [[nodiscard]] static BenchReport parse_json(std::string_view text);

  /// File variants; throw BenchReportError on I/O failure too.
  void write_file(const std::string& path) const;
  [[nodiscard]] static BenchReport read_file(const std::string& path);
};

}  // namespace frontier

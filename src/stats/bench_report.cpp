#include "stats/bench_report.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/version.hpp"

namespace frontier {

std::uint64_t fnv1a_bytes(std::uint64_t hash, const void* data,
                          std::size_t len) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x00000100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) noexcept {
  return fnv1a_bytes(hash, &value, sizeof(value));
}

namespace {

// ---------------------------------------------------------------------------
// Writing

/// Shortest round-trip decimal for a finite double; JSON null otherwise.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string hex64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

// ---------------------------------------------------------------------------
// Parsing: a minimal JSON reader covering exactly the documents to_json()
// emits (objects, arrays, strings, numbers, null). Numbers keep their raw
// text so 64-bit seeds survive the round trip exactly.

struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  std::string text;  // number: raw text; string: decoded contents
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw BenchReportError("bench report: invalid JSON at offset " +
                           std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") fail("unknown literal");
      pos_ += 4;
      return JsonValue{};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("lone high surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    double probe = 0.0;
    const auto res =
        std::from_chars(v.text.data(), v.text.data() + v.text.size(), probe);
    if (res.ec != std::errc{} || res.ptr != v.text.data() + v.text.size()) {
      fail("malformed number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema validation helpers: every accessor names the key it was asked for
// in its error message, so a CI failure pinpoints the offending field.

[[noreturn]] void schema_fail(const std::string& why) {
  throw BenchReportError("bench report schema: " + why);
}

const JsonValue& member(const JsonValue& obj, const std::string& key) {
  for (const auto& [k, v] : obj.members) {
    if (k == key) return v;
  }
  schema_fail("missing key \"" + key + "\"");
}

void require_exact_keys(const JsonValue& obj,
                        const std::vector<std::string>& keys,
                        const std::string& where) {
  for (const auto& [k, v] : obj.members) {
    (void)v;
    bool known = false;
    for (const std::string& key : keys) known = known || key == k;
    if (!known) schema_fail("unknown key \"" + k + "\" in " + where);
  }
  for (const std::string& key : keys) (void)member(obj, key);
  if (obj.members.size() != keys.size()) {
    schema_fail("duplicate keys in " + where);
  }
}

std::string get_string(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  if (v.kind != JsonValue::Kind::kString) {
    schema_fail("\"" + key + "\" must be a string");
  }
  return v.text;
}

/// Finite number, or NaN when the value is JSON null (how non-finite
/// metric values are serialized).
double get_number(const JsonValue& obj, const std::string& key,
                  bool allow_null) {
  const JsonValue& v = member(obj, key);
  if (v.kind == JsonValue::Kind::kNull) {
    if (allow_null) return std::nan("");
    schema_fail("\"" + key + "\" must be a number");
  }
  if (v.kind != JsonValue::Kind::kNumber) {
    schema_fail("\"" + key + "\" must be a number");
  }
  double value = 0.0;
  (void)std::from_chars(v.text.data(), v.text.data() + v.text.size(), value);
  return value;
}

std::uint64_t get_u64(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  if (v.kind != JsonValue::Kind::kNumber ||
      v.text.find_first_not_of("0123456789") != std::string::npos) {
    schema_fail("\"" + key + "\" must be an unsigned integer");
  }
  std::uint64_t value = 0;
  const auto res =
      std::from_chars(v.text.data(), v.text.data() + v.text.size(), value);
  if (res.ec != std::errc{}) {
    schema_fail("\"" + key + "\" out of 64-bit range");
  }
  return value;
}

}  // namespace

BenchReport BenchReport::make(std::string name, const ExperimentConfig& cfg) {
  BenchReport report;
  report.name = std::move(name);
  report.library_version = library_version_string();
  report.config = cfg;
  return report;
}

void BenchReport::add_metric(std::string metric_name, double value,
                             std::string unit) {
  metrics.push_back({std::move(metric_name), value, std::move(unit)});
}

std::uint64_t BenchReport::config_fingerprint() const noexcept {
  std::uint64_t hash = kFnv1aOffsetBasis;
  hash = fnv1a_u64(hash, static_cast<std::uint64_t>(kSchemaVersion));
  hash = fnv1a_bytes(hash, name.data(), name.size());
  hash = fnv1a_u64(hash, std::bit_cast<std::uint64_t>(config.runs_multiplier));
  hash = fnv1a_u64(hash, std::bit_cast<std::uint64_t>(config.scale_multiplier));
  // FS_THREADS is deliberately excluded: the replication engine is
  // bit-identical across thread counts, so reports that differ only in
  // threads measure the *same* experiment (that comparison is exactly how
  // CI derives the parallel-speedup trajectory).
  hash = fnv1a_u64(hash, config.seed);
  return hash;
}

std::string BenchReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << kSchemaVersion << ",\n";
  out << "  \"name\": " << json_string(name) << ",\n";
  out << "  \"library_version\": " << json_string(library_version) << ",\n";
  out << "  \"config\": {\n";
  out << "    \"runs_multiplier\": " << json_number(config.runs_multiplier)
      << ",\n";
  out << "    \"scale_multiplier\": " << json_number(config.scale_multiplier)
      << ",\n";
  out << "    \"threads\": " << config.threads << ",\n";
  out << "    \"seed\": " << config.seed << "\n";
  out << "  },\n";
  out << "  \"config_fingerprint\": " << json_string(hex64(config_fingerprint()))
      << ",\n";
  out << "  \"wall_time_seconds\": " << json_number(wall_time_seconds)
      << ",\n";
  out << "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": " << json_string(metrics[i].name)
        << ", \"value\": " << json_number(metrics[i].value)
        << ", \"unit\": " << json_string(metrics[i].unit) << "}";
  }
  out << (metrics.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

BenchReport BenchReport::parse_json(std::string_view text) {
  const JsonValue root = JsonParser(text).parse_document();
  if (root.kind != JsonValue::Kind::kObject) {
    schema_fail("document must be an object");
  }
  require_exact_keys(root,
                     {"schema_version", "name", "library_version", "config",
                      "config_fingerprint", "wall_time_seconds", "metrics"},
                     "report");
  if (get_u64(root, "schema_version") != kSchemaVersion) {
    schema_fail("unsupported schema_version (expected " +
                std::to_string(kSchemaVersion) + ")");
  }

  BenchReport report;
  report.name = get_string(root, "name");
  report.library_version = get_string(root, "library_version");

  const JsonValue& cfg = member(root, "config");
  if (cfg.kind != JsonValue::Kind::kObject) {
    schema_fail("\"config\" must be an object");
  }
  require_exact_keys(
      cfg, {"runs_multiplier", "scale_multiplier", "threads", "seed"},
      "config");
  report.config.runs_multiplier = get_number(cfg, "runs_multiplier", false);
  report.config.scale_multiplier = get_number(cfg, "scale_multiplier", false);
  report.config.threads =
      static_cast<std::size_t>(get_u64(cfg, "threads"));
  report.config.seed = get_u64(cfg, "seed");

  report.wall_time_seconds = get_number(root, "wall_time_seconds", false);
  if (report.wall_time_seconds < 0.0) {
    schema_fail("\"wall_time_seconds\" must be non-negative");
  }

  const JsonValue& metrics = member(root, "metrics");
  if (metrics.kind != JsonValue::Kind::kArray) {
    schema_fail("\"metrics\" must be an array");
  }
  for (const JsonValue& entry : metrics.items) {
    if (entry.kind != JsonValue::Kind::kObject) {
      schema_fail("metric entries must be objects");
    }
    require_exact_keys(entry, {"name", "value", "unit"}, "metric");
    BenchMetric metric;
    metric.name = get_string(entry, "name");
    metric.value = get_number(entry, "value", true);
    metric.unit = get_string(entry, "unit");
    if (metric.name.empty()) schema_fail("metric name must be non-empty");
    report.metrics.push_back(std::move(metric));
  }

  const std::string fingerprint = get_string(root, "config_fingerprint");
  if (fingerprint != hex64(report.config_fingerprint())) {
    schema_fail("config_fingerprint does not match name + config (expected " +
                hex64(report.config_fingerprint()) + ", found " +
                fingerprint + ")");
  }
  return report;
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw BenchReportError("bench report: cannot open " + path);
  out << to_json();
  out.flush();
  if (!out) throw BenchReportError("bench report: write failed: " + path);
}

BenchReport BenchReport::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw BenchReportError("bench report: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw BenchReportError("bench report: read failed: " + path);
  return parse_json(buffer.str());
}

}  // namespace frontier

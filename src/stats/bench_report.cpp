#include "stats/bench_report.hpp"

#include <bit>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/durable.hpp"
#include "core/io_error.hpp"
#include "core/version.hpp"
#include "stats/json.hpp"

namespace frontier {

std::uint64_t fnv1a_bytes(std::uint64_t hash, const void* data,
                          std::size_t len) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x00000100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) noexcept {
  return fnv1a_bytes(hash, &value, sizeof(value));
}

namespace {

// JSON mechanics live in stats/json.*; this file only knows the schema.
// The contexts reproduce the historic error prefixes ("bench report:
// invalid JSON at offset ...", "bench report schema: ...").
constexpr std::string_view kParseContext = "bench report";
constexpr std::string_view kSchemaContext = "bench report schema";

BenchReport parse_json_impl(std::string_view text) {
  const json::Value root = json::parse(text, kParseContext);
  if (root.kind != json::Value::Kind::kObject) {
    json::schema_fail(kSchemaContext, "document must be an object");
  }
  json::require_exact_keys(
      root,
      {"schema_version", "name", "library_version", "config",
       "config_fingerprint", "wall_time_seconds", "metrics"},
      "report", kSchemaContext);
  if (json::get_u64(root, "schema_version", kSchemaContext) !=
      static_cast<std::uint64_t>(BenchReport::kSchemaVersion)) {
    json::schema_fail(kSchemaContext,
                      "unsupported schema_version (expected " +
                          std::to_string(BenchReport::kSchemaVersion) + ")");
  }

  BenchReport report;
  report.name = json::get_string(root, "name", kSchemaContext);
  report.library_version =
      json::get_string(root, "library_version", kSchemaContext);

  const json::Value& cfg = json::member(root, "config", kSchemaContext);
  if (cfg.kind != json::Value::Kind::kObject) {
    json::schema_fail(kSchemaContext, "\"config\" must be an object");
  }
  json::require_exact_keys(
      cfg, {"runs_multiplier", "scale_multiplier", "threads", "seed"},
      "config", kSchemaContext);
  report.config.runs_multiplier =
      json::get_number(cfg, "runs_multiplier", false, kSchemaContext);
  report.config.scale_multiplier =
      json::get_number(cfg, "scale_multiplier", false, kSchemaContext);
  report.config.threads = static_cast<std::size_t>(
      json::get_u64(cfg, "threads", kSchemaContext));
  report.config.seed = json::get_u64(cfg, "seed", kSchemaContext);

  report.wall_time_seconds =
      json::get_number(root, "wall_time_seconds", false, kSchemaContext);
  if (report.wall_time_seconds < 0.0) {
    json::schema_fail(kSchemaContext,
                      "\"wall_time_seconds\" must be non-negative");
  }

  const json::Value& metrics = json::member(root, "metrics", kSchemaContext);
  if (metrics.kind != json::Value::Kind::kArray) {
    json::schema_fail(kSchemaContext, "\"metrics\" must be an array");
  }
  for (const json::Value& entry : metrics.items) {
    if (entry.kind != json::Value::Kind::kObject) {
      json::schema_fail(kSchemaContext, "metric entries must be objects");
    }
    json::require_exact_keys(entry, {"name", "value", "unit"}, "metric",
                             kSchemaContext);
    BenchMetric metric;
    metric.name = json::get_string(entry, "name", kSchemaContext);
    metric.value = json::get_number(entry, "value", true, kSchemaContext);
    metric.unit = json::get_string(entry, "unit", kSchemaContext);
    if (metric.name.empty()) {
      json::schema_fail(kSchemaContext, "metric name must be non-empty");
    }
    report.metrics.push_back(std::move(metric));
  }

  const std::string fingerprint =
      json::get_string(root, "config_fingerprint", kSchemaContext);
  if (fingerprint != json::hex64(report.config_fingerprint())) {
    json::schema_fail(kSchemaContext,
                      "config_fingerprint does not match name + config "
                      "(expected " +
                          json::hex64(report.config_fingerprint()) +
                          ", found " + fingerprint + ")");
  }
  return report;
}

}  // namespace

BenchReport BenchReport::make(std::string name, const ExperimentConfig& cfg) {
  BenchReport report;
  report.name = std::move(name);
  report.library_version = library_version_string();
  report.config = cfg;
  return report;
}

void BenchReport::add_metric(std::string metric_name, double value,
                             std::string unit) {
  metrics.push_back({std::move(metric_name), value, std::move(unit)});
}

std::uint64_t BenchReport::config_fingerprint() const noexcept {
  std::uint64_t hash = kFnv1aOffsetBasis;
  hash = fnv1a_u64(hash, static_cast<std::uint64_t>(kSchemaVersion));
  hash = fnv1a_bytes(hash, name.data(), name.size());
  hash = fnv1a_u64(hash, std::bit_cast<std::uint64_t>(config.runs_multiplier));
  hash = fnv1a_u64(hash, std::bit_cast<std::uint64_t>(config.scale_multiplier));
  // FS_THREADS is deliberately excluded: the replication engine is
  // bit-identical across thread counts, so reports that differ only in
  // threads measure the *same* experiment (that comparison is exactly how
  // CI derives the parallel-speedup trajectory).
  hash = fnv1a_u64(hash, config.seed);
  return hash;
}

std::string BenchReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << kSchemaVersion << ",\n";
  out << "  \"name\": " << json::quote(name) << ",\n";
  out << "  \"library_version\": " << json::quote(library_version) << ",\n";
  out << "  \"config\": {\n";
  out << "    \"runs_multiplier\": " << json::number(config.runs_multiplier)
      << ",\n";
  out << "    \"scale_multiplier\": " << json::number(config.scale_multiplier)
      << ",\n";
  out << "    \"threads\": " << config.threads << ",\n";
  out << "    \"seed\": " << config.seed << "\n";
  out << "  },\n";
  out << "  \"config_fingerprint\": "
      << json::quote(json::hex64(config_fingerprint())) << ",\n";
  out << "  \"wall_time_seconds\": " << json::number(wall_time_seconds)
      << ",\n";
  out << "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": " << json::quote(metrics[i].name)
        << ", \"value\": " << json::number(metrics[i].value)
        << ", \"unit\": " << json::quote(metrics[i].unit) << "}";
  }
  out << (metrics.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

BenchReport BenchReport::parse_json(std::string_view text) {
  try {
    return parse_json_impl(text);
  } catch (const json::ParseError& e) {
    throw BenchReportError(e.what());
  }
}

void BenchReport::write_file(const std::string& path) const {
  // Durable replace: CI parses these reports after the bench exits, so a
  // crash mid-write must leave the previous report or none, never half.
  try {
    durable_write_file(path, to_json());
  } catch (const IoError& e) {
    throw BenchReportError(std::string("bench report: ") + e.what());
  }
}

BenchReport BenchReport::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw BenchReportError("bench report: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw BenchReportError("bench report: read failed: " + path);
  return parse_json(buffer.str());
}

}  // namespace frontier

#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace frontier {

ConfidenceInterval block_bootstrap(
    std::span<const Edge> edges,
    const std::function<double(std::span<const Edge>)>& estimator,
    std::size_t block_length, std::size_t replicates, double level,
    Rng& rng) {
  if (edges.empty()) {
    throw std::invalid_argument("block_bootstrap: empty sample");
  }
  if (block_length == 0 || block_length > edges.size()) {
    throw std::invalid_argument("block_bootstrap: bad block length");
  }
  if (replicates < 2) {
    throw std::invalid_argument("block_bootstrap: replicates >= 2");
  }
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument("block_bootstrap: level in (0,1)");
  }

  ConfidenceInterval ci;
  ci.level = level;
  ci.point = estimator(edges);

  const std::size_t blocks_needed =
      (edges.size() + block_length - 1) / block_length;
  const std::size_t max_start = edges.size() - block_length;

  std::vector<double> stats(replicates);
  std::vector<Edge> resample;
  resample.reserve(blocks_needed * block_length);
  for (std::size_t r = 0; r < replicates; ++r) {
    resample.clear();
    for (std::size_t b = 0; b < blocks_needed; ++b) {
      const std::size_t start = uniform_index(rng, max_start + 1);
      resample.insert(resample.end(), edges.begin() + start,
                      edges.begin() + start + block_length);
    }
    resample.resize(edges.size());  // trim overshoot to the original length
    stats[r] = estimator(resample);
  }
  std::sort(stats.begin(), stats.end());

  const double alpha = (1.0 - level) / 2.0;
  const auto pick = [&](double q) {
    const double pos = q * static_cast<double>(replicates - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = std::min(lo + 1, replicates - 1);
    const double frac = pos - std::floor(pos);
    return stats[lo] * (1.0 - frac) + stats[hi] * frac;
  };
  ci.lower = pick(alpha);
  ci.upper = pick(1.0 - alpha);
  return ci;
}

}  // namespace frontier

// Minimal JSON reader/writer shared by the schema-validated telemetry
// formats (stats/bench_report.*, obs/snapshot.*) and the frontier_serve
// wire protocol (serve/protocol.*).
//
// The reader covers exactly the documents our writers emit — objects,
// arrays, strings, numbers, booleans, null — and keeps each number's raw
// text so
// 64-bit integers survive the round trip exactly. Every entry point takes
// a `context` string that prefixes error messages, so callers can wrap
// ParseError into their own schema-error types without losing the
// "which format, which key" diagnostics CI depends on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace frontier::json {

/// Malformed JSON or a schema violation; .what() carries the caller's
/// context prefix and names the offending key or offset.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool flag = false;  // meaningful iff kind == kBool
  std::string text;   // number: raw text; string: decoded contents
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;
};

/// Parses one complete document; trailing characters are an error.
/// Throws ParseError("<context>: invalid JSON at offset N: why").
[[nodiscard]] Value parse(std::string_view text, std::string_view context);

// ---------------------------------------------------------------------------
// Writer helpers.

/// Shortest round-trip decimal for a finite double; "null" otherwise.
[[nodiscard]] std::string number(double value);

/// "true" / "false".
[[nodiscard]] std::string boolean(bool value);

/// Escapes and double-quotes a string.
[[nodiscard]] std::string quote(std::string_view s);

/// "0x%016llx" — the fingerprint rendering shared by every schema.
[[nodiscard]] std::string hex64(std::uint64_t value);

// ---------------------------------------------------------------------------
// Schema accessors. Each throws ParseError("<context>: ...") naming the
// key it was asked for, so a CI failure pinpoints the offending field.
// `context` is typically "<format> schema".

[[noreturn]] void schema_fail(std::string_view context, const std::string& why);

/// Member lookup; missing keys are schema errors.
[[nodiscard]] const Value& member(const Value& obj, const std::string& key,
                                  std::string_view context);

/// Requires obj's member set to be exactly `keys` (no unknowns, no
/// duplicates, nothing missing). `where` names the object in messages.
void require_exact_keys(const Value& obj, const std::vector<std::string>& keys,
                        const std::string& where, std::string_view context);

[[nodiscard]] std::string get_string(const Value& obj, const std::string& key,
                                     std::string_view context);

/// Finite number, or NaN when the value is JSON null and `allow_null` —
/// how non-finite metric values are serialized.
[[nodiscard]] double get_number(const Value& obj, const std::string& key,
                                bool allow_null, std::string_view context);

[[nodiscard]] std::uint64_t get_u64(const Value& obj, const std::string& key,
                                    std::string_view context);

[[nodiscard]] bool get_bool(const Value& obj, const std::string& key,
                            std::string_view context);

/// Unsigned integer from a bare Value (array elements, not object members).
[[nodiscard]] std::uint64_t as_u64(const Value& v, const std::string& what,
                                   std::string_view context);

}  // namespace frontier::json

#include "stats/analytic.hpp"

#include <cmath>
#include <stdexcept>

namespace frontier {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

double analytic_nmse_edge_sampling(double theta_i, double degree,
                                   double mean_degree, double budget) {
  require(theta_i > 0.0 && theta_i <= 1.0, "analytic: theta_i in (0,1]");
  require(degree >= 1.0, "analytic: degree >= 1");
  require(mean_degree > 0.0, "analytic: mean_degree > 0");
  require(budget > 0.0, "analytic: budget > 0");
  const double pi_i = degree * theta_i / mean_degree;
  return std::sqrt((1.0 / pi_i - 1.0) / budget);
}

double analytic_nmse_vertex_sampling(double theta_i, double budget) {
  require(theta_i > 0.0 && theta_i <= 1.0, "analytic: theta_i in (0,1]");
  require(budget > 0.0, "analytic: budget > 0");
  return std::sqrt((1.0 / theta_i - 1.0) / budget);
}

}  // namespace frontier

#include "stats/error_metrics.hpp"

#include <cmath>

namespace frontier {

double nmse(std::span<const double> run_estimates, double truth) {
  if (run_estimates.empty() || truth == 0.0) return 0.0;
  double sq = 0.0;
  for (double est : run_estimates) {
    const double err = est - truth;
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(run_estimates.size())) /
         std::abs(truth);
}

std::vector<std::uint32_t> log_spaced_degrees(std::uint32_t max_value,
                                              std::uint32_t linear_until,
                                              double ratio) {
  std::vector<std::uint32_t> out;
  std::uint32_t d = 1;
  while (d <= max_value && d <= linear_until) {
    out.push_back(d);
    ++d;
  }
  double x = static_cast<double>(d);
  while (static_cast<std::uint32_t>(x) <= max_value) {
    const auto v = static_cast<std::uint32_t>(x);
    if (out.empty() || out.back() != v) out.push_back(v);
    x *= ratio;
    if (x <= static_cast<double>(out.back())) {
      x = static_cast<double>(out.back()) + 1.0;
    }
  }
  return out;
}

double geometric_mean_positive(std::span<const double> values) {
  double log_sum = 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(count));
}

double mean_positive(std::span<const double> values) {
  double sum = 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v > 0.0) {
      sum += v;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace frontier

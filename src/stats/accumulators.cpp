#include "stats/accumulators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace frontier {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

double RunningStat::variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

MseAccumulator::MseAccumulator(std::vector<double> truth)
    : truth_(std::move(truth)),
      sq_err_sum_(truth_.size(), 0.0),
      est_sum_(truth_.size(), 0.0) {}

void MseAccumulator::add_run(std::span<const double> estimate) {
  ++runs_;
  for (std::size_t l = 0; l < truth_.size(); ++l) {
    const double est = l < estimate.size() ? estimate[l] : 0.0;
    const double err = est - truth_[l];
    sq_err_sum_[l] += err * err;
    est_sum_[l] += est;
  }
}

void MseAccumulator::merge(const MseAccumulator& other) {
  if (other.truth_.size() != truth_.size()) {
    throw std::invalid_argument("MseAccumulator::merge: size mismatch");
  }
  runs_ += other.runs_;
  for (std::size_t l = 0; l < truth_.size(); ++l) {
    sq_err_sum_[l] += other.sq_err_sum_[l];
    est_sum_[l] += other.est_sum_[l];
  }
}

std::vector<double> MseAccumulator::normalized_rmse() const {
  std::vector<double> out(truth_.size(), 0.0);
  if (runs_ == 0) return out;
  for (std::size_t l = 0; l < truth_.size(); ++l) {
    if (truth_[l] <= 0.0) continue;
    out[l] = std::sqrt(sq_err_sum_[l] / static_cast<double>(runs_)) /
             truth_[l];
  }
  return out;
}

std::vector<double> MseAccumulator::mean_estimate() const {
  std::vector<double> out(truth_.size(), 0.0);
  if (runs_ == 0) return out;
  for (std::size_t l = 0; l < truth_.size(); ++l) {
    out[l] = est_sum_[l] / static_cast<double>(runs_);
  }
  return out;
}

void ScalarErrorAccumulator::add_run(double estimate) noexcept {
  ++runs_;
  est_sum_ += estimate;
  const double err = estimate - truth_;
  sq_err_sum_ += err * err;
}

void ScalarErrorAccumulator::merge(
    const ScalarErrorAccumulator& other) noexcept {
  runs_ += other.runs_;
  est_sum_ += other.est_sum_;
  sq_err_sum_ += other.sq_err_sum_;
}

double ScalarErrorAccumulator::mean_estimate() const noexcept {
  return runs_ == 0 ? 0.0 : est_sum_ / static_cast<double>(runs_);
}

double ScalarErrorAccumulator::nmse() const noexcept {
  if (runs_ == 0) return 0.0;
  if (truth_ == 0.0) return std::numeric_limits<double>::infinity();
  return std::sqrt(sq_err_sum_ / static_cast<double>(runs_)) /
         std::abs(truth_);
}

double ScalarErrorAccumulator::relative_bias() const noexcept {
  if (runs_ == 0 || truth_ == 0.0) return 0.0;
  return 1.0 - mean_estimate() / truth_;
}

}  // namespace frontier

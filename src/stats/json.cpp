#include "stats/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace frontier::json {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string_view context)
      : text_(text), context_(context) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError(std::string(context_) + ": invalid JSON at offset " +
                     std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") fail("unknown literal");
      pos_ += 4;
      return Value{};
    }
    if (c == 't' || c == 'f') {
      const bool is_true = c == 't';
      const std::string_view want = is_true ? "true" : "false";
      if (text_.substr(pos_, want.size()) != want) fail("unknown literal");
      pos_ += want.size();
      Value v;
      v.kind = Value::Kind::kBool;
      v.flag = is_true;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("lone high surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    double probe = 0.0;
    const auto res =
        std::from_chars(v.text.data(), v.text.data() + v.text.size(), probe);
    if (res.ec != std::errc{} || res.ptr != v.text.data() + v.text.size()) {
      fail("malformed number");
    }
    return v;
  }

  std::string_view text_;
  std::string_view context_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text, std::string_view context) {
  return Parser(text, context).parse_document();
}

std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

std::string boolean(bool value) { return value ? "true" : "false"; }

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string hex64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

void schema_fail(std::string_view context, const std::string& why) {
  throw ParseError(std::string(context) + ": " + why);
}

const Value& member(const Value& obj, const std::string& key,
                    std::string_view context) {
  for (const auto& [k, v] : obj.members) {
    if (k == key) return v;
  }
  schema_fail(context, "missing key \"" + key + "\"");
}

void require_exact_keys(const Value& obj, const std::vector<std::string>& keys,
                        const std::string& where, std::string_view context) {
  for (const auto& [k, v] : obj.members) {
    (void)v;
    bool known = false;
    for (const std::string& key : keys) known = known || key == k;
    if (!known) schema_fail(context, "unknown key \"" + k + "\" in " + where);
  }
  for (const std::string& key : keys) (void)member(obj, key, context);
  if (obj.members.size() != keys.size()) {
    schema_fail(context, "duplicate keys in " + where);
  }
}

std::string get_string(const Value& obj, const std::string& key,
                       std::string_view context) {
  const Value& v = member(obj, key, context);
  if (v.kind != Value::Kind::kString) {
    schema_fail(context, "\"" + key + "\" must be a string");
  }
  return v.text;
}

double get_number(const Value& obj, const std::string& key, bool allow_null,
                  std::string_view context) {
  const Value& v = member(obj, key, context);
  if (v.kind == Value::Kind::kNull) {
    if (allow_null) return std::nan("");
    schema_fail(context, "\"" + key + "\" must be a number");
  }
  if (v.kind != Value::Kind::kNumber) {
    schema_fail(context, "\"" + key + "\" must be a number");
  }
  double value = 0.0;
  (void)std::from_chars(v.text.data(), v.text.data() + v.text.size(), value);
  return value;
}

std::uint64_t as_u64(const Value& v, const std::string& what,
                     std::string_view context) {
  if (v.kind != Value::Kind::kNumber ||
      v.text.find_first_not_of("0123456789") != std::string::npos) {
    schema_fail(context, what + " must be an unsigned integer");
  }
  std::uint64_t value = 0;
  const auto res =
      std::from_chars(v.text.data(), v.text.data() + v.text.size(), value);
  if (res.ec != std::errc{}) {
    schema_fail(context, what + " out of 64-bit range");
  }
  return value;
}

std::uint64_t get_u64(const Value& obj, const std::string& key,
                      std::string_view context) {
  return as_u64(member(obj, key, context), "\"" + key + "\"", context);
}

bool get_bool(const Value& obj, const std::string& key,
              std::string_view context) {
  const Value& v = member(obj, key, context);
  if (v.kind != Value::Kind::kBool) {
    schema_fail(context, "\"" + key + "\" must be true or false");
  }
  return v.flag;
}

}  // namespace frontier::json

// One-shot error metrics (paper eqs. 1 and 2) and log-spaced bucketing used
// to render per-degree error curves the way the paper's log-log figures do.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace frontier {

/// sqrt(E[(x̂-x)^2])/x for one bucket given per-run estimates.
[[nodiscard]] double nmse(std::span<const double> run_estimates, double truth);

/// Buckets degree axes logarithmically for readable curve output:
/// {1, 2, ..., 9, 10, 13, 18, 24, ...} — exact below `linear_until`, then
/// multiplicative with the given ratio, capped at max_value.
[[nodiscard]] std::vector<std::uint32_t> log_spaced_degrees(
    std::uint32_t max_value, std::uint32_t linear_until = 10,
    double ratio = 1.35);

/// Geometric mean of the positive entries (summary statistic used to
/// compare whole error curves); 0 if none are positive.
[[nodiscard]] double geometric_mean_positive(std::span<const double> values);

/// Mean of the positive entries; 0 if none are positive.
[[nodiscard]] double mean_positive(std::span<const double> values);

}  // namespace frontier

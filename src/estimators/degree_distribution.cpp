#include "estimators/degree_distribution.hpp"

namespace frontier {

std::vector<double> estimate_degree_distribution(const Graph& g,
                                                 std::span<const Edge> edges,
                                                 DegreeKind kind) {
  std::vector<double> weighted;  // Σ 1/deg(v_i) per degree bucket
  double s = 0.0;
  for (const Edge& e : edges) {
    const double inv_deg = 1.0 / static_cast<double>(g.degree(e.v));
    s += inv_deg;
    const std::uint32_t d = degree_of(g, e.v, kind);
    if (d >= weighted.size()) weighted.resize(d + 1, 0.0);
    weighted[d] += inv_deg;
  }
  if (s > 0.0) {
    for (double& w : weighted) w /= s;
  }
  return weighted;
}

std::vector<double> estimate_degree_distribution_uniform(
    const Graph& g, std::span<const VertexId> vertices, DegreeKind kind) {
  std::vector<double> counts;
  for (VertexId v : vertices) {
    const std::uint32_t d = degree_of(g, v, kind);
    if (d >= counts.size()) counts.resize(d + 1, 0.0);
    counts[d] += 1.0;
  }
  if (!vertices.empty()) {
    for (double& c : counts) c /= static_cast<double>(vertices.size());
  }
  return counts;
}

std::vector<double> estimate_degree_ccdf(const Graph& g,
                                         std::span<const Edge> edges,
                                         DegreeKind kind) {
  return ccdf_from_pdf(estimate_degree_distribution(g, edges, kind));
}

}  // namespace frontier

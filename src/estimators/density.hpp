// Label-density estimators (Sections 4.2.1 and 4.2.3).
//
// Edge label density (eq. 5):  p̂_l = Σ 1(l ∈ L_e(u_i,v_i)) / B*
// over the sampled edges that carry labels.
//
// Vertex label density (eq. 7): θ̂_l = (1/(S·B)) Σ 1(l ∈ L_v(v_i))/deg(v_i)
// with S = (1/B) Σ 1/deg(v_i) — the importance-reweighted estimator that
// corrects the degree bias of stationary random-walk samples.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace frontier {

/// eq. 5 over the subsequence of edges where `labeled` holds; `has_label`
/// decides whether the label of interest is present. Returns 0 when no
/// sampled edge is labeled.
[[nodiscard]] double estimate_edge_label_density(
    std::span<const Edge> edges,
    const std::function<bool(const Edge&)>& labeled,
    const std::function<bool(const Edge&)>& has_label);

/// eq. 7 from random-walk (or random-edge) sampled edges: the i-th sample
/// contributes through its target vertex v_i. Returns 0 for empty input.
[[nodiscard]] double estimate_vertex_label_density(
    const Graph& g, std::span<const Edge> edges,
    const std::function<bool(VertexId)>& pred);

/// Vertex label density from *uniform vertex* samples: the plain empirical
/// fraction (no reweighting needed).
[[nodiscard]] double estimate_vertex_label_density_uniform(
    std::span<const VertexId> vertices,
    const std::function<bool(VertexId)>& pred);

/// Batched group-affiliation densities (Section 6.5): estimates θ_l for all
/// groups l in [0, num_groups) in one pass. `groups_of(v)` returns the group
/// ids of vertex v.
[[nodiscard]] std::vector<double> estimate_group_densities(
    const Graph& g, std::span<const Edge> edges,
    const std::function<std::span<const std::uint32_t>(VertexId)>& groups_of,
    std::size_t num_groups);

/// Group densities from uniform vertex samples (comparison baseline).
[[nodiscard]] std::vector<double> estimate_group_densities_uniform(
    std::span<const VertexId> vertices,
    const std::function<std::span<const std::uint32_t>(VertexId)>& groups_of,
    std::size_t num_groups);

}  // namespace frontier

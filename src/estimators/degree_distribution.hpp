// Degree-distribution estimators.
//
// Walk/edge samples: eq. 7 specialized per degree value — one accumulation
// pass fills θ̂ for every i simultaneously (the per-i indicator functions
// partition the samples, so a histogram of 1/deg(v_i) weights keyed by the
// degree of interest is exactly the batched estimator).
//
// Uniform vertex samples: the plain empirical degree histogram.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"

namespace frontier {

/// θ̂ from random-walk or random-edge sampled edges (eq. 7 batched over all
/// degrees). theta_hat[i] estimates the fraction of vertices whose
/// `kind`-degree equals i. Sized to the largest observed degree + 1.
[[nodiscard]] std::vector<double> estimate_degree_distribution(
    const Graph& g, std::span<const Edge> edges, DegreeKind kind);

/// θ̂ from uniform vertex samples (empirical histogram).
[[nodiscard]] std::vector<double> estimate_degree_distribution_uniform(
    const Graph& g, std::span<const VertexId> vertices, DegreeKind kind);

/// Convenience: estimate θ̂ then return its CCDF γ̂ (eq. 2's γ).
[[nodiscard]] std::vector<double> estimate_degree_ccdf(
    const Graph& g, std::span<const Edge> edges, DegreeKind kind);

}  // namespace frontier

// Assortative-mixing coefficient estimator (Section 4.2.2).
//
// Sampled symmetric edges (u,v) that exist as directed edges in E_d carry
// the label (outdeg(u), indeg(v)); the estimator is the empirical Pearson
// correlation of these labels over the labeled subsequence — exactly the
// r̂ of Section 4.2.2 computed from the p̂_ij table, but accumulated as
// moment sums so no W_out x W_in matrix is materialized. Asymptotically
// unbiased by Theorem 4.1.
#pragma once

#include <span>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace frontier {

/// Incremental moment accumulator for (out-degree, in-degree) edge labels.
class AssortativityAccumulator {
 public:
  /// Plain-old-data snapshot of the moment sums, for checkpointing
  /// (stream/checkpoint.hpp serializes it verbatim).
  struct State {
    std::uint64_t n = 0;
    double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  };

  /// Adds one labeled edge with x = outdeg(u), y = indeg(v).
  void add(double x, double y) noexcept;

  /// Number of labeled samples B* absorbed so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

  /// Current r̂; 0 if fewer than 2 samples or a zero-variance marginal.
  [[nodiscard]] double value() const noexcept;

  [[nodiscard]] State state() const noexcept {
    return {n_, sx_, sy_, sxx_, syy_, sxy_};
  }
  void restore(const State& s) noexcept {
    n_ = s.n;
    sx_ = s.sx;
    sy_ = s.sy;
    sxx_ = s.sxx;
    syy_ = s.syy;
    sxy_ = s.sxy;
  }

 private:
  std::uint64_t n_ = 0;
  double sx_ = 0.0, sy_ = 0.0, sxx_ = 0.0, syy_ = 0.0, sxy_ = 0.0;
};

/// r̂ from a sequence of sampled symmetric edges: filters to edges present
/// in E_d (E* = E_d, the labeled subset) and correlates their labels.
[[nodiscard]] double estimate_assortativity(const Graph& g,
                                            std::span<const Edge> edges);

}  // namespace frontier

#include "estimators/joint_degree.hpp"

#include <cmath>

namespace frontier {

void JointDegreeEstimate::absorb(const Graph& g, const Edge& e) {
  if (!g.has_directed_edge(e.u, e.v)) return;
  ++cells_[{g.out_degree(e.u), g.in_degree(e.v)}];
  ++count_;
}

double JointDegreeEstimate::probability(std::uint32_t out_i,
                                        std::uint32_t in_j) const {
  if (count_ == 0) return 0.0;
  const auto it = cells_.find({out_i, in_j});
  return it == cells_.end()
             ? 0.0
             : static_cast<double>(it->second) / static_cast<double>(count_);
}

double JointDegreeEstimate::marginal_out(std::uint32_t i) const {
  if (count_ == 0) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [key, n] : cells_) {
    if (key.first == i) total += n;
  }
  return static_cast<double>(total) / static_cast<double>(count_);
}

double JointDegreeEstimate::marginal_in(std::uint32_t j) const {
  if (count_ == 0) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [key, n] : cells_) {
    if (key.second == j) total += n;
  }
  return static_cast<double>(total) / static_cast<double>(count_);
}

double JointDegreeEstimate::assortativity() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (const auto& [key, c] : cells_) {
    const double x = key.first;
    const double y = key.second;
    const double w = static_cast<double>(c);
    sx += w * x;
    sy += w * y;
    sxx += w * x * x;
    syy += w * y * y;
    sxy += w * x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

JointDegreeEstimate estimate_joint_degree(const Graph& g,
                                          std::span<const Edge> edges) {
  JointDegreeEstimate est;
  for (const Edge& e : edges) est.absorb(g, e);
  return est;
}

}  // namespace frontier

#include "estimators/joint_degree.hpp"

#include <algorithm>
#include <cmath>

namespace frontier {

namespace {

/// SplitMix64 finalizer: full-avalanche mix of the packed key into a
/// table slot. Degree pairs are tightly clustered in the low bits, so an
/// identity hash would pile them into a few probe chains.
[[nodiscard]] constexpr std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::size_t kInitialCapacity = 64;  // power of two

}  // namespace

void JointDegreeEstimate::grow() {
  const std::size_t cap = keys_.empty() ? kInitialCapacity : keys_.size() * 2;
  std::vector<std::uint64_t> keys(cap, 0);
  std::vector<std::uint64_t> counts(cap, 0);
  const std::size_t mask = cap - 1;
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (counts_[s] == 0) continue;
    std::size_t t = static_cast<std::size_t>(mix(keys_[s])) & mask;
    while (counts[t] != 0) t = (t + 1) & mask;
    keys[t] = keys_[s];
    counts[t] = counts_[s];
  }
  keys_ = std::move(keys);
  counts_ = std::move(counts);
}

void JointDegreeEstimate::absorb(const Graph& g, const Edge& e) {
  if (!g.has_directed_edge(e.u, e.v)) return;
  // Grow at 1/2 load so probe chains stay short on the hot path.
  if (used_ * 2 >= keys_.size()) grow();
  const std::uint64_t key = pack(g.out_degree(e.u), g.in_degree(e.v));
  const std::size_t mask = keys_.size() - 1;
  std::size_t s = static_cast<std::size_t>(mix(key)) & mask;
  while (counts_[s] != 0 && keys_[s] != key) s = (s + 1) & mask;
  if (counts_[s] == 0) {
    keys_[s] = key;
    ++used_;
  }
  ++counts_[s];
  ++count_;
  dirty_ = true;
}

const std::vector<JointDegreeEstimate::Cell>& JointDegreeEstimate::cells()
    const {
  if (dirty_) {
    sorted_.clear();
    sorted_.reserve(used_);
    for (std::size_t s = 0; s < keys_.size(); ++s) {
      if (counts_[s] == 0) continue;
      const Key key{static_cast<std::uint32_t>(keys_[s] >> 32),
                    static_cast<std::uint32_t>(keys_[s])};
      sorted_.emplace_back(key, counts_[s]);
    }
    std::sort(sorted_.begin(), sorted_.end(),
              [](const Cell& a, const Cell& b) { return a.first < b.first; });
    dirty_ = false;
  }
  return sorted_;
}

double JointDegreeEstimate::probability(std::uint32_t out_i,
                                        std::uint32_t in_j) const {
  if (count_ == 0) return 0.0;
  const std::uint64_t key = pack(out_i, in_j);
  const std::size_t mask = keys_.size() - 1;
  std::size_t s = static_cast<std::size_t>(mix(key)) & mask;
  while (counts_[s] != 0) {
    if (keys_[s] == key) {
      return static_cast<double>(counts_[s]) / static_cast<double>(count_);
    }
    s = (s + 1) & mask;
  }
  return 0.0;
}

double JointDegreeEstimate::marginal_out(std::uint32_t i) const {
  if (count_ == 0) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [key, n] : cells()) {
    if (key.first == i) total += n;
  }
  return static_cast<double>(total) / static_cast<double>(count_);
}

double JointDegreeEstimate::marginal_in(std::uint32_t j) const {
  if (count_ == 0) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [key, n] : cells()) {
    if (key.second == j) total += n;
  }
  return static_cast<double>(total) / static_cast<double>(count_);
}

double JointDegreeEstimate::assortativity() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  // cells() iterates key-sorted, the same order the std::map-backed
  // implementation summed in, so the roundoff is unchanged.
  for (const auto& [key, c] : cells()) {
    const double x = key.first;
    const double y = key.second;
    const double w = static_cast<double>(c);
    sx += w * x;
    sy += w * y;
    sxx += w * x * x;
    syy += w * y * y;
    sxy += w * x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

JointDegreeEstimate estimate_joint_degree(const Graph& g,
                                          std::span<const Edge> edges) {
  JointDegreeEstimate est;
  for (const Edge& e : edges) est.absorb(g, e);
  return est;
}

}  // namespace frontier

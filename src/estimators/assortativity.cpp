#include "estimators/assortativity.hpp"

#include <cmath>

namespace frontier {

void AssortativityAccumulator::add(double x, double y) noexcept {
  ++n_;
  sx_ += x;
  sy_ += y;
  sxx_ += x * x;
  syy_ += y * y;
  sxy_ += x * y;
}

double AssortativityAccumulator::value() const noexcept {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double cov = sxy_ / n - (sx_ / n) * (sy_ / n);
  const double vx = sxx_ / n - (sx_ / n) * (sx_ / n);
  const double vy = syy_ / n - (sy_ / n) * (sy_ / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

double estimate_assortativity(const Graph& g, std::span<const Edge> edges) {
  AssortativityAccumulator acc;
  for (const Edge& e : edges) {
    if (!g.has_directed_edge(e.u, e.v)) continue;  // unlabeled: skip
    acc.add(static_cast<double>(g.out_degree(e.u)),
            static_cast<double>(g.in_degree(e.v)));
  }
  return acc.value();
}

}  // namespace frontier

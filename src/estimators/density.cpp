#include "estimators/density.hpp"

namespace frontier {

double estimate_edge_label_density(
    std::span<const Edge> edges,
    const std::function<bool(const Edge&)>& labeled,
    const std::function<bool(const Edge&)>& has_label) {
  std::uint64_t b_star = 0;
  std::uint64_t hits = 0;
  for (const Edge& e : edges) {
    if (!labeled(e)) continue;
    ++b_star;
    if (has_label(e)) ++hits;
  }
  return b_star == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(b_star);
}

double estimate_vertex_label_density(
    const Graph& g, std::span<const Edge> edges,
    const std::function<bool(VertexId)>& pred) {
  if (edges.empty()) return 0.0;
  double s = 0.0;
  double weighted_hits = 0.0;
  for (const Edge& e : edges) {
    const double inv_deg = 1.0 / static_cast<double>(g.degree(e.v));
    s += inv_deg;
    if (pred(e.v)) weighted_hits += inv_deg;
  }
  return s == 0.0 ? 0.0 : weighted_hits / s;
}

double estimate_vertex_label_density_uniform(
    std::span<const VertexId> vertices,
    const std::function<bool(VertexId)>& pred) {
  if (vertices.empty()) return 0.0;
  std::uint64_t hits = 0;
  for (VertexId v : vertices) {
    if (pred(v)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(vertices.size());
}

std::vector<double> estimate_group_densities(
    const Graph& g, std::span<const Edge> edges,
    const std::function<std::span<const std::uint32_t>(VertexId)>& groups_of,
    std::size_t num_groups) {
  std::vector<double> weighted(num_groups, 0.0);
  double s = 0.0;
  for (const Edge& e : edges) {
    const double inv_deg = 1.0 / static_cast<double>(g.degree(e.v));
    s += inv_deg;
    for (std::uint32_t grp : groups_of(e.v)) {
      if (grp < num_groups) weighted[grp] += inv_deg;  // others untracked
    }
  }
  if (s > 0.0) {
    for (double& w : weighted) w /= s;
  }
  return weighted;
}

std::vector<double> estimate_group_densities_uniform(
    std::span<const VertexId> vertices,
    const std::function<std::span<const std::uint32_t>(VertexId)>& groups_of,
    std::size_t num_groups) {
  std::vector<double> counts(num_groups, 0.0);
  for (VertexId v : vertices) {
    for (std::uint32_t grp : groups_of(v)) {
      if (grp < num_groups) counts[grp] += 1.0;
    }
  }
  if (!vertices.empty()) {
    for (double& c : counts) c /= static_cast<double>(vertices.size());
  }
  return counts;
}

}  // namespace frontier

#include "estimators/graph_moments.hpp"

#include <cmath>
#include <stdexcept>

namespace frontier {

double estimate_average_degree(const Graph& g, std::span<const Edge> edges) {
  if (edges.empty()) return 0.0;
  double s = 0.0;
  for (const Edge& e : edges) {
    s += 1.0 / static_cast<double>(g.degree(e.v));
  }
  return s == 0.0 ? 0.0 : static_cast<double>(edges.size()) / s;
}

double estimate_average_degree_uniform(const Graph& g,
                                       std::span<const VertexId> vertices) {
  if (vertices.empty()) return 0.0;
  double sum = 0.0;
  for (VertexId v : vertices) sum += static_cast<double>(g.degree(v));
  return sum / static_cast<double>(vertices.size());
}

double estimate_degree_moment(const Graph& g, std::span<const Edge> edges,
                              unsigned k) {
  if (k == 0) return edges.empty() ? 0.0 : 1.0;  // E[deg^0] = 1
  if (edges.empty()) return 0.0;
  // Stationary samples are degree-biased: E_sample[deg^(k-1)] =
  // Σ_v deg^k / vol, and S = E_sample[deg^-1] -> |V|/vol, so the ratio is
  // the k-th raw moment (1/|V|) Σ_v deg^k.
  double numerator = 0.0;
  double s = 0.0;
  for (const Edge& e : edges) {
    const double deg = static_cast<double>(g.degree(e.v));
    numerator += std::pow(deg, static_cast<double>(k) - 1.0);
    s += 1.0 / deg;
  }
  return s == 0.0 ? 0.0 : numerator / s;
}

double estimate_volume(const Graph& g, std::span<const Edge> edges,
                       double num_vertices) {
  if (num_vertices <= 0.0) {
    throw std::invalid_argument("estimate_volume: num_vertices > 0");
  }
  return estimate_average_degree(g, edges) * num_vertices;
}

}  // namespace frontier

#include "estimators/neighbor_degree.hpp"

namespace frontier {

std::vector<double> estimate_average_neighbor_degree(
    const Graph& g, std::span<const Edge> edges) {
  std::vector<double> sum;
  std::vector<std::uint64_t> count;
  for (const Edge& e : edges) {
    const std::uint32_t k = g.degree(e.u);
    if (k >= sum.size()) {
      sum.resize(k + 1, 0.0);
      count.resize(k + 1, 0);
    }
    sum[k] += static_cast<double>(g.degree(e.v));
    ++count[k];
  }
  std::vector<double> knn(sum.size(), 0.0);
  for (std::size_t k = 0; k < sum.size(); ++k) {
    if (count[k] > 0) knn[k] = sum[k] / static_cast<double>(count[k]);
  }
  return knn;
}

}  // namespace frontier

// Scalar graph-moment estimators built on the S-normalization of eq. 7.
//
// The normalizer S = (1/B) Σ 1/deg(v_i) of the paper's vertex-label
// estimator converges to |V|/|E| (Theorem 4.1), so 1/S is an
// asymptotically unbiased estimator of the average degree vol(V)/|V| —
// Section 3 assumes d̄ is known; this is how a crawler obtains it. The
// degree-moment generalization Σ deg^k estimators follow the same pattern.
#pragma once

#include <span>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace frontier {

/// Average symmetric degree d̄ from stationary RW/FS/RE edge samples:
/// 1 / mean(1/deg(v_i)). Returns 0 for empty input.
[[nodiscard]] double estimate_average_degree(const Graph& g,
                                             std::span<const Edge> edges);

/// Average degree from uniform vertex samples (plain mean of degrees).
[[nodiscard]] double estimate_average_degree_uniform(
    const Graph& g, std::span<const VertexId> vertices);

/// k-th raw moment of the degree distribution, E[deg^k], from stationary
/// edge samples: mean(deg(v_i)^{k-1}) / mean(deg(v_i)^{-1})^{0}... —
/// implemented as Σ deg^(k-1) / Σ deg^(-1) reweighting. k = 1 reduces to
/// estimate_average_degree.
[[nodiscard]] double estimate_degree_moment(const Graph& g,
                                            std::span<const Edge> edges,
                                            unsigned k);

/// Estimated |E| (ordered symmetric edges = vol(V)) given the true |V| —
/// the companion of estimate_average_degree for crawlers that know the
/// user-id space size: vol ≈ |V| / S.
[[nodiscard]] double estimate_volume(const Graph& g,
                                     std::span<const Edge> edges,
                                     double num_vertices);

}  // namespace frontier

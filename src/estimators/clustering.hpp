// Global clustering coefficient estimator (Section 4.2.4, Corollary 4.2).
//
//   Ĉ = (1/(S·B)) Σ_i f(v_i, u_i) / ( 2 · C(deg(v_i), 2) )
//   S  = (1/B) Σ_i 1/deg(v_i)   restricted to deg(v_i) >= 2,
//
// where f(v,u) counts the common neighbors of v and u. Since
// Σ_{u∈N(v)} f(v,u) = 2∆(v), the numerator converges (Theorem 4.1) to
// (Σ_v c(v))/|E| and S to |V*|/|E|, so Ĉ → C almost surely. Note: the
// paper's displayed estimator carries an extra 1/deg(v_i) in the numerator
// and no factor 1/2; as literally written it converges to
// (2/|V*|) Σ c(v)/deg(v) rather than C — we implement the corrected
// weights (see EXPERIMENTS.md "deviations"); the two coincide on regular
// graphs.
#pragma once

#include <span>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace frontier {

/// Ĉ from a sequence of stationary-RW (or random-edge) sampled edges.
/// Each sample queries the common-neighbor count f(v_i, u_i) on g — the
/// one-hop information a crawler obtains when it expands both endpoints.
[[nodiscard]] double estimate_global_clustering(const Graph& g,
                                                std::span<const Edge> edges);

}  // namespace frontier

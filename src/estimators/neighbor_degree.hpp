// Average-neighbor-degree curve estimator.
//
// knn(k) = E[deg(u) | deg(v) = k] over uniformly sampled symmetric edges
// (v, u) — exactly the conditional a stationary RW/FS/RE sample estimates
// with *no* reweighting: bucket the samples by deg(u_i) of the walked-from
// endpoint and average deg(v_i) of the walked-to endpoint.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace frontier {

/// knn-hat indexed by symmetric degree; 0 where no sample landed.
[[nodiscard]] std::vector<double> estimate_average_neighbor_degree(
    const Graph& g, std::span<const Edge> edges);

}  // namespace frontier

#include "estimators/clustering.hpp"

#include "graph/metrics.hpp"

namespace frontier {

double estimate_global_clustering(const Graph& g,
                                  std::span<const Edge> edges) {
  // Derivation (Corollary 4.2, with the normalization carried through
  // explicitly): for a uniform edge sample (v, u),
  //   E[ f(v,u) / (2 C(deg(v),2)) ] = (1/|E|) Σ_v Σ_{u∈N(v)} f(v,u)/(2 C)
  //                                 = (1/|E|) Σ_v ∆(v)/C(deg(v),2)
  //                                 = (1/|E|) Σ_v c(v),
  // because Σ_{u∈N(v)} f(v,u) = 2∆(v) (each triangle at v is seen by both
  // of its edges at v). Dividing by S = (1/B) Σ 1/deg(v_i) restricted to
  // deg(v_i) >= 2, which converges to |V*|/|E| by Theorem 4.1, yields C.
  // (The paper's displayed Ĉ carries an extra 1/deg(v_i) and no 1/2; as
  // written it converges to (2/|V*|) Σ c(v)/deg(v), not to C — we use the
  // corrected weights, which agree exactly on a full pass over E. See
  // EXPERIMENTS.md, "deviations".)
  double s = 0.0;
  double num = 0.0;
  for (const Edge& e : edges) {
    const double deg = static_cast<double>(g.degree(e.u));
    if (deg < 2.0) continue;
    s += 1.0 / deg;
    const double f = static_cast<double>(shared_neighbors(g, e.u, e.v));
    const double pairs = deg * (deg - 1.0) / 2.0;
    num += f / (2.0 * pairs);
  }
  return s == 0.0 ? 0.0 : num / s;
}

}  // namespace frontier

// Joint degree (degree–degree) distribution estimator — the p̂_ij table of
// Section 4.2.2, kept sparse. Each sampled symmetric edge (u,v) that exists
// in E_d carries the label (outdeg(u), indeg(v)); p̂_ij is the empirical
// fraction of labeled samples with label (i,j) (eq. 5 batched over all
// labels). The assortativity coefficient, the marginals q̂ and their
// standard deviations all derive from it.
//
// The accumulator is a flat open-addressing hash table (packed 64-bit
// keys, linear probing, power-of-two capacity): absorb() is a single
// probe + increment instead of a std::map node walk/allocation, which
// makes it ~an order of magnitude faster per sampled edge on long crawls
// (BM_JointDegreeAbsorb in bench_micro_samplers). Reads finalize the
// table into a key-sorted cell list on demand, so probabilities,
// marginals, assortativity and cells() iterate in exactly the order the
// old std::map produced — summation roundoff included.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace frontier {

class JointDegreeEstimate {
 public:
  using Key = std::pair<std::uint32_t, std::uint32_t>;  ///< (out i, in j)
  using Cell = std::pair<Key, std::uint64_t>;           ///< label -> count

  /// Absorbs one sampled symmetric edge; ignores edges not in E_d.
  void absorb(const Graph& g, const Edge& e);

  /// Number of labeled samples B* absorbed.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// p̂_ij (0 if unseen). O(1) expected.
  [[nodiscard]] double probability(std::uint32_t out_i,
                                   std::uint32_t in_j) const;

  /// Marginal q̂^out_i = Σ_j p̂_ij.
  [[nodiscard]] double marginal_out(std::uint32_t i) const;
  /// Marginal q̂^in_j = Σ_i p̂_ij.
  [[nodiscard]] double marginal_in(std::uint32_t j) const;

  /// The assortativity coefficient computed from the table (equals the
  /// moment-based estimate_assortativity on the same samples).
  [[nodiscard]] double assortativity() const;

  /// Sparse read access for reporting: the non-empty cells sorted by
  /// (out, in) key. Finalized lazily from the hash table on first read
  /// after an absorb; the reference stays valid until the next absorb.
  /// NOTE: the lazy finalization mutates a cache behind const, so —
  /// unlike the old std::map-backed implementation — concurrent const
  /// reads (cells/marginals/assortativity) of one instance are NOT
  /// thread-safe; estimates are per-replication objects everywhere in
  /// this codebase, never shared across workers.
  [[nodiscard]] const std::vector<Cell>& cells() const;

 private:
  [[nodiscard]] static constexpr std::uint64_t pack(
      std::uint32_t i, std::uint32_t j) noexcept {
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }

  void grow();

  // Open-addressing storage: counts_[s] == 0 marks an empty slot (every
  // occupied cell has count >= 1), so no key sentinel is needed.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> counts_;
  std::size_t used_ = 0;
  std::uint64_t count_ = 0;
  mutable std::vector<Cell> sorted_;  // lazy key-sorted view
  mutable bool dirty_ = false;
};

/// Builds the table from a sample sequence in one pass.
[[nodiscard]] JointDegreeEstimate estimate_joint_degree(
    const Graph& g, std::span<const Edge> edges);

}  // namespace frontier

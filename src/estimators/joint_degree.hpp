// Joint degree (degree–degree) distribution estimator — the p̂_ij table of
// Section 4.2.2, kept sparse. Each sampled symmetric edge (u,v) that exists
// in E_d carries the label (outdeg(u), indeg(v)); p̂_ij is the empirical
// fraction of labeled samples with label (i,j) (eq. 5 batched over all
// labels). The assortativity coefficient, the marginals q̂ and their
// standard deviations all derive from it.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace frontier {

class JointDegreeEstimate {
 public:
  using Key = std::pair<std::uint32_t, std::uint32_t>;  ///< (out i, in j)

  /// Absorbs one sampled symmetric edge; ignores edges not in E_d.
  void absorb(const Graph& g, const Edge& e);

  /// Number of labeled samples B* absorbed.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// p̂_ij (0 if unseen).
  [[nodiscard]] double probability(std::uint32_t out_i,
                                   std::uint32_t in_j) const;

  /// Marginal q̂^out_i = Σ_j p̂_ij.
  [[nodiscard]] double marginal_out(std::uint32_t i) const;
  /// Marginal q̂^in_j = Σ_i p̂_ij.
  [[nodiscard]] double marginal_in(std::uint32_t j) const;

  /// The assortativity coefficient computed from the table (equals the
  /// moment-based estimate_assortativity on the same samples).
  [[nodiscard]] double assortativity() const;

  /// Sparse read access for reporting.
  [[nodiscard]] const std::map<Key, std::uint64_t>& cells() const noexcept {
    return cells_;
  }

 private:
  std::map<Key, std::uint64_t> cells_;
  std::uint64_t count_ = 0;
};

/// Builds the table from a sample sequence in one pass.
[[nodiscard]] JointDegreeEstimate estimate_joint_degree(
    const Graph& g, std::span<const Edge> edges);

}  // namespace frontier

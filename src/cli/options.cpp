#include "cli/options.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

namespace frontier::cli {
namespace {

[[noreturn]] void usage_fail(const CommandSpec& spec, const std::string& why) {
  throw UsageError(why + "\n" + spec.usage());
}

}  // namespace

std::uint64_t parse_u64(std::string_view flag, std::string_view raw,
                        std::uint64_t min) {
  const std::string what = "--" + std::string(flag);
  if (raw.empty() || raw.find_first_not_of("0123456789") != std::string::npos) {
    throw UsageError(what + " expects a non-negative integer, got '" +
                     std::string(raw) + "'");
  }
  std::uint64_t value = 0;
  const auto res = std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (res.ec != std::errc{} || res.ptr != raw.data() + raw.size()) {
    throw UsageError(what + " is out of 64-bit range: '" + std::string(raw) +
                     "'");
  }
  if (value < min) {
    throw UsageError(what + " must be at least " + std::to_string(min) +
                     ", got " + std::string(raw));
  }
  return value;
}

double parse_double(std::string_view flag, std::string_view raw, bool has_min,
                    double min, bool exclusive_min) {
  const std::string what = "--" + std::string(flag);
  double value = 0.0;
  const auto res = std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (raw.empty() || res.ec != std::errc{} ||
      res.ptr != raw.data() + raw.size()) {
    throw UsageError(what + " expects a number, got '" + std::string(raw) +
                     "'");
  }
  if (!std::isfinite(value)) {
    throw UsageError(what + " must be finite, got '" + std::string(raw) + "'");
  }
  if (has_min && (value < min || (exclusive_min && value == min))) {
    throw UsageError(what + " must be " +
                     (exclusive_min ? "greater than " : "at least ") +
                     std::to_string(min) + ", got " + std::string(raw));
  }
  return value;
}

const OptionSpec* CommandSpec::find(std::string_view name) const {
  for (const OptionSpec& o : options) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

std::string CommandSpec::usage() const {
  std::ostringstream os;
  os << "usage: " << program;
  if (!command.empty()) os << " " << command;
  for (const PositionalSpec& p : positionals) {
    os << (p.required ? " <" : " [<") << p.name << (p.required ? ">" : ">]");
  }
  if (variadic_positionals) os << "...";
  if (!options.empty()) os << " [options]";
  os << "\n";
  if (!summary.empty()) os << "  " << summary << "\n";
  for (const OptionSpec& o : options) {
    std::string lhs = "  --" + o.name;
    if (o.type != OptionType::kFlag) {
      lhs += " " + (o.value_name.empty() ? std::string("VALUE") : o.value_name);
    }
    os << lhs;
    if (!o.help.empty()) {
      for (std::size_t i = lhs.size(); i < 26; ++i) os << ' ';
      os << o.help;
    }
    os << "\n";
  }
  return os.str();
}

ParsedArgs CommandSpec::parse(const std::vector<std::string>& tokens) const {
  ParsedArgs args;
  args.spec_ = this;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) != 0 || token.size() == 2) {
      args.positionals_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const OptionSpec* spec = find(name);
    if (spec == nullptr) usage_fail(*this, "unknown option --" + name);
    if (args.values_.count(name) != 0) {
      usage_fail(*this, "--" + name + " given more than once");
    }
    std::string raw;
    if (spec->type == OptionType::kFlag) {
      if (has_inline) {
        usage_fail(*this, "--" + name + " is a flag and takes no value");
      }
      raw = "1";
    } else if (has_inline) {
      raw = inline_value;
    } else {
      if (i + 1 >= tokens.size()) {
        usage_fail(*this, "--" + name + " requires a value");
      }
      raw = tokens[++i];
    }
    switch (spec->type) {
      case OptionType::kU64:
        args.u64s_[name] = parse_u64(name, raw, spec->min_u64);
        break;
      case OptionType::kDouble:
        args.doubles_[name] =
            parse_double(name, raw, spec->has_min_double, spec->min_double,
                         spec->exclusive_min);
        break;
      case OptionType::kFlag:
      case OptionType::kString:
      case OptionType::kPath:
        break;
    }
    args.values_[name] = raw;
  }

  std::size_t required = 0;
  for (const PositionalSpec& p : positionals) {
    if (p.required) ++required;
  }
  if (args.positionals_.size() < required) {
    usage_fail(*this, "missing <" + positionals[args.positionals_.size()].name +
                          "> argument");
  }
  if (!variadic_positionals && args.positionals_.size() > positionals.size()) {
    usage_fail(*this, "unexpected extra argument '" +
                          args.positionals_[positionals.size()] + "'");
  }
  return args;
}

ParsedArgs CommandSpec::parse(int argc, char** argv, int first) const {
  std::vector<std::string> tokens;
  tokens.reserve(argc > first ? static_cast<std::size_t>(argc - first) : 0);
  for (int i = first; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

void ParsedArgs::require_type(std::string_view name, OptionType t1,
                              OptionType t2) const {
  const OptionSpec* spec = spec_ == nullptr ? nullptr : spec_->find(name);
  if (spec == nullptr) {
    throw std::logic_error("option --" + std::string(name) +
                           " is not declared in the command spec");
  }
  if (spec->type != t1 && spec->type != t2) {
    throw std::logic_error("option --" + std::string(name) +
                           " accessed with the wrong-typed accessor");
  }
}

bool ParsedArgs::has(std::string_view name) const {
  if (spec_ == nullptr || spec_->find(name) == nullptr) {
    throw std::logic_error("option --" + std::string(name) +
                           " is not declared in the command spec");
  }
  return values_.find(name) != values_.end();
}

bool ParsedArgs::get_flag(std::string_view name) const {
  require_type(name, OptionType::kFlag, OptionType::kFlag);
  return values_.find(name) != values_.end();
}

std::uint64_t ParsedArgs::get_u64(std::string_view name,
                                  std::uint64_t fallback) const {
  require_type(name, OptionType::kU64, OptionType::kU64);
  const auto it = u64s_.find(name);
  return it == u64s_.end() ? fallback : it->second;
}

double ParsedArgs::get_double(std::string_view name, double fallback) const {
  require_type(name, OptionType::kDouble, OptionType::kDouble);
  const auto it = doubles_.find(name);
  return it == doubles_.end() ? fallback : it->second;
}

std::string ParsedArgs::get_string(std::string_view name,
                                   std::string fallback) const {
  require_type(name, OptionType::kString, OptionType::kPath);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::string ParsedArgs::get_path(std::string_view name,
                                 std::string fallback) const {
  return get_string(name, std::move(fallback));
}

}  // namespace frontier::cli

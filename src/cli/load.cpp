#include "cli/load.hpp"

#include <stdexcept>

#include "graph/io.hpp"
#include "graph/storage.hpp"  // FRONTIER_HAS_MMAP

namespace frontier::cli {

Graph load_graph(const std::string& path, bool want_mmap) {
  const bool is_bin =
      path.size() > 4 && path.substr(path.size() - 4) == ".bin";
  if (want_mmap && !is_bin) {
    throw std::invalid_argument(
        "--mmap requires a .bin snapshot (create one with: frontier_cli "
        "convert " +
        path + " graph.bin)");
  }
  Graph g = is_bin ? read_binary_file(path) : read_edge_list_file(path);
  if (want_mmap && !g.is_memory_mapped()) {
#if FRONTIER_HAS_MMAP
    throw std::invalid_argument(
        "--mmap: " + path +
        " is a legacy v1 snapshot; re-write it as v2 with convert");
#else
    throw std::invalid_argument(
        "--mmap: memory-mapped loading is unavailable on this platform");
#endif
  }
  return g;
}

void save_graph(const Graph& g, const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    write_binary_file(g, path);
  } else {
    write_edge_list_file(g, path);
  }
}

}  // namespace frontier::cli

// Declarative command-line options shared by the CLI tools.
//
// Each subcommand declares a CommandSpec — its positional arguments and a
// table of typed OptionSpecs — and parses argv through it. The parser
// enforces the schema the way the JSON readers enforce theirs: unknown
// flags, missing values, malformed numbers, and out-of-range values are
// all rejected with an error naming the flag, never silently defaulted
// (the same discipline as the FS_* env vars in core/env.hpp). Usage text
// is generated from the spec, so the declared table is also the
// documentation.
//
// Error contract: schema violations throw UsageError (a
// std::invalid_argument) whose message begins with the offending detail
// and ends with the auto-generated usage block, so tools can print
// e.what() and exit 2 without composing anything.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace frontier::cli {

/// A rejected command line. what() names the problem and carries the
/// command's usage text.
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

enum class OptionType : std::uint8_t {
  kFlag,    // boolean, takes no value
  kU64,     // unsigned integer, strict parse (no signs, no decimals)
  kDouble,  // finite decimal number
  kString,  // free-form value
  kPath,    // filesystem path (same as kString; documents intent)
};

struct OptionSpec {
  std::string name;        ///< long name without the leading "--"
  OptionType type = OptionType::kString;
  std::string value_name;  ///< placeholder in usage text, e.g. "N"
  std::string help;        ///< one-line description for usage text
  /// kU64: inclusive lower bound (set to 1 to reject an explicit 0 —
  /// the validation sweep for --checkpoint-every and the serve quotas).
  std::uint64_t min_u64 = 0;
  /// kDouble: inclusive lower bound (default: unbounded).
  double min_double = 0.0;
  bool has_min_double = false;
  /// kDouble: additionally reject the bound itself (strict >).
  bool exclusive_min = false;
};

struct PositionalSpec {
  std::string name;  ///< placeholder in usage text, e.g. "edges.txt"
  bool required = true;
};

class ParsedArgs;

struct CommandSpec {
  std::string program;  ///< e.g. "frontier_cli"
  std::string command;  ///< e.g. "stream"; empty for single-command tools
  std::string summary;  ///< one-line description for usage text
  std::vector<PositionalSpec> positionals;
  /// Extra positionals beyond the declared ones are accepted iff set
  /// (bench-report/metrics-summary take a file list).
  bool variadic_positionals = false;
  std::vector<OptionSpec> options;

  /// Parses argv[first..argc). Throws UsageError on any schema violation.
  [[nodiscard]] ParsedArgs parse(int argc, char** argv, int first) const;
  [[nodiscard]] ParsedArgs parse(const std::vector<std::string>& tokens) const;

  /// The generated usage block: synopsis plus one line per option.
  [[nodiscard]] std::string usage() const;

  [[nodiscard]] const OptionSpec* find(std::string_view name) const;
};

/// The validated result of CommandSpec::parse. Borrows the CommandSpec
/// it was parsed from (for accessor type checks), so the spec must
/// outlive the ParsedArgs — bind the spec to a local, don't parse off a
/// temporary. Typed accessors take the fallback used when the option was
/// not given; asking for an option the spec does not declare (or with
/// the wrong-typed accessor) throws std::logic_error — that is a
/// programming error in the tool, not user input.
class ParsedArgs {
 public:
  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] bool get_flag(std::string_view name) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view name,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string fallback) const;
  /// Same as get_string; the empty string conventionally means "not set".
  [[nodiscard]] std::string get_path(std::string_view name,
                                     std::string fallback = "") const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positionals_;
  }

 private:
  friend struct CommandSpec;
  void require_type(std::string_view name, OptionType t1,
                    OptionType t2) const;

  const CommandSpec* spec_ = nullptr;
  std::map<std::string, std::string, std::less<>> values_;  // raw text
  std::map<std::string, std::uint64_t, std::less<>> u64s_;
  std::map<std::string, double, std::less<>> doubles_;
  std::vector<std::string> positionals_;
};

/// Strict scalar parsers, exposed so tools and the serve wire protocol
/// share one set of error messages.
/// "--<flag> expects a non-negative integer, got '<raw>'" on violation;
/// values below `min` are rejected naming the bound.
[[nodiscard]] std::uint64_t parse_u64(std::string_view flag,
                                      std::string_view raw,
                                      std::uint64_t min = 0);
[[nodiscard]] double parse_double(std::string_view flag, std::string_view raw,
                                  bool has_min = false, double min = 0.0,
                                  bool exclusive_min = false);

}  // namespace frontier::cli

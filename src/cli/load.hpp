// Graph loading/saving shared by the CLI tools (frontier_cli,
// frontier_serve): extension-driven format choice plus the --mmap
// contract — when the caller asked for a zero-copy load, anything that
// would silently fall back to a rebuild is an error instead.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace frontier::cli {

/// Loads `path` (.bin → binary snapshot, else edge list). With
/// `want_mmap`, requires a v2 .bin snapshot actually served via mmap and
/// throws std::invalid_argument otherwise.
[[nodiscard]] Graph load_graph(const std::string& path, bool want_mmap);

/// Writes `g` to `path` (.bin → format-v2 snapshot, else edge list).
void save_graph(const Graph& g, const std::string& path);

}  // namespace frontier::cli

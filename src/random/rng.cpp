#include "random/rng.hpp"

#include <cmath>

namespace frontier {

// uniform_index / uniform_range / bernoulli are defined inline in rng.hpp:
// they sit on the innermost walker-step path and must inline into the
// batched cursor loops. The draws below involve libm calls, so an
// out-of-line definition costs nothing.

double exponential(Rng& rng, double rate) noexcept {
  // Inverse CDF; 1 - U avoids log(0).
  return -std::log1p(-uniform01(rng)) / rate;
}

std::uint64_t geometric_failures(Rng& rng, double p) noexcept {
  if (p >= 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)).
  const double u = 1.0 - uniform01(rng);  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace frontier

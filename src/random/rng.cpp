#include "random/rng.hpp"

#include <cmath>

#ifdef _MSC_VER
#include <intrin.h>
#endif

namespace frontier {
namespace {

// 64x64 -> 128-bit multiply, portable across GCC/Clang/MSVC.
inline void mul64x64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
                     std::uint64_t& lo) noexcept {
#if defined(__SIZEOF_INT128__)
  const unsigned __int128 p =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  hi = static_cast<std::uint64_t>(p >> 64);
  lo = static_cast<std::uint64_t>(p);
#else
  lo = _umul128(a, b, &hi);
#endif
}

}  // namespace

std::uint64_t uniform_index(Rng& rng, std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::uint64_t x = rng();
  mul64x64(x, n, hi, lo);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
    while (lo < threshold) {
      x = rng();
      mul64x64(x, n, hi, lo);
    }
  }
  return hi;
}

std::uint64_t uniform_range(Rng& rng, std::uint64_t lo,
                            std::uint64_t hi) noexcept {
  return lo + uniform_index(rng, hi - lo + 1);
}

bool bernoulli(Rng& rng, double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01(rng) < p;
}

double exponential(Rng& rng, double rate) noexcept {
  // Inverse CDF; 1 - U avoids log(0).
  return -std::log1p(-uniform01(rng)) / rate;
}

std::uint64_t geometric_failures(Rng& rng, double p) noexcept {
  if (p >= 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)).
  const double u = 1.0 - uniform01(rng);  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace frontier

// Walker's alias method: O(1) sampling from a fixed discrete distribution.
//
// Used for degree-proportional vertex starts (Fig. 11 of the paper) and as
// the static strategy in the FrontierSampler ablation. Construction is O(n);
// each draw costs one RNG call, one table lookup and one comparison.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "random/rng.hpp"

namespace frontier {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative weights. At least one weight must be
  /// positive; throws std::invalid_argument otherwise.
  explicit AliasTable(std::span<const double> weights);

  /// Draws an index i with probability weights[i] / sum(weights).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

  /// Total weight the table was built from.
  [[nodiscard]] double total_weight() const noexcept { return total_; }

  /// Exact sampling probability of index i (for tests).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // fallback index per bucket
  std::vector<double> weight_;      // original weights (for probability())
  double total_ = 0.0;
};

}  // namespace frontier

#include "random/weighted_tree.hpp"

#include <cmath>
#include <stdexcept>

namespace frontier {

WeightedTree::WeightedTree(std::size_t n) : weights_(n, 0.0) {
  if (n > 0) {
    mask_ = 1;
    while (mask_ < n) mask_ <<= 1;
  }
  tree_.assign(mask_ + 1, 0.0);
}

WeightedTree::WeightedTree(std::span<const double> weights)
    : WeightedTree(weights.size()) {
  // O(n) bulk build: place weights then propagate partial sums upward.
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("WeightedTree: weights must be finite, >= 0");
    }
    weights_[i] = w;
    tree_[i + 1] += w;
    total_ += w;
  }
  for (std::size_t i = 1; i < tree_.size(); ++i) {
    const std::size_t parent = i + (i & (~i + 1));
    if (parent < tree_.size()) tree_[parent] += tree_[i];
  }
}

std::size_t WeightedTree::skip_zero_weight(std::size_t i) const noexcept {
  for (std::size_t step = 1; step < weights_.size(); ++step) {
    if (i >= step && weights_[i - step] > 0.0) return i - step;
    if (i + step < weights_.size() && weights_[i + step] > 0.0)
      return i + step;
  }
  return i;
}

}  // namespace frontier

#include "random/weighted_tree.hpp"

#include <cmath>
#include <stdexcept>

namespace frontier {

WeightedTree::WeightedTree(std::size_t n)
    : tree_(n + 1, 0.0), weights_(n, 0.0) {}

WeightedTree::WeightedTree(std::span<const double> weights)
    : WeightedTree(weights.size()) {
  // O(n) bulk build: place weights then propagate partial sums upward.
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("WeightedTree: weights must be finite, >= 0");
    }
    weights_[i] = w;
    tree_[i + 1] += w;
    total_ += w;
  }
  for (std::size_t i = 1; i < tree_.size(); ++i) {
    const std::size_t parent = i + (i & (~i + 1));
    if (parent < tree_.size()) tree_[parent] += tree_[i];
  }
}

void WeightedTree::set(std::size_t i, double w) {
  if (i >= weights_.size()) throw std::out_of_range("WeightedTree::set");
  if (w < 0.0 || !std::isfinite(w)) {
    throw std::invalid_argument("WeightedTree: weight must be finite, >= 0");
  }
  const double delta = w - weights_[i];
  weights_[i] = w;
  total_ += delta;
  for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

double WeightedTree::get(std::size_t i) const {
  if (i >= weights_.size()) throw std::out_of_range("WeightedTree::get");
  return weights_[i];
}

std::size_t WeightedTree::find_prefix(double target) const noexcept {
  // Standard Fenwick binary lifting; clamps to the last slot to absorb
  // floating-point drift between total_ and the tree sums.
  std::size_t pos = 0;
  std::size_t mask = 1;
  while ((mask << 1) < tree_.size()) mask <<= 1;
  for (; mask != 0; mask >>= 1) {
    const std::size_t next = pos + mask;
    if (next < tree_.size() && tree_[next] <= target) {
      pos = next;
      target -= tree_[next];
    }
  }
  return pos < weights_.size() ? pos : weights_.size() - 1;
}

std::size_t WeightedTree::sample(Rng& rng) const {
  if (total_ <= 0.0) {
    throw std::logic_error("WeightedTree::sample: total weight is zero");
  }
  std::size_t i = find_prefix(uniform01(rng) * total_);
  // Guard against landing on a zero-weight slot through rounding: scan to
  // the nearest positive-weight neighbor (rare; bounded by tree size).
  if (weights_[i] <= 0.0) {
    for (std::size_t step = 1; step < weights_.size(); ++step) {
      if (i >= step && weights_[i - step] > 0.0) return i - step;
      if (i + step < weights_.size() && weights_[i + step] > 0.0)
        return i + step;
    }
  }
  return i;
}

}  // namespace frontier

#include "random/alias_table.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace frontier {

AliasTable::AliasTable(std::span<const double> weights)
    : weight_(weights.begin(), weights.end()) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weight vector");
  total_ = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable: weights must be finite and >= 0");
    }
    total_ += w;
  }
  if (total_ <= 0.0) {
    throw std::invalid_argument("AliasTable: total weight must be positive");
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's stable construction: split buckets into under/over-full work
  // lists, repeatedly pair an under-full with an over-full bucket.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_;
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are (up to rounding) exactly full.
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  const std::size_t i = uniform_index(rng, prob_.size());
  return uniform01(rng) < prob_[i] ? i : alias_[i];
}

double AliasTable::probability(std::size_t i) const {
  return weight_.at(i) / total_;
}

}  // namespace frontier

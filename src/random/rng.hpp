// Deterministic, splittable pseudo-random number generation.
//
// All randomness in libfrontier flows through an explicitly seeded
// Xoshiro256StarStar engine; there is no global RNG state. Monte-Carlo
// replications derive independent streams with split_stream(), which uses
// SplitMix64 to decorrelate seeds — the scheme recommended by the xoshiro
// authors for parallel streams.
#pragma once

#include <array>
#include <cstdint>

#ifdef _MSC_VER
#include <intrin.h>
#endif

namespace frontier {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to expand seeds and
/// derive independent substreams. Passes BigCrush as a generator in its own
/// right; here it only seeds Xoshiro.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna. Fast (sub-ns per draw), 256-bit
/// state, passes all known statistical test batteries. Satisfies the
/// UniformRandomBitGenerator concept so it composes with <random>.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0xfeedfacecafef00dULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent generator for parallel replication `index`.
  /// Streams for distinct indices are decorrelated by double SplitMix64
  /// mixing of (base state, index).
  [[nodiscard]] Xoshiro256StarStar split_stream(std::uint64_t index) const noexcept {
    SplitMix64 sm(state_[0] ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    Xoshiro256StarStar out(sm.next() ^ state_[3]);
    return out;
  }

  /// The raw 256-bit engine state. Restoring a saved state resumes the
  /// stream exactly where it left off (stream/ checkpoints rely on this).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

  friend bool operator==(const Xoshiro256StarStar& a,
                         const Xoshiro256StarStar& b) noexcept {
    return a.state_ == b.state_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Default engine used across the library.
using Rng = Xoshiro256StarStar;

/// Uniform double in [0, 1) with 53 bits of precision.
[[nodiscard]] inline double uniform01(Rng& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

namespace detail {

/// 64x64 -> 128-bit multiply, portable across GCC/Clang/MSVC.
inline void mul64x64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
                     std::uint64_t& lo) noexcept {
#if defined(__SIZEOF_INT128__)
  const unsigned __int128 p =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  hi = static_cast<std::uint64_t>(p >> 64);
  lo = static_cast<std::uint64_t>(p);
#else
  lo = _umul128(a, b, &hi);
#endif
}

}  // namespace detail

/// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
/// method: unbiased and ~2x faster than std::uniform_int_distribution.
/// Inline: this is the innermost call of every walker step (one draw per
/// sampled edge), and keeping it in the caller's loop is worth several ns
/// per step on the batched fast path.
[[nodiscard]] inline std::uint64_t uniform_index(Rng& rng,
                                                 std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::uint64_t x = rng();
  detail::mul64x64(x, n, hi, lo);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
    while (lo < threshold) {
      x = rng();
      detail::mul64x64(x, n, hi, lo);
    }
  }
  return hi;
}

/// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
[[nodiscard]] inline std::uint64_t uniform_range(Rng& rng, std::uint64_t lo,
                                                 std::uint64_t hi) noexcept {
  return lo + uniform_index(rng, hi - lo + 1);
}

/// Bernoulli draw with success probability p (clamped to [0,1]).
[[nodiscard]] inline bool bernoulli(Rng& rng, double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01(rng) < p;
}

/// Exponentially distributed draw with the given rate (> 0).
[[nodiscard]] double exponential(Rng& rng, double rate) noexcept;

/// Number of failures before the first success of a Bernoulli(p) sequence
/// (geometric on {0,1,2,...}). Requires p in (0, 1].
[[nodiscard]] std::uint64_t geometric_failures(Rng& rng, double p) noexcept;

}  // namespace frontier

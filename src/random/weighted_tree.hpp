// Fenwick-indexed dynamic weighted sampling.
//
// FrontierSampler selects the walker to advance with probability
// proportional to the degree of its current vertex (Algorithm 1, line 4);
// after the step, that walker's weight changes. A Fenwick (binary indexed)
// tree supports weight updates and cumulative-weight inversion in O(log m),
// giving O(log m) per FS step versus O(m) for rebuilding an alias table.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "random/rng.hpp"

namespace frontier {

class WeightedTree {
 public:
  WeightedTree() = default;

  /// Builds the tree over `n` slots, all weights zero.
  explicit WeightedTree(std::size_t n);

  /// Builds the tree from initial non-negative weights.
  explicit WeightedTree(std::span<const double> weights);

  // set/get/find_prefix/sample are defined inline below: sample-then-set
  // is the per-step hot pair of FrontierCursor's batched loop, and
  // keeping them in that loop (instead of calls into another TU) is worth
  // double-digit ns per FS step.

  /// Sets the weight of slot i (>= 0). O(log n).
  void set(std::size_t i, double w) {
    if (i >= weights_.size()) throw std::out_of_range("WeightedTree::set");
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("WeightedTree: weight must be finite, >= 0");
    }
    const double delta = w - weights_[i];
    weights_[i] = w;
    total_ += delta;
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Current weight of slot i. O(1).
  [[nodiscard]] double get(std::size_t i) const {
    if (i >= weights_.size()) throw std::out_of_range("WeightedTree::get");
    return weights_[i];
  }

  /// Sum of all weights. O(1).
  [[nodiscard]] double total() const noexcept { return total_; }

  [[nodiscard]] std::size_t size() const noexcept { return weights_.size(); }

  /// Largest index such that the prefix sum before it is <= target.
  /// Exposed for testing; `target` must lie in [0, total()).
  [[nodiscard]] std::size_t find_prefix(double target) const noexcept {
    // Fenwick binary lifting over the power-of-two padded tree; the
    // padding makes every pos + mask a valid index, so the per-level
    // bounds check is gone. The weight comparison stays a *branch* on
    // purpose: FS weights are degree-skewed, so the descent path is
    // highly predictable and predicted branches let the out-of-order
    // core run ahead into the walk step, whereas a cmov chain would
    // serialize log2(m) dependent L1 loads on the critical path (it
    // measured slower on every frontier size). Clamps to the last slot
    // to absorb floating-point drift between total_ and the tree sums.
    if (mask_ == 0) return 0;
    // Root level first: tree_[mask_] is the sum of every slot, so taking
    // it means target reached total() through floating-point drift (the
    // sequential total_ and the Fenwick-order root sum can differ by an
    // ulp) — clamp to the last slot, exactly what the old per-level
    // bounds guard degenerated to. Handling it here also keeps the
    // descent in bounds: once the root is *not* taken, pos + mask stays
    // <= mask_ - mask on every later level by the lifting invariant.
    if (tree_[mask_] <= target) return weights_.size() - 1;
    std::size_t pos = 0;
    for (std::size_t mask = mask_ >> 1; mask != 0; mask >>= 1) {
      const std::size_t next = pos + mask;
      const double t = tree_[next];
      if (t <= target) {
        pos = next;
        target -= t;
      }
    }
    // pos can still land in the zero-weight padding when drift pushes
    // target past the sum of the real slots; clamp like the root case.
    return pos < weights_.size() ? pos : weights_.size() - 1;
  }

  /// Draws slot i with probability get(i)/total(). Requires total() > 0;
  /// throws std::logic_error otherwise. O(log n).
  [[nodiscard]] std::size_t sample(Rng& rng) const {
    if (total_ <= 0.0) {
      throw std::logic_error("WeightedTree::sample: total weight is zero");
    }
    const std::size_t i = find_prefix(uniform01(rng) * total_);
    if (weights_[i] <= 0.0) return skip_zero_weight(i);
    return i;
  }

 private:
  /// Rare path: rounding landed sample() on a zero-weight slot; scan to
  /// the nearest positive-weight neighbor (bounded by tree size).
  [[nodiscard]] std::size_t skip_zero_weight(std::size_t i) const noexcept;

  // 1-based Fenwick array, padded to the next power of two slots so the
  // branch-free find_prefix never indexes out of bounds. Padded slots
  // carry weight 0 and do not change the sums stored at real nodes.
  std::vector<double> tree_;
  std::vector<double> weights_;  // mirror of current weights (unpadded)
  double total_ = 0.0;
  std::size_t mask_ = 0;  // padded slot count (power of two); descent start
};

}  // namespace frontier

// Fenwick-indexed dynamic weighted sampling.
//
// FrontierSampler selects the walker to advance with probability
// proportional to the degree of its current vertex (Algorithm 1, line 4);
// after the step, that walker's weight changes. A Fenwick (binary indexed)
// tree supports weight updates and cumulative-weight inversion in O(log m),
// giving O(log m) per FS step versus O(m) for rebuilding an alias table.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "random/rng.hpp"

namespace frontier {

class WeightedTree {
 public:
  WeightedTree() = default;

  /// Builds the tree over `n` slots, all weights zero.
  explicit WeightedTree(std::size_t n);

  /// Builds the tree from initial non-negative weights.
  explicit WeightedTree(std::span<const double> weights);

  /// Sets the weight of slot i (>= 0). O(log n).
  void set(std::size_t i, double w);

  /// Current weight of slot i. O(log n).
  [[nodiscard]] double get(std::size_t i) const;

  /// Sum of all weights. O(1).
  [[nodiscard]] double total() const noexcept { return total_; }

  [[nodiscard]] std::size_t size() const noexcept { return weights_.size(); }

  /// Draws slot i with probability get(i)/total(). Requires total() > 0;
  /// throws std::logic_error otherwise. O(log n).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Largest index such that the prefix sum before it is <= target.
  /// Exposed for testing; `target` must lie in [0, total()).
  [[nodiscard]] std::size_t find_prefix(double target) const noexcept;

 private:
  std::vector<double> tree_;     // 1-based Fenwick array
  std::vector<double> weights_;  // mirror of current weights
  double total_ = 0.0;
};

}  // namespace frontier

#include "sampling/parallel_fs.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include "experiments/replicator.hpp"

namespace frontier {

namespace {

struct TimedEdge {
  double time;
  Edge edge;
};

}  // namespace

ParallelFrontierSampler::ParallelFrontierSampler(const Graph& g,
                                                 Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.dimension == 0) {
    throw std::invalid_argument("ParallelFrontierSampler: m >= 1");
  }
  if (config_.time_horizon <= 0.0) {
    throw std::invalid_argument("ParallelFrontierSampler: horizon > 0");
  }
}

SampleRecord ParallelFrontierSampler::run(std::uint64_t seed) const {
  const Graph& g = *graph_;
  const std::size_t m = config_.dimension;
  const std::size_t workers =
      std::min(resolve_threads(config_.threads), m);

  // Starts are drawn from a single stream so the sample is independent of
  // the thread count.
  Rng start_rng = Rng(seed).split_stream(~std::uint64_t{0});
  std::vector<VertexId> starts(m);
  for (auto& v : starts) v = start_sampler_.sample(start_rng);

  // Each walker owns an RNG stream keyed by its index — again independent
  // of sharding. Threads process contiguous walker ranges.
  std::vector<std::vector<TimedEdge>> shard_edges(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const Rng base(seed);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      auto& local = shard_edges[w];
      for (std::size_t walker = w; walker < m; walker += workers) {
        Rng rng = base.split_stream(walker);
        VertexId v = starts[walker];
        double now = exponential(rng, static_cast<double>(g.degree(v)));
        while (now <= config_.time_horizon) {
          const VertexId next = step_uniform_neighbor(g, v, rng);
          local.push_back(TimedEdge{now, Edge{v, next}});
          v = next;
          now += exponential(rng, static_cast<double>(g.degree(v)));
        }
      }
    });
  }
  for (auto& t : pool) t.join();

  // Merge by timestamp (ties broken by edge content for determinism).
  std::vector<TimedEdge> all;
  std::size_t total = 0;
  for (const auto& shard : shard_edges) total += shard.size();
  all.reserve(total);
  for (auto& shard : shard_edges) {
    all.insert(all.end(), shard.begin(), shard.end());
  }
  std::sort(all.begin(), all.end(), [](const TimedEdge& a, const TimedEdge& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.edge.u != b.edge.u) return a.edge.u < b.edge.u;
    return a.edge.v < b.edge.v;
  });

  SampleRecord rec;
  rec.starts = std::move(starts);
  rec.edges.reserve(all.size());
  for (const TimedEdge& te : all) rec.edges.push_back(te.edge);
  rec.cost = static_cast<double>(rec.edges.size()) +
             static_cast<double>(m);
  return rec;
}

}  // namespace frontier

// Coverage statistics of a sample path: how many distinct vertices /
// edges a crawl has touched as a function of spent budget. A practical
// crawl-health metric — a trapped walker's coverage curve flattens early,
// which is observable *without* ground truth (unlike NMSE).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"
#include "sampling/walk.hpp"

namespace frontier {

struct CoverageCurve {
  std::vector<std::uint64_t> checkpoints;       ///< sample counts
  std::vector<std::uint64_t> distinct_vertices; ///< |{v_1..v_n}| at each
  std::vector<std::uint64_t> distinct_edges;    ///< unordered edges seen
};

/// Coverage of an edge-sample sequence at the given checkpoints (sorted
/// ascending; counts past the end of the sequence are clamped).
[[nodiscard]] CoverageCurve coverage_curve(
    const Graph& g, std::span<const Edge> edges,
    std::span<const std::uint64_t> checkpoints);

/// Fraction of all non-isolated vertices visited by the full sequence.
[[nodiscard]] double vertex_coverage(const Graph& g,
                                     std::span<const Edge> edges);

}  // namespace frontier

#include "sampling/budget.hpp"

#include <cmath>

namespace frontier {

std::uint64_t multiple_rw_steps_per_walker(double budget, std::size_t m,
                                           double jump_cost) {
  if (m == 0) return 0;
  const double steps = std::floor(budget / static_cast<double>(m) - jump_cost);
  return steps <= 0.0 ? 0 : static_cast<std::uint64_t>(steps);
}

std::uint64_t frontier_steps(double budget, std::size_t m, double jump_cost) {
  const double steps = budget - static_cast<double>(m) * jump_cost;
  return steps <= 0.0 ? 0 : static_cast<std::uint64_t>(steps);
}

}  // namespace frontier

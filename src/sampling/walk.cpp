#include "sampling/walk.hpp"

#include <stdexcept>

namespace frontier {

namespace {

std::vector<double> degree_weights(const Graph& g) {
  std::vector<double> w(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    w[v] = static_cast<double>(g.degree(v));
  }
  return w;
}

}  // namespace

StartSampler::StartSampler(const Graph& g, StartMode mode)
    : graph_(&g), mode_(mode) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("StartSampler: empty graph");
  }
  if (g.volume() == 0) {
    throw std::invalid_argument("StartSampler: graph has no edges");
  }
  if (mode == StartMode::kDegreeProportional) {
    const auto w = degree_weights(g);
    degree_table_ = AliasTable{std::span<const double>(w)};
  }
}

VertexId StartSampler::sample(Rng& rng) const {
  if (mode_ == StartMode::kDegreeProportional) {
    return static_cast<VertexId>(degree_table_.sample(rng));
  }
  // Uniform, rejecting isolated vertices (the paper assumes none exist;
  // rejection keeps the sampler total on graphs that do have them).
  for (;;) {
    const auto v =
        static_cast<VertexId>(uniform_index(rng, graph_->num_vertices()));
    if (graph_->degree(v) > 0) return v;
  }
}

void walk_from(const Graph& g, VertexId start, std::uint64_t steps, Rng& rng,
               std::vector<Edge>& out) {
  VertexId u = start;
  for (std::uint64_t i = 0; i < steps; ++i) {
    const VertexId v = step_uniform_neighbor(g, u, rng);
    out.push_back(Edge{u, v});
    u = v;
  }
}

}  // namespace frontier

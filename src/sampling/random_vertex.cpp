#include "sampling/random_vertex.hpp"

#include <stdexcept>

namespace frontier {

RandomVertexSampler::RandomVertexSampler(const Graph& g, Config config)
    : graph_(&g), config_(config) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("RandomVertexSampler: empty graph");
  }
  if (config_.cost.hit_ratio <= 0.0 || config_.cost.hit_ratio > 1.0) {
    throw std::invalid_argument("RandomVertexSampler: hit_ratio in (0,1]");
  }
  if (config_.cost.jump_cost <= 0.0) {
    throw std::invalid_argument("RandomVertexSampler: jump_cost > 0");
  }
}

SampleRecord RandomVertexSampler::run(Rng& rng) const {
  SampleRecord rec;
  while (rec.cost + config_.cost.jump_cost <= config_.budget) {
    // Pay for the miss streak before the next valid hit, then for the hit
    // itself — but never exceed the budget mid-streak.
    const std::uint64_t misses =
        geometric_failures(rng, config_.cost.hit_ratio);
    const double streak_cost =
        static_cast<double>(misses + 1) * config_.cost.jump_cost;
    if (rec.cost + streak_cost > config_.budget) {
      rec.cost = config_.budget;  // budget exhausted inside the miss streak
      break;
    }
    rec.cost += streak_cost;
    rec.vertices.push_back(
        static_cast<VertexId>(uniform_index(rng, graph_->num_vertices())));
  }
  return rec;
}

}  // namespace frontier

// Metropolis–Hastings random walk (related-work baseline, Section 7).
//
// MH-RW targets the *uniform* distribution over vertices: from v, propose a
// uniform neighbor w and accept with probability min(1, deg(v)/deg(w));
// otherwise stay at v. Every step (accepted or not) emits one vertex
// sample, so the visit sequence is asymptotically uniform over V and plain
// empirical averages are unbiased. The paper cites experiments [15, 29]
// showing MH-RW is usually less accurate than the reweighted plain RW.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class MetropolisHastingsWalk {
 public:
  struct Config {
    std::uint64_t steps = 0;
    StartMode start = StartMode::kUniform;
    std::optional<VertexId> fixed_start = std::nullopt;
  };

  MetropolisHastingsWalk(const Graph& g, Config config);

  /// One run; `vertices` holds the visit sequence (steps+1 entries,
  /// including the start), `edges` the accepted transitions.
  [[nodiscard]] SampleRecord run(Rng& rng) const;

  /// Like run(), but drains into the caller's reusable arena and returns
  /// arena.record. Identical output and RNG stream to run().
  const SampleRecord& run_into(SampleArena& arena, Rng& rng) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  const Graph* graph_;
  Config config_;
  StartSampler start_sampler_;
};

}  // namespace frontier

#include "sampling/frontier_sampler.hpp"

#include <stdexcept>
#include <utility>

#include "stream/cursor.hpp"
#include "stream/sampler_cursors.hpp"

namespace frontier {

FrontierSampler::FrontierSampler(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.dimension == 0) {
    throw std::invalid_argument("FrontierSampler: dimension m >= 1");
  }
}

// run()/run_from() are thin loops over FrontierCursor (stream/): the
// cursor is the single implementation of Algorithm 1's step, so batch and
// streaming results are byte-identical by construction.

SampleRecord FrontierSampler::run(Rng& rng) const {
  SampleArena arena;
  run_into(arena, rng);
  return std::move(arena.record);
}

const SampleRecord& FrontierSampler::run_into(SampleArena& arena,
                                              Rng& rng) const {
  FrontierCursor cursor(*graph_, config_, rng, start_sampler_);
  drain_cursor_into(cursor, arena, config_.steps);
  rng = cursor.rng();
  return arena.record;
}

SampleRecord FrontierSampler::run_from(std::span<const VertexId> starts,
                                       Rng& rng) const {
  if (starts.size() != config_.dimension) {
    throw std::invalid_argument(
        "FrontierSampler::run_from: |starts| must equal dimension");
  }
  for (VertexId v : starts) {
    if (v >= graph_->num_vertices() || graph_->degree(v) == 0) {
      throw std::invalid_argument(
          "FrontierSampler::run_from: start vertex invalid or isolated");
    }
  }
  FrontierCursor cursor(*graph_, config_,
                        std::vector<VertexId>(starts.begin(), starts.end()),
                        rng);
  SampleRecord rec = drain_cursor(cursor, config_.steps);
  rng = cursor.rng();
  return rec;
}

}  // namespace frontier

#include "sampling/frontier_sampler.hpp"

#include <stdexcept>

#include "random/weighted_tree.hpp"

namespace frontier {

FrontierSampler::FrontierSampler(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.dimension == 0) {
    throw std::invalid_argument("FrontierSampler: dimension m >= 1");
  }
}

SampleRecord FrontierSampler::run(Rng& rng) const {
  std::vector<VertexId> frontier(config_.dimension);
  for (auto& v : frontier) v = start_sampler_.sample(rng);
  return run_impl(std::move(frontier), rng);
}

SampleRecord FrontierSampler::run_from(std::span<const VertexId> starts,
                                       Rng& rng) const {
  if (starts.size() != config_.dimension) {
    throw std::invalid_argument(
        "FrontierSampler::run_from: |starts| must equal dimension");
  }
  for (VertexId v : starts) {
    if (v >= graph_->num_vertices() || graph_->degree(v) == 0) {
      throw std::invalid_argument(
          "FrontierSampler::run_from: start vertex invalid or isolated");
    }
  }
  return run_impl(std::vector<VertexId>(starts.begin(), starts.end()), rng);
}

SampleRecord FrontierSampler::run_impl(std::vector<VertexId> frontier,
                                       Rng& rng) const {
  const Graph& g = *graph_;
  const std::size_t m = config_.dimension;

  SampleRecord rec;
  rec.starts = frontier;
  rec.edges.reserve(config_.steps);
  rec.cost = static_cast<double>(config_.steps) +
             static_cast<double>(m) * config_.jump_cost;

  if (config_.selection == Selection::kWeightedTree) {
    std::vector<double> weights(m);
    for (std::size_t i = 0; i < m; ++i) {
      weights[i] = static_cast<double>(g.degree(frontier[i]));
    }
    WeightedTree tree{std::span<const double>(weights)};
    for (std::uint64_t n = 0; n < config_.steps; ++n) {
      const std::size_t i = tree.sample(rng);  // line 4: walker ∝ degree
      const VertexId u = frontier[i];
      const VertexId v = step_uniform_neighbor(g, u, rng);  // line 5
      rec.edges.push_back(Edge{u, v});                      // line 6
      frontier[i] = v;
      tree.set(i, static_cast<double>(g.degree(v)));
    }
  } else {
    // Linear-scan selection: draw a threshold in [0, Σ deg) and walk the
    // frontier until the cumulative degree passes it.
    double total = 0.0;
    for (VertexId v : frontier) total += static_cast<double>(g.degree(v));
    for (std::uint64_t n = 0; n < config_.steps; ++n) {
      const double target = uniform01(rng) * total;
      double acc = 0.0;
      std::size_t i = m - 1;
      for (std::size_t k = 0; k < m; ++k) {
        acc += static_cast<double>(g.degree(frontier[k]));
        if (target < acc) {
          i = k;
          break;
        }
      }
      const VertexId u = frontier[i];
      const VertexId v = step_uniform_neighbor(g, u, rng);
      rec.edges.push_back(Edge{u, v});
      total += static_cast<double>(g.degree(v)) -
               static_cast<double>(g.degree(u));
      frontier[i] = v;
    }
  }
  return rec;
}

}  // namespace frontier

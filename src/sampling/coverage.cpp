#include "sampling/coverage.hpp"

#include <algorithm>

namespace frontier {

CoverageCurve coverage_curve(const Graph& g, std::span<const Edge> edges,
                             std::span<const std::uint64_t> checkpoints) {
  CoverageCurve curve;
  curve.checkpoints.assign(checkpoints.begin(), checkpoints.end());
  std::sort(curve.checkpoints.begin(), curve.checkpoints.end());

  std::vector<bool> vertex_seen(g.num_vertices(), false);
  // Unordered edge identity: CSR slot index of the (min,max) orientation.
  std::vector<bool> edge_seen(g.volume(), false);
  std::uint64_t vertices = 0;
  std::uint64_t distinct_edges = 0;

  std::size_t next = 0;
  const auto record_checkpoint = [&](std::uint64_t n) {
    while (next < curve.checkpoints.size() && curve.checkpoints[next] <= n) {
      curve.distinct_vertices.push_back(vertices);
      curve.distinct_edges.push_back(distinct_edges);
      ++next;
    }
  };

  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    for (VertexId v : {e.u, e.v}) {
      if (v < g.num_vertices() && !vertex_seen[v]) {
        vertex_seen[v] = true;
        ++vertices;
      }
    }
    // Canonical orientation (lo -> hi); find its CSR slot.
    const VertexId lo = std::min(e.u, e.v);
    const VertexId hi = std::max(e.u, e.v);
    const auto nbrs = g.neighbors(lo);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), hi);
    if (it != nbrs.end() && *it == hi) {
      const auto slot = static_cast<std::size_t>(
          g.offsets()[lo] + static_cast<EdgeIndex>(it - nbrs.begin()));
      if (!edge_seen[slot]) {
        edge_seen[slot] = true;
        ++distinct_edges;
      }
    }
    record_checkpoint(i + 1);
  }
  // Clamp remaining checkpoints to the final totals.
  while (next < curve.checkpoints.size()) {
    curve.distinct_vertices.push_back(vertices);
    curve.distinct_edges.push_back(distinct_edges);
    ++next;
  }
  return curve;
}

double vertex_coverage(const Graph& g, std::span<const Edge> edges) {
  std::vector<bool> seen(g.num_vertices(), false);
  std::uint64_t visited = 0;
  for (const Edge& e : edges) {
    for (VertexId v : {e.u, e.v}) {
      if (v < g.num_vertices() && !seen[v]) {
        seen[v] = true;
        ++visited;
      }
    }
  }
  std::uint64_t eligible = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > 0) ++eligible;
  }
  return eligible == 0 ? 0.0
                       : static_cast<double>(visited) /
                             static_cast<double>(eligible);
}

}  // namespace frontier

#include "sampling/single_rw.hpp"

#include <stdexcept>
#include <utility>

#include "stream/cursor.hpp"
#include "stream/sampler_cursors.hpp"

namespace frontier {

SingleRandomWalk::SingleRandomWalk(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.fixed_start && *config_.fixed_start >= g.num_vertices()) {
    throw std::out_of_range("SingleRandomWalk: fixed_start out of range");
  }
  if (config_.fixed_start && g.degree(*config_.fixed_start) == 0) {
    throw std::invalid_argument("SingleRandomWalk: fixed_start is isolated");
  }
  if (config_.laziness < 0.0 || config_.laziness >= 1.0) {
    throw std::invalid_argument("SingleRandomWalk: laziness in [0, 1)");
  }
}

// run() is a thin loop over SingleRwCursor (stream/), the single
// implementation of the walk/burn-in/laziness step.

SampleRecord SingleRandomWalk::run(Rng& rng) const {
  SampleArena arena;
  run_into(arena, rng);
  return std::move(arena.record);
}

const SampleRecord& SingleRandomWalk::run_into(SampleArena& arena,
                                               Rng& rng) const {
  SingleRwCursor cursor(*graph_, config_, rng, start_sampler_);
  drain_cursor_into(cursor, arena, config_.steps);
  rng = cursor.rng();
  return arena.record;
}

}  // namespace frontier

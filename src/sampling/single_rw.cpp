#include "sampling/single_rw.hpp"

#include <stdexcept>

namespace frontier {

SingleRandomWalk::SingleRandomWalk(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.fixed_start && *config_.fixed_start >= g.num_vertices()) {
    throw std::out_of_range("SingleRandomWalk: fixed_start out of range");
  }
  if (config_.fixed_start && g.degree(*config_.fixed_start) == 0) {
    throw std::invalid_argument("SingleRandomWalk: fixed_start is isolated");
  }
  if (config_.laziness < 0.0 || config_.laziness >= 1.0) {
    throw std::invalid_argument("SingleRandomWalk: laziness in [0, 1)");
  }
}

SampleRecord SingleRandomWalk::run(Rng& rng) const {
  const Graph& g = *graph_;
  SampleRecord rec;
  VertexId u =
      config_.fixed_start ? *config_.fixed_start : start_sampler_.sample(rng);
  rec.starts.push_back(u);
  rec.edges.reserve(config_.steps);

  const auto advance = [&](bool record) {
    if (config_.laziness > 0.0 && bernoulli(rng, config_.laziness)) {
      return;  // lazy stay: budget spent, no sample
    }
    const VertexId v = step_uniform_neighbor(g, u, rng);
    if (record) rec.edges.push_back(Edge{u, v});
    u = v;
  };

  for (std::uint64_t i = 0; i < config_.burn_in; ++i) advance(false);
  for (std::uint64_t i = 0; i < config_.steps; ++i) advance(true);

  rec.cost = static_cast<double>(config_.burn_in) +
             static_cast<double>(config_.steps) + 1.0;
  return rec;
}

}  // namespace frontier

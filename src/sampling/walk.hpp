// Shared sampling vocabulary: sample records, start distributions, and the
// elementary random-walk step.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"
#include "random/alias_table.hpp"
#include "random/rng.hpp"
#include "stream/block.hpp"

namespace frontier {

/// Output of one sampler run. Walk-based samplers fill `edges` (the ordered
/// sequence {(u_i, v_i)} of Section 4); vertex-based samplers (random vertex,
/// Metropolis–Hastings visits) fill `vertices`.
struct SampleRecord {
  std::vector<Edge> edges;
  std::vector<VertexId> vertices;
  std::vector<VertexId> starts;  ///< initial vertex of each walker
  double cost = 0.0;             ///< budget actually consumed
};

/// Reusable per-run scratch: the sample record a run fills and the event
/// block the drain refills from the sampler's cursor. One arena per
/// worker thread (experiments/replication_runner.hpp hands each worker
/// one) makes the replication hot loop allocation-free after the first
/// run — reset() keeps vector capacity, and the block's columns are
/// allocated once at construction.
struct SampleArena {
  SampleRecord record;
  StreamEventBlock block;

  /// Clears the record for the next run, keeping all capacity.
  void reset() {
    record.edges.clear();
    record.vertices.clear();
    record.starts.clear();
    record.cost = 0.0;
  }
};

/// How walker start vertices are chosen.
enum class StartMode : std::uint8_t {
  kUniform,             ///< uniform over V (the practical case, Section 5)
  kDegreeProportional,  ///< steady-state start, deg(v)/vol(V) (Section 6.3)
};

/// Draws start vertices. Uniform draws reject degree-0 vertices (a walker
/// cannot leave them; the paper assumes every vertex has an edge) but still
/// charge one jump per draw. Degree-proportional draws use an alias table.
class StartSampler {
 public:
  StartSampler(const Graph& g, StartMode mode);

  [[nodiscard]] VertexId sample(Rng& rng) const;
  [[nodiscard]] StartMode mode() const noexcept { return mode_; }

 private:
  const Graph* graph_;
  StartMode mode_;
  AliasTable degree_table_;  // built only for kDegreeProportional
};

/// One random-walk step from u: a uniformly random neighbor of u.
/// Precondition: deg(u) > 0.
[[nodiscard]] inline VertexId step_uniform_neighbor(const Graph& g, VertexId u,
                                                    Rng& rng) {
  const auto nbrs = g.neighbors(u);
  return nbrs[uniform_index(rng, nbrs.size())];
}

/// Runs a plain random walk for `steps` steps starting at `start`,
/// appending sampled edges to `out`. Precondition: deg(start) > 0.
void walk_from(const Graph& g, VertexId start, std::uint64_t steps, Rng& rng,
               std::vector<Edge>& out);

}  // namespace frontier

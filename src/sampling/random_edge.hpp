// Random (independent, uniform, with replacement) edge sampling.
//
// Samples ordered symmetric edges uniformly from E. Each valid edge sample
// costs `edge_cost` (2 by default — an edge query resolves two vertices,
// Section 6.4) and attempts succeed with probability `hit_ratio`.
// Rarely practical on real networks (Section 1) but the key analytical
// comparator: Section 3 shows RE beats RV on the degree-distribution tail,
// and stationary RW/FS inherit RE's statistical behaviour.
#pragma once

#include "graph/graph.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class RandomEdgeSampler {
 public:
  struct Config {
    double budget = 0.0;
    double edge_cost = 2.0;  ///< cost per attempt
    double hit_ratio = 1.0;  ///< fraction of attempts that are valid
  };

  RandomEdgeSampler(const Graph& g, Config config);

  /// One run; `edges` holds the valid samples (uniform over ordered E).
  [[nodiscard]] SampleRecord run(Rng& rng) const;

 private:
  const Graph* graph_;
  Config config_;
};

}  // namespace frontier

// Frontier Sampling (Algorithm 1) — the paper's primary contribution.
//
// FS maintains a list L of m walker positions. Each step:
//   4: select u ∈ L with probability deg(u) / Σ_{v∈L} deg(v),
//   5: select an outgoing edge (u, w) of u uniformly at random,
//   6: replace u by w in L and record (u, w),
// until n >= B - m*c. The process is exactly a single random walk on the
// m-th Cartesian power G^m (Lemma 5.1), so in steady state edges of G are
// sampled uniformly (Theorem 5.2) — yet, unlike m independent walkers, the
// joint law of L started from m uniform vertices is already close to the
// steady state for large m (Theorem 5.4), which is what makes FS robust to
// disconnected and loosely connected graphs.
//
// Walker selection is the per-step hot spot. Two strategies are provided:
//   * kWeightedTree (default): Fenwick tree keyed by walker, O(log m)/step;
//   * kLinearScan: cumulative scan over the m degrees, O(m)/step — simpler,
//     faster for very small m, kept for the ablation benchmark.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class FrontierSampler {
 public:
  enum class Selection : std::uint8_t { kWeightedTree, kLinearScan };

  struct Config {
    std::size_t dimension = 10;  ///< m, the number of dependent walkers
    std::uint64_t steps = 0;     ///< total steps n (B - m*c)
    double jump_cost = 1.0;      ///< c, charged once per walker at init
    StartMode start = StartMode::kUniform;
    Selection selection = Selection::kWeightedTree;
  };

  FrontierSampler(const Graph& g, Config config);

  /// One independent run of Algorithm 1.
  [[nodiscard]] SampleRecord run(Rng& rng) const;

  /// Like run(), but drains into the caller's reusable arena and returns
  /// arena.record — the replication hot path, allocation-free once the
  /// arena has warmed up. Identical output and RNG stream to run().
  const SampleRecord& run_into(SampleArena& arena, Rng& rng) const;

  /// Runs Algorithm 1 from the given initial walker list (|starts| must be
  /// m and every start must have positive degree). Used by experiments that
  /// share starting vertices between FS and MultipleRW (Figures 6 and 9).
  [[nodiscard]] SampleRecord run_from(std::span<const VertexId> starts,
                                      Rng& rng) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 private:
  const Graph* graph_;
  Config config_;
  StartSampler start_sampler_;
};

}  // namespace frontier

// Random walk with jumps (RWJ) — the Web-sampling baseline of the related
// work (Section 7: [17, 32] sample pages near-uniformly by mixing walk
// steps with uniform jumps, PageRank-style).
//
// From v, with probability `jump_probability` the walker teleports to a
// uniformly random vertex (paying the random-vertex query cost c, possibly
// inflated by a hit ratio); otherwise it takes a normal walk step. Jumps
// make the chain irreducible on disconnected graphs — the alternative cure
// for trapping — but (a) every jump costs c/hit_ratio budget, and (b) the
// stationary law is a PageRank-like mixture with no simple closed form, so
// the eq.-7 reweighting is no longer exactly unbiased. The FS comparison
// bench quantifies both effects.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sampling/budget.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class RandomWalkWithJumps {
 public:
  struct Config {
    double budget = 0.0;          ///< B; steps cost 1, jumps cost c/hit
    double jump_probability = 0.15;
    CostModel cost{};             ///< jump cost model
  };

  RandomWalkWithJumps(const Graph& g, Config config);

  /// One run. `edges` holds walk transitions; jumps break the chain (the
  /// edge after a jump starts at the landing vertex). `vertices` records
  /// every visited vertex including jump landings.
  [[nodiscard]] SampleRecord run(Rng& rng) const;

  /// Like run(), but drains into the caller's reusable arena and returns
  /// arena.record. Identical output and RNG stream to run().
  const SampleRecord& run_into(SampleArena& arena, Rng& rng) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  const Graph* graph_;
  Config config_;
  StartSampler start_sampler_;
};

}  // namespace frontier

// Distributed Frontier Sampling (Section 5.3, Theorem 5.5).
//
// FS can be decentralized with zero coordination: run m *independent*
// walkers where the cost (holding time) of sampling vertex v is an
// Exp(deg(v)) random variable. By the uniformization principle, the
// sequence of jumps across all walkers, ordered by global time, is exactly
// the centralized FS process: at any instant the next walker to move is
// walker i with probability deg(v_i)/Σ_j deg(v_j).
//
// The simulation uses a binary-heap event queue over walker clocks. With a
// time horizon instead of a step count, the number of sampled edges is
// random (it concentrates around horizon * E[frontier degree sum]).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class DistributedFrontierSampler {
 public:
  struct StopRule {
    /// Stop after this many jumps across all walkers (0 = unlimited).
    std::uint64_t max_steps = 0;
    /// Stop when global time exceeds this horizon (<= 0 = unlimited).
    /// At least one of the two must be set.
    double time_horizon = 0.0;
  };

  struct Config {
    std::size_t dimension = 10;  ///< m independent walkers
    StopRule stop;
    StartMode start = StartMode::kUniform;
  };

  DistributedFrontierSampler(const Graph& g, Config config);

  /// One run; edges are recorded in global-time order, so the edge sequence
  /// has the same law as centralized FrontierSampler (Theorem 5.5).
  [[nodiscard]] SampleRecord run(Rng& rng) const;

 private:
  const Graph* graph_;
  Config config_;
  StartSampler start_sampler_;
};

}  // namespace frontier

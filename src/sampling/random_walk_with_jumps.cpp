#include "sampling/random_walk_with_jumps.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "stream/cursor.hpp"
#include "stream/sampler_cursors.hpp"

namespace frontier {

RandomWalkWithJumps::RandomWalkWithJumps(const Graph& g, Config config)
    : graph_(&g),
      config_(config),
      start_sampler_(g, StartMode::kUniform) {
  if (config_.jump_probability < 0.0 || config_.jump_probability > 1.0) {
    throw std::invalid_argument("RandomWalkWithJumps: jump_probability");
  }
  if (config_.cost.hit_ratio <= 0.0 || config_.cost.hit_ratio > 1.0) {
    throw std::invalid_argument("RandomWalkWithJumps: hit_ratio in (0,1]");
  }
}

// run() is a thin loop over RwjCursor (stream/), the single implementation
// of the jump/step budget accounting.

SampleRecord RandomWalkWithJumps::run(Rng& rng) const {
  SampleArena arena;
  run_into(arena, rng);
  return std::move(arena.record);
}

const SampleRecord& RandomWalkWithJumps::run_into(SampleArena& arena,
                                                  Rng& rng) const {
  RwjCursor cursor(*graph_, config_, rng, start_sampler_);
  // Walk steps cost 1 each, so the budget bounds the edge count; every
  // step and jump landing records at most one vertex. Reserving the
  // bounds up front keeps the drain free of geometric regrowth. Clamp
  // before the float->int cast: negative budgets (legal, empty run) and
  // astronomical ones would be UB to cast, and a reserve hint has no
  // business beyond 2^32 entries anyway — the drain grows if truly
  // needed.
  const double clamped =
      std::clamp(config_.budget, 0.0, 4294967296.0);  // 2^32
  const auto budget_steps = static_cast<std::uint64_t>(clamped);
  drain_cursor_into(cursor, arena, budget_steps, budget_steps + 1);
  rng = cursor.rng();
  return arena.record;
}

}  // namespace frontier

#include "sampling/random_walk_with_jumps.hpp"

#include <stdexcept>

#include "stream/cursor.hpp"
#include "stream/sampler_cursors.hpp"

namespace frontier {

RandomWalkWithJumps::RandomWalkWithJumps(const Graph& g, Config config)
    : graph_(&g),
      config_(config),
      start_sampler_(g, StartMode::kUniform) {
  if (config_.jump_probability < 0.0 || config_.jump_probability > 1.0) {
    throw std::invalid_argument("RandomWalkWithJumps: jump_probability");
  }
  if (config_.cost.hit_ratio <= 0.0 || config_.cost.hit_ratio > 1.0) {
    throw std::invalid_argument("RandomWalkWithJumps: hit_ratio in (0,1]");
  }
}

// run() is a thin loop over RwjCursor (stream/), the single implementation
// of the jump/step budget accounting.

SampleRecord RandomWalkWithJumps::run(Rng& rng) const {
  RwjCursor cursor(*graph_, config_, rng, start_sampler_);
  SampleRecord rec = drain_cursor(cursor);
  rng = cursor.rng();
  return rec;
}

}  // namespace frontier

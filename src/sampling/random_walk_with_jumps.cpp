#include "sampling/random_walk_with_jumps.hpp"

#include <stdexcept>

namespace frontier {

RandomWalkWithJumps::RandomWalkWithJumps(const Graph& g, Config config)
    : graph_(&g),
      config_(config),
      start_sampler_(g, StartMode::kUniform) {
  if (config_.jump_probability < 0.0 || config_.jump_probability > 1.0) {
    throw std::invalid_argument("RandomWalkWithJumps: jump_probability");
  }
  if (config_.cost.hit_ratio <= 0.0 || config_.cost.hit_ratio > 1.0) {
    throw std::invalid_argument("RandomWalkWithJumps: hit_ratio in (0,1]");
  }
}

SampleRecord RandomWalkWithJumps::run(Rng& rng) const {
  const Graph& g = *graph_;
  SampleRecord rec;

  // Initial placement is one paid jump.
  const auto pay_jump = [&]() -> bool {
    const std::uint64_t misses =
        geometric_failures(rng, config_.cost.hit_ratio);
    const double streak =
        static_cast<double>(misses + 1) * config_.cost.jump_cost;
    if (rec.cost + streak > config_.budget) {
      rec.cost = config_.budget;
      return false;
    }
    rec.cost += streak;
    return true;
  };

  if (!pay_jump()) return rec;
  VertexId v = start_sampler_.sample(rng);
  rec.starts.push_back(v);
  rec.vertices.push_back(v);

  while (true) {
    if (config_.jump_probability > 0.0 &&
        bernoulli(rng, config_.jump_probability)) {
      if (!pay_jump()) break;
      v = start_sampler_.sample(rng);
      rec.vertices.push_back(v);
      continue;
    }
    if (rec.cost + 1.0 > config_.budget) break;
    rec.cost += 1.0;
    const VertexId w = step_uniform_neighbor(g, v, rng);
    rec.edges.push_back(Edge{v, w});
    rec.vertices.push_back(w);
    v = w;
  }
  return rec;
}

}  // namespace frontier

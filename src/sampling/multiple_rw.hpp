// MultipleRW: m mutually independent random walkers (Section 4.4) — the
// naive remedy for walker trapping that the paper shows to be inferior to
// Frontier Sampling when walkers start from uniformly sampled vertices.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class MultipleRandomWalks {
 public:
  struct Config {
    std::size_t num_walkers = 10;        ///< m
    std::uint64_t steps_per_walker = 0;  ///< floor(B/m - c)
    double jump_cost = 1.0;              ///< c, charged once per walker
    StartMode start = StartMode::kUniform;
  };

  MultipleRandomWalks(const Graph& g, Config config);

  /// One independent run: edges of all m walkers concatenated in walker
  /// order. Estimators aggregate them exactly as the paper does.
  [[nodiscard]] SampleRecord run(Rng& rng) const;

  /// Like run(), but drains into the caller's reusable arena and returns
  /// arena.record. Identical output and RNG stream to run().
  const SampleRecord& run_into(SampleArena& arena, Rng& rng) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  const Graph* graph_;
  Config config_;
  StartSampler start_sampler_;
};

}  // namespace frontier

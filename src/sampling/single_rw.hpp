// SingleRW: the classic single random walker of Section 4.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class SingleRandomWalk {
 public:
  struct Config {
    std::uint64_t steps = 0;           ///< B walk steps
    StartMode start = StartMode::kUniform;
    std::optional<VertexId> fixed_start = std::nullopt;  ///< overrides `start` if set
    /// Burn-in (Section 4.3): `burn_in` additional initial walk queries are
    /// paid for and executed but their samples discarded — the classic
    /// MCMC remedy for a non-stationary start.
    std::uint64_t burn_in = 0;
    /// Laziness: probability that a budgeted query stays put instead of
    /// stepping (a lazy walk relaxes the non-bipartite requirement of
    /// Section 4). Stays consume budget but record no edge (a stay is not
    /// an element of E). 0 = classic walk.
    double laziness = 0.0;
  };

  SingleRandomWalk(const Graph& g, Config config);

  /// One independent run: up to `steps` recorded edges (fewer under
  /// laziness), cost = burn_in + steps + 1 jump.
  [[nodiscard]] SampleRecord run(Rng& rng) const;

  /// Like run(), but drains into the caller's reusable arena and returns
  /// arena.record. Identical output and RNG stream to run().
  const SampleRecord& run_into(SampleArena& arena, Rng& rng) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  const Graph* graph_;
  Config config_;
  StartSampler start_sampler_;
};

}  // namespace frontier

#include "sampling/multiple_rw.hpp"

#include <stdexcept>
#include <utility>

#include "stream/cursor.hpp"
#include "stream/sampler_cursors.hpp"

namespace frontier {

MultipleRandomWalks::MultipleRandomWalks(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.num_walkers == 0) {
    throw std::invalid_argument("MultipleRandomWalks: num_walkers >= 1");
  }
}

// run() is a thin loop over MultipleRwCursor (stream/): walker starts are
// drawn lazily in walker order, reproducing the batch RNG interleaving.

SampleRecord MultipleRandomWalks::run(Rng& rng) const {
  SampleArena arena;
  run_into(arena, rng);
  return std::move(arena.record);
}

const SampleRecord& MultipleRandomWalks::run_into(SampleArena& arena,
                                                  Rng& rng) const {
  MultipleRwCursor cursor(*graph_, config_, rng, start_sampler_);
  drain_cursor_into(cursor, arena,
                    config_.num_walkers * config_.steps_per_walker);
  rng = cursor.rng();
  return arena.record;
}

}  // namespace frontier

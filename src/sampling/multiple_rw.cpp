#include "sampling/multiple_rw.hpp"

#include <stdexcept>

namespace frontier {

MultipleRandomWalks::MultipleRandomWalks(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.num_walkers == 0) {
    throw std::invalid_argument("MultipleRandomWalks: num_walkers >= 1");
  }
}

SampleRecord MultipleRandomWalks::run(Rng& rng) const {
  SampleRecord rec;
  rec.starts.reserve(config_.num_walkers);
  rec.edges.reserve(config_.num_walkers * config_.steps_per_walker);
  for (std::size_t w = 0; w < config_.num_walkers; ++w) {
    const VertexId start = start_sampler_.sample(rng);
    rec.starts.push_back(start);
    walk_from(*graph_, start, config_.steps_per_walker, rng, rec.edges);
  }
  rec.cost = static_cast<double>(config_.num_walkers) *
             (static_cast<double>(config_.steps_per_walker) +
              config_.jump_cost);
  return rec;
}

}  // namespace frontier

#include "sampling/metropolis.hpp"

#include <stdexcept>

namespace frontier {

MetropolisHastingsWalk::MetropolisHastingsWalk(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.fixed_start && *config_.fixed_start >= g.num_vertices()) {
    throw std::out_of_range("MetropolisHastingsWalk: fixed_start out of range");
  }
}

SampleRecord MetropolisHastingsWalk::run(Rng& rng) const {
  const Graph& g = *graph_;
  SampleRecord rec;
  VertexId v =
      config_.fixed_start ? *config_.fixed_start : start_sampler_.sample(rng);
  rec.starts.push_back(v);
  rec.vertices.reserve(config_.steps + 1);
  rec.vertices.push_back(v);

  for (std::uint64_t n = 0; n < config_.steps; ++n) {
    const VertexId w = step_uniform_neighbor(g, v, rng);
    const double accept = static_cast<double>(g.degree(v)) /
                          static_cast<double>(g.degree(w));
    if (accept >= 1.0 || uniform01(rng) < accept) {
      rec.edges.push_back(Edge{v, w});
      v = w;
    }
    rec.vertices.push_back(v);
  }
  rec.cost = static_cast<double>(config_.steps) + 1.0;
  return rec;
}

}  // namespace frontier

#include "sampling/metropolis.hpp"

#include <stdexcept>

#include "stream/cursor.hpp"
#include "stream/sampler_cursors.hpp"

namespace frontier {

MetropolisHastingsWalk::MetropolisHastingsWalk(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.fixed_start && *config_.fixed_start >= g.num_vertices()) {
    throw std::out_of_range("MetropolisHastingsWalk: fixed_start out of range");
  }
}

// run() is a thin loop over MetropolisCursor (stream/), the single
// implementation of the propose/accept step.

SampleRecord MetropolisHastingsWalk::run(Rng& rng) const {
  MetropolisCursor cursor(*graph_, config_, rng, start_sampler_);
  SampleRecord rec = drain_cursor(cursor, 0, config_.steps + 1);
  rng = cursor.rng();
  return rec;
}

}  // namespace frontier

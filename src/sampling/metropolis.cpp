#include "sampling/metropolis.hpp"

#include <stdexcept>
#include <utility>

#include "stream/cursor.hpp"
#include "stream/sampler_cursors.hpp"

namespace frontier {

MetropolisHastingsWalk::MetropolisHastingsWalk(const Graph& g, Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.fixed_start && *config_.fixed_start >= g.num_vertices()) {
    throw std::out_of_range("MetropolisHastingsWalk: fixed_start out of range");
  }
}

// run() is a thin loop over MetropolisCursor (stream/), the single
// implementation of the propose/accept step.

SampleRecord MetropolisHastingsWalk::run(Rng& rng) const {
  SampleArena arena;
  run_into(arena, rng);
  return std::move(arena.record);
}

const SampleRecord& MetropolisHastingsWalk::run_into(SampleArena& arena,
                                                     Rng& rng) const {
  MetropolisCursor cursor(*graph_, config_, rng, start_sampler_);
  // Every proposal may be accepted, so `steps` bounds the edge count;
  // reserving it up front avoids geometric regrowth during the drain.
  drain_cursor_into(cursor, arena, config_.steps, config_.steps + 1);
  rng = cursor.rng();
  return arena.record;
}

}  // namespace frontier

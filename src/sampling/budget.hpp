// Budget and cost accounting (Section 2 and Section 4.4 of the paper).
//
// All queries have unit cost unless stated otherwise:
//   * advancing a walker one step queries one vertex  -> cost 1,
//   * randomly sampling a vertex (a "jump") costs c   -> cost jump_cost,
//   * in a sparse id space only a fraction `hit_ratio` of random queries
//     lands on a valid vertex; every attempt is paid for (Section 6.4).
//
// MultipleRW with m walkers gives each walker floor(B/m - c) steps
// (Section 4.4); FS walks until n >= B - m*c (Algorithm 1, line 8).
#pragma once

#include <cstdint>

namespace frontier {

struct CostModel {
  double jump_cost = 1.0;  ///< c: cost of one random-vertex query attempt
  double hit_ratio = 1.0;  ///< fraction of random queries that are valid

  /// Expected cost of obtaining one *valid* uniformly random vertex.
  [[nodiscard]] double expected_jump_cost() const noexcept {
    return jump_cost / hit_ratio;
  }
};

/// Steps each of m independent walkers takes under budget B with jump cost
/// c: floor(B/m - c), clamped at 0.
[[nodiscard]] std::uint64_t multiple_rw_steps_per_walker(double budget,
                                                         std::size_t m,
                                                         double jump_cost);

/// Steps a Frontier sampler takes under budget B with m walkers and jump
/// cost c: B - m*c, clamped at 0 (Algorithm 1 line 8).
[[nodiscard]] std::uint64_t frontier_steps(double budget, std::size_t m,
                                           double jump_cost);

}  // namespace frontier

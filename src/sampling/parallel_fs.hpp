// ParallelFrontierSampler: the Section 5.3 claim made concrete.
//
// Theorem 5.5 says FS can be fully distributed with zero coordination: run
// m independent walkers whose holding time at v is Exp(deg(v)); the union
// of their jump streams, ordered by global time, is a centralized FS
// process. This class actually executes the walkers on `threads` OS
// threads — each thread owns a disjoint shard of walkers and its own RNG
// stream, simulates clocks independently, and the shards' timestamped
// edges are merged afterwards. No locks, no messages, no shared state
// between shards while sampling.
//
// The merged edge sequence has exactly the DistributedFrontierSampler law;
// the parallelism is real (wall-clock scales with threads for large runs).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class ParallelFrontierSampler {
 public:
  struct Config {
    std::size_t dimension = 64;   ///< m walkers
    double time_horizon = 10.0;   ///< observe jumps in [0, horizon]
    std::size_t threads = 0;      ///< 0 = hardware concurrency
    StartMode start = StartMode::kUniform;
  };

  ParallelFrontierSampler(const Graph& g, Config config);

  /// One run; edges are merged across shards in global-time order.
  /// Deterministic for a fixed `seed` regardless of the thread count.
  [[nodiscard]] SampleRecord run(std::uint64_t seed) const;

 private:
  const Graph* graph_;
  Config config_;
  StartSampler start_sampler_;
};

}  // namespace frontier

#include "sampling/distributed_fs.hpp"

#include <queue>
#include <stdexcept>
#include <vector>

namespace frontier {

DistributedFrontierSampler::DistributedFrontierSampler(const Graph& g,
                                                       Config config)
    : graph_(&g), config_(config), start_sampler_(g, config.start) {
  if (config_.dimension == 0) {
    throw std::invalid_argument("DistributedFrontierSampler: m >= 1");
  }
  if (config_.stop.max_steps == 0 && config_.stop.time_horizon <= 0.0) {
    throw std::invalid_argument(
        "DistributedFrontierSampler: set max_steps or time_horizon");
  }
}

SampleRecord DistributedFrontierSampler::run(Rng& rng) const {
  const Graph& g = *graph_;

  struct Event {
    double time;
    std::uint32_t walker;
  };
  struct LaterFirst {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time > b.time;
    }
  };
  std::priority_queue<Event, std::vector<Event>, LaterFirst> queue;

  SampleRecord rec;
  std::vector<VertexId> position(config_.dimension);
  for (std::uint32_t w = 0; w < config_.dimension; ++w) {
    position[w] = start_sampler_.sample(rng);
    rec.starts.push_back(position[w]);
    // Walker w's first jump happens after an Exp(deg(v)) holding time.
    queue.push(Event{
        exponential(rng, static_cast<double>(g.degree(position[w]))), w});
  }
  rec.cost = static_cast<double>(config_.dimension);  // m initial jumps

  double now = 0.0;
  while (!queue.empty()) {
    if (config_.stop.max_steps != 0 &&
        rec.edges.size() >= config_.stop.max_steps) {
      break;
    }
    const Event ev = queue.top();
    if (config_.stop.time_horizon > 0.0 &&
        ev.time > config_.stop.time_horizon) {
      break;
    }
    queue.pop();
    now = ev.time;
    const VertexId u = position[ev.walker];
    const VertexId v = step_uniform_neighbor(g, u, rng);
    rec.edges.push_back(Edge{u, v});
    position[ev.walker] = v;
    queue.push(Event{
        now + exponential(rng, static_cast<double>(g.degree(v))), ev.walker});
    rec.cost += 1.0;
  }
  return rec;
}

}  // namespace frontier

// Random (independent, uniform, with replacement) vertex sampling under the
// sparse-user-id cost model of Sections 1, 3 and 6.4: each query attempt
// costs `jump_cost` and succeeds with probability `hit_ratio`.
#pragma once

#include "graph/graph.hpp"
#include "sampling/budget.hpp"
#include "sampling/walk.hpp"

namespace frontier {

class RandomVertexSampler {
 public:
  struct Config {
    double budget = 0.0;  ///< B; sampling stops when the next attempt
                          ///< cannot be paid for
    CostModel cost{};     ///< jump_cost per attempt, hit_ratio of validity
  };

  RandomVertexSampler(const Graph& g, Config config);

  /// One run; `vertices` holds the valid samples, `cost` what was spent
  /// (valid + missed attempts).
  [[nodiscard]] SampleRecord run(Rng& rng) const;

 private:
  const Graph* graph_;
  Config config_;
};

}  // namespace frontier

#include "sampling/random_edge.hpp"

#include <stdexcept>

namespace frontier {

RandomEdgeSampler::RandomEdgeSampler(const Graph& g, Config config)
    : graph_(&g), config_(config) {
  if (g.volume() == 0) {
    throw std::invalid_argument("RandomEdgeSampler: graph has no edges");
  }
  if (config_.hit_ratio <= 0.0 || config_.hit_ratio > 1.0) {
    throw std::invalid_argument("RandomEdgeSampler: hit_ratio in (0,1]");
  }
  if (config_.edge_cost <= 0.0) {
    throw std::invalid_argument("RandomEdgeSampler: edge_cost > 0");
  }
}

SampleRecord RandomEdgeSampler::run(Rng& rng) const {
  SampleRecord rec;
  while (rec.cost + config_.edge_cost <= config_.budget) {
    const std::uint64_t misses = geometric_failures(rng, config_.hit_ratio);
    const double streak_cost =
        static_cast<double>(misses + 1) * config_.edge_cost;
    if (rec.cost + streak_cost > config_.budget) {
      rec.cost = config_.budget;
      break;
    }
    rec.cost += streak_cost;
    rec.edges.push_back(
        graph_->edge_at(uniform_index(rng, graph_->volume())));
  }
  return rec;
}

}  // namespace frontier

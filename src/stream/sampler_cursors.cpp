#include "stream/sampler_cursors.hpp"

#include <stdexcept>

#include "stream/serialize.hpp"

namespace frontier {

namespace {

using streamio::expect_pod;
using streamio::read_pod;
using streamio::read_vector;
using streamio::write_pod;
using streamio::write_vector;

void write_rng(std::ostream& os, const Rng& rng) {
  write_pod(os, rng.state());
}

void read_rng(std::istream& is, Rng& rng) {
  rng.set_state(read_pod<std::array<std::uint64_t, 4>>(is));
}

// A restored position is about to be dereferenced against the CSR arrays;
// a corrupt checkpoint must surface as IoError, not an out-of-bounds read.
void check_position(const Graph& g, VertexId v, const char* what) {
  if (v >= g.num_vertices() || g.degree(v) == 0) {
    throw IoError(std::string("stream checkpoint: corrupt position: ") + what);
  }
}

void write_optional_vertex(std::ostream& os,
                           const std::optional<VertexId>& v) {
  write_pod<std::uint8_t>(os, v.has_value() ? 1 : 0);
  write_pod<VertexId>(os, v.value_or(kInvalidVertex));
}

[[nodiscard]] std::optional<VertexId> read_optional_vertex(std::istream& is) {
  const auto has = read_pod<std::uint8_t>(is);
  const auto v = read_pod<VertexId>(is);
  return has ? std::optional<VertexId>(v) : std::nullopt;
}

}  // namespace

// ---------------------------------------------------------------- Frontier

FrontierCursor::FrontierCursor(const Graph& g, FrontierSampler::Config config,
                               Rng rng)
    : FrontierCursor(g, config, rng, StartSampler(g, config.start)) {}

FrontierCursor::FrontierCursor(const Graph& g, FrontierSampler::Config config,
                               Rng rng, const StartSampler& start_sampler)
    : graph_(&g), config_(config), rng_(rng) {
  if (config_.dimension == 0) {
    throw std::invalid_argument("FrontierCursor: dimension m >= 1");
  }
  if (start_sampler.mode() != config_.start) {
    throw std::invalid_argument(
        "FrontierCursor: start sampler mode != config.start");
  }
  frontier_.resize(config_.dimension);
  for (auto& v : frontier_) v = start_sampler.sample(rng_);
  starts_ = frontier_;
  init_selection();
}

FrontierCursor::FrontierCursor(const Graph& g, FrontierSampler::Config config,
                               std::vector<VertexId> frontier, Rng rng)
    : graph_(&g), config_(config), frontier_(std::move(frontier)), rng_(rng) {
  if (config_.dimension == 0) {
    throw std::invalid_argument("FrontierCursor: dimension m >= 1");
  }
  if (frontier_.size() != config_.dimension) {
    throw std::invalid_argument(
        "FrontierCursor: |frontier| must equal dimension");
  }
  for (VertexId v : frontier_) {
    if (v >= g.num_vertices() || g.degree(v) == 0) {
      throw std::invalid_argument(
          "FrontierCursor: start vertex invalid or isolated");
    }
  }
  starts_ = frontier_;
  init_selection();
}

void FrontierCursor::init_selection() {
  const Graph& g = *graph_;
  if (config_.selection == FrontierSampler::Selection::kWeightedTree) {
    std::vector<double> weights(frontier_.size());
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      weights[i] = static_cast<double>(g.degree(frontier_[i]));
    }
    tree_ = WeightedTree{std::span<const double>(weights)};
  } else {
    scan_total_ = 0.0;
    for (VertexId v : frontier_) {
      scan_total_ += static_cast<double>(g.degree(v));
    }
  }
}

bool FrontierCursor::next(StreamEvent& ev) {
  ev.clear();
  if (step_ == config_.steps) return false;
  const Graph& g = *graph_;
  if (config_.selection == FrontierSampler::Selection::kWeightedTree) {
    const std::size_t i = tree_.sample(rng_);  // line 4: walker ∝ degree
    const VertexId u = frontier_[i];
    const VertexId v = step_uniform_neighbor(g, u, rng_);  // line 5
    ev.edge = Edge{u, v};                                  // line 6
    ev.has_edge = true;
    frontier_[i] = v;
    tree_.set(i, static_cast<double>(g.degree(v)));
  } else {
    // Linear-scan selection: draw a threshold in [0, Σ deg) and walk the
    // frontier until the cumulative degree passes it.
    const std::size_t m = config_.dimension;
    const double target = uniform01(rng_) * scan_total_;
    double acc = 0.0;
    std::size_t i = m - 1;
    for (std::size_t k = 0; k < m; ++k) {
      acc += static_cast<double>(g.degree(frontier_[k]));
      if (target < acc) {
        i = k;
        break;
      }
    }
    const VertexId u = frontier_[i];
    const VertexId v = step_uniform_neighbor(g, u, rng_);
    ev.edge = Edge{u, v};
    ev.has_edge = true;
    scan_total_ += static_cast<double>(g.degree(v)) -
                   static_cast<double>(g.degree(u));
    frontier_[i] = v;
  }
  ++step_;
  return true;
}

std::size_t FrontierCursor::next_batch(StreamEventBlock& block,
                                       std::size_t max_steps) {
  block.clear();
  const std::uint64_t remaining = config_.steps - step_;
  const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
      std::min(max_steps, block.capacity()), remaining));
  if (want == 0) return 0;
  const Graph& g = *graph_;
  Rng rng = rng_;  // hot state in locals; written back after the loop
  VertexId* frontier = frontier_.data();
  if (config_.selection == FrontierSampler::Selection::kWeightedTree) {
    for (std::size_t k = 0; k < want; ++k) {
      const std::size_t i = tree_.sample(rng);  // line 4: walker ∝ degree
      const VertexId u = frontier[i];
      const auto nbrs = g.neighbors(u);                      // line 5
      const VertexId v = nbrs[uniform_index(rng, nbrs.size())];
      const std::uint32_t dv = g.degree(v);
      // Warm v's adjacency now: this walker is next selected ~m steps
      // from now, far beyond the prefetch latency, so its step then
      // hits cache instead of stalling on main memory.
      g.prefetch_neighbors(v);
      block.push_edge(u, v, dv);                             // line 6
      frontier[i] = v;
      tree_.set(i, static_cast<double>(dv));
    }
  } else {
    const std::size_t m = config_.dimension;
    double scan_total = scan_total_;
    for (std::size_t step = 0; step < want; ++step) {
      const double target = uniform01(rng) * scan_total;
      double acc = 0.0;
      std::size_t i = m - 1;
      for (std::size_t k = 0; k < m; ++k) {
        acc += static_cast<double>(g.degree(frontier[k]));
        if (target < acc) {
          i = k;
          break;
        }
      }
      const VertexId u = frontier[i];
      const auto nbrs = g.neighbors(u);
      const VertexId v = nbrs[uniform_index(rng, nbrs.size())];
      const std::uint32_t dv = g.degree(v);
      g.prefetch_neighbors(v);
      block.push_edge(u, v, dv);
      scan_total +=
          static_cast<double>(dv) - static_cast<double>(g.degree(u));
      frontier[i] = v;
    }
    scan_total_ = scan_total;
  }
  step_ += want;
  rng_ = rng;
  return want;
}

double FrontierCursor::cost() const noexcept {
  return static_cast<double>(step_) +
         static_cast<double>(config_.dimension) * config_.jump_cost;
}

void FrontierCursor::save_state(std::ostream& os) const {
  write_pod<std::uint64_t>(os, config_.dimension);
  write_pod<std::uint64_t>(os, config_.steps);
  write_pod<double>(os, config_.jump_cost);
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(config_.start));
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(config_.selection));
  write_pod<std::uint64_t>(os, step_);
  write_vector(os, frontier_);
  write_vector(os, starts_);
  write_pod<double>(os, scan_total_);
  write_rng(os, rng_);
}

void FrontierCursor::load_state(std::istream& is) {
  expect_pod<std::uint64_t>(is, config_.dimension, "dimension");
  expect_pod<std::uint64_t>(is, config_.steps, "steps");
  expect_pod<double>(is, config_.jump_cost, "jump_cost");
  expect_pod<std::uint8_t>(is, static_cast<std::uint8_t>(config_.start),
                           "start mode");
  expect_pod<std::uint8_t>(is, static_cast<std::uint8_t>(config_.selection),
                           "selection");
  step_ = read_pod<std::uint64_t>(is);
  frontier_ = read_vector<VertexId>(is);
  starts_ = read_vector<VertexId>(is);
  const double scan_total = read_pod<double>(is);
  read_rng(is, rng_);
  if (frontier_.size() != config_.dimension || step_ > config_.steps) {
    throw IoError("FrontierCursor: corrupt checkpoint (frontier size)");
  }
  for (VertexId v : frontier_) check_position(*graph_, v, "frontier");
  // The Fenwick tree is a pure function of the frontier degrees (integer
  // weights, so the rebuild is bit-exact); the scan total is restored
  // verbatim to preserve its accumulated value.
  init_selection();
  scan_total_ = scan_total;
}

// ---------------------------------------------------------------- SingleRW

SingleRwCursor::SingleRwCursor(const Graph& g, SingleRandomWalk::Config config,
                               Rng rng)
    : SingleRwCursor(g, config, rng, StartSampler(g, config.start)) {}

SingleRwCursor::SingleRwCursor(const Graph& g, SingleRandomWalk::Config config,
                               Rng rng, const StartSampler& start_sampler)
    : graph_(&g), config_(config), rng_(rng) {
  if (config_.fixed_start && *config_.fixed_start >= g.num_vertices()) {
    throw std::out_of_range("SingleRwCursor: fixed_start out of range");
  }
  if (config_.fixed_start && g.degree(*config_.fixed_start) == 0) {
    throw std::invalid_argument("SingleRwCursor: fixed_start is isolated");
  }
  if (config_.laziness < 0.0 || config_.laziness >= 1.0) {
    throw std::invalid_argument("SingleRwCursor: laziness in [0, 1)");
  }
  if (start_sampler.mode() != config_.start) {
    throw std::invalid_argument(
        "SingleRwCursor: start sampler mode != config.start");
  }
  u_ = config_.fixed_start ? *config_.fixed_start : start_sampler.sample(rng_);
  starts_.push_back(u_);
}

bool SingleRwCursor::next(StreamEvent& ev) {
  ev.clear();
  const bool burning = burn_done_ < config_.burn_in;
  if (!burning && step_ == config_.steps) return false;
  if (config_.laziness > 0.0 && bernoulli(rng_, config_.laziness)) {
    // lazy stay: budget spent, no sample
  } else {
    const VertexId v = step_uniform_neighbor(*graph_, u_, rng_);
    if (!burning) {
      ev.edge = Edge{u_, v};
      ev.has_edge = true;
    }
    u_ = v;
  }
  if (burning) {
    ++burn_done_;
  } else {
    ++step_;
  }
  return true;
}

std::size_t SingleRwCursor::next_batch(StreamEventBlock& block,
                                       std::size_t max_steps) {
  block.clear();
  const std::size_t want = std::min(max_steps, block.capacity());
  const Graph& g = *graph_;
  const double laziness = config_.laziness;
  Rng rng = rng_;
  VertexId u = u_;
  std::size_t taken = 0;
  // Burn-in: budget spent, nothing recorded.
  while (burn_done_ < config_.burn_in && taken < want) {
    if (laziness > 0.0 && bernoulli(rng, laziness)) {
      // lazy stay
    } else {
      const auto nbrs = g.neighbors(u);
      u = nbrs[uniform_index(rng, nbrs.size())];
    }
    block.push_empty();
    ++burn_done_;
    ++taken;
  }
  if (laziness == 0.0) {
    // Fast path: every step moves and records an edge.
    const std::uint64_t n = std::min<std::uint64_t>(
        want - taken, config_.steps - step_);
    for (std::uint64_t k = 0; k < n; ++k) {
      const auto nbrs = g.neighbors(u);
      const VertexId v = nbrs[uniform_index(rng, nbrs.size())];
      block.push_edge(u, v, g.degree(v));
      u = v;
    }
    step_ += n;
    taken += static_cast<std::size_t>(n);
  } else {
    while (step_ < config_.steps && taken < want) {
      if (bernoulli(rng, laziness)) {
        block.push_empty();
      } else {
        const auto nbrs = g.neighbors(u);
        const VertexId v = nbrs[uniform_index(rng, nbrs.size())];
        block.push_edge(u, v, g.degree(v));
        u = v;
      }
      ++step_;
      ++taken;
    }
  }
  u_ = u;
  rng_ = rng;
  return taken;
}

double SingleRwCursor::cost() const noexcept {
  return static_cast<double>(burn_done_) + static_cast<double>(step_) + 1.0;
}

void SingleRwCursor::save_state(std::ostream& os) const {
  write_pod<std::uint64_t>(os, config_.steps);
  write_pod<std::uint64_t>(os, config_.burn_in);
  write_pod<double>(os, config_.laziness);
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(config_.start));
  write_optional_vertex(os, config_.fixed_start);
  write_pod<VertexId>(os, u_);
  write_pod<std::uint64_t>(os, burn_done_);
  write_pod<std::uint64_t>(os, step_);
  write_vector(os, starts_);
  write_rng(os, rng_);
}

void SingleRwCursor::load_state(std::istream& is) {
  expect_pod<std::uint64_t>(is, config_.steps, "steps");
  expect_pod<std::uint64_t>(is, config_.burn_in, "burn_in");
  expect_pod<double>(is, config_.laziness, "laziness");
  expect_pod<std::uint8_t>(is, static_cast<std::uint8_t>(config_.start),
                           "start mode");
  const auto fixed = read_optional_vertex(is);
  if (fixed != config_.fixed_start) {
    throw IoError("stream checkpoint: configuration mismatch: fixed_start");
  }
  u_ = read_pod<VertexId>(is);
  burn_done_ = read_pod<std::uint64_t>(is);
  step_ = read_pod<std::uint64_t>(is);
  starts_ = read_vector<VertexId>(is);
  read_rng(is, rng_);
  check_position(*graph_, u_, "walker");
  if (burn_done_ > config_.burn_in || step_ > config_.steps) {
    throw IoError("SingleRwCursor: corrupt checkpoint (counters)");
  }
}

// -------------------------------------------------------------- MultipleRW

MultipleRwCursor::MultipleRwCursor(const Graph& g,
                                   MultipleRandomWalks::Config config, Rng rng)
    : graph_(&g),
      config_(config),
      owned_start_(std::in_place, g, config.start),
      start_sampler_(&*owned_start_),
      rng_(rng) {
  if (config_.num_walkers == 0) {
    throw std::invalid_argument("MultipleRwCursor: num_walkers >= 1");
  }
  starts_.reserve(config_.num_walkers);
}

MultipleRwCursor::MultipleRwCursor(const Graph& g,
                                   MultipleRandomWalks::Config config, Rng rng,
                                   const StartSampler& start_sampler)
    : graph_(&g),
      config_(config),
      start_sampler_(&start_sampler),
      rng_(rng) {
  if (config_.num_walkers == 0) {
    throw std::invalid_argument("MultipleRwCursor: num_walkers >= 1");
  }
  if (start_sampler.mode() != config_.start) {
    throw std::invalid_argument(
        "MultipleRwCursor: start sampler mode != config.start");
  }
  starts_.reserve(config_.num_walkers);
}

bool MultipleRwCursor::next(StreamEvent& ev) {
  ev.clear();
  if (walker_ == config_.num_walkers) return false;
  if (starts_.size() == walker_) {
    // Current walker not yet placed: this query is its start jump.
    u_ = start_sampler_->sample(rng_);
    starts_.push_back(u_);
    if (config_.steps_per_walker == 0) ++walker_;
    return true;
  }
  const VertexId v = step_uniform_neighbor(*graph_, u_, rng_);
  ev.edge = Edge{u_, v};
  ev.has_edge = true;
  u_ = v;
  ++step_;
  if (step_ == config_.steps_per_walker) {
    ++walker_;
    step_ = 0;
  }
  return true;
}

std::size_t MultipleRwCursor::next_batch(StreamEventBlock& block,
                                         std::size_t max_steps) {
  block.clear();
  const std::size_t want = std::min(max_steps, block.capacity());
  const Graph& g = *graph_;
  Rng rng = rng_;
  std::size_t taken = 0;
  while (taken < want && walker_ < config_.num_walkers) {
    if (starts_.size() == walker_) {
      // Current walker not yet placed: this query is its start jump.
      u_ = start_sampler_->sample(rng);
      starts_.push_back(u_);
      block.push_empty();
      ++taken;
      if (config_.steps_per_walker == 0) ++walker_;
      continue;
    }
    // Advance the current walker as far as the block and its step budget
    // allow in one tight loop.
    const std::uint64_t n = std::min<std::uint64_t>(
        want - taken, config_.steps_per_walker - step_);
    VertexId u = u_;
    for (std::uint64_t k = 0; k < n; ++k) {
      const auto nbrs = g.neighbors(u);
      const VertexId v = nbrs[uniform_index(rng, nbrs.size())];
      block.push_edge(u, v, g.degree(v));
      u = v;
    }
    u_ = u;
    step_ += n;
    taken += static_cast<std::size_t>(n);
    if (step_ == config_.steps_per_walker) {
      ++walker_;
      step_ = 0;
    }
  }
  rng_ = rng;
  return taken;
}

double MultipleRwCursor::cost() const noexcept {
  if (walker_ == config_.num_walkers) {
    // Finished: the exact batch expression, m * (steps + c).
    return static_cast<double>(config_.num_walkers) *
           (static_cast<double>(config_.steps_per_walker) + config_.jump_cost);
  }
  const std::uint64_t steps_done =
      static_cast<std::uint64_t>(walker_) * config_.steps_per_walker + step_;
  return static_cast<double>(starts_.size()) * config_.jump_cost +
         static_cast<double>(steps_done);
}

void MultipleRwCursor::save_state(std::ostream& os) const {
  write_pod<std::uint64_t>(os, config_.num_walkers);
  write_pod<std::uint64_t>(os, config_.steps_per_walker);
  write_pod<double>(os, config_.jump_cost);
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(config_.start));
  write_vector(os, starts_);
  write_pod<VertexId>(os, u_);
  write_pod<std::uint64_t>(os, walker_);
  write_pod<std::uint64_t>(os, step_);
  write_rng(os, rng_);
}

void MultipleRwCursor::load_state(std::istream& is) {
  expect_pod<std::uint64_t>(is, config_.num_walkers, "num_walkers");
  expect_pod<std::uint64_t>(is, config_.steps_per_walker, "steps_per_walker");
  expect_pod<double>(is, config_.jump_cost, "jump_cost");
  expect_pod<std::uint8_t>(is, static_cast<std::uint8_t>(config_.start),
                           "start mode");
  starts_ = read_vector<VertexId>(is);
  u_ = read_pod<VertexId>(is);
  walker_ = read_pod<std::uint64_t>(is);
  step_ = read_pod<std::uint64_t>(is);
  read_rng(is, rng_);
  if (walker_ > config_.num_walkers || starts_.size() > config_.num_walkers) {
    throw IoError("MultipleRwCursor: corrupt checkpoint (counters)");
  }
  if (starts_.size() > walker_) {
    // Current walker is placed; u_ is dereferenced on the next step.
    check_position(*graph_, u_, "walker");
  }
}

// --------------------------------------------------------------------- RWJ

RwjCursor::RwjCursor(const Graph& g, RandomWalkWithJumps::Config config,
                     Rng rng)
    : graph_(&g),
      config_(config),
      owned_start_(std::in_place, g, StartMode::kUniform),
      start_sampler_(&*owned_start_),
      rng_(rng) {
  init();
}

RwjCursor::RwjCursor(const Graph& g, RandomWalkWithJumps::Config config,
                     Rng rng, const StartSampler& start_sampler)
    : graph_(&g),
      config_(config),
      start_sampler_(&start_sampler),
      rng_(rng) {
  if (start_sampler.mode() != StartMode::kUniform) {
    throw std::invalid_argument("RwjCursor: start sampler must be kUniform");
  }
  init();
}

void RwjCursor::init() {
  if (config_.jump_probability < 0.0 || config_.jump_probability > 1.0) {
    throw std::invalid_argument("RwjCursor: jump_probability");
  }
  if (config_.cost.hit_ratio <= 0.0 || config_.cost.hit_ratio > 1.0) {
    throw std::invalid_argument("RwjCursor: hit_ratio in (0,1]");
  }
  // Initial placement is one paid jump.
  if (!pay_jump()) {
    done_ = true;
    return;
  }
  v_ = start_sampler_->sample(rng_);
  starts_.push_back(v_);
  pending_vertex_ = v_;
}

bool RwjCursor::pay_jump() {
  const std::uint64_t misses =
      geometric_failures(rng_, config_.cost.hit_ratio);
  const double streak =
      static_cast<double>(misses + 1) * config_.cost.jump_cost;
  if (cost_ + streak > config_.budget) {
    cost_ = config_.budget;
    return false;
  }
  cost_ += streak;
  return true;
}

bool RwjCursor::next(StreamEvent& ev) {
  ev.clear();
  if (pending_vertex_) {
    ev.vertex = *pending_vertex_;
    ev.has_vertex = true;
    pending_vertex_.reset();
    return true;
  }
  if (done_) return false;
  if (config_.jump_probability > 0.0 &&
      bernoulli(rng_, config_.jump_probability)) {
    if (!pay_jump()) {
      done_ = true;
      return false;
    }
    v_ = start_sampler_->sample(rng_);
    ev.vertex = v_;
    ev.has_vertex = true;
    return true;
  }
  if (cost_ + 1.0 > config_.budget) {
    done_ = true;
    return false;
  }
  cost_ += 1.0;
  const VertexId w = step_uniform_neighbor(*graph_, v_, rng_);
  ev.edge = Edge{v_, w};
  ev.has_edge = true;
  ev.vertex = w;
  ev.has_vertex = true;
  v_ = w;
  return true;
}

std::size_t RwjCursor::next_batch(StreamEventBlock& block,
                                  std::size_t max_steps) {
  block.clear();
  const std::size_t want = std::min(max_steps, block.capacity());
  std::size_t taken = 0;
  if (want != 0 && pending_vertex_) {
    block.push_vertex(*pending_vertex_);
    pending_vertex_.reset();
    ++taken;
  }
  if (done_) return taken;
  const Graph& g = *graph_;
  const bool jumps = config_.jump_probability > 0.0;
  const double budget = config_.budget;
  while (taken < want) {
    if (jumps && bernoulli(rng_, config_.jump_probability)) {
      if (!pay_jump()) {
        done_ = true;
        return taken;
      }
      v_ = start_sampler_->sample(rng_);
      block.push_vertex(v_);
      ++taken;
      continue;
    }
    if (cost_ + 1.0 > budget) {
      done_ = true;
      return taken;
    }
    cost_ += 1.0;
    const auto nbrs = g.neighbors(v_);
    const VertexId w = nbrs[uniform_index(rng_, nbrs.size())];
    block.push_edge_vertex(v_, w, g.degree(w), w);
    v_ = w;
    ++taken;
  }
  return taken;
}

void RwjCursor::save_state(std::ostream& os) const {
  write_pod<double>(os, config_.budget);
  write_pod<double>(os, config_.jump_probability);
  write_pod<double>(os, config_.cost.jump_cost);
  write_pod<double>(os, config_.cost.hit_ratio);
  write_vector(os, starts_);
  write_pod<VertexId>(os, v_);
  write_optional_vertex(os, pending_vertex_);
  write_pod<double>(os, cost_);
  write_pod<std::uint8_t>(os, done_ ? 1 : 0);
  write_rng(os, rng_);
}

void RwjCursor::load_state(std::istream& is) {
  expect_pod<double>(is, config_.budget, "budget");
  expect_pod<double>(is, config_.jump_probability, "jump_probability");
  expect_pod<double>(is, config_.cost.jump_cost, "jump_cost");
  expect_pod<double>(is, config_.cost.hit_ratio, "hit_ratio");
  starts_ = read_vector<VertexId>(is);
  v_ = read_pod<VertexId>(is);
  pending_vertex_ = read_optional_vertex(is);
  cost_ = read_pod<double>(is);
  done_ = read_pod<std::uint8_t>(is) != 0;
  read_rng(is, rng_);
  if (!done_) check_position(*graph_, v_, "walker");
  if (pending_vertex_ && *pending_vertex_ >= graph_->num_vertices()) {
    throw IoError("RwjCursor: corrupt checkpoint (pending vertex)");
  }
}

// -------------------------------------------------------------- Metropolis

MetropolisCursor::MetropolisCursor(const Graph& g,
                                   MetropolisHastingsWalk::Config config,
                                   Rng rng)
    : MetropolisCursor(g, config, rng, StartSampler(g, config.start)) {}

MetropolisCursor::MetropolisCursor(const Graph& g,
                                   MetropolisHastingsWalk::Config config,
                                   Rng rng, const StartSampler& start_sampler)
    : graph_(&g), config_(config), rng_(rng) {
  if (config_.fixed_start && *config_.fixed_start >= g.num_vertices()) {
    throw std::out_of_range("MetropolisCursor: fixed_start out of range");
  }
  if (start_sampler.mode() != config_.start) {
    throw std::invalid_argument(
        "MetropolisCursor: start sampler mode != config.start");
  }
  v_ = config_.fixed_start ? *config_.fixed_start : start_sampler.sample(rng_);
  starts_.push_back(v_);
  pending_vertex_ = v_;
}

bool MetropolisCursor::next(StreamEvent& ev) {
  ev.clear();
  if (pending_vertex_) {
    ev.vertex = *pending_vertex_;
    ev.has_vertex = true;
    pending_vertex_.reset();
    return true;
  }
  if (step_ == config_.steps) return false;
  const Graph& g = *graph_;
  const VertexId w = step_uniform_neighbor(g, v_, rng_);
  const double accept = static_cast<double>(g.degree(v_)) /
                        static_cast<double>(g.degree(w));
  if (accept >= 1.0 || uniform01(rng_) < accept) {
    ev.edge = Edge{v_, w};
    ev.has_edge = true;
    v_ = w;
  }
  ev.vertex = v_;
  ev.has_vertex = true;
  ++step_;
  return true;
}

std::size_t MetropolisCursor::next_batch(StreamEventBlock& block,
                                         std::size_t max_steps) {
  block.clear();
  const std::size_t want = std::min(max_steps, block.capacity());
  std::size_t taken = 0;
  if (want != 0 && pending_vertex_) {
    block.push_vertex(*pending_vertex_);
    pending_vertex_.reset();
    ++taken;
  }
  const std::uint64_t n = std::min<std::uint64_t>(
      want - taken, config_.steps - step_);
  if (n == 0) return taken;
  const Graph& g = *graph_;
  Rng rng = rng_;
  VertexId v = v_;
  // deg(v) carried across iterations: on accept it is the just-fetched
  // deg(w), so the steady state does one degree lookup per proposal.
  std::uint32_t deg_v = g.degree(v);
  for (std::uint64_t k = 0; k < n; ++k) {
    const auto nbrs = g.neighbors(v);
    const VertexId w = nbrs[uniform_index(rng, nbrs.size())];
    const std::uint32_t deg_w = g.degree(w);
    const double accept =
        static_cast<double>(deg_v) / static_cast<double>(deg_w);
    if (accept >= 1.0 || uniform01(rng) < accept) {
      block.push_edge_vertex(v, w, deg_w, w);
      v = w;
      deg_v = deg_w;
    } else {
      block.push_vertex(v);
    }
  }
  step_ += n;
  taken += static_cast<std::size_t>(n);
  v_ = v;
  rng_ = rng;
  return taken;
}

double MetropolisCursor::cost() const noexcept {
  return static_cast<double>(step_) + 1.0;
}

void MetropolisCursor::save_state(std::ostream& os) const {
  write_pod<std::uint64_t>(os, config_.steps);
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(config_.start));
  write_optional_vertex(os, config_.fixed_start);
  write_pod<VertexId>(os, v_);
  write_optional_vertex(os, pending_vertex_);
  write_pod<std::uint64_t>(os, step_);
  write_vector(os, starts_);
  write_rng(os, rng_);
}

void MetropolisCursor::load_state(std::istream& is) {
  expect_pod<std::uint64_t>(is, config_.steps, "steps");
  expect_pod<std::uint8_t>(is, static_cast<std::uint8_t>(config_.start),
                           "start mode");
  const auto fixed = read_optional_vertex(is);
  if (fixed != config_.fixed_start) {
    throw IoError("stream checkpoint: configuration mismatch: fixed_start");
  }
  v_ = read_pod<VertexId>(is);
  pending_vertex_ = read_optional_vertex(is);
  step_ = read_pod<std::uint64_t>(is);
  starts_ = read_vector<VertexId>(is);
  read_rng(is, rng_);
  check_position(*graph_, v_, "walker");
  if (step_ > config_.steps ||
      (pending_vertex_ && *pending_vertex_ >= graph_->num_vertices())) {
    throw IoError("MetropolisCursor: corrupt checkpoint (counters)");
  }
}

}  // namespace frontier

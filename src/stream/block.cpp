#include "stream/block.hpp"

#include <stdexcept>

#include "core/env.hpp"

namespace frontier {

std::size_t default_block_capacity() {
  static const std::size_t cap = [] {
    const std::uint64_t k = env_u64("FS_BLOCK", 4096);
    return static_cast<std::size_t>(k == 0 ? 1 : k);
  }();
  return cap;
}

StreamEventBlock::StreamEventBlock(std::size_t capacity) : cap_(capacity) {
  if (cap_ == 0) {
    throw std::invalid_argument("StreamEventBlock: capacity >= 1");
  }
  u_.resize(cap_);
  v_.resize(cap_);
  deg_v_.resize(cap_);
  vertex_.resize(cap_);
  flags_.resize(cap_);
}

}  // namespace frontier

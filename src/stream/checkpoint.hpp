// StreamCheckpoint — versioned binary pause/resume for in-flight crawls.
//
// Layout (little-endian, mirroring the graph/io.hpp snapshot format):
//   u64 magic "FRONTSC0" | u32 version | u32 cursor kind |
//   cursor state blob | u64 events | u32 sink count |
//   per sink: length-prefixed name + sink state blob
//
// Only *dynamic* state is stored. The caller reconstructs the cursor and
// sinks from the same graph and configuration, then load() restores their
// progress; every cursor/sink verifies a configuration fingerprint and
// throws IoError on mismatch, so resuming against the wrong config fails
// loudly rather than silently corrupting the crawl.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "stream/cursor.hpp"
#include "stream/sinks.hpp"

namespace frontier {

struct StreamCheckpoint {
  /// Serializes cursor + sinks + the engine's event counter.
  static void save(std::ostream& os, const SamplerCursor& cursor,
                   std::span<const std::unique_ptr<EstimatorSink>> sinks,
                   std::uint64_t events);

  /// Restores into pre-constructed cursor/sinks of matching kind/names and
  /// returns the saved event counter. Throws IoError on any mismatch.
  [[nodiscard]] static std::uint64_t load(
      std::istream& is, SamplerCursor& cursor,
      std::span<const std::unique_ptr<EstimatorSink>> sinks);

  static void save_file(const std::string& path, const SamplerCursor& cursor,
                        std::span<const std::unique_ptr<EstimatorSink>> sinks,
                        std::uint64_t events);

  [[nodiscard]] static std::uint64_t load_file(
      const std::string& path, SamplerCursor& cursor,
      std::span<const std::unique_ptr<EstimatorSink>> sinks);
};

}  // namespace frontier

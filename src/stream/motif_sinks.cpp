#include "stream/motif_sinks.hpp"

#include "analysis/motifs.hpp"
#include "graph/metrics.hpp"
#include "stream/serialize.hpp"

namespace frontier {

namespace {

using streamio::read_pod;
using streamio::read_vector;
using streamio::write_pod;
using streamio::write_vector;

constexpr std::uint8_t kHasEdge = StreamEventBlock::kHasEdge;

}  // namespace

// ------------------------------------------------------------ TriangleSink

TriangleSink::TriangleSink(const Graph& g) : graph_(&g) {}

void TriangleSink::consume(const StreamEvent& ev) {
  if (!ev.has_edge) return;
  shared_sum_ += shared_neighbors(*graph_, ev.edge.u, ev.edge.v);
  wedge_sum_ += graph_->degree(ev.edge.v) - 1;
  ++n_;
}

void TriangleSink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const VertexId* u = block.u().data();
  const VertexId* v = block.v().data();
  const std::uint32_t* deg = block.deg_v().data();
  const Graph& g = *graph_;
  for (std::size_t i = 0; i < sz; ++i) {
    if (!(flags[i] & kHasEdge)) continue;
    shared_sum_ += shared_neighbors(g, u[i], v[i]);
    wedge_sum_ += deg[i] - 1;
    ++n_;
  }
}

std::string_view TriangleSink::name() const noexcept { return "triangles"; }

double TriangleSink::triangle_count(double volume) const noexcept {
  if (n_ == 0) return 0.0;
  const double scale = volume / static_cast<double>(n_);
  return static_cast<double>(shared_sum_) * scale / 6.0;
}

double TriangleSink::triangle_density(double num_vertices,
                                      double volume) const {
  if (num_vertices < 3.0) return 0.0;
  const double triples =
      num_vertices * (num_vertices - 1.0) * (num_vertices - 2.0) / 6.0;
  return triangle_count(volume) / triples;
}

double TriangleSink::transitivity() const noexcept {
  // Σf / Σ(deg(v)-1) → 6T / 2W = 3T/W, the global transitivity ratio.
  if (wedge_sum_ == 0) return 0.0;
  return static_cast<double>(shared_sum_) / static_cast<double>(wedge_sum_);
}

void TriangleSink::save_state(std::ostream& os) const {
  write_pod<std::uint64_t>(os, shared_sum_);
  write_pod<std::uint64_t>(os, wedge_sum_);
  write_pod<std::uint64_t>(os, n_);
}

void TriangleSink::load_state(std::istream& is) {
  shared_sum_ = read_pod<std::uint64_t>(is);
  wedge_sum_ = read_pod<std::uint64_t>(is);
  n_ = read_pod<std::uint64_t>(is);
}

// ---------------------------------------------------------- ClusteringSink

ClusteringSink::ClusteringSink(const Graph& g) : graph_(&g) {}

void ClusteringSink::fold(VertexId u, VertexId v) {
  ++n_;
  const std::uint32_t d = graph_->degree(u);
  if (d < 2) return;
  // Same arithmetic, same order as estimate_global_clustering.
  const double deg = static_cast<double>(d);
  s_ += 1.0 / deg;
  const std::uint32_t f = shared_neighbors(*graph_, u, v);
  const double pairs = deg * (deg - 1.0) / 2.0;
  num_ += static_cast<double>(f) / (2.0 * pairs);
  if (d >= count_.size()) {
    count_.resize(d + 1, 0);
    fsum_.resize(d + 1, 0);
  }
  count_[d] += 1;
  fsum_[d] += f;
}

void ClusteringSink::consume(const StreamEvent& ev) {
  if (!ev.has_edge) return;
  fold(ev.edge.u, ev.edge.v);
}

void ClusteringSink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const VertexId* u = block.u().data();
  const VertexId* v = block.v().data();
  for (std::size_t i = 0; i < sz; ++i) {
    if (!(flags[i] & kHasEdge)) continue;
    fold(u[i], v[i]);
  }
}

std::string_view ClusteringSink::name() const noexcept { return "clustering"; }

double ClusteringSink::global_clustering() const noexcept {
  return s_ == 0.0 ? 0.0 : num_ / s_;
}

std::vector<double> ClusteringSink::local_clustering() const {
  std::vector<double> curve(count_.size(), 0.0);
  for (std::size_t k = 2; k < curve.size(); ++k) {
    if (count_[k] == 0) continue;
    // Mean of f/(k-1) over the class: on a full slot enumeration the
    // class holds k samples per degree-k vertex and Σf = Σ 2∆(v), so the
    // quotient divides the same two exact integers as
    // exact_local_clustering_by_degree — hence bit-identical to it.
    const double denom =
        static_cast<double>(count_[k]) * (static_cast<double>(k) - 1.0);
    curve[k] = static_cast<double>(fsum_[k]) / denom;
  }
  return curve;
}

void ClusteringSink::save_state(std::ostream& os) const {
  write_pod<double>(os, s_);
  write_pod<double>(os, num_);
  write_pod<std::uint64_t>(os, n_);
  write_vector(os, count_);
  write_vector(os, fsum_);
}

void ClusteringSink::load_state(std::istream& is) {
  s_ = read_pod<double>(is);
  num_ = read_pod<double>(is);
  n_ = read_pod<std::uint64_t>(is);
  count_ = read_vector<std::uint64_t>(is);
  fsum_ = read_vector<std::uint64_t>(is);
}

// --------------------------------------------------------------- MotifSink

MotifSink::MotifSink(const Graph& g) : graph_(&g) {}

void MotifSink::fold(VertexId u, VertexId v, std::uint32_t deg_v) {
  const Graph& g = *graph_;
  ++n_;
  common_neighbors(g, u, v, scratch_);
  const std::int64_t f = static_cast<std::int64_t>(scratch_.size());
  const std::int64_t du = g.degree(u);
  const std::int64_t dv = deg_v;
  shared_ += static_cast<std::uint64_t>(f);
  wedge_ += static_cast<std::uint64_t>(dv - 1);
  claw2_ += static_cast<std::uint64_t>((dv - 1) * (dv - 2) / 2);
  path4_ += static_cast<std::uint64_t>((du - 1) * (dv - 1) - f);
  pawx_ += static_cast<std::uint64_t>(f * (du + dv - 4));
  diamond2_ += static_cast<std::uint64_t>(f * (f - 1) / 2);
  // K4 slot term: adjacent pairs inside the common neighborhood.
  std::uint64_t adjacent_pairs = 0;
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    for (std::size_t j = i + 1; j < scratch_.size(); ++j) {
      if (g.has_edge(scratch_[i], scratch_[j])) ++adjacent_pairs;
    }
  }
  clique12_ += adjacent_pairs;
  // C4 slot term: rectangles u–x–y–v–u through the edge, i.e. for every
  // other neighbor x of u, the codegree of {x, v} minus the slot's own u.
  std::uint64_t cycles = 0;
  for (VertexId x : g.neighbors(u)) {
    if (x == v) continue;
    cycles += shared_neighbors(g, x, v) - 1;  // u itself is always common
  }
  cycle8_ += cycles;
}

void MotifSink::consume(const StreamEvent& ev) {
  if (!ev.has_edge) return;
  fold(ev.edge.u, ev.edge.v, graph_->degree(ev.edge.v));
}

void MotifSink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const VertexId* u = block.u().data();
  const VertexId* v = block.v().data();
  const std::uint32_t* deg = block.deg_v().data();
  for (std::size_t i = 0; i < sz; ++i) {
    if (!(flags[i] & kHasEdge)) continue;
    fold(u[i], v[i], deg[i]);
  }
}

std::string_view MotifSink::name() const noexcept { return "motif_census"; }

MotifEstimate MotifSink::estimate(double volume) const noexcept {
  MotifEstimate est;
  if (n_ == 0) return est;
  const double scale = volume / static_cast<double>(n_);
  // Non-induced totals: each slot sum divided by its multiplicity.
  const double tri = static_cast<double>(shared_) * scale / 6.0;
  const double wedges = static_cast<double>(wedge_) * scale / 2.0;
  const double claw_n = static_cast<double>(claw2_) * scale / 3.0;
  const double p4_n = static_cast<double>(path4_) * scale / 2.0;
  const double paw_n = static_cast<double>(pawx_) * scale / 4.0;
  const double diamond_n = static_cast<double>(diamond2_) * scale / 2.0;
  const double c4_n = static_cast<double>(cycle8_) * scale / 8.0;
  const double k4 = static_cast<double>(clique12_) * scale / 12.0;
  // Inclusion–exclusion to induced counts, same coefficients as
  // exact_motif_counts.
  est.triangle = tri;
  est.wedge = wedges - 3.0 * tri;
  est.clique4 = k4;
  est.diamond = diamond_n - 6.0 * k4;
  est.cycle4 = c4_n - diamond_n + 3.0 * k4;
  est.paw = paw_n - 4.0 * est.diamond - 12.0 * k4;
  est.claw = claw_n - est.paw - 2.0 * est.diamond - 4.0 * k4;
  est.path4 =
      p4_n - 4.0 * est.cycle4 - 2.0 * est.paw - 6.0 * est.diamond - 12.0 * k4;
  return est;
}

void MotifSink::save_state(std::ostream& os) const {
  write_pod<std::uint64_t>(os, n_);
  write_pod<std::uint64_t>(os, shared_);
  write_pod<std::uint64_t>(os, wedge_);
  write_pod<std::uint64_t>(os, claw2_);
  write_pod<std::uint64_t>(os, path4_);
  write_pod<std::uint64_t>(os, pawx_);
  write_pod<std::uint64_t>(os, diamond2_);
  write_pod<std::uint64_t>(os, cycle8_);
  write_pod<std::uint64_t>(os, clique12_);
}

void MotifSink::load_state(std::istream& is) {
  n_ = read_pod<std::uint64_t>(is);
  shared_ = read_pod<std::uint64_t>(is);
  wedge_ = read_pod<std::uint64_t>(is);
  claw2_ = read_pod<std::uint64_t>(is);
  path4_ = read_pod<std::uint64_t>(is);
  pawx_ = read_pod<std::uint64_t>(is);
  diamond2_ = read_pod<std::uint64_t>(is);
  cycle8_ = read_pod<std::uint64_t>(is);
  clique12_ = read_pod<std::uint64_t>(is);
}

}  // namespace frontier

#include "stream/sinks.hpp"

#include <cmath>
#include <stdexcept>

#include "stream/serialize.hpp"

namespace frontier {

namespace {

using streamio::read_pod;
using streamio::read_vector;
using streamio::write_pod;
using streamio::write_vector;

constexpr std::uint8_t kHasEdge = StreamEventBlock::kHasEdge;
constexpr std::uint8_t kHasVertex = StreamEventBlock::kHasVertex;

}  // namespace

// ------------------------------------------------------------ base class

void EstimatorSink::ingest_block(const StreamEventBlock& block) {
  // Generic fallback: replay the rows through consume(). Overrides below
  // flatten this loop over the block's columns.
  const std::size_t n = block.size();
  const std::uint8_t* flags = block.flags().data();
  const VertexId* u = block.u().data();
  const VertexId* v = block.v().data();
  const VertexId* vertex = block.vertex().data();
  StreamEvent ev;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t f = flags[i];
    ev.has_edge = (f & kHasEdge) != 0;
    ev.has_vertex = (f & kHasVertex) != 0;
    if (ev.has_edge) ev.edge = Edge{u[i], v[i]};
    if (ev.has_vertex) ev.vertex = vertex[i];
    consume(ev);
  }
}

// ------------------------------------------------- DegreeDistributionSink

DegreeDistributionSink::DegreeDistributionSink(const Graph& g, DegreeKind kind)
    : graph_(&g), kind_(kind) {}

void DegreeDistributionSink::consume(const StreamEvent& ev) {
  if (!ev.has_edge) return;
  const VertexId v = ev.edge.v;
  const double inv_deg = 1.0 / static_cast<double>(graph_->degree(v));
  s_ += inv_deg;
  const std::uint32_t d = degree_of(*graph_, v, kind_);
  if (d >= weighted_.size()) weighted_.resize(d + 1, 0.0);
  weighted_[d] += inv_deg;
  ++n_;
}

void DegreeDistributionSink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const std::uint32_t* deg = block.deg_v().data();
  const VertexId* v = block.v().data();
  double s = s_;
  std::uint64_t n = n_;
  if (kind_ == DegreeKind::kSymmetric) {
    // The bucket degree equals the weight degree: both come straight from
    // the block's degree column, no graph lookups at all.
    for (std::size_t i = 0; i < sz; ++i) {
      if (!(flags[i] & kHasEdge)) continue;
      const std::uint32_t d = deg[i];
      const double inv_deg = 1.0 / static_cast<double>(d);
      s += inv_deg;
      if (d >= weighted_.size()) weighted_.resize(d + 1, 0.0);
      weighted_[d] += inv_deg;
      ++n;
    }
  } else {
    for (std::size_t i = 0; i < sz; ++i) {
      if (!(flags[i] & kHasEdge)) continue;
      const double inv_deg = 1.0 / static_cast<double>(deg[i]);
      s += inv_deg;
      const std::uint32_t d = degree_of(*graph_, v[i], kind_);
      if (d >= weighted_.size()) weighted_.resize(d + 1, 0.0);
      weighted_[d] += inv_deg;
      ++n;
    }
  }
  s_ = s;
  n_ = n;
}

std::string_view DegreeDistributionSink::name() const noexcept {
  return "degree_distribution";
}

std::vector<double> DegreeDistributionSink::distribution() const {
  std::vector<double> theta = weighted_;
  if (s_ > 0.0) {
    for (double& w : theta) w /= s_;
  }
  return theta;
}

std::vector<double> DegreeDistributionSink::ccdf() const {
  return ccdf_from_pdf(distribution());
}

void DegreeDistributionSink::save_state(std::ostream& os) const {
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(kind_));
  write_vector(os, weighted_);
  write_pod<double>(os, s_);
  write_pod<std::uint64_t>(os, n_);
}

void DegreeDistributionSink::load_state(std::istream& is) {
  streamio::expect_pod<std::uint8_t>(is, static_cast<std::uint8_t>(kind_),
                                     "degree kind");
  weighted_ = read_vector<double>(is);
  s_ = read_pod<double>(is);
  n_ = read_pod<std::uint64_t>(is);
}

// ------------------------------------------------------- VertexDensitySink

VertexDensitySink::VertexDensitySink(const Graph& g,
                                     std::function<bool(VertexId)> pred)
    : graph_(&g), pred_(std::move(pred)) {
  if (!pred_) {
    throw std::invalid_argument("VertexDensitySink: predicate required");
  }
}

void VertexDensitySink::consume(const StreamEvent& ev) {
  if (!ev.has_edge) return;
  const VertexId v = ev.edge.v;
  const double inv_deg = 1.0 / static_cast<double>(graph_->degree(v));
  s_ += inv_deg;
  if (pred_(v)) weighted_hits_ += inv_deg;
  ++n_;
}

void VertexDensitySink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const std::uint32_t* deg = block.deg_v().data();
  const VertexId* v = block.v().data();
  for (std::size_t i = 0; i < sz; ++i) {
    if (!(flags[i] & kHasEdge)) continue;
    const double inv_deg = 1.0 / static_cast<double>(deg[i]);
    s_ += inv_deg;
    if (pred_(v[i])) weighted_hits_ += inv_deg;
    ++n_;
  }
}

std::string_view VertexDensitySink::name() const noexcept {
  return "vertex_density";
}

double VertexDensitySink::value() const noexcept {
  if (n_ == 0) return 0.0;
  return s_ == 0.0 ? 0.0 : weighted_hits_ / s_;
}

void VertexDensitySink::save_state(std::ostream& os) const {
  write_pod<double>(os, s_);
  write_pod<double>(os, weighted_hits_);
  write_pod<std::uint64_t>(os, n_);
}

void VertexDensitySink::load_state(std::istream& is) {
  s_ = read_pod<double>(is);
  weighted_hits_ = read_pod<double>(is);
  n_ = read_pod<std::uint64_t>(is);
}

// --------------------------------------------------------- EdgeDensitySink

EdgeDensitySink::EdgeDensitySink(std::function<bool(const Edge&)> labeled,
                                 std::function<bool(const Edge&)> has_label)
    : labeled_(std::move(labeled)), has_label_(std::move(has_label)) {
  if (!labeled_ || !has_label_) {
    throw std::invalid_argument("EdgeDensitySink: predicates required");
  }
}

void EdgeDensitySink::consume(const StreamEvent& ev) {
  if (!ev.has_edge) return;
  if (!labeled_(ev.edge)) return;
  ++b_star_;
  if (has_label_(ev.edge)) ++hits_;
}

void EdgeDensitySink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const VertexId* u = block.u().data();
  const VertexId* v = block.v().data();
  for (std::size_t i = 0; i < sz; ++i) {
    if (!(flags[i] & kHasEdge)) continue;
    const Edge e{u[i], v[i]};
    if (!labeled_(e)) continue;
    ++b_star_;
    if (has_label_(e)) ++hits_;
  }
}

std::string_view EdgeDensitySink::name() const noexcept {
  return "edge_density";
}

double EdgeDensitySink::value() const noexcept {
  return b_star_ == 0
             ? 0.0
             : static_cast<double>(hits_) / static_cast<double>(b_star_);
}

void EdgeDensitySink::save_state(std::ostream& os) const {
  write_pod<std::uint64_t>(os, b_star_);
  write_pod<std::uint64_t>(os, hits_);
}

void EdgeDensitySink::load_state(std::istream& is) {
  b_star_ = read_pod<std::uint64_t>(is);
  hits_ = read_pod<std::uint64_t>(is);
}

// ------------------------------------------------------- AssortativitySink

AssortativitySink::AssortativitySink(const Graph& g) : graph_(&g) {}

void AssortativitySink::consume(const StreamEvent& ev) {
  if (!ev.has_edge) return;
  const Edge& e = ev.edge;
  if (!graph_->has_directed_edge(e.u, e.v)) return;  // unlabeled: skip
  acc_.add(static_cast<double>(graph_->out_degree(e.u)),
           static_cast<double>(graph_->in_degree(e.v)));
}

void AssortativitySink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const VertexId* u = block.u().data();
  const VertexId* v = block.v().data();
  const Graph& g = *graph_;
  for (std::size_t i = 0; i < sz; ++i) {
    if (!(flags[i] & kHasEdge)) continue;
    if (!g.has_directed_edge(u[i], v[i])) continue;  // unlabeled: skip
    acc_.add(static_cast<double>(g.out_degree(u[i])),
             static_cast<double>(g.in_degree(v[i])));
  }
}

std::string_view AssortativitySink::name() const noexcept {
  return "assortativity";
}

void AssortativitySink::save_state(std::ostream& os) const {
  write_pod(os, acc_.state());
}

void AssortativitySink::load_state(std::istream& is) {
  acc_.restore(read_pod<AssortativityAccumulator::State>(is));
}

// -------------------------------------------------------- GraphMomentsSink

GraphMomentsSink::GraphMomentsSink(const Graph& g, unsigned max_moment)
    : graph_(&g), pow_sums_(max_moment, 0.0) {
  if (max_moment == 0) {
    throw std::invalid_argument("GraphMomentsSink: max_moment >= 1");
  }
}

void GraphMomentsSink::consume(const StreamEvent& ev) {
  if (!ev.has_edge) return;
  const double deg = static_cast<double>(graph_->degree(ev.edge.v));
  s_ += 1.0 / deg;
  for (std::size_t k = 1; k <= pow_sums_.size(); ++k) {
    pow_sums_[k - 1] += std::pow(deg, static_cast<double>(k) - 1.0);
  }
  ++n_;
  observed_.add(deg);
}

void GraphMomentsSink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const std::uint32_t* deg_col = block.deg_v().data();
  const std::size_t moments = pow_sums_.size();
  for (std::size_t i = 0; i < sz; ++i) {
    if (!(flags[i] & kHasEdge)) continue;
    const double deg = static_cast<double>(deg_col[i]);
    s_ += 1.0 / deg;
    for (std::size_t k = 1; k <= moments; ++k) {
      pow_sums_[k - 1] += std::pow(deg, static_cast<double>(k) - 1.0);
    }
    ++n_;
    observed_.add(deg);
  }
}

std::string_view GraphMomentsSink::name() const noexcept {
  return "graph_moments";
}

double GraphMomentsSink::average_degree() const noexcept {
  if (n_ == 0) return 0.0;
  return s_ == 0.0 ? 0.0 : static_cast<double>(n_) / s_;
}

double GraphMomentsSink::degree_moment(unsigned k) const {
  if (k == 0) return n_ == 0 ? 0.0 : 1.0;  // E[deg^0] = 1
  if (k > pow_sums_.size()) {
    throw std::out_of_range("GraphMomentsSink: moment not tracked");
  }
  if (n_ == 0) return 0.0;
  return s_ == 0.0 ? 0.0 : pow_sums_[k - 1] / s_;
}

double GraphMomentsSink::volume(double num_vertices) const {
  if (num_vertices <= 0.0) {
    throw std::invalid_argument("GraphMomentsSink: num_vertices > 0");
  }
  return average_degree() * num_vertices;
}

void GraphMomentsSink::save_state(std::ostream& os) const {
  write_vector(os, pow_sums_);
  write_pod<double>(os, s_);
  write_pod<std::uint64_t>(os, n_);
  write_pod(os, observed_.state());
}

void GraphMomentsSink::load_state(std::istream& is) {
  const auto pow_sums = read_vector<double>(is);
  if (pow_sums.size() != pow_sums_.size()) {
    throw IoError("stream checkpoint: configuration mismatch: max_moment");
  }
  pow_sums_ = pow_sums;
  s_ = read_pod<double>(is);
  n_ = read_pod<std::uint64_t>(is);
  RunningStat fresh;
  fresh.restore(read_pod<RunningStat::State>(is));
  observed_ = fresh;
}

// ------------------------------------------------------- UniformDegreeSink

UniformDegreeSink::UniformDegreeSink(const Graph& g) : graph_(&g) {}

void UniformDegreeSink::consume(const StreamEvent& ev) {
  if (!ev.has_vertex) return;
  deg_sum_ += static_cast<double>(graph_->degree(ev.vertex));
  ++n_;
}

void UniformDegreeSink::ingest_block(const StreamEventBlock& block) {
  const std::size_t sz = block.size();
  const std::uint8_t* flags = block.flags().data();
  const VertexId* vertex = block.vertex().data();
  const Graph& g = *graph_;
  for (std::size_t i = 0; i < sz; ++i) {
    if (!(flags[i] & kHasVertex)) continue;
    deg_sum_ += static_cast<double>(g.degree(vertex[i]));
    ++n_;
  }
}

std::string_view UniformDegreeSink::name() const noexcept {
  return "uniform_degree";
}

double UniformDegreeSink::value() const noexcept {
  return n_ == 0 ? 0.0 : deg_sum_ / static_cast<double>(n_);
}

void UniformDegreeSink::save_state(std::ostream& os) const {
  write_pod<double>(os, deg_sum_);
  write_pod<std::uint64_t>(os, n_);
}

void UniformDegreeSink::load_state(std::istream& is) {
  deg_sum_ = read_pod<double>(is);
  n_ = read_pod<std::uint64_t>(is);
}

}  // namespace frontier

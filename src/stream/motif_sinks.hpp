// Streaming motif estimands — triangle census, local/global clustering,
// and the connected 3-/4-vertex motif frequencies — fed by the same
// degree-biased edge stream as the sinks in stream/sinks.hpp.
//
// Under any stationary edge sampler (FS, SRW, RWJ after burn-in) a
// sampled edge event is a uniform ordered edge slot (u, v) of the 2|E|
// slots of the symmetric graph, so for any per-slot functional h,
// (1/B) Σ h(u_i, v_i) → (1/2|E|) Σ_slots h. Each sink accumulates exact
// integer sums of such functionals built from the codegree
// f(u,v) = |N(u) ∩ N(v)| (computed by sorted-adjacency merge against the
// full graph, Section 4.2.4 style); scaling by vol(G)/B turns them into
// motif-count estimates. Fed a full enumeration of all 2|E| slots, the
// estimates equal the exact analysis/motifs.hpp counts *exactly* — the
// accumulators are integers and the final divisions are exact — which is
// what tests/test_motif_sinks.cpp asserts.
//
// Bit-identity discipline matches sinks.hpp: ingest_block folds the same
// arithmetic in the same order as consume(), state snapshots round-trip
// through save_state/load_state, and results are invariant to FS_BLOCK
// and FS_THREADS (enforced by ctest and the CI fingerprint gate).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "stream/sinks.hpp"

namespace frontier {

/// Streaming triangle census from sampled edges: Σ f(u,v) (= 6·triangles
/// over a full slot enumeration) and Σ (deg(v) - 1) (= 2·wedges).
class TriangleSink final : public EstimatorSink {
 public:
  explicit TriangleSink(const Graph& g);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// T̂ = vol · (Σf / B) / 6 — exact count for volume = 2|E| fed all slots.
  [[nodiscard]] double triangle_count(double volume) const noexcept;
  /// Triangle density T̂ / C(n, 3).
  [[nodiscard]] double triangle_density(double num_vertices,
                                        double volume) const;
  /// Transitivity ratio 3T/W = Σf / Σ(deg(v)-1); 0 before any wedge.
  [[nodiscard]] double transitivity() const noexcept;
  [[nodiscard]] std::uint64_t edges_consumed() const noexcept { return n_; }

 private:
  const Graph* graph_;
  std::uint64_t shared_sum_ = 0;  // Σ f(u, v)
  std::uint64_t wedge_sum_ = 0;   // Σ (deg(v) - 1)
  std::uint64_t n_ = 0;
};

/// Streaming local + global clustering. The global part mirrors
/// estimate_global_clustering (estimators/clustering.hpp) bit for bit:
/// same per-edge arithmetic in the same order, gated on deg(u) >= 2. The
/// local part buckets integer codegree sums by deg(u), giving the mean
/// local clustering c̄(k) per degree class — on a full slot enumeration
/// bit-identical to exact_local_clustering_by_degree.
class ClusteringSink final : public EstimatorSink {
 public:
  explicit ClusteringSink(const Graph& g);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// Ĉ — identical to estimate_global_clustering over the same edges.
  [[nodiscard]] double global_clustering() const noexcept;
  /// c̄(k) per degree class k >= 2; 0 where no sample landed.
  [[nodiscard]] std::vector<double> local_clustering() const;
  [[nodiscard]] std::uint64_t edges_consumed() const noexcept { return n_; }

 private:
  void fold(VertexId u, VertexId v);

  const Graph* graph_;
  double s_ = 0.0;    // Σ 1/deg(u) over deg(u) >= 2
  double num_ = 0.0;  // Σ f / (2 C(deg(u), 2))
  std::uint64_t n_ = 0;
  std::vector<std::uint64_t> count_;  // samples per deg(u) class
  std::vector<std::uint64_t> fsum_;   // Σ f per deg(u) class
};

/// Induced connected 3-/4-vertex motif frequency estimates, scaled to
/// counts. Field names mirror analysis/motifs.hpp's MotifCounts.
struct MotifEstimate {
  double wedge = 0.0;
  double triangle = 0.0;
  double path4 = 0.0;
  double claw = 0.0;
  double cycle4 = 0.0;
  double paw = 0.0;
  double diamond = 0.0;
  double clique4 = 0.0;
};

/// Streaming connected 3-/4-vertex motif census. Per edge slot (u, v) it
/// accumulates seven integer functionals of the codegree structure
/// around the edge (see motif_sinks.cpp for the slot identities); the
/// inclusion–exclusion to induced counts happens once, in estimate().
/// The C4 term walks N(u)'s codegrees with v, so a consume costs
/// O(deg(u) · avg_deg) — the heaviest sink in the pipeline by design.
class MotifSink final : public EstimatorSink {
 public:
  explicit MotifSink(const Graph& g);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// Induced motif-count estimates at the given graph volume (2|E|).
  /// Fed all 2|E| slots with volume = 2|E|, every field equals the exact
  /// MotifCounts value exactly (integer sums, exact divisions).
  [[nodiscard]] MotifEstimate estimate(double volume) const noexcept;
  [[nodiscard]] std::uint64_t edges_consumed() const noexcept { return n_; }

 private:
  void fold(VertexId u, VertexId v, std::uint32_t deg_v);

  const Graph* graph_;
  std::uint64_t n_ = 0;
  std::uint64_t shared_ = 0;    // Σ f                  = 6·T
  std::uint64_t wedge_ = 0;     // Σ (dv-1)             = 2·wedges
  std::uint64_t claw2_ = 0;     // Σ C(dv-1, 2)         = 3·claws_n
  std::uint64_t path4_ = 0;     // Σ (du-1)(dv-1) - f   = 2·P4_n
  std::uint64_t pawx_ = 0;      // Σ f(du+dv-4)         = 4·paws_n
  std::uint64_t diamond2_ = 0;  // Σ C(f, 2)            = 2·diamonds_n
  std::uint64_t cycle8_ = 0;    // Σ_x∈N(u)\v (f(x,v)-1) = 8·C4_n
  std::uint64_t clique12_ = 0;  // Σ adjacent pairs in N(u)∩N(v) = 12·K4
  std::vector<VertexId> scratch_;  // codegree merge buffer, not state
};

}  // namespace frontier

#include "stream/checkpoint.hpp"

#include <cstdio>
#include <fstream>

#include "stream/serialize.hpp"

namespace frontier {

namespace {

constexpr std::uint64_t kMagic = 0x46524f4e54534330ULL;  // "FRONTSC0"
constexpr std::uint32_t kVersion = 1;

using streamio::read_pod;
using streamio::read_string;
using streamio::write_pod;
using streamio::write_string;

}  // namespace

void StreamCheckpoint::save(
    std::ostream& os, const SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks,
    std::uint64_t events) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(cursor.kind()));
  // Graph fingerprint: restored walker positions index this graph's CSR
  // arrays, so resuming against a different graph must fail loudly.
  write_pod<std::uint64_t>(os, cursor.graph().num_vertices());
  write_pod<std::uint64_t>(os, cursor.graph().volume());
  cursor.save_state(os);
  write_pod<std::uint64_t>(os, events);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(sinks.size()));
  for (const auto& sink : sinks) {
    write_string(os, std::string(sink->name()));
    sink->save_state(os);
  }
  if (!os) throw IoError("StreamCheckpoint::save: stream failure");
}

std::uint64_t StreamCheckpoint::load(
    std::istream& is, SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks) {
  if (read_pod<std::uint64_t>(is) != kMagic) {
    throw IoError("StreamCheckpoint::load: bad magic");
  }
  if (read_pod<std::uint32_t>(is) != kVersion) {
    throw IoError("StreamCheckpoint::load: unsupported version");
  }
  const auto kind = read_pod<std::uint32_t>(is);
  if (kind != static_cast<std::uint32_t>(cursor.kind())) {
    throw IoError(
        "StreamCheckpoint::load: checkpoint was taken with a different "
        "sampler kind");
  }
  const auto num_vertices = read_pod<std::uint64_t>(is);
  const auto volume = read_pod<std::uint64_t>(is);
  if (num_vertices != cursor.graph().num_vertices() ||
      volume != cursor.graph().volume()) {
    throw IoError(
        "StreamCheckpoint::load: checkpoint was taken on a different graph");
  }
  cursor.load_state(is);
  const auto events = read_pod<std::uint64_t>(is);
  const auto count = read_pod<std::uint32_t>(is);
  if (count != sinks.size()) {
    throw IoError("StreamCheckpoint::load: sink count mismatch");
  }
  for (const auto& sink : sinks) {
    const std::string name = read_string(is);
    if (name != sink->name()) {
      throw IoError("StreamCheckpoint::load: sink order mismatch: expected " +
                    std::string(sink->name()) + ", found " + name);
    }
    sink->load_state(is);
  }
  return events;
}

void StreamCheckpoint::save_file(
    const std::string& path, const SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks,
    std::uint64_t events) {
  // Write-then-rename so a crash mid-save never destroys the previous
  // good checkpoint — surviving crashes is the whole point of the file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios_base::out | std::ios_base::binary);
    if (!f) throw IoError("cannot open for writing: " + tmp);
    save(f, cursor, sinks, events);
    f.close();
    if (!f) throw IoError("StreamCheckpoint::save_file: write failure");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("StreamCheckpoint::save_file: cannot replace " + path);
  }
}

std::uint64_t StreamCheckpoint::load_file(
    const std::string& path, SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks) {
  std::ifstream f(path, std::ios_base::in | std::ios_base::binary);
  if (!f) throw IoError("cannot open for reading: " + path);
  return load(f, cursor, sinks);
}

}  // namespace frontier

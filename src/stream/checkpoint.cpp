#include "stream/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "core/checksum.hpp"
#include "core/durable.hpp"
#include "core/failpoint.hpp"
#include "stream/serialize.hpp"

namespace frontier {

namespace {

constexpr std::uint64_t kMagic = 0x46524f4e54534330ULL;  // "FRONTSC0"
// v2 = v1 body + checksummed trailer. Bumped so a v2 reader rejects
// trailer-less v1 files by magic/version instead of misparsing.
constexpr std::uint32_t kVersion = 2;

// Trailer (last 24 bytes): body length, CRC-64 of the body, magic.
// Magic last so the final 8 bytes of any complete checkpoint identify
// it; a torn tail therefore can't present a valid trailer.
constexpr std::uint64_t kTrailerMagic = 0x46524f4e54545231ULL;  // "FRONTTR1"
constexpr std::size_t kTrailerSize = 3 * sizeof(std::uint64_t);

using streamio::read_pod;
using streamio::read_string;
using streamio::write_pod;
using streamio::write_string;

void save_body(std::ostream& os, const SamplerCursor& cursor,
               std::span<const std::unique_ptr<EstimatorSink>> sinks,
               std::uint64_t events) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(cursor.kind()));
  // Graph fingerprint: restored walker positions index this graph's CSR
  // arrays, so resuming against a different graph must fail loudly.
  write_pod<std::uint64_t>(os, cursor.graph().num_vertices());
  write_pod<std::uint64_t>(os, cursor.graph().volume());
  cursor.save_state(os);
  write_pod<std::uint64_t>(os, events);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(sinks.size()));
  for (const auto& sink : sinks) {
    write_string(os, std::string(sink->name()));
    sink->save_state(os);
  }
}

std::uint64_t load_body(std::istream& is, SamplerCursor& cursor,
                        std::span<const std::unique_ptr<EstimatorSink>> sinks) {
  if (read_pod<std::uint64_t>(is) != kMagic) {
    throw IoError("StreamCheckpoint::load: bad magic");
  }
  if (read_pod<std::uint32_t>(is) != kVersion) {
    throw IoError("StreamCheckpoint::load: unsupported version");
  }
  const auto kind = read_pod<std::uint32_t>(is);
  if (kind != static_cast<std::uint32_t>(cursor.kind())) {
    throw IoError(
        "StreamCheckpoint::load: checkpoint was taken with a different "
        "sampler kind");
  }
  const auto num_vertices = read_pod<std::uint64_t>(is);
  const auto volume = read_pod<std::uint64_t>(is);
  if (num_vertices != cursor.graph().num_vertices() ||
      volume != cursor.graph().volume()) {
    throw IoError(
        "StreamCheckpoint::load: checkpoint was taken on a different graph");
  }
  cursor.load_state(is);
  const auto events = read_pod<std::uint64_t>(is);
  const auto count = read_pod<std::uint32_t>(is);
  if (count != sinks.size()) {
    throw IoError("StreamCheckpoint::load: sink count mismatch");
  }
  for (const auto& sink : sinks) {
    const std::string name = read_string(is);
    if (name != sink->name()) {
      throw IoError("StreamCheckpoint::load: sink order mismatch: expected " +
                    std::string(sink->name()) + ", found " + name);
    }
    sink->load_state(is);
  }
  return events;
}

// Serializes body + trailer into one buffer. Checkpoints are small (KBs
// per session), so buffering the body to checksum it is cheap.
std::string serialize(const SamplerCursor& cursor,
                      std::span<const std::unique_ptr<EstimatorSink>> sinks,
                      std::uint64_t events) {
  std::ostringstream body_os(std::ios_base::out | std::ios_base::binary);
  save_body(body_os, cursor, sinks, events);
  if (!body_os) throw IoError("StreamCheckpoint::save: stream failure");
  std::string blob = std::move(body_os).str();
  const std::uint64_t body_len = blob.size();
  const std::uint64_t crc = crc64(blob.data(), blob.size());
  std::ostringstream trailer_os(std::ios_base::out | std::ios_base::binary);
  write_pod(trailer_os, body_len);
  write_pod(trailer_os, crc);
  write_pod(trailer_os, kTrailerMagic);
  blob += std::move(trailer_os).str();
  return blob;
}

// Validates the trailer of a complete checkpoint image and returns the
// body, throwing a structured IoError for truncated, overlong, or
// bit-flipped files. Nothing of the body is parsed until the checksum
// has vouched for every byte.
std::string check_trailer(std::string&& blob) {
  if (blob.size() < kTrailerSize) {
    throw IoError(
        "StreamCheckpoint::load: truncated checkpoint (smaller than the "
        "trailer)");
  }
  std::istringstream trailer_is(blob.substr(blob.size() - kTrailerSize),
                                std::ios_base::in | std::ios_base::binary);
  const auto body_len = read_pod<std::uint64_t>(trailer_is);
  const auto crc = read_pod<std::uint64_t>(trailer_is);
  const auto magic = read_pod<std::uint64_t>(trailer_is);
  if (magic != kTrailerMagic) {
    throw IoError(
        "StreamCheckpoint::load: missing or corrupt checkpoint trailer "
        "(torn write, or not a v2 checkpoint)");
  }
  if (body_len != blob.size() - kTrailerSize) {
    throw IoError(
        "StreamCheckpoint::load: checkpoint length mismatch (trailer says " +
        std::to_string(body_len) + " body bytes, file has " +
        std::to_string(blob.size() - kTrailerSize) + ")");
  }
  blob.resize(blob.size() - kTrailerSize);
  if (crc64(blob.data(), blob.size()) != crc) {
    throw IoError(
        "StreamCheckpoint::load: checkpoint checksum mismatch (bit-flipped "
        "or corrupt file)");
  }
  return std::move(blob);
}

}  // namespace

void StreamCheckpoint::save(
    std::ostream& os, const SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks,
    std::uint64_t events) {
  const std::string blob = serialize(cursor, sinks, events);
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!os) throw IoError("StreamCheckpoint::save: stream failure");
}

std::uint64_t StreamCheckpoint::load(
    std::istream& is, SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks) {
  // Drain the stream through its buffer (leaves tellg() at the end
  // without tripping eofbit — the engine's byte accounting reads it).
  std::ostringstream oss(std::ios_base::out | std::ios_base::binary);
  oss << is.rdbuf();
  std::string body = check_trailer(std::move(oss).str());
  std::istringstream body_is(std::move(body),
                             std::ios_base::in | std::ios_base::binary);
  return load_body(body_is, cursor, sinks);
}

void StreamCheckpoint::save_file(
    const std::string& path, const SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks,
    std::uint64_t events) {
  FRONTIER_FAILPOINT("checkpoint.save");
  // Durable replace (tmp + fsync + rename + parent fsync): a crash at
  // any moment leaves either the previous good checkpoint or the new
  // one — surviving crashes is the whole point of the file.
  durable_write_file(path, serialize(cursor, sinks, events));
}

std::uint64_t StreamCheckpoint::load_file(
    const std::string& path, SamplerCursor& cursor,
    std::span<const std::unique_ptr<EstimatorSink>> sinks) {
  FRONTIER_FAILPOINT("checkpoint.load");
  std::ifstream f(path, std::ios_base::in | std::ios_base::binary);
  if (!f) throw IoError("cannot open for reading: " + path);
  return load(f, cursor, sinks);
}

}  // namespace frontier

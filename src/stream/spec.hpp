// CrawlSpec — one description of a streaming crawl, shared by every
// front end that constructs one.
//
// `frontier_cli stream` and the frontier_serve daemon must produce
// bit-identical crawls for the same (method, budget, dimension, seed,
// motifs) tuple: identical cursor construction, identical sink roster in
// identical order, identical dimension clamping. Centralizing that here
// is what makes the served-vs-offline bit-identity gate (CI serve-smoke,
// tests/test_serve_protocol.cpp) a property of the architecture instead
// of a convention two tools have to keep re-agreeing on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/engine.hpp"
#include "stream/sampler_cursors.hpp"
#include "stream/sinks.hpp"

namespace frontier {

struct CrawlSpec {
  std::string method = "fs";  ///< fs | srw | mrw | mh | rwj
  double budget = 0.0;        ///< total budgeted queries B; must be > 0
  std::size_t dimension = 100;  ///< walkers m (fs/mrw); must be >= 1
  std::uint64_t seed = 1;
  bool motifs = false;  ///< add the 3-/4-vertex motif census sink

  /// The accepted method names, in canonical order.
  [[nodiscard]] static const std::vector<std::string>& methods();

  /// Throws std::invalid_argument naming the field on any violation
  /// (unknown method, non-positive/non-finite budget, zero dimension,
  /// budget too large for a u64 step count).
  void validate() const;

  /// A copy with the dimension clamped so walkers keep at least half the
  /// budget for steps — the same rule `frontier_cli stream` has always
  /// applied. Sets *clamped when the dimension moved. validate()s first.
  [[nodiscard]] CrawlSpec normalized(bool* clamped = nullptr) const;

  /// Single-walker step count B - 1 (0 for sub-unit budgets).
  [[nodiscard]] std::uint64_t walk_steps() const;

  /// The spec's cursor over `g`, RNG seeded from `seed`. Requires a
  /// normalized() spec (call sites assert nothing; an over-wide dimension
  /// simply produces the unclamped crawl).
  [[nodiscard]] std::unique_ptr<SamplerCursor> make_cursor(
      const Graph& g) const;

  /// The fixed sink roster, in the order the estimates renderer and the
  /// checkpoint identity depend on: degree distribution, assortativity,
  /// graph moments, uniform degree, triangles, clustering, then (iff
  /// `motifs`) the motif census.
  [[nodiscard]] SinkSet make_sinks(const Graph& g) const;

  /// make_cursor + make_sinks wired into an engine.
  [[nodiscard]] std::unique_ptr<StreamEngine> make_engine(
      const Graph& g) const;
};

/// Renders the engine's current estimates as JSON object fields —
/// `"events":...,"cost":...,"estimates":{...}` without surrounding
/// braces, so callers can splice them into their own envelope (the serve
/// `estimates` response, the CLI --estimates-json file). Doubles are
/// rendered with json::number (shortest round-trip), so two engines in
/// bit-identical states produce byte-identical text. The engine must
/// have been built from `spec` over `make_sinks`'s roster.
[[nodiscard]] std::string estimates_fields(const CrawlSpec& spec,
                                           const StreamEngine& engine);

}  // namespace frontier

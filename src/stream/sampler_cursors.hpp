// Concrete SamplerCursors for the five walk samplers.
//
// Each cursor is the single source of truth for its sampler's stepping
// logic: the batch run()/run_from() methods in sampling/*.cpp construct a
// cursor, drain it, and copy the RNG back, so cursor and batch results are
// byte-identical by construction. Cursors take the graph plus the
// sampler's own Config struct, own their RNG by value, and serialize their
// dynamic state for checkpoint/resume (stream/checkpoint.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "random/weighted_tree.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/metropolis.hpp"
#include "sampling/multiple_rw.hpp"
#include "sampling/random_walk_with_jumps.hpp"
#include "sampling/single_rw.hpp"
#include "stream/cursor.hpp"

namespace frontier {

/// Algorithm 1, one step per next(): select a walker ∝ degree, advance it
/// across a uniform edge, emit that edge.
class FrontierCursor final : public SamplerCursor {
 public:
  /// Draws the m walker starts from `config.start` (the batch run() path).
  FrontierCursor(const Graph& g, FrontierSampler::Config config, Rng rng);

  /// Same, but draws the starts from a caller-owned StartSampler (must
  /// match config.start), so repeated runs reuse one alias table instead
  /// of rebuilding it per cursor. Only used during construction — the
  /// sampler need not outlive the cursor.
  FrontierCursor(const Graph& g, FrontierSampler::Config config, Rng rng,
                 const StartSampler& start_sampler);

  /// Starts from a caller-provided frontier (the batch run_from() path).
  /// |frontier| must equal config.dimension and every start must have
  /// positive degree.
  FrontierCursor(const Graph& g, FrontierSampler::Config config,
                 std::vector<VertexId> frontier, Rng rng);

  bool next(StreamEvent& ev) override;
  std::size_t next_batch(StreamEventBlock& block,
                         std::size_t max_steps) override;
  [[nodiscard]] bool done() const noexcept override {
    return step_ == config_.steps;
  }
  [[nodiscard]] double cost() const noexcept override;
  [[nodiscard]] const std::vector<VertexId>& starts() const noexcept override {
    return starts_;
  }
  [[nodiscard]] const Rng& rng() const noexcept override { return rng_; }
  [[nodiscard]] CursorKind kind() const noexcept override {
    return CursorKind::kFrontier;
  }
  [[nodiscard]] const Graph& graph() const noexcept override {
    return *graph_;
  }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;
  [[nodiscard]] std::size_t active_walkers() const noexcept override {
    return frontier_.size();
  }

  /// Current walker positions (the frontier L of Algorithm 1).
  [[nodiscard]] const std::vector<VertexId>& frontier() const noexcept {
    return frontier_;
  }

 private:
  void init_selection();

  const Graph* graph_;
  FrontierSampler::Config config_;
  std::vector<VertexId> frontier_;
  std::vector<VertexId> starts_;
  WeightedTree tree_;      // kWeightedTree: Fenwick over walker degrees
  double scan_total_ = 0;  // kLinearScan: running Σ deg over the frontier
  std::uint64_t step_ = 0;
  Rng rng_;
};

/// Single random walk with optional burn-in and laziness. Burn-in queries
/// are emitted as empty events (budget spent, nothing recorded), exactly
/// matching the batch accounting.
class SingleRwCursor final : public SamplerCursor {
 public:
  SingleRwCursor(const Graph& g, SingleRandomWalk::Config config, Rng rng);

  /// Draws the start from a caller-owned StartSampler (construction only).
  SingleRwCursor(const Graph& g, SingleRandomWalk::Config config, Rng rng,
                 const StartSampler& start_sampler);

  bool next(StreamEvent& ev) override;
  std::size_t next_batch(StreamEventBlock& block,
                         std::size_t max_steps) override;
  [[nodiscard]] bool done() const noexcept override {
    return step_ == config_.steps && burn_done_ == config_.burn_in;
  }
  [[nodiscard]] double cost() const noexcept override;
  [[nodiscard]] const std::vector<VertexId>& starts() const noexcept override {
    return starts_;
  }
  [[nodiscard]] const Rng& rng() const noexcept override { return rng_; }
  [[nodiscard]] CursorKind kind() const noexcept override {
    return CursorKind::kSingleRw;
  }
  [[nodiscard]] const Graph& graph() const noexcept override {
    return *graph_;
  }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  [[nodiscard]] VertexId position() const noexcept { return u_; }

 private:
  const Graph* graph_;
  SingleRandomWalk::Config config_;
  VertexId u_ = kInvalidVertex;
  std::vector<VertexId> starts_;
  std::uint64_t burn_done_ = 0;
  std::uint64_t step_ = 0;
  Rng rng_;
};

/// m independent walkers run back to back in walker order; each walker's
/// start is drawn lazily right before its first step, preserving the batch
/// RNG interleaving (start_1, steps_1, start_2, steps_2, ...).
class MultipleRwCursor final : public SamplerCursor {
 public:
  MultipleRwCursor(const Graph& g, MultipleRandomWalks::Config config, Rng rng);

  /// Draws walker starts from a caller-owned StartSampler, which must
  /// outlive the cursor (starts are drawn lazily throughout the run).
  MultipleRwCursor(const Graph& g, MultipleRandomWalks::Config config, Rng rng,
                   const StartSampler& start_sampler);

  bool next(StreamEvent& ev) override;
  std::size_t next_batch(StreamEventBlock& block,
                         std::size_t max_steps) override;
  [[nodiscard]] bool done() const noexcept override {
    return walker_ == config_.num_walkers;
  }
  [[nodiscard]] double cost() const noexcept override;
  [[nodiscard]] const std::vector<VertexId>& starts() const noexcept override {
    return starts_;
  }
  [[nodiscard]] const Rng& rng() const noexcept override { return rng_; }
  [[nodiscard]] CursorKind kind() const noexcept override {
    return CursorKind::kMultipleRw;
  }
  [[nodiscard]] const Graph& graph() const noexcept override {
    return *graph_;
  }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;
  /// Walkers that still have steps to take (walkers run back to back, so
  /// at most one is mid-walk; the rest are waiting to start).
  [[nodiscard]] std::size_t active_walkers() const noexcept override {
    return config_.num_walkers - walker_;
  }

 private:
  const Graph* graph_;
  MultipleRandomWalks::Config config_;
  std::optional<StartSampler> owned_start_;  // engaged unless caller-owned
  const StartSampler* start_sampler_;
  std::vector<VertexId> starts_;
  VertexId u_ = kInvalidVertex;
  std::size_t walker_ = 0;     // walkers fully finished
  std::uint64_t step_ = 0;     // steps taken by the current walker
  Rng rng_;
};

/// Random walk with jumps under a budget: jumps cost c/hit_ratio (paid in
/// geometric retry streaks), walk steps cost 1. Jump landings emit a
/// vertex; walk steps emit an edge and a vertex.
class RwjCursor final : public SamplerCursor {
 public:
  RwjCursor(const Graph& g, RandomWalkWithJumps::Config config, Rng rng);

  /// Jumps through a caller-owned StartSampler (kUniform), which must
  /// outlive the cursor (jump landings are drawn throughout the run).
  RwjCursor(const Graph& g, RandomWalkWithJumps::Config config, Rng rng,
            const StartSampler& start_sampler);

  bool next(StreamEvent& ev) override;
  std::size_t next_batch(StreamEventBlock& block,
                         std::size_t max_steps) override;
  [[nodiscard]] bool done() const noexcept override { return done_; }
  [[nodiscard]] double cost() const noexcept override { return cost_; }
  [[nodiscard]] const std::vector<VertexId>& starts() const noexcept override {
    return starts_;
  }
  [[nodiscard]] const Rng& rng() const noexcept override { return rng_; }
  [[nodiscard]] CursorKind kind() const noexcept override {
    return CursorKind::kRandomWalkWithJumps;
  }
  [[nodiscard]] const Graph& graph() const noexcept override {
    return *graph_;
  }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  [[nodiscard]] bool pay_jump();
  void init();

  const Graph* graph_;
  RandomWalkWithJumps::Config config_;
  std::optional<StartSampler> owned_start_;  // engaged unless caller-owned
  const StartSampler* start_sampler_;
  std::vector<VertexId> starts_;
  VertexId v_ = kInvalidVertex;
  std::optional<VertexId> pending_vertex_;  // start visit, emitted first
  double cost_ = 0.0;
  bool done_ = false;
  Rng rng_;
};

/// Metropolis–Hastings walk: every step emits the (possibly unchanged)
/// current vertex; accepted proposals additionally emit the transition
/// edge. The start vertex is emitted by the first next() call, matching
/// the batch record's steps+1 vertex entries.
class MetropolisCursor final : public SamplerCursor {
 public:
  MetropolisCursor(const Graph& g, MetropolisHastingsWalk::Config config,
                   Rng rng);

  /// Draws the start from a caller-owned StartSampler (construction only).
  MetropolisCursor(const Graph& g, MetropolisHastingsWalk::Config config,
                   Rng rng, const StartSampler& start_sampler);

  bool next(StreamEvent& ev) override;
  std::size_t next_batch(StreamEventBlock& block,
                         std::size_t max_steps) override;
  [[nodiscard]] bool done() const noexcept override {
    return step_ == config_.steps && !pending_vertex_;
  }
  [[nodiscard]] double cost() const noexcept override;
  [[nodiscard]] const std::vector<VertexId>& starts() const noexcept override {
    return starts_;
  }
  [[nodiscard]] const Rng& rng() const noexcept override { return rng_; }
  [[nodiscard]] CursorKind kind() const noexcept override {
    return CursorKind::kMetropolis;
  }
  [[nodiscard]] const Graph& graph() const noexcept override {
    return *graph_;
  }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  [[nodiscard]] VertexId position() const noexcept { return v_; }

 private:
  const Graph* graph_;
  MetropolisHastingsWalk::Config config_;
  VertexId v_ = kInvalidVertex;
  std::vector<VertexId> starts_;
  std::optional<VertexId> pending_vertex_;
  std::uint64_t step_ = 0;
  Rng rng_;
};

}  // namespace frontier

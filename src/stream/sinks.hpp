// Online estimator sinks: fold StreamEvents incrementally so a crawl at
// any budget B uses O(max_degree + buckets) memory instead of O(B).
//
// Each sink is the streaming twin of one batch estimator in estimators/
// and accumulates in the same order with the same arithmetic, so given the
// same edge sequence the sink's output is bit-identical to the batch
// function's (tests/test_stream_sinks.cpp asserts this). Sinks serialize
// their numeric state for checkpoint/resume; closures (label predicates)
// are not stored — the caller re-binds them when reconstructing the sink.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "estimators/assortativity.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "stats/accumulators.hpp"
#include "stream/cursor.hpp"

namespace frontier {

/// Incremental estimator fed one StreamEvent at a time, or — on the
/// batched fast path — one StreamEventBlock at a time.
class EstimatorSink {
 public:
  virtual ~EstimatorSink() = default;

  virtual void consume(const StreamEvent& ev) = 0;

  /// Folds every row of `block` in order. The accumulated state is
  /// bit-identical to consume()ing the rows one by one — overrides only
  /// flatten the loop (no per-event dispatch, degree weights read from
  /// the block's degree column). Contract: the block's deg_v column must
  /// be the symmetric degree of v in this sink's graph, which holds for
  /// every block produced by a cursor over that graph. The base
  /// implementation replays rows through consume().
  virtual void ingest_block(const StreamEventBlock& block);

  /// Stable identifier, stored in checkpoints and verified on load.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Serializes / restores the accumulated numeric state.
  virtual void save_state(std::ostream& os) const = 0;
  virtual void load_state(std::istream& is) = 0;
};

/// Streaming eq.-7 degree distribution (and CCDF): the histogram of
/// 1/deg(v_i) weights of estimate_degree_distribution, folded per edge.
class DegreeDistributionSink final : public EstimatorSink {
 public:
  DegreeDistributionSink(const Graph& g, DegreeKind kind);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// θ̂ — identical to estimate_degree_distribution over the same edges.
  [[nodiscard]] std::vector<double> distribution() const;
  /// γ̂ — identical to estimate_degree_ccdf over the same edges.
  [[nodiscard]] std::vector<double> ccdf() const;
  [[nodiscard]] std::uint64_t edges_consumed() const noexcept { return n_; }

 private:
  const Graph* graph_;
  DegreeKind kind_;
  std::vector<double> weighted_;  // Σ 1/deg(v_i) per degree bucket
  double s_ = 0.0;                // Σ 1/deg(v_i)
  std::uint64_t n_ = 0;
};

/// Streaming eq. 7: vertex label density from edge samples, reweighted by
/// 1/deg. The predicate is evaluated once per edge as it arrives.
class VertexDensitySink final : public EstimatorSink {
 public:
  VertexDensitySink(const Graph& g, std::function<bool(VertexId)> pred);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// θ̂_l — identical to estimate_vertex_label_density over the same edges.
  [[nodiscard]] double value() const noexcept;

 private:
  const Graph* graph_;
  std::function<bool(VertexId)> pred_;
  double s_ = 0.0;
  double weighted_hits_ = 0.0;
  std::uint64_t n_ = 0;
};

/// Streaming eq. 5: edge label density over the labeled subsequence.
class EdgeDensitySink final : public EstimatorSink {
 public:
  EdgeDensitySink(std::function<bool(const Edge&)> labeled,
                  std::function<bool(const Edge&)> has_label);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// p̂_l — identical to estimate_edge_label_density over the same edges.
  [[nodiscard]] double value() const noexcept;

 private:
  std::function<bool(const Edge&)> labeled_;
  std::function<bool(const Edge&)> has_label_;
  std::uint64_t b_star_ = 0;
  std::uint64_t hits_ = 0;
};

/// Streaming assortativity r̂ (Section 4.2.2), reusing the incremental
/// AssortativityAccumulator from estimators/.
class AssortativitySink final : public EstimatorSink {
 public:
  explicit AssortativitySink(const Graph& g);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// r̂ — identical to estimate_assortativity over the same edges.
  [[nodiscard]] double value() const noexcept { return acc_.value(); }
  [[nodiscard]] std::uint64_t labeled_count() const noexcept {
    return acc_.count();
  }

 private:
  const Graph* graph_;
  AssortativityAccumulator acc_;
};

/// Streaming graph moments: the S-normalization of eq. 7 folded per edge.
/// Provides average degree (1/S), higher degree moments, and volume; also
/// keeps a Welford RunningStat of the observed degrees as a dispersion
/// diagnostic for monitoring long crawls.
class GraphMomentsSink final : public EstimatorSink {
 public:
  /// Tracks raw degree moments E[deg^k] for k in [1, max_moment].
  explicit GraphMomentsSink(const Graph& g, unsigned max_moment = 3);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// d̄ — identical to estimate_average_degree over the same edges.
  [[nodiscard]] double average_degree() const noexcept;
  /// E[deg^k] — identical to estimate_degree_moment for k <= max_moment.
  [[nodiscard]] double degree_moment(unsigned k) const;
  /// vol ≈ |V| / S — identical to estimate_volume.
  [[nodiscard]] double volume(double num_vertices) const;
  [[nodiscard]] std::uint64_t edges_consumed() const noexcept { return n_; }
  /// Welford statistics of the observed (degree-biased) target degrees.
  [[nodiscard]] const RunningStat& observed_degrees() const noexcept {
    return observed_;
  }

 private:
  const Graph* graph_;
  std::vector<double> pow_sums_;  // Σ deg^(k-1) for k = 1..max_moment
  double s_ = 0.0;                // Σ 1/deg
  std::uint64_t n_ = 0;
  RunningStat observed_;
};

/// Streaming mean degree from *uniform vertex* samples (MH-RW visits):
/// the plain empirical average, no reweighting.
class UniformDegreeSink final : public EstimatorSink {
 public:
  explicit UniformDegreeSink(const Graph& g);

  void consume(const StreamEvent& ev) override;
  void ingest_block(const StreamEventBlock& block) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  /// Identical to estimate_average_degree_uniform over the same vertices.
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::uint64_t vertices_consumed() const noexcept { return n_; }

 private:
  const Graph* graph_;
  double deg_sum_ = 0.0;
  std::uint64_t n_ = 0;
};

/// Owning collection of sinks, in checkpoint order.
using SinkSet = std::vector<std::unique_ptr<EstimatorSink>>;

}  // namespace frontier

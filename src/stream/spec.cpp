#include "stream/spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sampling/budget.hpp"
#include "stats/json.hpp"
#include "stream/motif_sinks.hpp"

namespace frontier {

const std::vector<std::string>& CrawlSpec::methods() {
  static const std::vector<std::string> kMethods = {"fs", "srw", "mrw", "mh",
                                                    "rwj"};
  return kMethods;
}

void CrawlSpec::validate() const {
  const auto& known = methods();
  if (std::find(known.begin(), known.end(), method) == known.end()) {
    throw std::invalid_argument("unknown method: " + method);
  }
  if (!std::isfinite(budget) || budget <= 0.0) {
    throw std::invalid_argument("budget must be a positive finite number");
  }
  if (budget > 9.0e18) {
    throw std::invalid_argument("budget too large");
  }
  if (dimension == 0) {
    throw std::invalid_argument("dimension must be at least 1");
  }
}

CrawlSpec CrawlSpec::normalized(bool* clamped) const {
  validate();
  CrawlSpec out = *this;
  if (clamped != nullptr) *clamped = false;
  if (static_cast<double>(out.dimension) * 2.0 > out.budget) {
    const auto fit =
        std::max<std::size_t>(1, static_cast<std::size_t>(out.budget / 2.0));
    if (fit != out.dimension) {
      out.dimension = fit;
      if (clamped != nullptr) *clamped = true;
    }
  }
  return out;
}

std::uint64_t CrawlSpec::walk_steps() const {
  return budget >= 1.0 ? static_cast<std::uint64_t>(budget) - 1 : 0;
}

std::unique_ptr<SamplerCursor> CrawlSpec::make_cursor(const Graph& g) const {
  Rng rng(seed);
  if (method == "fs") {
    return std::make_unique<FrontierCursor>(
        g,
        FrontierSampler::Config{
            .dimension = dimension,
            .steps = frontier_steps(budget, dimension, 1.0)},
        rng);
  }
  if (method == "srw") {
    return std::make_unique<SingleRwCursor>(
        g, SingleRandomWalk::Config{.steps = walk_steps()}, rng);
  }
  if (method == "mrw") {
    return std::make_unique<MultipleRwCursor>(
        g,
        MultipleRandomWalks::Config{
            .num_walkers = dimension,
            .steps_per_walker =
                multiple_rw_steps_per_walker(budget, dimension, 1.0)},
        rng);
  }
  if (method == "mh") {
    return std::make_unique<MetropolisCursor>(
        g, MetropolisHastingsWalk::Config{.steps = walk_steps()}, rng);
  }
  if (method == "rwj") {
    return std::make_unique<RwjCursor>(
        g, RandomWalkWithJumps::Config{.budget = budget}, rng);
  }
  throw std::invalid_argument("unknown method: " + method);
}

SinkSet CrawlSpec::make_sinks(const Graph& g) const {
  SinkSet sinks;
  sinks.push_back(
      std::make_unique<DegreeDistributionSink>(g, DegreeKind::kSymmetric));
  sinks.push_back(std::make_unique<AssortativitySink>(g));
  sinks.push_back(std::make_unique<GraphMomentsSink>(g));
  sinks.push_back(std::make_unique<UniformDegreeSink>(g));
  sinks.push_back(std::make_unique<TriangleSink>(g));
  sinks.push_back(std::make_unique<ClusteringSink>(g));
  if (motifs) sinks.push_back(std::make_unique<MotifSink>(g));
  return sinks;
}

std::unique_ptr<StreamEngine> CrawlSpec::make_engine(const Graph& g) const {
  return std::make_unique<StreamEngine>(make_cursor(g), make_sinks(g));
}

std::string estimates_fields(const CrawlSpec& spec,
                             const StreamEngine& engine) {
  // Indices mirror make_sinks's roster order.
  const auto sinks = engine.sinks();
  const auto* assort = static_cast<const AssortativitySink*>(sinks[1].get());
  const auto* moments = static_cast<const GraphMomentsSink*>(sinks[2].get());
  const auto* uniform = static_cast<const UniformDegreeSink*>(sinks[3].get());
  const auto* triangles = static_cast<const TriangleSink*>(sinks[4].get());
  const auto* clustering = static_cast<const ClusteringSink*>(sinks[5].get());

  const Graph& g = engine.cursor().graph();
  const double vol = static_cast<double>(g.volume());
  std::string out = "\"events\":" + std::to_string(engine.events()) +
                    ",\"cost\":" + json::number(engine.cursor().cost()) +
                    ",\"estimates\":{";
  const auto field = [&out](const char* name, double value) {
    if (out.back() != '{') out += ',';
    out += '"';
    out += name;
    out += "\":";
    out += json::number(value);
  };
  if (spec.method == "mh") {
    field("avg_degree_uniform", uniform->value());
  } else {
    field("avg_degree", moments->average_degree());
    field("volume", moments->volume(static_cast<double>(g.num_vertices())));
    field("assortativity", assort->value());
    field("triangles", triangles->triangle_count(vol));
    field("transitivity", triangles->transitivity());
    field("clustering", clustering->global_clustering());
    if (spec.motifs) {
      const auto* motifs = static_cast<const MotifSink*>(sinks[6].get());
      const MotifEstimate est = motifs->estimate(vol);
      field("wedge", est.wedge);
      field("path4", est.path4);
      field("claw", est.claw);
      field("cycle4", est.cycle4);
      field("paw", est.paw);
      field("diamond", est.diamond);
      field("clique4", est.clique4);
    }
  }
  out += '}';
  return out;
}

}  // namespace frontier
